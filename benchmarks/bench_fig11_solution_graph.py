"""Figure 11 — solution-graph sparsity and running time of the iTraversal variants.

Expected shape (paper): number of links G (bTraversal) ≫ G_L (iTraversal-ES-RS)
≫ G_R (iTraversal-ES) ≥ G_E (iTraversal); the full iTraversal is the fastest
end to end; links and running time grow quickly with k.
"""

from conftest import run_once

from repro.bench.experiments import (
    experiment_fig11ab,
    experiment_fig11cd,
    experiment_variant_running_time,
)
from repro.bench.reporting import print_table


def test_fig11a_solution_graph_links(benchmark):
    rows = run_once(benchmark, lambda: experiment_fig11ab(k=1, max_left=6, max_right=8))
    print()
    print_table(rows, title="Figure 11(a): solution-graph links, k=1 (shrunken small datasets)")
    for row in rows:
        assert row["bTraversal_links"] >= row["iTraversal-ES-RS_links"]
        assert row["iTraversal-ES-RS_links"] >= row["iTraversal-ES_links"]


def test_fig11b_variant_running_time(benchmark):
    rows = run_once(
        benchmark,
        lambda: experiment_variant_running_time(k=1, max_left=6, max_right=8, time_limit=8.0),
    )
    print()
    print_table(rows, title="Figure 11(b): running time of iTraversal variants vs bTraversal")
    assert len(rows) >= 2


def test_fig11cd_vary_k(benchmark):
    rows = run_once(
        benchmark,
        lambda: experiment_fig11cd(dataset="divorce", k_values=(1, 2), max_left=6, max_right=8),
    )
    print()
    print_table(rows, title="Figure 11(c)/(d): solution-graph links and time vs k (Divorce)")
    assert [row["k"] for row in rows] == [1, 2]
