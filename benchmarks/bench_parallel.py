"""Sharded parallel enumeration benchmark (the PR 5 tentpole).

Times iTraversal on dense Erdős–Rényi configurations serially and on the
sharded parallel engine (``jobs ∈ {2, 4}``), asserting on every row that
all runs enumerate the *identical* solution set (the parallel runs in the
deterministic sorted mode, compared as canonical key lists).  The timed
window includes the worker-pool spin-up and the merge — that is the real
cost a caller pays.

The full-size run additionally asserts the ISSUE 5 acceptance target: a
wall-clock speedup of at least 1.5x at ``jobs=4`` on at least one dense ER
configuration.  The assertion is gated on the machine actually having 4
CPU cores (mirroring how the packed benchmark gates on numpy): on fewer
cores the workers time-share and the equality checks are still exercised,
but no speedup can physically materialise.

The module also carries the *left-heavy sparse* regression: on graphs with
many left vertices and a small right side, inherited exclusion prefixes
trigger re-exploration cascades inside the shards (every shrunk exclusion
set re-traverses a whole subtree).  The engine's cascade fallback detects
this through the re-exploration counter and drops to per-expansion
exclusion for the rest of the shard; the regression asserts the *merged*
parallel link count stays within a fixed multiple of the serial count.
The per-shard statistics are pure functions of the shard (stats reset per
shard), so the bound is deterministic — unlike wall clock, it cannot flake
with scheduling.

Runnable standalone (``python benchmarks/bench_parallel.py``) or via
pytest-benchmark.  Set ``REPRO_BENCH_TINY=1`` for smoke-test sizes (used
by CI).
"""

from __future__ import annotations

import os
import sys
import time

if __name__ == "__main__":  # standalone run: mirror conftest's path setup
    _SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    if _SRC not in sys.path:
        sys.path.insert(0, _SRC)

from repro.core import ITraversal
from repro.graph import erdos_renyi_bipartite

TINY = bool(os.environ.get("REPRO_BENCH_TINY"))
JOBS_COMPARED = (1, 2, 4)
SPEEDUP_TARGET = 1.5
SPEEDUP_JOBS = 4

#: (n_left, n_right, edge_density, k) — dense ER, the regime where the
#: traversal forest is bushy and the per-anchor shards carry real work.
PARALLEL_BENCH_CONFIGS = (
    (16, 16, 4.0, 1),
    (20, 20, 2.5, 1),
)
TINY_PARALLEL_CONFIGS = ((10, 10, 2.0, 1),)

#: (n_left, n_right, num_edges, k) — left-heavy sparse ER, the cascade
#: fallback's regime.  Calibration on this seed: the fallback holds the
#: merged jobs=2 link count at ~4.2x serial; with the fallback disabled it
#: climbs to ~6.9x (and the re-exploration count grows by ~20x), so the
#: 5.5x bound separates a working fallback from a broken one.
LEFT_HEAVY_CONFIG = (36, 6, 70, 1)
TINY_LEFT_HEAVY_CONFIG = (18, 4, 30, 1)
LEFT_HEAVY_LINKS_BOUND = 5.5
LEFT_HEAVY_SEED = 11


def _enumerate_keys(graph, k: int, jobs: int):
    """Run iTraversal and return (sorted canonical keys, stats)."""
    algorithm = ITraversal(graph, k, jobs=jobs)
    keys = [solution.key() for solution in algorithm.enumerate()]
    if jobs == 1:
        keys.sort()  # serial output is in DFS order; compare canonically
    return keys, algorithm.stats


def run_parallel_comparison(configs=None, seed: int = 9):
    """One row per graph config: wall-clock per jobs value + speedups."""
    if configs is None:
        configs = TINY_PARALLEL_CONFIGS if TINY else PARALLEL_BENCH_CONFIGS
    rows = []
    for n_left, n_right, density, k in configs:
        graph = erdos_renyi_bipartite(n_left, n_right, edge_density=density, seed=seed)
        seconds = {}
        keys = {}
        shards = 0
        for jobs in JOBS_COMPARED:
            start = time.perf_counter()
            keys[jobs], stats = _enumerate_keys(graph, k, jobs)
            seconds[jobs] = time.perf_counter() - start
            if jobs > 1:
                shards = max(shards, stats.num_shards)
        for jobs in JOBS_COMPARED[1:]:
            assert keys[jobs] == keys[1], (
                f"jobs={jobs} must enumerate the identical solution set "
                f"({n_left}x{n_right} d={density} k={k})"
            )
        rows.append(
            {
                "n_left": n_left,
                "n_right": n_right,
                "edge_density": density,
                "k": k,
                "num_solutions": len(keys[1]),
                "num_shards": shards,
                "serial_seconds": seconds[1],
                "jobs2_seconds": seconds[2],
                "jobs4_seconds": seconds[4],
                "speedup_jobs4": (
                    seconds[1] / seconds[4] if seconds[4] else float("inf")
                ),
            }
        )
    return rows


def run_left_heavy_regression(config=None):
    """Serial vs jobs=2 on the left-heavy sparse regime; one result row.

    Asserts the identical solution set and — on the deterministic merged
    work counters — that the cascade fallback keeps the parallel link
    count within :data:`LEFT_HEAVY_LINKS_BOUND` times the serial count.
    """
    if config is None:
        config = TINY_LEFT_HEAVY_CONFIG if TINY else LEFT_HEAVY_CONFIG
    n_left, n_right, num_edges, k = config
    graph = erdos_renyi_bipartite(n_left, n_right, num_edges=num_edges, seed=LEFT_HEAVY_SEED)

    serial = ITraversal(graph, k, jobs=1)
    start = time.perf_counter()
    serial_keys = sorted(solution.key() for solution in serial.enumerate())
    serial_seconds = time.perf_counter() - start

    parallel = ITraversal(graph, k, jobs=2)
    start = time.perf_counter()
    parallel_keys = [solution.key() for solution in parallel.enumerate()]
    parallel_seconds = time.perf_counter() - start

    assert parallel_keys == serial_keys, (
        f"jobs=2 must enumerate the identical solution set on the "
        f"left-heavy regime ({n_left}x{n_right} m={num_edges} k={k})"
    )
    links_ratio = (
        parallel.stats.num_links / serial.stats.num_links
        if serial.stats.num_links
        else float("inf")
    )
    assert links_ratio <= LEFT_HEAVY_LINKS_BOUND, (
        f"cascade fallback regression: merged parallel links are "
        f"{links_ratio:.2f}x the serial count "
        f"(bound {LEFT_HEAVY_LINKS_BOUND}x) — re-exploration cascades are "
        f"no longer being contained "
        f"(num_reexplorations={parallel.stats.num_reexplorations})"
    )
    return {
        "n_left": n_left,
        "n_right": n_right,
        "num_edges": num_edges,
        "k": k,
        "num_solutions": len(serial_keys),
        "serial_links": serial.stats.num_links,
        "parallel_links": parallel.stats.num_links,
        "links_ratio": links_ratio,
        "num_reexplorations": parallel.stats.num_reexplorations,
        "serial_seconds": serial_seconds,
        "jobs2_seconds": parallel_seconds,
    }


def _enough_cores() -> bool:
    return (os.cpu_count() or 1) >= SPEEDUP_JOBS


def _assert_speedup_target(rows):
    """The ISSUE 5 acceptance target, checked on the full-size run."""
    speedups = [row["speedup_jobs4"] for row in rows]
    assert max(speedups) >= SPEEDUP_TARGET, (
        f"jobs={SPEEDUP_JOBS} must reach >= {SPEEDUP_TARGET}x over serial on "
        f"at least one dense ER configuration, got speedups {speedups}"
    )


def test_parallel_speedup(benchmark):
    from conftest import run_once

    from repro.bench.reporting import print_table

    rows = run_once(benchmark, run_parallel_comparison)
    print()
    print_table(rows, title="Sharded parallel enumeration: serial vs jobs=2/4")
    assert all(row["num_solutions"] > 0 for row in rows)
    if not TINY and _enough_cores():
        _assert_speedup_target(rows)


def test_left_heavy_cascade_fallback(benchmark):
    from conftest import run_once

    from repro.bench.reporting import print_table

    row = run_once(benchmark, run_left_heavy_regression)
    print()
    print_table([row], title="Left-heavy sparse regression: cascade fallback")
    assert row["num_solutions"] > 0


if __name__ == "__main__":
    from repro.bench.reporting import print_table

    table = run_parallel_comparison()
    print_table(table, title="Sharded parallel enumeration: serial vs jobs=2/4")
    if TINY or not _enough_cores():
        print(
            "smoke mode or < 4 CPU cores: solution-set equality checked, "
            "speedup target skipped"
        )
    else:
        _assert_speedup_target(table)
    regression = run_left_heavy_regression()
    print_table([regression], title="Left-heavy sparse regression: cascade fallback")
