"""Sharded parallel enumeration benchmark (the PR 5 tentpole).

Times iTraversal on dense Erdős–Rényi configurations serially and on the
sharded parallel engine (``jobs ∈ {2, 4}``), asserting on every row that
all runs enumerate the *identical* solution set (the parallel runs in the
deterministic sorted mode, compared as canonical key lists).  The timed
window includes the worker-pool spin-up and the merge — that is the real
cost a caller pays.

The full-size run additionally asserts the ISSUE 5 acceptance target: a
wall-clock speedup of at least 1.5x at ``jobs=4`` on at least one dense ER
configuration.  The assertion is gated on the machine actually having 4
CPU cores (mirroring how the packed benchmark gates on numpy): on fewer
cores the workers time-share and the equality checks are still exercised,
but no speedup can physically materialise.

Runnable standalone (``python benchmarks/bench_parallel.py``) or via
pytest-benchmark.  Set ``REPRO_BENCH_TINY=1`` for smoke-test sizes (used
by CI).
"""

from __future__ import annotations

import os
import sys
import time

if __name__ == "__main__":  # standalone run: mirror conftest's path setup
    _SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    if _SRC not in sys.path:
        sys.path.insert(0, _SRC)

from repro.core import ITraversal
from repro.graph import erdos_renyi_bipartite

TINY = bool(os.environ.get("REPRO_BENCH_TINY"))
JOBS_COMPARED = (1, 2, 4)
SPEEDUP_TARGET = 1.5
SPEEDUP_JOBS = 4

#: (n_left, n_right, edge_density, k) — dense ER, the regime where the
#: traversal forest is bushy and the per-anchor shards carry real work.
PARALLEL_BENCH_CONFIGS = (
    (16, 16, 4.0, 1),
    (20, 20, 2.5, 1),
)
TINY_PARALLEL_CONFIGS = ((10, 10, 2.0, 1),)


def _enumerate_keys(graph, k: int, jobs: int):
    """Run iTraversal and return (sorted canonical keys, stats)."""
    algorithm = ITraversal(graph, k, jobs=jobs)
    keys = [solution.key() for solution in algorithm.enumerate()]
    if jobs == 1:
        keys.sort()  # serial output is in DFS order; compare canonically
    return keys, algorithm.stats


def run_parallel_comparison(configs=None, seed: int = 9):
    """One row per graph config: wall-clock per jobs value + speedups."""
    if configs is None:
        configs = TINY_PARALLEL_CONFIGS if TINY else PARALLEL_BENCH_CONFIGS
    rows = []
    for n_left, n_right, density, k in configs:
        graph = erdos_renyi_bipartite(n_left, n_right, edge_density=density, seed=seed)
        seconds = {}
        keys = {}
        shards = 0
        for jobs in JOBS_COMPARED:
            start = time.perf_counter()
            keys[jobs], stats = _enumerate_keys(graph, k, jobs)
            seconds[jobs] = time.perf_counter() - start
            if jobs > 1:
                shards = max(shards, stats.num_shards)
        for jobs in JOBS_COMPARED[1:]:
            assert keys[jobs] == keys[1], (
                f"jobs={jobs} must enumerate the identical solution set "
                f"({n_left}x{n_right} d={density} k={k})"
            )
        rows.append(
            {
                "n_left": n_left,
                "n_right": n_right,
                "edge_density": density,
                "k": k,
                "num_solutions": len(keys[1]),
                "num_shards": shards,
                "serial_seconds": seconds[1],
                "jobs2_seconds": seconds[2],
                "jobs4_seconds": seconds[4],
                "speedup_jobs4": (
                    seconds[1] / seconds[4] if seconds[4] else float("inf")
                ),
            }
        )
    return rows


def _enough_cores() -> bool:
    return (os.cpu_count() or 1) >= SPEEDUP_JOBS


def _assert_speedup_target(rows):
    """The ISSUE 5 acceptance target, checked on the full-size run."""
    speedups = [row["speedup_jobs4"] for row in rows]
    assert max(speedups) >= SPEEDUP_TARGET, (
        f"jobs={SPEEDUP_JOBS} must reach >= {SPEEDUP_TARGET}x over serial on "
        f"at least one dense ER configuration, got speedups {speedups}"
    )


def test_parallel_speedup(benchmark):
    from conftest import run_once

    from repro.bench.reporting import print_table

    rows = run_once(benchmark, run_parallel_comparison)
    print()
    print_table(rows, title="Sharded parallel enumeration: serial vs jobs=2/4")
    assert all(row["num_solutions"] > 0 for row in rows)
    if not TINY and _enough_cores():
        _assert_speedup_target(rows)


if __name__ == "__main__":
    from repro.bench.reporting import print_table

    table = run_parallel_comparison()
    print_table(table, title="Sharded parallel enumeration: serial vs jobs=2/4")
    if TINY or not _enough_cores():
        print(
            "smoke mode or < 4 CPU cores: solution-set equality checked, "
            "speedup target skipped"
        )
    else:
        _assert_speedup_target(table)
