"""Ablation — left-anchored vs right-anchored initial solution (Section 6.2).

Expected shape (paper): the two symmetric options perform similarly, with no
side dominating across datasets.
"""

from conftest import run_once

from repro.bench.experiments import experiment_anchor_ablation
from repro.bench.reporting import print_table


def test_anchor_ablation(benchmark):
    rows = run_once(
        benchmark,
        lambda: experiment_anchor_ablation(
            datasets=("writer", "opsahl"), k_values=(1,), max_results=100, time_limit=5.0
        ),
    )
    print()
    print_table(rows, title="Ablation: left- vs right-anchored traversal (k=1)")
    assert len(rows) == 2
