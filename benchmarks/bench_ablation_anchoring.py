"""Ablations — anchoring side and the preprocessing pipeline.

Two ablation families share this module:

* *Anchoring* (Section 6.2): left-anchored vs right-anchored initial
  solution.  Expected shape (paper): the two symmetric options perform
  similarly, with no side dominating across datasets.
* *Preprocessing* (:mod:`repro.prep`): ``prep ∈ {off, core, core+order}``
  on thresholded enumerations.  Every row asserts that all three modes
  enumerate the *identical* solution set (compared as sorted canonical
  key lists); the full-size run additionally asserts the acceptance
  target — ``core+order`` at least 1.2x faster than ``off`` on at least
  one large sparse configuration, the regime where the core/bitruss
  reduction strips most of the background before the traversal starts.

Runnable standalone (``python benchmarks/bench_ablation_anchoring.py``) or
via pytest-benchmark.  Set ``REPRO_BENCH_TINY=1`` for smoke-test sizes
(used by CI).
"""

from __future__ import annotations

import os
import sys
import time

if __name__ == "__main__":  # standalone run: mirror conftest's path setup
    _SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    if _SRC not in sys.path:
        sys.path.insert(0, _SRC)

from repro.core import ITraversal
from repro.graph import erdos_renyi_bipartite, planted_biplex_graph

TINY = bool(os.environ.get("REPRO_BENCH_TINY"))
PREPS_COMPARED = ("off", "core", "core+order")
PREP_SPEEDUP_TARGET = 1.2

#: (name, graph factory thunk, k, theta) — thresholded configs where the
#: reduction has something to peel.  The planted configs hide small dense
#: blocks in a sparse background; the ER config is sparse enough that the
#: (θ−k)-core strips a meaningful fringe.
PREP_BENCH_CONFIGS = (
    (
        "planted-150x150-b8-theta5",
        lambda: planted_biplex_graph(
            150, 150, block_left=8, block_right=8, k=1, background_edges=450, seed=61
        ),
        1,
        5,
    ),
    (
        "planted-80x80-b6-theta4",
        lambda: planted_biplex_graph(
            80, 80, block_left=6, block_right=6, k=1, background_edges=160, seed=62
        ),
        1,
        4,
    ),
    (
        "er-40x30-theta3",
        lambda: erdos_renyi_bipartite(40, 30, num_edges=120, seed=63),
        1,
        3,
    ),
)
TINY_PREP_CONFIGS = (
    (
        "planted-30x30-b5-theta4",
        lambda: planted_biplex_graph(
            30, 30, block_left=5, block_right=5, k=1, background_edges=40, seed=61
        ),
        1,
        4,
    ),
)


def run_prep_ablation(configs=None):
    """One row per config: wall-clock per prep mode + the core+order speedup.

    Asserts on every row that the three prep modes enumerate the identical
    solution set — the ablation is only meaningful if it is an ablation of
    *speed*, never of output.
    """
    if configs is None:
        configs = TINY_PREP_CONFIGS if TINY else PREP_BENCH_CONFIGS
    rows = []
    for name, factory, k, theta in configs:
        graph = factory()
        seconds = {}
        keys = {}
        removed = (0, 0, 0)
        for prep in PREPS_COMPARED:
            algorithm = ITraversal(graph, k, theta_left=theta, theta_right=theta, prep=prep)
            start = time.perf_counter()
            keys[prep] = sorted(solution.key() for solution in algorithm.enumerate())
            seconds[prep] = time.perf_counter() - start
            if prep != "off":
                plan = algorithm.prep
                removed = (plan.removed_left, plan.removed_right, plan.removed_edges)
        for prep in PREPS_COMPARED[1:]:
            assert keys[prep] == keys["off"], (
                f"prep={prep} must enumerate the identical solution set ({name})"
            )
        rows.append(
            {
                "config": name,
                "k": k,
                "theta": theta,
                "num_solutions": len(keys["off"]),
                "removed_left": removed[0],
                "removed_right": removed[1],
                "removed_edges": removed[2],
                "off_seconds": seconds["off"],
                "core_seconds": seconds["core"],
                "core_order_seconds": seconds["core+order"],
                "speedup_core_order": (
                    seconds["off"] / seconds["core+order"]
                    if seconds["core+order"]
                    else float("inf")
                ),
            }
        )
    return rows


def _assert_prep_speedup_target(rows):
    """The ISSUE 6 acceptance target, checked on the full-size run."""
    speedups = [row["speedup_core_order"] for row in rows]
    assert max(speedups) >= PREP_SPEEDUP_TARGET, (
        f"prep=core+order must reach >= {PREP_SPEEDUP_TARGET}x over prep=off on "
        f"at least one large sparse configuration, got speedups {speedups}"
    )


def test_anchor_ablation(benchmark):
    from conftest import run_once

    from repro.bench.experiments import experiment_anchor_ablation
    from repro.bench.reporting import print_table

    rows = run_once(
        benchmark,
        lambda: experiment_anchor_ablation(
            datasets=("writer", "opsahl"), k_values=(1,), max_results=100, time_limit=5.0
        ),
    )
    print()
    print_table(rows, title="Ablation: left- vs right-anchored traversal (k=1)")
    assert len(rows) == 2


def test_prep_ablation(benchmark):
    from conftest import run_once

    from repro.bench.reporting import print_table

    rows = run_once(benchmark, run_prep_ablation)
    print()
    print_table(rows, title="Ablation: prep off vs core vs core+order")
    assert all(row["num_solutions"] > 0 for row in rows)
    if not TINY:
        _assert_prep_speedup_target(rows)


if __name__ == "__main__":
    from repro.bench.reporting import print_table

    table = run_prep_ablation()
    print_table(table, title="Ablation: prep off vs core vs core+order")
    if TINY:
        print("smoke mode: solution-set equality checked, speedup target skipped")
    else:
        _assert_prep_speedup_target(table)
