"""Figure 7(b)/(c) — running time of bTraversal vs iTraversal when varying k.

Expected shape (paper): both grow with k; iTraversal stays 1-4 orders of
magnitude faster.
"""

from conftest import run_once

from repro.bench.experiments import experiment_fig7bc
from repro.bench.reporting import print_table


def test_fig7b_vary_k_writer(benchmark):
    rows = run_once(
        benchmark,
        lambda: experiment_fig7bc(
            dataset="writer", k_values=(1, 2, 3), max_results=100, time_limit=5.0
        ),
    )
    print()
    print_table(rows, title="Figure 7(b): varying k (Writer stand-in)")
    assert [row["k"] for row in rows] == [1, 2, 3]


def test_fig7c_vary_k_dblp(benchmark):
    rows = run_once(
        benchmark,
        lambda: experiment_fig7bc(
            dataset="dblp", k_values=(1, 2), max_results=50, time_limit=5.0
        ),
    )
    print()
    print_table(rows, title="Figure 7(c): varying k (DBLP stand-in)")
    assert [row["k"] for row in rows] == [1, 2]
