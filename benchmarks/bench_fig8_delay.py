"""Figure 8 — empirical delay of the four algorithms.

Expected shape (paper): iTraversal has the smallest delay (polynomial
guarantee); iMB and FaPlexen have delays growing towards the total running
time because their search may confirm the first/last solution only at the
very end; delays grow with k for everyone.
"""

from conftest import run_once

from repro.bench.experiments import experiment_fig8a, experiment_fig8b
from repro.bench.reporting import print_table


def test_fig8a_delay_across_small_datasets(benchmark):
    rows = run_once(
        benchmark, lambda: experiment_fig8a(k=1, max_left=7, max_right=9, time_limit=10.0)
    )
    print()
    print_table(rows, title="Figure 8(a): delay (seconds), k=1, shrunken small datasets")
    assert rows


def test_fig8b_delay_vary_k(benchmark):
    rows = run_once(
        benchmark,
        lambda: experiment_fig8b(
            dataset="divorce", k_values=(1, 2), max_left=7, max_right=9, time_limit=10.0
        ),
    )
    print()
    print_table(rows, title="Figure 8(b): delay vs k (Divorce stand-in)")
    assert [row["k"] for row in rows] == [1, 2]
