"""Figure 7(d)/(e) — running time when varying the number of returned MBPs.

Expected shape (paper): both algorithms scale with the number of requested
results; iTraversal's curve sits far below bTraversal's.
"""

from conftest import run_once

from repro.bench.experiments import experiment_fig7de
from repro.bench.reporting import print_table


def test_fig7d_vary_results_writer(benchmark):
    rows = run_once(
        benchmark,
        lambda: experiment_fig7de(
            dataset="writer", result_counts=(1, 10, 100), time_limit=5.0
        ),
    )
    print()
    print_table(rows, title="Figure 7(d): varying #MBPs (Writer stand-in)")
    assert [row["num_results"] for row in rows] == [1, 10, 100]


def test_fig7e_vary_results_dblp(benchmark):
    rows = run_once(
        benchmark,
        lambda: experiment_fig7de(
            dataset="dblp", result_counts=(1, 10, 100), time_limit=5.0
        ),
    )
    print()
    print_table(rows, title="Figure 7(e): varying #MBPs (DBLP stand-in)")
    assert [row["num_results"] for row in rows] == [1, 10, 100]
