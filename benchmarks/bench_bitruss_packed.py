"""Bitruss / edge-support benchmark for the packed batch substrate.

Exercises the PR-4 batch kernels against the Python-native backends on the
edge-support layer the paper pairs with MBP enumeration as pre-pruning:

* **edge-support** — ``edge_butterfly_counts``: per-edge rectangle counts
  from blocked row-pair popcounts plus one BLAS matmul per anchor block on
  ``packed``, versus the per-edge mask loop on ``bitset``;
* **bitruss** — ``k_bitruss``: vectorized support computation feeding the
  incremental peel;
* **bitruss-number** — repeated peeling, the full decomposition;
* **enumeration** — iTraversal on a dense Erdős–Rényi configuration, where
  the enumeration-side batch predicates (whole-side Γ / δ̄ scoring in the
  traversal engine and the maximal-extension step) apply.

Every row asserts three-way output equality (identical support dicts,
bitruss edge sets / numbers, and solution sets across ``set`` / ``bitset``
/ ``packed``); the full run additionally asserts the packed-vs-bitset
speedup targets: ≥ 2x on at least one bitruss configuration and at least
parity on the dense-ER enumeration.

Runnable standalone (``python benchmarks/bench_bitruss_packed.py``) or via
pytest-benchmark.  Set ``REPRO_BENCH_TINY=1`` for smoke-test sizes (used by
CI).  Without numpy the packed backend is the ``array('Q')`` fallback: the
benchmark still runs and checks the three-way equality (that *is* the
fallback's contract), but the speedup assertions are skipped.
"""

from __future__ import annotations

import os
import sys
import time

if __name__ == "__main__":  # standalone run: mirror conftest's path setup
    _SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    if _SRC not in sys.path:
        sys.path.insert(0, _SRC)

from repro.core import ITraversal
from repro.graph import as_backend, erdos_renyi_bipartite, packed_available
from repro.graph.butterfly import bitruss_number, edge_butterfly_counts, k_bitruss

TINY = bool(os.environ.get("REPRO_BENCH_TINY"))
BACKENDS_COMPARED = ("set", "bitset", "packed")

# (component, n_left, n_right, edge_density, parameter) — the parameter is
# the peeling k for "bitruss" and the max_results cap for "enumeration".
BITRUSS_BENCH_CONFIGS = (
    ("edge-support", 400, 400, 10.0, None),
    ("bitruss", 300, 300, 8.0, 4),
    ("bitruss", 600, 600, 12.0, 8),
    ("bitruss-number", 150, 150, 6.0, None),
    ("enumeration", 160, 160, 10.0, 150),
)
TINY_BITRUSS_CONFIGS = (
    ("edge-support", 30, 30, 3.0, None),
    ("bitruss", 40, 40, 3.0, 1),
    ("bitruss-number", 20, 20, 2.0, None),
    ("enumeration", 12, 12, 1.5, 50),
)
K = 1
#: Timed repetitions for the two fast backends; the set backend runs once —
#: it participates as the equality oracle, not as a timing baseline.
REPEATS = 3


def _component_runner(component: str, graph, backend: str, parameter):
    """A zero-argument callable running ``component``, returning a comparison key."""
    if component == "edge-support":
        return lambda: sorted(edge_butterfly_counts(graph).items())
    if component == "bitruss":
        return lambda: sorted(k_bitruss(graph, parameter).edges())
    if component == "bitruss-number":
        return lambda: sorted(bitruss_number(graph).items())
    if component == "enumeration":
        # The backend is passed explicitly so the engine's as_backend is a
        # no-op and the timed region contains no conversion.
        return lambda: [
            s.key()
            for s in ITraversal(
                graph, K, max_results=parameter, backend=backend
            ).enumerate()
        ]
    raise ValueError(f"unknown benchmark component {component!r}")


def run_bitruss_comparison(configs=None, seed: int = 3):
    """One row per (component, graph config): wall-clock per backend + speedups."""
    if configs is None:
        configs = TINY_BITRUSS_CONFIGS if TINY else BITRUSS_BENCH_CONFIGS
    rows = []
    for component, n_left, n_right, density, parameter in configs:
        graph = erdos_renyi_bipartite(n_left, n_right, edge_density=density, seed=seed)
        results = {}
        seconds = {}
        for backend in BACKENDS_COMPARED:
            # Conversion happens outside the timed region: the benchmark
            # compares steady-state substrate performance, not build cost.
            run = _component_runner(
                component, as_backend(graph, backend), backend, parameter
            )
            best = float("inf")
            for _ in range(1 if backend == "set" else REPEATS):
                start = time.perf_counter()
                results[backend] = run()
                best = min(best, time.perf_counter() - start)
            seconds[backend] = best
        for backend in ("bitset", "packed"):
            assert results[backend] == results["set"], (
                f"{component}: the {backend} backend must produce identical "
                "support counts / bitruss edges / solution sets"
            )
        rows.append(
            {
                "component": component,
                "n_left": n_left,
                "n_right": n_right,
                "edge_density": density,
                "parameter": parameter,
                "set_seconds": seconds["set"],
                "bitset_seconds": seconds["bitset"],
                "packed_seconds": seconds["packed"],
                "packed_vs_bitset": (
                    seconds["bitset"] / seconds["packed"]
                    if seconds["packed"]
                    else float("inf")
                ),
            }
        )
    return rows


def _assert_speedup_targets(rows):
    """The acceptance targets of ISSUE 4, checked on the full-size run."""
    bitruss_speedups = [
        row["packed_vs_bitset"] for row in rows if row["component"] == "bitruss"
    ]
    assert max(bitruss_speedups) >= 2.0, (
        "packed bitruss peeling must be >= 2x over bitset on at least one "
        f"configuration, got speedups {bitruss_speedups}"
    )
    enum_speedups = [
        row["packed_vs_bitset"] for row in rows if row["component"] == "enumeration"
    ]
    assert max(enum_speedups) >= 1.0, (
        "packed must be at least at bitset parity on the dense-ER "
        f"enumeration, got speedups {enum_speedups}"
    )


def test_bitruss_packed_speedup(benchmark):
    from conftest import run_once

    from repro.bench.reporting import print_table

    rows = run_once(benchmark, run_bitruss_comparison)
    print()
    print_table(rows, title="Bitruss benchmark: set vs bitset vs packed")
    assert {row["component"] for row in rows} >= {"edge-support", "bitruss"}
    if not TINY and packed_available():
        _assert_speedup_targets(rows)


if __name__ == "__main__":
    from repro.bench.reporting import print_table

    table = run_bitruss_comparison()
    print_table(table, title="Bitruss benchmark: set vs bitset vs packed")
    if TINY or not packed_available():
        print(
            "smoke/fallback mode: three-way equality checked, "
            "speedup targets skipped"
        )
    else:
        _assert_speedup_targets(table)
