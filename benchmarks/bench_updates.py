"""Incremental index maintenance vs full recompute (the ISSUE 10 tentpole).

The workload is the streaming camouflage attack of
:mod:`repro.analysis.fraud`: the fraud block is already planted, and the
camouflage reviews (fake users -> real products) arrive over time in
batches.  Two detectors track butterfly counts and the (α, β)-core across
the stream:

* **incremental** — one :class:`repro.graph.dynamic.DynamicGraphIndex`
  absorbing each batch (per-edge wedge deltas, locally-repaired core);
* **recompute** — the cold path a frozen-graph stack forces: after every
  batch, re-run :func:`repro.graph.butterfly.edge_butterfly_counts` and
  :func:`repro.graph.cores.alpha_beta_core` on the whole mutated graph.

Every row asserts the two agree exactly (supports, totals, membership) —
the differential is the point, the timing is the payoff — and the
full-size run asserts the ISSUE 10 acceptance target: incremental
maintenance at least 2x faster than recomputation on this workload.

``--emit-json BENCH_updates.json`` writes a ``repro-bench-enum/1``
snapshot (per-path entries in the ``preps`` slot) consumable by
``python -m repro.bench.compare``, which CI wires against the previous
run's cached snapshot.

Runnable standalone (``python benchmarks/bench_updates.py``) or via
pytest-benchmark.  Set ``REPRO_BENCH_TINY=1`` for smoke-test sizes (used
by CI; the speedup target is skipped — tiny graphs recompute in
microseconds either way).
"""

from __future__ import annotations

import json
import os
import sys
import time

if __name__ == "__main__":  # standalone run: mirror conftest's path setup
    _SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    if _SRC not in sys.path:
        sys.path.insert(0, _SRC)

from repro.analysis.fraud import FraudStudyConfig, streaming_camouflage_edges
from repro.graph.cores import alpha_beta_core
from repro.graph.dynamic import DynamicGraphIndex, recomputed_oracle

TINY = bool(os.environ.get("REPRO_BENCH_TINY"))
SPEEDUP_TARGET = 2.0

#: (study config, alpha, beta, batches) — the streaming-camouflage shapes.
#: The full-size rows use the fraud study's default scale; batch counts
#: model slow (few, large waves) and fast (many small waves) arrival.
UPDATE_BENCH_CONFIGS = (
    (FraudStudyConfig(), 5, 4, 10),
    (FraudStudyConfig(), 5, 4, 40),
)
TINY_UPDATE_CONFIGS = (
    (
        FraudStudyConfig(
            n_real_users=60,
            n_real_products=30,
            n_real_reviews=300,
            n_fake_users=10,
            n_fake_products=10,
            seed=7,
        ),
        4,
        3,
        5,
    ),
)


def _batches(edges, num_batches):
    chunk = -(-len(edges) // num_batches) if edges else 1
    return [edges[i * chunk : (i + 1) * chunk] for i in range(num_batches)]


def run_update_comparison(configs=None):
    """One row per streaming config: maintained indices vs per-batch recompute."""
    if configs is None:
        configs = TINY_UPDATE_CONFIGS if TINY else UPDATE_BENCH_CONFIGS
    rows = []
    for config, alpha, beta, num_batches in configs:
        base, _injection, camouflage = streaming_camouflage_edges(config)
        batches = _batches(camouflage, num_batches)
        label = (
            f"{base.n_left}x{base.n_right} e={base.num_edges} "
            f"+{len(camouflage)} in {num_batches} batches a={alpha} b={beta}"
        )

        # Incremental path: one index, every batch applied in place.
        incremental_graph = base.copy()
        index = DynamicGraphIndex(incremental_graph, alpha=alpha, beta=beta)
        start = time.perf_counter()
        for batch in batches:
            index.apply(inserts=batch)
        incremental_seconds = time.perf_counter() - start

        # Recompute path: the same arrivals, indices rebuilt from scratch
        # after every batch (what a frozen-graph stack has to do).
        recompute_graph = base.copy()
        start = time.perf_counter()
        for batch in batches:
            recompute_graph.apply_batch(inserts=batch)
            total, supports, core = recomputed_oracle(
                recompute_graph, alpha=alpha, beta=beta
            )
        recompute_seconds = time.perf_counter() - start

        # Differential before timing claims: the final maintained state must
        # equal the final recomputed one, bit for bit.
        assert index.butterfly_count == total, label
        assert index.butterflies.supports == supports, label
        assert tuple(map(set, index.core_members)) == tuple(map(set, core)), label
        check_left, check_right = alpha_beta_core(incremental_graph, alpha, beta)
        assert (set(check_left), set(check_right)) == tuple(map(set, core)), label

        rows.append(
            {
                "config": label,
                "edges_streamed": len(camouflage),
                "butterflies": index.butterfly_count,
                "incremental_seconds": incremental_seconds,
                "recompute_seconds": recompute_seconds,
                "speedup": (
                    recompute_seconds / incremental_seconds
                    if incremental_seconds
                    else float("inf")
                ),
            }
        )
    return rows


def _assert_speedup_target(rows):
    """The ISSUE 10 acceptance target, checked on the full-size run."""
    speedups = [row["speedup"] for row in rows]
    assert min(speedups) >= SPEEDUP_TARGET, (
        f"incremental maintenance must beat per-batch recomputation by "
        f">= {SPEEDUP_TARGET}x on every streaming configuration, got {speedups}"
    )


def update_snapshot(rows):
    """``repro-bench-enum/1`` snapshot; the two paths fill the preps slot.

    ``num_solutions`` carries the (deterministic) butterfly total so the
    comparator's count check doubles as a cross-run correctness alarm.
    """
    runs = []
    for row in rows:
        entry = {
            "num_solutions": row["butterflies"],
            "truncated": False,
        }
        runs.append(
            {
                "config": row["config"],
                "preps": {
                    "incremental": dict(entry, seconds=row["incremental_seconds"]),
                    "recompute": dict(entry, seconds=row["recompute_seconds"]),
                },
            }
        )
    return {"schema": "repro-bench-enum/1", "runs": runs}


def test_incremental_updates(benchmark):
    from conftest import run_once

    from repro.bench.reporting import print_table

    rows = run_once(benchmark, run_update_comparison)
    print()
    print_table(rows, title="Index maintenance: incremental vs full recompute")
    assert all(row["butterflies"] > 0 for row in rows)
    if not TINY:
        _assert_speedup_target(rows)


if __name__ == "__main__":
    import argparse

    from repro.bench.reporting import print_table

    parser = argparse.ArgumentParser(
        description="benchmark incremental index maintenance against full recompute"
    )
    parser.add_argument(
        "--emit-json",
        metavar="FILE",
        default=None,
        help="write a repro-bench-enum/1 snapshot to FILE ('-' for stdout)",
    )
    args = parser.parse_args()
    table = run_update_comparison()
    print_table(table, title="Index maintenance: incremental vs full recompute")
    if TINY:
        print("smoke mode: differential checked, speedup target skipped")
    else:
        _assert_speedup_target(table)
    if args.emit_json:
        payload = json.dumps(update_snapshot(table), indent=2, sort_keys=True)
        if args.emit_json == "-":
            print(payload)
        else:
            with open(args.emit_json, "w", encoding="utf-8") as handle:
                handle.write(payload + "\n")
            print(f"wrote {args.emit_json}")
