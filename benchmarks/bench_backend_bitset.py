"""Backend microbenchmark — set vs bitset adjacency on generator graphs.

Runs iTraversal with both adjacency backends on the same ER graphs across a
density sweep, checks the enumerated solution sets are identical, and
reports per-backend wall-clock plus the speedup.  The bitset backend's
word-parallel Γ/δ̄ predicates should win, with the margin growing on the
denser configurations (the same effect the BBK and symmetric-BK
implementations report for their compact adjacency representations).

Runnable standalone (``python benchmarks/bench_backend_bitset.py``) or via
pytest-benchmark like the rest of the suite.
"""

from __future__ import annotations

import os
import sys
import time

if __name__ == "__main__":  # standalone run: mirror conftest's path setup
    _SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    if _SRC not in sys.path:
        sys.path.insert(0, _SRC)

from repro.core import TraversalConfig, run_with_stats
from repro.graph import erdos_renyi_bipartite

# (n_left, n_right, edge_density) — density is |E| / (|L| + |R|) as in the paper.
BACKEND_BENCH_CONFIGS = (
    (50, 50, 1.0),
    (50, 50, 2.0),
    (60, 60, 3.0),
    (60, 60, 4.0),
)
K = 1
MAX_RESULTS = 400


def _time_backend(graph, backend: str):
    config = TraversalConfig(backend=backend, max_results=MAX_RESULTS)
    start = time.perf_counter()
    solutions, stats = run_with_stats(graph, K, config)
    elapsed = time.perf_counter() - start
    return solutions, stats, elapsed


def run_backend_comparison(configs=BACKEND_BENCH_CONFIGS, seed: int = 3):
    """One row per graph config: wall-clock for each backend + speedup."""
    rows = []
    for n_left, n_right, density in configs:
        graph = erdos_renyi_bipartite(n_left, n_right, edge_density=density, seed=seed)
        set_solutions, set_stats, set_seconds = _time_backend(graph, "set")
        bitset_solutions, bitset_stats, bitset_seconds = _time_backend(graph, "bitset")
        set_keys = sorted(s.key() for s in set_solutions)
        bitset_keys = sorted(s.key() for s in bitset_solutions)
        assert set_keys == bitset_keys, "backends must enumerate identical solution sets"
        assert set_stats.num_links == bitset_stats.num_links
        rows.append(
            {
                "n_left": n_left,
                "n_right": n_right,
                "edge_density": density,
                "num_solutions": len(set_solutions),
                "set_seconds": set_seconds,
                "bitset_seconds": bitset_seconds,
                "speedup": set_seconds / bitset_seconds if bitset_seconds else float("inf"),
            }
        )
    return rows


def test_backend_bitset_speedup(benchmark):
    from conftest import run_once

    from repro.bench.reporting import print_table

    rows = run_once(benchmark, run_backend_comparison)
    print()
    print_table(rows, title="Backend microbenchmark: set vs bitset adjacency (iTraversal, k=1)")
    assert [row["edge_density"] for row in rows] == [c[2] for c in BACKEND_BENCH_CONFIGS]
    # The bitset backend must win on the dense configurations.
    dense = [row for row in rows if row["edge_density"] >= 3.0]
    assert all(row["speedup"] > 1.0 for row in dense)


if __name__ == "__main__":
    from repro.bench.reporting import print_table

    print_table(
        run_backend_comparison(),
        title="Backend microbenchmark: set vs bitset adjacency (iTraversal, k=1)",
    )
