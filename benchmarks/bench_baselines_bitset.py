"""Baseline + cohesive-structure microbenchmark — set vs bitset adjacency.

PR 1 moved the core enumerators to the word-parallel bitmask substrate; this
benchmark covers the rest of the codebase converted afterwards: the iMB
backtracking baseline, the FaPlexen graph-inflation pipeline (whose k-plex
enumerator runs on the inflated *general* graph), butterfly counting,
k-bitruss peeling and (α, β)-core peeling.  Every component is timed on the
same graph under both backends and its outputs are asserted identical, so
the table doubles as an end-to-end backend-equivalence check.

Dense configurations are where the masks pay off (one popcount replaces a
membership scan proportional to the neighbourhood size); the butterfly and
bitruss rows show the largest margins because their inner loops are pure
common-neighbourhood intersections.

Runnable standalone (``python benchmarks/bench_baselines_bitset.py``) or via
pytest-benchmark like the rest of the suite.  Set ``REPRO_BENCH_TINY=1`` to
shrink every configuration to smoke-test size (used by CI).
"""

from __future__ import annotations

import os
import sys
import time

if __name__ == "__main__":  # standalone run: mirror conftest's path setup
    _SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    if _SRC not in sys.path:
        sys.path.insert(0, _SRC)

from repro.baselines import enumerate_mbps_imb, enumerate_mbps_inflation
from repro.graph import erdos_renyi_bipartite
from repro.graph.butterfly import count_butterflies, edge_butterfly_counts, k_bitruss
from repro.graph.cores import alpha_beta_core

TINY = bool(os.environ.get("REPRO_BENCH_TINY"))

# (component, n_left, n_right, edge_density, dense) — density is
# |E| / (|L| + |R|) as in the paper; ``dense`` marks the configurations the
# speedup assertion ranges over.
BASELINE_BENCH_CONFIGS = (
    ("imb", 8, 8, 1.5, False),
    ("imb", 12, 12, 2.5, True),
    ("faplexen", 8, 8, 2.0, True),
    ("butterfly", 60, 60, 3.0, False),
    ("butterfly", 150, 150, 8.0, True),
    ("bitruss", 60, 60, 5.0, True),
    ("core", 800, 800, 4.0, False),
)
TINY_BENCH_CONFIGS = (
    ("imb", 5, 5, 1.0, True),
    ("faplexen", 5, 5, 1.2, True),
    ("butterfly", 20, 20, 2.0, True),
    ("bitruss", 15, 15, 2.0, True),
    ("core", 50, 50, 2.0, True),
)
K = 1
BITRUSS_K = 2
CORE_BOUND = 5


def _component_runner(component: str, graph):
    """A zero-argument callable running ``component`` plus its comparison key."""
    if component == "imb":
        return lambda: sorted(s.key() for s in enumerate_mbps_imb(graph, K))
    if component == "faplexen":
        return lambda: sorted(s.key() for s in enumerate_mbps_inflation(graph, K))
    if component == "butterfly":
        return lambda: (count_butterflies(graph), edge_butterfly_counts(graph))
    if component == "bitruss":
        return lambda: sorted(k_bitruss(graph, BITRUSS_K).edges())
    if component == "core":
        return lambda: alpha_beta_core(graph, CORE_BOUND, CORE_BOUND)
    raise ValueError(f"unknown benchmark component {component!r}")


def run_baseline_comparison(configs=None, seed: int = 3):
    """One row per (component, graph config): wall-clock per backend + speedup."""
    if configs is None:
        configs = TINY_BENCH_CONFIGS if TINY else BASELINE_BENCH_CONFIGS
    rows = []
    for component, n_left, n_right, density, dense in configs:
        graph = erdos_renyi_bipartite(n_left, n_right, edge_density=density, seed=seed)
        results = {}
        seconds = {}
        for backend, backend_graph in (("set", graph), ("bitset", graph.to_bitset())):
            # The converted baselines pick the masked fast paths up from the
            # graph they are handed; forcing the graph's own backend keeps the
            # timed region free of conversion cost.
            if component in ("imb", "faplexen"):
                runner_graph = backend_graph
                run = (
                    (lambda g=runner_graph: sorted(
                        s.key() for s in enumerate_mbps_imb(g, K, backend=backend)
                    ))
                    if component == "imb"
                    else (lambda g=runner_graph: sorted(
                        s.key() for s in enumerate_mbps_inflation(g, K, backend=backend)
                    ))
                )
            else:
                run = _component_runner(component, backend_graph)
            start = time.perf_counter()
            results[backend] = run()
            seconds[backend] = time.perf_counter() - start
        assert results["set"] == results["bitset"], (
            f"{component}: backends must produce identical results"
        )
        rows.append(
            {
                "component": component,
                "n_left": n_left,
                "n_right": n_right,
                "edge_density": density,
                "dense": dense,
                "set_seconds": seconds["set"],
                "bitset_seconds": seconds["bitset"],
                "speedup": (
                    seconds["set"] / seconds["bitset"]
                    if seconds["bitset"]
                    else float("inf")
                ),
            }
        )
    return rows


def test_baseline_bitset_speedup(benchmark):
    from conftest import run_once

    from repro.bench.reporting import print_table

    rows = run_once(benchmark, run_baseline_comparison)
    print()
    print_table(
        rows,
        title="Baseline microbenchmark: set vs bitset adjacency (k=1)",
    )
    assert {row["component"] for row in rows} >= {"imb", "faplexen", "butterfly"}
    if not TINY:
        # The word-parallel fast paths must pay off on at least one dense
        # configuration (in practice butterfly counting wins by >5x and the
        # exponential baselines by >1.2x).
        dense_speedups = [row["speedup"] for row in rows if row["dense"]]
        assert max(dense_speedups) >= 1.2


if __name__ == "__main__":
    from repro.bench.reporting import print_table

    print_table(
        run_baseline_comparison(),
        title="Baseline microbenchmark: set vs bitset adjacency (k=1)",
    )
