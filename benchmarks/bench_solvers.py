"""Solver-objective benchmark (the ISSUE 8 tentpole).

Times the ``maximum`` and ``top-k`` solver objectives against a full
enumeration of the same planted-block graphs, asserting on every row that
the solvers return the *identical* winners the enumeration implies (sort
all maximal k-biplexes by ``(-size, key)`` and take the prefix).  The
planted configurations are left-narrow — a near-complete block spanning
most of the small left side inside a wide, noisy right side — which is
the regime where the incumbent bound bites: once the block is found,
``bound - n_left`` exceeds the background solutions' right-side sizes and
the dynamic θ/core prunes cut their subtrees instead of merely
suppressing their reports.

The full-size run additionally asserts the ISSUE 8 acceptance target: a
wall-clock speedup of at least 1.5x over full enumeration for the
``maximum`` objective *and* for ``top-k`` on at least one configuration.
The speedup comes from bound pruning alone (no parallelism), so it is not
gated on core count.

``--emit-json BENCH_solvers.json`` writes a ``repro-bench-enum/1``
snapshot (one run per graph config; the per-objective entries sit in the
``preps`` slot) consumable by ``python -m repro.bench.compare``, which CI
wires against the previous run's cached snapshot.

Runnable standalone (``python benchmarks/bench_solvers.py``) or via
pytest-benchmark.  Set ``REPRO_BENCH_TINY=1`` for smoke-test sizes (used
by CI; the speedup target is skipped — tiny graphs finish in microseconds
either way).
"""

from __future__ import annotations

import json
import os
import sys
import time

if __name__ == "__main__":  # standalone run: mirror conftest's path setup
    _SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    if _SRC not in sys.path:
        sys.path.insert(0, _SRC)

from repro.core import ITraversal
from repro.graph import planted_biplex_graph

TINY = bool(os.environ.get("REPRO_BENCH_TINY"))
SPEEDUP_TARGET = 1.5
TOP_N = 5

#: (n_left, n_right, block_left, block_right, k, background_edges, seed) —
#: left-narrow planted blocks, the bound-pruning regime (see the module
#: docstring).  Calibration on these seeds: maximum-mode speedups of
#: roughly 7x / 400x / 2000x and a top-k speedup of ~5x on the first
#: config, so the 1.5x target separates working subtree pruning from
#: report-only suppression with a wide margin.
SOLVER_BENCH_CONFIGS = (
    (10, 24, 9, 10, 1, 60, 3),
    (12, 22, 10, 9, 1, 55, 2),
    (8, 28, 8, 12, 1, 70, 5),
)
TINY_SOLVER_CONFIGS = ((6, 12, 5, 6, 1, 20, 3),)


def _ranked(solutions):
    """Canonical solver order: size descending, key ascending."""
    return sorted(solutions, key=lambda s: (-s.size, s.key()))


def run_solver_comparison(configs=None):
    """One row per graph config: enumeration vs maximum vs top-k."""
    if configs is None:
        configs = TINY_SOLVER_CONFIGS if TINY else SOLVER_BENCH_CONFIGS
    rows = []
    for n_left, n_right, block_left, block_right, k, background, seed in configs:
        graph = planted_biplex_graph(
            n_left,
            n_right,
            block_left,
            block_right,
            k,
            background_edges=background,
            seed=seed,
        )
        label = f"{n_left}x{n_right} b{block_left}x{block_right} k={k} bg={background}"

        full = ITraversal(graph, k)
        start = time.perf_counter()
        all_solutions = list(full.enumerate())
        full_seconds = time.perf_counter() - start
        expected = [(s.size, s.key()) for s in _ranked(all_solutions)]
        assert len(expected) >= TOP_N, f"{label}: too few solutions to rank"

        solver = ITraversal(graph, k, mode="maximum")
        start = time.perf_counter()
        winner = [(s.size, s.key()) for s in solver.enumerate()]
        maximum_seconds = time.perf_counter() - start
        assert winner == expected[:1], (
            f"maximum objective disagrees with the enumeration winner on {label}"
        )
        assert solver.stats.best_size == expected[0][0]
        assert solver.stats.num_pruned_by_bound > 0, (
            f"bound pruning never fired in maximum mode on {label}"
        )

        topk = ITraversal(graph, k, mode="top-k", top=TOP_N)
        start = time.perf_counter()
        ranked = [(s.size, s.key()) for s in topk.enumerate()]
        topk_seconds = time.perf_counter() - start
        assert ranked == expected[:TOP_N], (
            f"top-{TOP_N} objective disagrees with the enumeration ranking on {label}"
        )

        rows.append(
            {
                "config": label,
                "num_solutions": len(all_solutions),
                "best_size": expected[0][0],
                "enumerate_seconds": full_seconds,
                "maximum_seconds": maximum_seconds,
                "topk_seconds": topk_seconds,
                "maximum_speedup": (
                    full_seconds / maximum_seconds if maximum_seconds else float("inf")
                ),
                "topk_speedup": (
                    full_seconds / topk_seconds if topk_seconds else float("inf")
                ),
                "pruned_by_bound": solver.stats.num_pruned_by_bound,
            }
        )
    return rows


def _assert_speedup_target(rows):
    """The ISSUE 8 acceptance target, checked on the full-size run."""
    maximum_speedups = [row["maximum_speedup"] for row in rows]
    topk_speedups = [row["topk_speedup"] for row in rows]
    assert max(maximum_speedups) >= SPEEDUP_TARGET, (
        f"maximum objective must reach >= {SPEEDUP_TARGET}x over full "
        f"enumeration on at least one planted configuration, got "
        f"{maximum_speedups}"
    )
    assert max(topk_speedups) >= SPEEDUP_TARGET, (
        f"top-{TOP_N} objective must reach >= {SPEEDUP_TARGET}x over full "
        f"enumeration on at least one planted configuration, got "
        f"{topk_speedups}"
    )


def solver_snapshot(rows):
    """``repro-bench-enum/1`` snapshot; objectives fill the preps slot."""
    runs = []
    for row in rows:
        runs.append(
            {
                "config": row["config"],
                "preps": {
                    "enumerate": {
                        "seconds": row["enumerate_seconds"],
                        "num_solutions": row["num_solutions"],
                        "truncated": False,
                    },
                    "maximum": {
                        "seconds": row["maximum_seconds"],
                        "num_solutions": 1,
                        "truncated": False,
                    },
                    f"top-{TOP_N}": {
                        "seconds": row["topk_seconds"],
                        "num_solutions": TOP_N,
                        "truncated": False,
                    },
                },
            }
        )
    return {"schema": "repro-bench-enum/1", "runs": runs}


def test_solver_objectives(benchmark):
    from conftest import run_once

    from repro.bench.reporting import print_table

    rows = run_once(benchmark, run_solver_comparison)
    print()
    print_table(rows, title="Solver objectives: full enumeration vs maximum/top-k")
    assert all(row["num_solutions"] > 0 for row in rows)
    if not TINY:
        _assert_speedup_target(rows)


if __name__ == "__main__":
    import argparse

    from repro.bench.reporting import print_table

    parser = argparse.ArgumentParser(
        description="benchmark the solver objectives against full enumeration"
    )
    parser.add_argument(
        "--emit-json",
        metavar="FILE",
        default=None,
        help="write a repro-bench-enum/1 snapshot to FILE ('-' for stdout)",
    )
    args = parser.parse_args()
    table = run_solver_comparison()
    print_table(table, title="Solver objectives: full enumeration vs maximum/top-k")
    if TINY:
        print("smoke mode: winner equality checked, speedup target skipped")
    else:
        _assert_speedup_target(table)
    if args.emit_json:
        payload = json.dumps(solver_snapshot(table), indent=2, sort_keys=True)
        if args.emit_json == "-":
            print(payload)
        else:
            with open(args.emit_json, "w", encoding="utf-8") as handle:
                handle.write(payload + "\n")
            print(f"wrote {args.emit_json}")
