"""Figure 9(b) — scalability on synthetic ER graphs (varying edge density).

Expected shape (paper): iTraversal wins by 1-5 orders of magnitude, with the
speed-up narrowing as the graph gets denser.
"""

from conftest import run_once

from repro.bench.experiments import experiment_fig9b
from repro.bench.reporting import print_table


def test_fig9b_vary_edge_density(benchmark):
    rows = run_once(
        benchmark,
        lambda: experiment_fig9b(
            edge_density_values=(0.5, 1.0, 2.0, 4.0),
            num_vertices=200,
            max_results=100,
            time_limit=6.0,
        ),
    )
    print()
    print_table(rows, title="Figure 9(b): ER graphs, varying edge density (200 vertices)")
    assert [row["edge_density"] for row in rows] == [0.5, 1.0, 2.0, 4.0]
