"""Shared configuration for the benchmark suite.

Every module under ``benchmarks/`` regenerates one table or figure of the
paper (see DESIGN.md's per-experiment index).  The modules use
pytest-benchmark for the timing harness and print the corresponding
paper-style text table, so running

    pytest benchmarks/ --benchmark-only -s

produces both machine-readable timings and the rows/series the paper reports.
Workloads are scaled for pure-Python execution; set ``REPRO_BENCH_SCALE`` to
grow them.
"""

from __future__ import annotations

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)


def run_once(benchmark, function):
    """Run ``function`` exactly once under pytest-benchmark and return its result.

    The experiment drivers already perform internal repetition / sweeps, so a
    single round keeps the suite's total runtime manageable while still
    recording a wall-clock figure per experiment.
    """
    return benchmark.pedantic(function, rounds=1, iterations=1, warmup_rounds=0)
