"""Table 1 — dataset statistics of the registry stand-ins vs the paper's originals."""

from conftest import run_once

from repro.bench.experiments import experiment_table1
from repro.bench.reporting import print_table


def test_table1_dataset_statistics(benchmark):
    rows = run_once(benchmark, experiment_table1)
    print()
    print_table(rows, title="Table 1: datasets (stand-in vs paper)")
    assert len(rows) == 10
