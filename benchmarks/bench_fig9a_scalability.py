"""Figure 9(a) — scalability on synthetic ER graphs (varying the number of vertices).

Expected shape (paper): iTraversal handles every size; bTraversal's running
time explodes and hits INF on the larger graphs; the gap widens with size.
"""

from conftest import run_once

from repro.bench.experiments import experiment_fig9a
from repro.bench.reporting import print_table


def test_fig9a_vary_num_vertices(benchmark):
    rows = run_once(
        benchmark,
        lambda: experiment_fig9a(
            num_vertices_values=(100, 200, 400, 800),
            edge_density=2.0,
            max_results=100,
            time_limit=6.0,
        ),
    )
    print()
    print_table(rows, title="Figure 9(a): ER graphs, varying #vertices (density 2)")
    assert [row["num_vertices"] for row in rows] == [100, 200, 400, 800]
