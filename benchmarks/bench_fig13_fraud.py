"""Figure 13 — fraud-detection case study under a random camouflage attack.

Expected shape (paper): 1-biplex achieves the best F1 (high precision *and*
recall at the right θ_R); biclique recall collapses as θ_R grows; the
(α, β)-core has high recall but low precision; δ-QBs sit in between.
"""

from conftest import run_once

from repro.analysis.fraud import FraudStudyConfig
from repro.bench.experiments import experiment_fig13
from repro.bench.reporting import print_table

# The fraud block density is chosen so that, at 1/60 of the paper's scale,
# complete bicliques of the probed sizes are rare while 1-biplexes (one
# tolerated miss per vertex) remain plentiful — the same regime the paper's
# 5%-dense 2000x2000 block is in at its much larger scale.
CONFIG = FraudStudyConfig(
    n_real_users=200,
    n_real_products=80,
    n_real_reviews=800,
    n_fake_users=30,
    n_fake_products=30,
    fake_block_density=0.3,
    theta_users=4,
    theta_products_values=(4, 5, 6),
    k_values=(1, 2),
    delta_values=(0.1, 0.2, 0.3),
    max_structures=1200,
    time_limit_per_structure=10.0,
    seed=2022,
)


def test_fig13_fraud_detection(benchmark):
    rows = run_once(benchmark, lambda: experiment_fig13(CONFIG))
    print()
    print_table(
        rows,
        columns=["structure", "theta_R", "precision", "recall", "f1", "num_structures"],
        title="Figure 13: fraud detection precision/recall/F1 (camouflage attack)",
    )
    structures = {row["structure"] for row in rows}
    assert "1-biplex" in structures and "biclique" in structures
    # The headline claim: some 1-biplex setting beats every biclique setting on F1.
    best = {}
    for row in rows:
        if row["f1"] is not None:
            best[row["structure"]] = max(best.get(row["structure"], 0.0), row["f1"])
    assert best.get("1-biplex", 0.0) >= best.get("biclique", 0.0)
