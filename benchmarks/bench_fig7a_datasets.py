"""Figure 7(a) — running time of iMB, FaPlexen, bTraversal and iTraversal across datasets (k=1).

Expected shape (paper): iTraversal finishes everywhere and is fastest; iMB and
FaPlexen hit INF/OUT on the larger datasets; bTraversal sits in between.
"""

from conftest import run_once

from repro.bench.experiments import experiment_fig7a
from repro.bench.reporting import print_table

# The full ten-dataset sweep is long for a default benchmark run; the first
# six datasets already show the separation.  Pass REPRO_BENCH_SCALE>1 and edit
# the list for a fuller run.
DATASETS = ("divorce", "cfat", "crime", "opsahl", "marvel", "writer")


def test_fig7a_running_time_across_datasets(benchmark):
    rows = run_once(
        benchmark,
        lambda: experiment_fig7a(datasets=DATASETS, k=1, max_results=100, time_limit=5.0),
    )
    print()
    print_table(rows, title="Figure 7(a): time to first 100 MBPs (seconds; INF/OUT = limit hit)")
    assert len(rows) == len(DATASETS)
    assert all("iTraversal" in row for row in rows)
