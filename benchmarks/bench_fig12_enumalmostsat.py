"""Figure 12 — comparison of the EnumAlmostSat implementations.

Expected shape (paper): running time grows with k for every variant;
L2.0+R2.0 is the fastest refined combination and beats the Inflation baseline
by up to three orders of magnitude.
"""

from conftest import run_once

from repro.bench.experiments import experiment_fig12
from repro.bench.reporting import print_table


def test_fig12_enumalmostsat_writer(benchmark):
    rows = run_once(
        benchmark,
        lambda: experiment_fig12(dataset="writer", k_values=(1, 2), num_trials=40, time_limit=10.0),
    )
    print()
    print_table(
        rows,
        title="Figure 12(a): EnumAlmostSat variants, avg seconds per call (Writer stand-in)",
    )
    assert rows


def test_fig12_enumalmostsat_dblp(benchmark):
    rows = run_once(
        benchmark,
        lambda: experiment_fig12(dataset="dblp", k_values=(1,), num_trials=25, time_limit=10.0),
    )
    print()
    print_table(
        rows,
        title="Figure 12(b): EnumAlmostSat variants, avg seconds per call (DBLP stand-in)",
    )
    assert rows
