"""Figure 10 — enumerating large MBPs (both sides ≥ θ) with (θ−k)-core preprocessing.

Expected shape (paper): running time decreases as θ grows (the core shrinks
and there are fewer large MBPs); iTraversal beats iMB by orders of magnitude.
"""

from conftest import run_once

from repro.bench.experiments import experiment_fig10
from repro.bench.reporting import print_table


def test_fig10_large_mbps_writer(benchmark):
    rows = run_once(
        benchmark,
        lambda: experiment_fig10(dataset="writer", k=1, theta_values=(5, 6, 7, 8), time_limit=8.0),
    )
    print()
    print_table(rows, title="Figure 10(a): large MBPs, varying theta (Writer stand-in, k=1)")
    assert [row["theta"] for row in rows] == [5, 6, 7, 8]


def test_fig10_large_mbps_dblp(benchmark):
    rows = run_once(
        benchmark,
        lambda: experiment_fig10(dataset="dblp", k=1, theta_values=(6, 7, 8), time_limit=8.0),
    )
    print()
    print_table(rows, title="Figure 10(b): large MBPs, varying theta (DBLP stand-in, k=1)")
    assert [row["theta"] for row in rows] == [6, 7, 8]
