"""Backend microbenchmark — the full set / bitset / packed adjacency matrix.

Exercises the third adjacency substrate (``packed``: contiguous numpy
``uint64`` bit-matrices, see :mod:`repro.graph.packed`) against the two
Python-native backends on three component families:

* **enumeration** — iTraversal end-to-end; the packed substrate rides the
  same masked hot paths as ``bitset``, so the check here is solution-set
  *equality in order*, not a speedup;
* **butterfly counting** — where the packed rows replace the per-vertex
  Python-int loops with blocked whole-row ``np.bitwise_and`` + popcount
  broadcasts (the Wang et al., VLDB 2019 workload);
* **(α, β)-core peeling** — round-based, whole-side vectorized peeling
  against the packed removal rows.

Every component asserts identical outputs across all three backends; the
report shows per-backend wall-clock plus the packed-vs-bitset speedup,
which must be ≥ 1 on the butterfly and core families (their batch paths are
the point of this backend).

Runnable standalone (``python benchmarks/bench_backend_packed.py``) or via
pytest-benchmark like the rest of the suite.  Set ``REPRO_BENCH_TINY=1``
for smoke-test sizes (used by CI).  Skips cleanly when numpy is absent.
"""

from __future__ import annotations

import os
import sys
import time

if __name__ == "__main__":  # standalone run: mirror conftest's path setup
    _SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    if _SRC not in sys.path:
        sys.path.insert(0, _SRC)

from repro.core import ITraversal
from repro.graph import as_backend, erdos_renyi_bipartite, packed_available
from repro.graph.butterfly import count_butterflies
from repro.graph.cores import alpha_beta_core

TINY = bool(os.environ.get("REPRO_BENCH_TINY"))
BACKENDS_COMPARED = ("set", "bitset", "packed")

# (component, n_left, n_right, edge_density) — density is |E| / (|L| + |R|).
PACKED_BENCH_CONFIGS = (
    ("enumeration", 40, 40, 2.0),
    ("enumeration", 50, 50, 3.0),
    ("butterfly", 200, 200, 6.0),
    ("butterfly", 400, 400, 10.0),
    ("core", 600, 600, 5.0),
    ("core", 1200, 1200, 4.0),
)
TINY_PACKED_CONFIGS = (
    ("enumeration", 10, 10, 1.5),
    ("butterfly", 30, 30, 3.0),
    ("core", 60, 60, 2.0),
)
K = 1
MAX_RESULTS = 300
#: Timed repetitions per (component, backend); the best run is reported so
#: scheduler noise cannot manufacture or hide a speedup.
REPEATS = 3


def _component_runner(component: str, graph, backend: str):
    """A zero-argument callable running ``component``, returning a comparison key."""
    if component == "enumeration":
        # The backend is passed explicitly: the graph already is that
        # backend, so the engine's as_backend is a no-op and the timed
        # region contains no conversion (the default would re-convert the
        # plain-set graph to bitset in-window).
        return lambda: [
            s.key()
            for s in ITraversal(
                graph, K, max_results=MAX_RESULTS, backend=backend
            ).enumerate()
        ]
    if component == "butterfly":
        return lambda: count_butterflies(graph)
    if component == "core":
        # Bound at the average degree (2 · density for equal sides) so the
        # peel actually cascades through a large fraction of the graph —
        # the regime the whole-side vectorized rounds are built for.
        bound = max(2, int(2 * graph.num_edges / max(1, graph.num_vertices)))
        return lambda: alpha_beta_core(graph, bound, bound)
    raise ValueError(f"unknown benchmark component {component!r}")


def run_packed_comparison(configs=None, seed: int = 3):
    """One row per (component, graph config): wall-clock per backend + speedups."""
    if not packed_available():
        raise RuntimeError(
            "the packed-backend benchmark needs numpy >= 2.0; "
            "run bench_backend_bitset.py / bench_baselines_bitset.py instead"
        )
    if configs is None:
        configs = TINY_PACKED_CONFIGS if TINY else PACKED_BENCH_CONFIGS
    rows = []
    for component, n_left, n_right, density in configs:
        graph = erdos_renyi_bipartite(n_left, n_right, edge_density=density, seed=seed)
        results = {}
        seconds = {}
        for backend in BACKENDS_COMPARED:
            # Conversion happens outside the timed region: the benchmark
            # compares steady-state substrate performance, not build cost.
            run = _component_runner(component, as_backend(graph, backend), backend)
            best = float("inf")
            for _ in range(REPEATS):
                start = time.perf_counter()
                results[backend] = run()
                best = min(best, time.perf_counter() - start)
            seconds[backend] = best
        for backend in ("bitset", "packed"):
            assert results[backend] == results["set"], (
                f"{component}: the {backend} backend must produce the "
                "identical solution set"
            )
        rows.append(
            {
                "component": component,
                "n_left": n_left,
                "n_right": n_right,
                "edge_density": density,
                "set_seconds": seconds["set"],
                "bitset_seconds": seconds["bitset"],
                "packed_seconds": seconds["packed"],
                "packed_vs_set": (
                    seconds["set"] / seconds["packed"] if seconds["packed"] else float("inf")
                ),
                "packed_vs_bitset": (
                    seconds["bitset"] / seconds["packed"]
                    if seconds["packed"]
                    else float("inf")
                ),
            }
        )
    return rows


def _assert_batch_components_win(rows):
    """The packed batch paths must be at least at bitset parity where they apply."""
    for family in ("butterfly", "core"):
        family_speedups = [
            row["packed_vs_bitset"] for row in rows if row["component"] == family
        ]
        assert max(family_speedups) >= 1.0, (
            f"packed must be >= bitset on at least one {family} configuration, "
            f"got speedups {family_speedups}"
        )


def test_backend_packed_speedup(benchmark):
    import pytest
    from conftest import run_once

    from repro.bench.reporting import print_table

    if not packed_available():
        pytest.skip("packed backend requires numpy >= 2.0")
    rows = run_once(benchmark, run_packed_comparison)
    print()
    print_table(rows, title="Backend microbenchmark: set vs bitset vs packed (k=1)")
    assert {row["component"] for row in rows} >= {"enumeration", "butterfly", "core"}
    if not TINY:
        _assert_batch_components_win(rows)


if __name__ == "__main__":
    from repro.bench.reporting import print_table

    table = run_packed_comparison()
    print_table(table, title="Backend microbenchmark: set vs bitset vs packed (k=1)")
    if not TINY:
        _assert_batch_components_win(table)
