"""Tests for the baseline algorithms: brute force, iMB, k-plex, inflation, biclique, δ-QB."""

import time

import pytest

from repro.baselines import (
    IMB,
    count_k_biplexes_bruteforce,
    enumerate_maximal_bicliques,
    enumerate_maximal_kplexes,
    enumerate_maximal_quasi_bicliques,
    enumerate_mbps_bruteforce,
    enumerate_mbps_imb,
    enumerate_mbps_inflation,
    find_quasi_bicliques_greedy,
    is_biclique,
    is_kplex,
    is_maximal_kplex,
    is_quasi_biclique,
    maximum_biclique_greedy,
    quasi_biclique_seed_k,
)
from repro.baselines.faplexen import FaPlexenPipeline
from repro.core import is_maximal_k_biplex
from repro.graph import BipartiteGraph, Graph, erdos_renyi_bipartite, paper_example_graph


class TestBruteforce:
    def test_rejects_invalid_k(self, example_graph):
        with pytest.raises(ValueError):
            enumerate_mbps_bruteforce(example_graph, 0)

    def test_all_outputs_are_maximal(self, example_graph):
        for solution in enumerate_mbps_bruteforce(example_graph, 1):
            assert is_maximal_k_biplex(example_graph, solution.left, solution.right, 1)

    def test_no_duplicates(self, example_graph):
        solutions = enumerate_mbps_bruteforce(example_graph, 1)
        assert len(solutions) == len(set(solutions))

    def test_count_biplexes_monotone_in_k(self, tiny_graph):
        assert count_k_biplexes_bruteforce(tiny_graph, 1) <= count_k_biplexes_bruteforce(
            tiny_graph, 2
        )

    def test_complete_graph_single_solution(self, complete_graph):
        solutions = enumerate_mbps_bruteforce(complete_graph, 1)
        assert len(solutions) == 1
        assert solutions[0].size == 6


class TestIMB:
    def test_matches_bruteforce(self, example_graph):
        for k in (1, 2):
            assert set(enumerate_mbps_imb(example_graph, k)) == set(
                enumerate_mbps_bruteforce(example_graph, k)
            )

    @pytest.mark.parametrize("seed", range(5))
    def test_matches_bruteforce_random(self, seed):
        graph = erdos_renyi_bipartite(4, 4, num_edges=6 + seed, seed=seed)
        assert set(enumerate_mbps_imb(graph, 1)) == set(enumerate_mbps_bruteforce(graph, 1))

    def test_size_constraints(self, example_graph):
        all_solutions = enumerate_mbps_bruteforce(example_graph, 1)
        constrained = enumerate_mbps_imb(example_graph, 1, theta_left=2, theta_right=3)
        expected = {
            s for s in all_solutions if len(s.left) >= 2 and len(s.right) >= 3
        }
        assert set(constrained) == expected

    def test_max_results(self, example_graph):
        assert len(enumerate_mbps_imb(example_graph, 1, max_results=2)) == 2

    def test_truncated_flag_on_time_limit(self, example_graph):
        enumerator = IMB(example_graph, 1, time_limit=0.0)
        enumerator.enumerate()
        assert enumerator.truncated

    def test_reenumeration_restarts_the_clock(self, example_graph):
        # A second enumerate() on the same object must not inherit a stale
        # _start: simulate the stale state an aged object would carry and
        # check the fresh run still completes without tripping the limit.
        enumerator = IMB(example_graph, 1, time_limit=60.0)
        first = enumerator.enumerate()
        enumerator._start = time.perf_counter() - 10_000.0
        second = enumerator.enumerate()
        assert not enumerator.truncated
        assert set(second) == set(first)
        assert time.perf_counter() - enumerator._start < 60.0

    def test_k_zero_yields_bicliques(self, example_graph):
        for solution in enumerate_mbps_imb(example_graph, 0, theta_left=1, theta_right=1):
            assert is_biclique(example_graph, solution.left, solution.right)

    def test_negative_k_rejected(self, example_graph):
        with pytest.raises(ValueError):
            IMB(example_graph, -1)

    def test_empty_graph(self):
        assert enumerate_mbps_imb(BipartiteGraph(0, 0), 1) == []


class TestKPlex:
    def test_rejects_invalid_k(self):
        with pytest.raises(ValueError):
            enumerate_maximal_kplexes(Graph(3), 0)

    def test_triangle_one_plex_is_the_clique(self):
        graph = Graph(3, edges=[(0, 1), (1, 2), (0, 2)])
        plexes = enumerate_maximal_kplexes(graph, 1)
        assert plexes == [{0, 1, 2}]

    def test_path_two_plexes(self):
        graph = Graph(3, edges=[(0, 1), (1, 2)])
        plexes = {frozenset(p) for p in enumerate_maximal_kplexes(graph, 1)}
        assert plexes == {frozenset({0, 1}), frozenset({1, 2})}
        two_plexes = {frozenset(p) for p in enumerate_maximal_kplexes(graph, 2)}
        assert frozenset({0, 1, 2}) in two_plexes

    def test_all_outputs_are_maximal_kplexes(self):
        graph = Graph(5, edges=[(0, 1), (1, 2), (2, 3), (3, 4), (0, 2), (1, 3)])
        for k in (1, 2):
            for plex in enumerate_maximal_kplexes(graph, k):
                assert is_kplex(graph, plex, k)
                assert is_maximal_kplex(graph, plex, k)

    def test_must_contain(self):
        graph = Graph(4, edges=[(0, 1), (1, 2), (2, 3)])
        for plex in enumerate_maximal_kplexes(graph, 2, must_contain=0):
            assert 0 in plex
            assert is_maximal_kplex(graph, plex, 2)

    def test_empty_graph(self):
        assert enumerate_maximal_kplexes(Graph(0), 1) == []

    def test_max_results(self):
        graph = Graph(4, edges=[(0, 1), (2, 3)])
        assert len(enumerate_maximal_kplexes(graph, 1, max_results=1)) == 1

    def test_reenumeration_restarts_the_clock(self):
        from repro.baselines.kplex import _KPlexEnumerator

        graph = Graph(5, edges=[(0, 1), (1, 2), (2, 3), (3, 4), (0, 2)])
        enumerator = _KPlexEnumerator(graph, 1, time_limit=60.0)
        first = enumerator.run()
        # Simulate the stale _start a long-lived object would carry into a
        # second run; the fresh run must reset it rather than inherit it.
        enumerator._start = time.perf_counter() - 10_000.0
        second = enumerator.run()
        assert not enumerator.truncated
        assert {frozenset(p) for p in second} == {frozenset(p) for p in first}
        assert time.perf_counter() - enumerator._start < 60.0


class TestInflationPipeline:
    def test_matches_bruteforce(self, example_graph):
        for k in (1, 2):
            assert set(enumerate_mbps_inflation(example_graph, k)) == set(
                enumerate_mbps_bruteforce(example_graph, k)
            )

    def test_memory_budget_reports_out(self, example_graph):
        pipeline = FaPlexenPipeline(example_graph, 1, memory_edge_budget=1)
        assert pipeline.enumerate() == []
        assert pipeline.stats.truncated
        assert pipeline.stats.inflated_edges > 1

    def test_stats_totals(self, example_graph):
        pipeline = FaPlexenPipeline(example_graph, 1)
        pipeline.enumerate()
        assert pipeline.stats.total_seconds >= 0
        assert pipeline.stats.inflated_edges > example_graph.num_edges

    def test_max_results_cap_reports_truncated(self, example_graph):
        # Regression: a run stopped by the result cap used to masquerade as
        # a complete enumeration (only time-based truncation was reported).
        pipeline = FaPlexenPipeline(example_graph, 1, max_results=2)
        solutions = pipeline.enumerate()
        assert len(solutions) == 2
        assert pipeline.stats.truncated

    def test_complete_run_not_truncated(self, example_graph):
        pipeline = FaPlexenPipeline(example_graph, 1)
        pipeline.enumerate()
        assert not pipeline.stats.truncated

    def test_time_limit_reports_truncated(self, example_graph):
        pipeline = FaPlexenPipeline(example_graph, 1, time_limit=0.0)
        pipeline.enumerate()
        assert pipeline.stats.truncated

    def test_rejects_unknown_backend(self, example_graph):
        with pytest.raises(ValueError):
            FaPlexenPipeline(example_graph, 1, backend="numpy")


class TestBaselineBackendEquivalence:
    """Every converted baseline must enumerate identical sets on both backends."""

    @pytest.mark.parametrize("seed", range(3))
    @pytest.mark.parametrize("k", [1, 2])
    def test_imb_backends_agree(self, seed, k):
        graph = erdos_renyi_bipartite(5, 5, num_edges=10 + seed * 4, seed=seed)
        assert set(enumerate_mbps_imb(graph, k, backend="set")) == set(
            enumerate_mbps_imb(graph, k, backend="bitset")
        )

    @pytest.mark.parametrize("seed", range(3))
    def test_inflation_backends_agree(self, seed):
        graph = erdos_renyi_bipartite(4, 4, num_edges=8 + seed * 2, seed=seed)
        assert set(enumerate_mbps_inflation(graph, 1, backend="set")) == set(
            enumerate_mbps_inflation(graph, 1, backend="bitset")
        )

    @pytest.mark.parametrize("k", [1, 2])
    def test_kplex_masked_graph_agrees(self, k):
        import random

        rng = random.Random(11)
        n = 7
        edges = [(u, v) for u in range(n) for v in range(u + 1, n) if rng.random() < 0.5]
        graph = Graph(n, edges)
        expected = sorted(map(frozenset, enumerate_maximal_kplexes(graph, k)))
        masked = sorted(map(frozenset, enumerate_maximal_kplexes(graph.to_bitset(), k)))
        assert masked == expected

    def test_quasi_biclique_backends_agree(self, example_graph):
        bitset = example_graph.to_bitset()
        for delta in (0.0, 0.3, 0.6):
            assert set(
                enumerate_maximal_quasi_bicliques(example_graph, delta, 2, 2, backend="set")
            ) == set(enumerate_maximal_quasi_bicliques(bitset, delta, 2, 2))
        assert set(find_quasi_bicliques_greedy(example_graph, 0.25, 2, 2, backend="set")) == set(
            find_quasi_bicliques_greedy(example_graph, 0.25, 2, 2, backend="bitset")
        )

    def test_is_quasi_biclique_backends_agree(self, example_graph):
        import random

        bitset = example_graph.to_bitset()
        rng = random.Random(7)
        for _ in range(20):
            left = {v for v in example_graph.left_vertices() if rng.random() < 0.5}
            right = {u for u in example_graph.right_vertices() if rng.random() < 0.5}
            for delta in (0.0, 0.25, 0.5, 1.0):
                assert is_quasi_biclique(bitset, left, right, delta) == is_quasi_biclique(
                    example_graph, left, right, delta
                )


class TestBiclique:
    def test_all_outputs_are_bicliques(self, example_graph):
        for biclique in enumerate_maximal_bicliques(example_graph):
            assert is_biclique(example_graph, biclique.left, biclique.right)

    def test_complete_graph_biclique(self, complete_graph):
        bicliques = enumerate_maximal_bicliques(complete_graph, theta_left=3, theta_right=3)
        assert len(bicliques) == 1
        assert bicliques[0].size == 6

    def test_size_thresholds_respected(self, example_graph):
        for biclique in enumerate_maximal_bicliques(example_graph, theta_left=2, theta_right=2):
            assert len(biclique.left) >= 2 and len(biclique.right) >= 2

    def test_maximum_biclique_greedy(self, example_graph):
        best = maximum_biclique_greedy(example_graph, theta_left=1, theta_right=1)
        assert best is not None
        assert is_biclique(example_graph, best.left, best.right)

    def test_maximum_biclique_none_when_too_strict(self, empty_graph):
        assert maximum_biclique_greedy(empty_graph, theta_left=2, theta_right=2) is None


class TestQuasiBiclique:
    def test_predicate_biclique_is_qb_for_any_delta(self, complete_graph):
        assert is_quasi_biclique(complete_graph, [0, 1, 2], [0, 1, 2], 0.0)

    def test_predicate_counts_relative_budget(self, example_graph):
        # v3 misses 3 of the 5 right vertices (needs delta >= 3/5) and each
        # missed right vertex misses the single left vertex (needs delta >= 1).
        assert not is_quasi_biclique(example_graph, [3], [0, 1, 2, 3, 4], 0.5)
        assert is_quasi_biclique(example_graph, [3], [0, 1, 2, 3, 4], 1.0)
        # v0 is adjacent to u0, u1 and u3, so this pair is a 0-QB (a biclique).
        assert is_quasi_biclique(example_graph, [0], [0, 1, 3], 0.0)

    def test_exact_enumeration_outputs_are_qbs(self, example_graph):
        for qb in enumerate_maximal_quasi_bicliques(example_graph, 0.3, 2, 2):
            assert is_quasi_biclique(example_graph, qb.left, qb.right, 0.3)
            assert len(qb.left) >= 2 and len(qb.right) >= 2

    def test_exact_enumeration_maximality(self, example_graph):
        results = enumerate_maximal_quasi_bicliques(example_graph, 0.3, 2, 2)
        for first in results:
            for second in results:
                if first != second:
                    assert not second.contains(first)

    def test_greedy_finder_outputs_are_qbs(self, example_graph):
        structures = find_quasi_bicliques_greedy(example_graph, 0.25, 2, 2)
        for structure in structures:
            assert is_quasi_biclique(example_graph, structure.left, structure.right, 0.25)
            assert len(structure.left) >= 2 and len(structure.right) >= 2

    def test_greedy_finder_with_explicit_seeds(self, example_graph):
        from repro.core import Biplex

        seeds = [Biplex.of([4], [0, 1, 2, 3, 4])]
        structures = find_quasi_bicliques_greedy(example_graph, 0.4, 1, 3, seeds=seeds)
        assert structures, "the seed itself satisfies the constraints"

    def test_seed_k_formula(self):
        # k = max(1, floor(delta * min(theta_L, theta_R))): the largest k for
        # which every k-biplex meeting the thresholds is guaranteed a δ-QB.
        assert quasi_biclique_seed_k(0.25, 4, 4) == 1
        assert quasi_biclique_seed_k(0.5, 4, 8) == 2    # min side governs
        assert quasi_biclique_seed_k(0.5, 8, 4) == 2    # symmetric in the thetas
        assert quasi_biclique_seed_k(0.3, 4, 4) == 1    # floor, not ceil
        assert quasi_biclique_seed_k(0.1, 2, 2) == 1    # clamped to >= 1
        assert quasi_biclique_seed_k(0.75, 8, 8) == 6

    @pytest.mark.parametrize("delta,theta_left,theta_right", [(0.5, 4, 8), (0.75, 4, 4)])
    def test_unclamped_seed_k_biplexes_are_qbs(self, delta, theta_left, theta_right):
        # Whenever the clamp does not kick in, *every* k_seed-biplex meeting
        # the thresholds must already satisfy the δ-QB budgets (which is the
        # guarantee the seeding is derived from).
        k_seed = quasi_biclique_seed_k(delta, theta_left, theta_right)
        assert k_seed <= delta * min(theta_left, theta_right)
        graph = erdos_renyi_bipartite(10, 10, num_edges=70, seed=9)
        from repro.core import ITraversal

        seeds = ITraversal(
            graph, k_seed, theta_left=theta_left, theta_right=theta_right
        ).enumerate()
        for seed in seeds:
            assert is_quasi_biclique(graph, seed.left, seed.right, delta)
