"""Tests of the query service layer: registry, session table, front door.

The acceptance bar for the hot-graph registry: a second identical query
performs **zero** graph loads and zero prep builds (asserted through the
hit counters) and is measurably faster than the cold run.  Around that:
session TTL/capacity eviction with cursor survival, budget clamps,
result-cache semantics (never cache time-limit truncation), and the
service-cursor envelope surviving a simulated daemon restart.
"""

from __future__ import annotations

import time

import pytest

from repro import paper_example_graph, write_edge_list
from repro.core import ITraversal
from repro.service import (
    Budgets,
    HotGraphRegistry,
    QueryError,
    QueryService,
    ServiceCursorError,
    SessionExpired,
    SessionTable,
)


def paper_query(**overrides):
    graph = paper_example_graph()
    query = {
        "graph": {
            "n_left": graph.n_left,
            "n_right": graph.n_right,
            "edges": [list(edge) for edge in sorted(graph.edges())],
        },
        "k": 1,
    }
    query.update(overrides)
    return query


def expected_solutions(k=1, **kwargs):
    solutions = ITraversal(paper_example_graph(), k, **kwargs).enumerate()
    return [[sorted(s.left), sorted(s.right)] for s in solutions]


# --------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------- #
class TestHotGraphRegistry:
    def test_second_identical_query_skips_load_and_prep(self):
        service = QueryService()
        service.enumerate(paper_query())
        counters = service.registry.counters()
        assert counters == {
            **counters,
            "graph_loads": 1,
            "graph_hits": 0,
            "plans_built": 1,
            "plan_hits": 0,
        }
        # Pagination (not the result cache) so the registry is exercised.
        service.open_session(paper_query(), page_size=2)
        counters = service.registry.counters()
        assert counters["graph_loads"] == 1
        assert counters["graph_hits"] == 1
        assert counters["plans_built"] == 1
        assert counters["plan_hits"] == 1

    def test_hot_query_is_faster_than_cold(self, tmp_path):
        # A file-backed graph so the cold path includes real I/O + prep.
        path = tmp_path / "graph.txt"
        write_edge_list(paper_example_graph(), path)
        service = QueryService(result_cache_capacity=0)  # isolate the registry
        query = {"graph": {"path": str(path)}, "k": 1}
        start = time.perf_counter()
        cold = service.enumerate(query)
        cold_seconds = time.perf_counter() - start
        start = time.perf_counter()
        hot = service.enumerate(query)
        hot_seconds = time.perf_counter() - start
        assert hot["solutions"] == cold["solutions"]
        assert service.registry.counters()["plan_hits"] == 1
        assert hot_seconds < cold_seconds

    def test_lru_eviction_drops_graph_and_its_plans(self):
        registry = HotGraphRegistry(capacity=1)
        graph = paper_example_graph()
        registry.get_graph(("dataset", "a"), lambda: graph)
        registry.get_plan(("dataset", "a"), graph, 1, "set", "core", 0, 0)
        registry.get_graph(("dataset", "b"), lambda: graph)
        counters = registry.counters()
        assert counters["graph_evictions"] == 1
        assert counters["plan_evictions"] == 1
        assert counters["graphs_resident"] == 1
        assert registry.peek_graph(("dataset", "a")) is None

    def test_distinct_parameterizations_build_distinct_plans(self):
        service = QueryService()
        service.open_session(paper_query(), page_size=1)
        service.open_session(paper_query(k=2), page_size=1)
        counters = service.registry.counters()
        assert counters["graph_loads"] == 1
        assert counters["plans_built"] == 2

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            HotGraphRegistry(capacity=0)


# --------------------------------------------------------------------- #
# Session table
# --------------------------------------------------------------------- #
class TestSessionTable:
    def test_ttl_eviction_with_injectable_clock(self):
        clock = {"now": 0.0}
        table = SessionTable(ttl_seconds=10.0, clock=lambda: clock["now"])
        service = QueryService(sessions=table)
        page = service.open_session(paper_query(), page_size=2)
        session_id = page["session_id"]
        clock["now"] = 5.0
        table.get(session_id)  # touch refreshes the TTL
        clock["now"] = 14.0
        table.get(session_id)  # still alive: last touch was at 5.0
        clock["now"] = 30.0
        with pytest.raises(SessionExpired):
            table.get(session_id)
        assert table.counters()["sessions_expired"] == 1

    def test_capacity_evicts_least_recently_used(self):
        table = SessionTable(capacity=2)
        service = QueryService(sessions=table)
        first = service.open_session(paper_query(), page_size=1)
        second = service.open_session(paper_query(k=2), page_size=1)
        table.get(first["session_id"])  # make `second` the LRU
        service.open_session(paper_query(k=3), page_size=1)
        table.get(first["session_id"])
        with pytest.raises(SessionExpired):
            table.get(second["session_id"])
        assert table.counters()["sessions_evicted"] == 1

    def test_evicted_session_resumes_from_cursor(self):
        clock = {"now": 0.0}
        table = SessionTable(ttl_seconds=1.0, clock=lambda: clock["now"])
        service = QueryService(sessions=table)
        expected = expected_solutions()
        page = service.open_session(paper_query(), page_size=4)
        clock["now"] = 100.0  # the session is long gone...
        follow_up = service.next_page(
            session_id=page["session_id"], cursor=page["cursor"], page_size=1000
        )
        # ...but the cursor carried everything needed to continue exactly.
        assert page["solutions"] + follow_up["solutions"] == expected
        assert follow_up["exhausted"]

    def test_cancel_is_idempotent_and_cursor_survives(self):
        service = QueryService()
        expected = expected_solutions()
        page = service.open_session(paper_query(), page_size=3)
        assert service.cancel(page["session_id"]) is True
        assert service.cancel(page["session_id"]) is False
        resumed = service.next_page(cursor=page["cursor"], page_size=1000)
        assert page["solutions"] + resumed["solutions"] == expected


# --------------------------------------------------------------------- #
# Query front door
# --------------------------------------------------------------------- #
class TestQueryService:
    def test_enumerate_matches_library(self):
        service = QueryService()
        response = service.enumerate(paper_query())
        assert response["solutions"] == expected_solutions()
        assert response["num_solutions"] == 13
        status = response["status"]
        assert status["truncated"] is False
        # The mode follows the environment default (REPRO_PREP in CI legs).
        from repro.prep import resolve_prep

        assert status["prep"]["mode"] == resolve_prep(None)
        assert "num_shards" in status

    def test_result_cache_hit_and_bypass_of_time_truncation(self):
        service = QueryService()
        first = service.enumerate(paper_query())
        second = service.enumerate(paper_query())
        assert first["cached"] is False
        assert second["cached"] is True
        assert second["solutions"] == first["solutions"]
        # max_results truncation is deterministic and cached fine.
        capped = service.enumerate(paper_query(max_results=3))
        assert capped["cached"] is False
        assert service.enumerate(paper_query(max_results=3))["cached"] is True
        # A time-limited run that actually truncates is never cached.
        squeezed = service.enumerate(paper_query(time_limit=1e-9))
        if squeezed["status"]["hit_time_limit"]:
            again = service.enumerate(paper_query(time_limit=1e-9))
            assert again["cached"] is False

    def test_cached_result_is_isolated_from_mutation(self):
        service = QueryService()
        first = service.enumerate(paper_query())
        first["solutions"].clear()
        assert service.enumerate(paper_query())["solutions"] == expected_solutions()

    def test_pagination_matches_enumerate(self):
        service = QueryService()
        expected = expected_solutions()
        page = service.open_session(paper_query(), page_size=5)
        collected = list(page["solutions"])
        while not page["exhausted"]:
            page = service.next_page(session_id=page["session_id"], page_size=5)
            collected.extend(page["solutions"])
        assert collected == expected
        assert page["session_id"] is None  # exhausted sessions are freed

    def test_service_cursor_survives_restart(self):
        """A fresh service (fresh registry, empty tables) resumes the token."""
        old = QueryService()
        expected = expected_solutions()
        page = old.open_session(paper_query(), page_size=6)
        fresh = QueryService()
        resumed = fresh.next_page(cursor=page["cursor"], page_size=1000)
        assert page["solutions"] + resumed["solutions"] == expected
        assert fresh.stats()["cursor_resumes"] == 1

    def test_budget_clamps_ride_existing_limits(self):
        service = QueryService(budgets=Budgets(max_results_cap=4, max_page_size=2))
        response = service.enumerate(paper_query())
        assert response["num_solutions"] == 4
        assert response["status"]["hit_result_limit"] is True
        # Requests under the cap keep their own limit; over it are clamped.
        assert service.enumerate(paper_query(max_results=2))["num_solutions"] == 2
        assert service.enumerate(paper_query(max_results=100))["num_solutions"] == 4
        page = service.open_session(paper_query(), page_size=50)
        assert page["page_size"] == 2  # clamped to max_page_size

    def test_dataset_and_jobs_queries(self):
        service = QueryService()
        query = {"graph": {"dataset": "divorce"}, "k": 1, "theta_left": 5, "theta_right": 5}
        serial = service.enumerate(query)
        parallel = service.enumerate({**query, "jobs": 2})
        assert serial["num_solutions"] > 0
        # The parallel engine emits the canonically *sorted* stream; serial
        # emits DFS pre-order — same solution set, different sequence.
        assert sorted(parallel["solutions"]) == sorted(serial["solutions"])
        assert parallel["status"]["num_shards"] > 0

    @pytest.mark.parametrize(
        "broken, match",
        [
            ({"k": 1}, "graph"),
            ({"graph": {"dataset": "divorce"}}, "k must be"),
            ({"graph": {"dataset": "nope"}, "k": 1}, "unknown dataset"),
            ({"graph": {"dataset": "divorce"}, "k": 1, "variant": "x"}, "variant"),
            ({"graph": {"dataset": "divorce"}, "k": 1, "backend": "x"}, "backend"),
            ({"graph": {"dataset": "divorce"}, "k": 1, "prep": "x"}, "prep mode"),
            ({"graph": {"dataset": "divorce"}, "k": 1, "max_results": 0}, "max_results"),
            ({"graph": {"dataset": "divorce"}, "k": 1, "bogus": 1}, "unknown query fields"),
            ({"graph": {"path": "x", "dataset": "y"}, "k": 1}, "exactly one"),
        ],
    )
    def test_query_validation(self, broken, match):
        with pytest.raises(QueryError, match=match):
            QueryService().normalize(broken)

    def test_malformed_service_cursor_rejected(self):
        service = QueryService()
        with pytest.raises(ServiceCursorError):
            service.next_page(cursor="garbage")
        with pytest.raises(QueryError):
            service.next_page()  # neither id nor cursor

    def test_stats_document_merges_all_layers(self):
        service = QueryService()
        service.enumerate(paper_query())
        stats = service.stats()
        for key in (
            "queries",
            "pages_served",
            "result_cache_hits",
            "cursor_resumes",
            "graph_loads",
            "plan_hits",
            "sessions_live",
        ):
            assert key in stats
