"""Tests for the solution-graph construction (Figure 3/11) and delay instrumentation."""

import time

import pytest

from repro.core import (
    BTraversal,
    DelayInstrumentedIterator,
    ITraversal,
    SolutionGraph,
    build_solution_graph,
    count_links,
    measure_delay,
)
from repro.core.biplex import Biplex
from repro.graph import paper_example_graph


@pytest.fixture(scope="module")
def solution_graphs():
    graph = paper_example_graph()
    return {
        variant: build_solution_graph(graph, 1, variant=variant)
        for variant in ("btraversal", "left-anchored", "right-shrinking", "itraversal")
    }


class TestSolutionGraphConstruction:
    def test_unknown_variant_rejected(self, example_graph):
        with pytest.raises(ValueError):
            build_solution_graph(example_graph, 1, variant="mystery")

    def test_all_variants_share_the_node_set_size(self, solution_graphs, example_graph):
        expected = len(ITraversal(example_graph, 1).enumerate())
        for variant, solution_graph in solution_graphs.items():
            assert solution_graph.num_nodes == expected, variant

    def test_sparsification_ordering(self, solution_graphs):
        """Dropping links can only make the graphs sparser: G ≥ G_L ≥ G_R (Figure 3)."""
        assert (
            solution_graphs["btraversal"].num_links
            >= solution_graphs["left-anchored"].num_links
            >= solution_graphs["right-shrinking"].num_links
        )
        assert (
            solution_graphs["right-shrinking"].num_links
            >= solution_graphs["itraversal"].num_links
        )

    def test_btraversal_graph_strongly_connected(self, solution_graphs):
        assert solution_graphs["btraversal"].is_strongly_connected()

    def test_sparsified_graphs_reach_all_solutions_from_h0(
        self, solution_graphs, example_graph
    ):
        h0 = ITraversal(example_graph, 1).initial_solution()
        for variant in ("left-anchored", "right-shrinking"):
            solution_graph = solution_graphs[variant]
            reachable = solution_graph.reachable_from(h0)
            assert len(reachable) == solution_graph.num_nodes, variant

    def test_left_anchored_graph_not_strongly_connected(self, solution_graphs):
        """The paper remarks G_L loses strong connectivity (Section 3.3 Remarks)."""
        assert not solution_graphs["left-anchored"].is_strongly_connected()

    def test_right_shrinking_links_shrink_right_side(self, solution_graphs):
        for source, target in solution_graphs["right-shrinking"].links:
            assert target.right <= source.right

    def test_left_anchored_links_only_from_left_insertions(self, solution_graphs):
        # every link's target contains at least one left vertex outside the
        # source (the anchor vertex), unless the target equals the source.
        for source, target in solution_graphs["left-anchored"].links:
            assert target != source

    def test_count_links_report(self, example_graph):
        counts = count_links(example_graph, 1)
        assert set(counts) == {"bTraversal", "iTraversal-ES-RS", "iTraversal-ES", "iTraversal"}
        assert counts["bTraversal"] >= counts["iTraversal-ES-RS"] >= counts["iTraversal-ES"]

    def test_out_degree_and_adjacency(self, solution_graphs):
        graph = solution_graphs["right-shrinking"]
        adjacency = graph.adjacency()
        total = sum(len(targets) for targets in adjacency.values())
        assert total == graph.num_links
        some_node = graph.nodes[0]
        assert graph.out_degree(some_node) == len(adjacency[some_node])


class TestSolutionGraphDataclass:
    def test_empty_graph_is_strongly_connected(self):
        assert SolutionGraph().is_strongly_connected()
        assert SolutionGraph().num_nodes == 0

    def test_reachability_on_tiny_graph(self):
        a, b, c = Biplex.of([1], []), Biplex.of([2], []), Biplex.of([3], [])
        graph = SolutionGraph(nodes=[a, b, c], links=[(a, b), (b, c)])
        assert graph.reachable_from(a) == {a, b, c}
        assert graph.reachable_from(c) == {c}
        assert not graph.is_strongly_connected()


class TestDelay:
    def test_measure_delay_counts_solutions(self, example_graph):
        solutions, record = measure_delay(lambda: ITraversal(example_graph, 1).run())
        assert record.num_solutions == len(solutions)
        assert record.max_delay >= 0
        assert record.total_time >= sum(record.delays) * 0.5

    def test_termination_gap_recorded_separately(self, example_graph):
        solutions, record = measure_delay(lambda: ITraversal(example_graph, 1).run())
        assert len(record.delays) == len(solutions)
        assert record.termination_gap is not None
        assert record.termination_gap >= 0

    def test_mean_delay_at_most_max_delay(self, example_graph):
        _, record = measure_delay(lambda: ITraversal(example_graph, 1).run())
        assert record.mean_delay <= record.max_delay + 1e-12

    def test_both_recorders_implement_the_same_definition(self):
        """measure_delay and DelayInstrumentedIterator must fill DelayRecord
        identically: one delay per solution, the paper's trailing
        last-output-to-termination gap in ``termination_gap``, and a
        ``mean_delay`` over solution gaps only."""

        def make_generator():
            def generator():
                yield "a"
                time.sleep(0.015)
                yield "b"
                time.sleep(0.03)  # trailing work after the last solution

            return generator()

        _, measured = measure_delay(make_generator)
        instrumented = DelayInstrumentedIterator(make_generator())
        list(instrumented)
        for record in (measured, instrumented.record):
            assert record.num_solutions == 2
            assert len(record.delays) == 2
            assert record.termination_gap is not None
            assert record.termination_gap >= 0.03
            # max_delay covers the trailing gap, mean_delay excludes it.
            assert record.max_delay >= record.termination_gap
            assert record.mean_delay <= max(record.delays)
            assert record.total_time >= sum(record.delays) + record.termination_gap - 1e-9

    def test_measure_delay_on_slow_iterator(self):
        def generator():
            yield 1
            time.sleep(0.02)
            yield 2

        _, record = measure_delay(generator)
        assert record.max_delay >= 0.02

    def test_instrumented_iterator(self, example_graph):
        iterator = DelayInstrumentedIterator(BTraversal(example_graph, 1).run())
        items = list(iterator)
        assert iterator.record.num_solutions == len(items)
        assert len(iterator.record.delays) == len(items)
        assert iterator.record.termination_gap is not None
        assert iterator.record.total_time > 0

    def test_instrumented_iterator_empty(self):
        iterator = DelayInstrumentedIterator(iter(()))
        assert list(iterator) == []
        assert iterator.record.num_solutions == 0
        assert iterator.record.delays == []
        assert iterator.record.max_delay >= 0

    def test_instrumented_iterator_early_stop_leaves_termination_unset(self, example_graph):
        iterator = DelayInstrumentedIterator(ITraversal(example_graph, 1).run())
        next(iterator)
        assert iterator.record.num_solutions == 1
        assert iterator.record.termination_gap is None

    def test_alternating_output_reduces_worst_gap_structure(self, example_graph):
        """The alternating order must not change the solution set (sanity)."""
        pre, _ = measure_delay(lambda: ITraversal(example_graph, 1, output_order="pre").run())
        alternate, _ = measure_delay(
            lambda: ITraversal(example_graph, 1, output_order="alternate").run()
        )
        assert set(pre) == set(alternate)
