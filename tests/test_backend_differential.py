"""Cross-backend differential harness.

Seeded random-graph property tests that sweep **every** adjacency backend ×
**every** maximal-k-biplex enumerator the library ships — iTraversal,
bTraversal, the large-MBP enumerator, iMB and the exhaustive brute force —
and pin, for every single run, that

* the produced solutions are valid maximal k-biplexes with no duplicates
  (``verify.check_all_solutions``, labelled so a failure names the
  algorithm × backend × graph that broke), and
* the solution *set* matches the set-backend brute-force oracle
  (``verify.same_solutions``).

This is the systematic oracle the per-feature equivalence tests sample from:
any backend fast path (mask or batch) that changes results anywhere in the
enumeration stack fails here with an attributable message.

PR 5 added a ``jobs ∈ {1, 2}`` axis for the engine-backed enumerators
(iTraversal, bTraversal, the large-MBP enumerator): the sharded parallel
engine must produce exactly the serial solution set on every backend, and
its output must still support the solution-graph layer.

PR 6 added the ``prep ∈ {off, core, core+order}`` axis: the preprocessing
pipeline (:mod:`repro.prep` — core/bitruss graph reduction plus degeneracy
candidate ordering) must leave the enumerated solution set untouched on
every backend, serial and parallel, with and without size thresholds.
"""

from __future__ import annotations

import pytest
from backend_matrix import ALL_BACKENDS, random_graphs

from repro.baselines import enumerate_mbps_bruteforce, enumerate_mbps_imb
from repro.core import BTraversal, ITraversal
from repro.core.large import LargeMBPEnumerator, filter_large
from repro.core.verify import check_all_solutions, missing_and_extra, same_solutions
from repro.graph import as_backend

#: Size threshold exercised by the LargeMBPEnumerator leg of the matrix.
THETA = 2

#: Small enough for the brute-force oracle, varied enough to hit empty
#: sides, dense blocks and isolated vertices.
GRAPHS = random_graphs(5, max_side=5, seed=424242)


def _enumerators():
    """The (name, runner) matrix; every runner returns a solution list."""
    yield "ITraversal", lambda graph, k, backend: ITraversal(
        graph, k, backend=backend
    ).enumerate()
    yield "BTraversal", lambda graph, k, backend: BTraversal(
        graph, k, backend=backend
    ).enumerate()
    yield "iMB", lambda graph, k, backend: enumerate_mbps_imb(
        graph, k, backend=backend
    )
    # The brute force runs on the *converted* graph, so the backend's
    # predicate fast paths (is_k_biplex / is_maximal_k_biplex) are part of
    # the differential surface too.
    yield "bruteforce", lambda graph, k, backend: enumerate_mbps_bruteforce(
        as_backend(graph, backend), k
    )


@pytest.mark.parametrize("k", (1, 2))
@pytest.mark.parametrize("backend", ALL_BACKENDS)
def test_every_enumerator_matches_the_oracle(backend, k):
    for index, graph in enumerate(GRAPHS):
        reference = enumerate_mbps_bruteforce(graph, k)
        check_all_solutions(graph, reference, k, label=f"oracle k={k} g{index}")
        for name, run in _enumerators():
            label = f"{name}[{backend}] k={k} g{index}"
            solutions = run(graph, k, backend)
            check_all_solutions(graph, solutions, k, label=label)
            assert same_solutions(reference, solutions), (
                label,
                missing_and_extra(reference, solutions),
            )


@pytest.mark.parametrize("k", (1, 2))
@pytest.mark.parametrize("jobs", (1, 2))
@pytest.mark.parametrize("backend", ALL_BACKENDS)
def test_traversals_match_oracle_serial_and_parallel(backend, jobs, k):
    """The jobs axis: every engine-backed enumerator, serial vs sharded.

    ``jobs=1`` pins the dispatch path (explicit jobs must not change the
    serial behaviour); ``jobs=2`` drives the full parallel machinery —
    shard planning, worker pool, dedup merge — whose sorted output must
    still be exactly the oracle's solution set on every backend.  Tiny
    graphs whose shard plan has < 2 entries exercise the documented serial
    fallback.
    """
    for index, graph in enumerate(GRAPHS):
        reference = enumerate_mbps_bruteforce(graph, k)
        for name, runner in (
            ("ITraversal", lambda g: ITraversal(g, k, backend=backend, jobs=jobs)),
            ("BTraversal", lambda g: BTraversal(g, k, backend=backend, jobs=jobs)),
        ):
            label = f"{name}[{backend}] jobs={jobs} k={k} g{index}"
            algorithm = runner(graph)
            solutions = algorithm.enumerate()
            check_all_solutions(graph, solutions, k, label=label)
            assert same_solutions(reference, solutions), (
                label,
                missing_and_extra(reference, solutions),
            )
            assert algorithm.stats.num_reported == len(solutions), label


@pytest.mark.parametrize("k", (1, 2))
def test_solution_graph_build_over_parallel_output(k):
    """The parallel engine's output supports the solution-graph layer.

    ``build_solution_graph`` derives its node set from a full (serial)
    bTraversal; the nodes must coincide with the parallel iTraversal
    output, and attaching the b-links to the parallel node list must
    reproduce the paper's strong-connectivity property of ``G``.
    """
    from repro.core.solution_graph import SolutionGraph, build_solution_graph

    for index, graph in enumerate(GRAPHS[:3]):
        parallel_nodes = ITraversal(graph, k, jobs=2).enumerate()
        reference_graph = build_solution_graph(graph, k, variant="btraversal")
        assert set(reference_graph.nodes) == set(parallel_nodes), f"k={k} g{index}"
        rebuilt = SolutionGraph(
            nodes=list(parallel_nodes), links=list(reference_graph.links)
        )
        assert rebuilt.num_nodes == len(parallel_nodes)
        assert rebuilt.is_strongly_connected(), f"k={k} g{index}"


@pytest.mark.parametrize("k", (1, 2))
@pytest.mark.parametrize("jobs", (1, 2))
@pytest.mark.parametrize("backend", ALL_BACKENDS)
def test_large_mbp_enumerator_matches_filtered_oracle(backend, jobs, k):
    for index, graph in enumerate(GRAPHS):
        reference = filter_large(enumerate_mbps_bruteforce(graph, k), THETA, THETA)
        label = f"LargeMBPEnumerator[{backend}] jobs={jobs} k={k} theta={THETA} g{index}"
        solutions = LargeMBPEnumerator(
            graph, k, theta=THETA, backend=backend, jobs=jobs
        ).enumerate()
        check_all_solutions(graph, solutions, k, label=label)
        assert all(
            len(s.left) >= THETA and len(s.right) >= THETA for s in solutions
        ), label
        assert same_solutions(reference, solutions), (
            label,
            missing_and_extra(reference, solutions),
        )


#: The full preprocessing ablation swept by the prep-axis tests below.
PREPS = ("off", "core", "core+order")


@pytest.mark.parametrize("prep", PREPS)
@pytest.mark.parametrize("jobs", (1, 2))
@pytest.mark.parametrize("backend", ALL_BACKENDS)
def test_prep_modes_match_oracle(backend, jobs, prep):
    """The prep axis: reduction + ordering never change the solution set.

    Unthresholded iTraversal (the reduction is an identity there, but
    ``core+order`` still permutes the traversal) and the thresholded
    large-MBP enumerator (where the core/bitruss reduction actually peels
    vertices and the solutions must be translated back to original ids)
    are both pinned against the brute-force oracle on every backend,
    serial and sharded.
    """
    k = 1
    for index, graph in enumerate(GRAPHS):
        reference = enumerate_mbps_bruteforce(graph, k)
        label = f"ITraversal[{backend}] jobs={jobs} prep={prep} k={k} g{index}"
        algorithm = ITraversal(graph, k, backend=backend, jobs=jobs, prep=prep)
        solutions = algorithm.enumerate()
        check_all_solutions(graph, solutions, k, label=label)
        assert same_solutions(reference, solutions), (
            label,
            missing_and_extra(reference, solutions),
        )

        large_reference = filter_large(reference, THETA, THETA)
        label = f"LargeMBPEnumerator[{backend}] jobs={jobs} prep={prep} k={k} g{index}"
        large = LargeMBPEnumerator(
            graph, k, theta=THETA, backend=backend, jobs=jobs, prep=prep
        ).enumerate()
        check_all_solutions(graph, large, k, label=label)
        assert same_solutions(large_reference, large), (
            label,
            missing_and_extra(large_reference, large),
        )


@pytest.mark.parametrize("prep", PREPS[1:])
def test_prep_preserves_serial_output_order_without_thresholds(prep):
    """Without thresholds ``core`` is an identity — bit-for-bit, order included.

    ``jobs=1`` pinned: the comparison is about the serial DFS order.
    """
    for index, graph in enumerate(GRAPHS):
        baseline = [s.key() for s in ITraversal(graph, 1, prep="off", jobs=1).enumerate()]
        got = [s.key() for s in ITraversal(graph, 1, prep=prep, jobs=1).enumerate()]
        if prep == "core":
            assert got == baseline, f"g{index}: prep=core must be bit-for-bit"
        else:
            assert sorted(got) == sorted(baseline), f"g{index}"


class TestFailureAttribution:
    """The ``label=`` threading the harness above relies on."""

    def test_label_prefixes_validity_errors(self, complete_graph):
        from repro.core.biplex import Biplex

        # ({0}, {0}) is a 1-biplex of K_{3,3} but far from maximal.
        bogus = [Biplex.of({0}, {0})]
        with pytest.raises(AssertionError, match=r"\[iMB\[packed\] g3\]"):
            check_all_solutions(complete_graph, bogus, 1, label="iMB[packed] g3")

    def test_label_prefixes_duplicate_errors(self, complete_graph):
        from repro.core.biplex import Biplex

        full = Biplex.of({0, 1, 2}, {0, 1, 2})
        with pytest.raises(AssertionError, match=r"\[dup-source\] duplicate"):
            check_all_solutions(complete_graph, [full, full], 1, label="dup-source")

    def test_unlabelled_errors_stay_unprefixed(self, complete_graph):
        from repro.core.biplex import Biplex

        with pytest.raises(AssertionError) as excinfo:
            check_all_solutions(complete_graph, [Biplex.of({0}, {0})], 1)
        assert not str(excinfo.value).startswith("[")
