"""Differential tests for mutable-graph epochs (the ISSUE 10 tentpole).

Three differential contracts, each checked under seeded random
insert/delete sequences:

* **substrates** — after any mutation sequence, every backend's adjacency
  equals a graph rebuilt from scratch, and enumeration (all three modes)
  on the mutated object equals enumeration on the rebuild;
* **indices** — :class:`repro.graph.dynamic.DynamicGraphIndex` equals the
  from-scratch oracle (butterfly supports/total, (α, β)-core, k-bitruss)
  after every batch;
* **plans and cursors** — ``reprepare`` is content-identical to a
  from-scratch ``prepare`` on the mutated graph, and a cursor minted
  before an update is rejected as stale *exactly* when the epoch moved.

Plus the service/HTTP satellites that ride on the epoch machinery:
update-route validation, epoch-keyed cache invalidation with plan repair,
the 404s for unknown sessions, and the token-bucket rate limiter.
"""

from __future__ import annotations

import random

import pytest
from backend_matrix import ALL_BACKENDS, random_graphs

from repro.core import StaleCursorError
from repro.core.itraversal import ITraversal, enumerate_mbps
from repro.graph import BipartiteGraph, as_backend
from repro.graph.butterfly import edge_butterfly_counts, k_bitruss
from repro.graph.dynamic import DynamicGraphIndex, recomputed_oracle
from repro.prep import prepare, reprepare
from repro.service import (
    QueryError,
    QueryService,
    RateLimiter,
    ServiceStaleCursorError,
    limiter_from_env,
)

GRAPHS = random_graphs(4, max_side=5, seed=101)


def mutation_script(graph, steps, seed):
    """A seeded insert/delete schedule over ``graph``'s vertex space.

    Yields ``(inserts, deletes)`` batches mixing edges that exist, edges
    that don't (noops for the other operation) and repeats.
    """
    rng = random.Random(seed)
    all_pairs = [
        (v, u) for v in range(graph.n_left) for u in range(graph.n_right)
    ]
    batches = []
    for _ in range(steps):
        inserts = [rng.choice(all_pairs) for _ in range(rng.randint(0, 3))]
        deletes = [rng.choice(all_pairs) for _ in range(rng.randint(0, 3))]
        batches.append((inserts, deletes))
    return batches


def apply_script(graph, batches):
    for inserts, deletes in batches:
        graph.apply_batch(inserts=inserts, deletes=deletes)


def rebuilt(graph):
    """A fresh set-backend graph with the mutated graph's exact edges."""
    return BipartiteGraph(graph.n_left, graph.n_right, sorted(graph.edges()))


# --------------------------------------------------------------------- #
# Epoch semantics
# --------------------------------------------------------------------- #
class TestEpochSemantics:
    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_epoch_counts_effective_mutations_only(self, backend):
        graph = as_backend(BipartiteGraph(3, 3, [(0, 0), (1, 1)]), backend)
        assert graph.epoch == 0
        assert graph.add_edge(0, 1) is True
        assert graph.epoch == 1
        assert graph.add_edge(0, 1) is False  # already present: no bump
        assert graph.epoch == 1
        assert graph.remove_edge(2, 2) is False  # absent: no bump
        assert graph.epoch == 1
        assert graph.remove_edge(0, 1) is True
        assert graph.epoch == 2

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_apply_batch_bumps_once_and_reports_effects(self, backend):
        graph = as_backend(BipartiteGraph(3, 3, [(0, 0), (1, 1)]), backend)
        added, removed = graph.apply_batch(
            inserts=[(0, 1), (0, 1), (0, 0)], deletes=[(1, 1), (2, 2)]
        )
        assert (added, removed) == (1, 1)
        assert graph.epoch == 1
        # A batch of pure noops must not bump.
        assert graph.apply_batch(inserts=[(0, 0)], deletes=[(2, 2)]) == (0, 0)
        assert graph.epoch == 1

    def test_vertex_growth_bumps_epoch(self):
        graph = BipartiteGraph(2, 2, [(0, 0)])
        assert graph.add_left_vertex() == 2
        assert graph.add_right_vertex() == 2
        assert graph.epoch == 2
        assert graph.add_edge(2, 2)
        assert graph.epoch == 3

    def test_copies_restart_at_epoch_zero(self):
        graph = BipartiteGraph(2, 2, [(0, 0)])
        graph.add_edge(1, 1)
        assert graph.epoch == 1
        assert graph.copy().epoch == 0


# --------------------------------------------------------------------- #
# Substrate differential: mutated object == rebuilt graph
# --------------------------------------------------------------------- #
class TestMutationDifferential:
    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_adjacency_equals_rebuild_after_random_script(self, backend):
        for index, base in enumerate(GRAPHS):
            graph = as_backend(base.copy(), backend)
            apply_script(graph, mutation_script(graph, steps=6, seed=index))
            reference = rebuilt(graph)
            assert sorted(graph.edges()) == sorted(reference.edges())
            for v in range(graph.n_left):
                assert set(graph.neighbors_of_left(v)) == set(
                    reference.neighbors_of_left(v)
                )
            for u in range(graph.n_right):
                assert set(graph.neighbors_of_right(u)) == set(
                    reference.neighbors_of_right(u)
                )

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    @pytest.mark.parametrize("k", (1, 2))
    def test_enumeration_after_updates_equals_rebuild(self, backend, k):
        for index, base in enumerate(GRAPHS):
            graph = as_backend(base.copy(), backend)
            apply_script(graph, mutation_script(graph, steps=6, seed=17 + index))
            mutated = ITraversal(graph, k).enumerate()
            reference = ITraversal(rebuilt(graph), k).enumerate()
            assert sorted(mutated) == sorted(reference), f"{backend} k={k} g{index}"

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_solver_modes_after_updates_equal_rebuild(self, backend):
        for index, base in enumerate(GRAPHS):
            graph = as_backend(base.copy(), backend)
            apply_script(graph, mutation_script(graph, steps=5, seed=31 + index))
            reference = rebuilt(graph)
            for mode, extra in (("maximum", {}), ("top-k", {"top": 3})):
                got, _ = enumerate_mbps(graph, 1, mode=mode, **extra)
                want, _ = enumerate_mbps(reference, 1, mode=mode, **extra)
                assert got == want, f"{backend} {mode} g{index}"

    def test_grown_vertices_are_enumerable(self):
        graph = BipartiteGraph(2, 2, [(0, 0), (0, 1), (1, 0), (1, 1)])
        v = graph.add_left_vertex()
        u = graph.add_right_vertex()
        graph.apply_batch(inserts=[(v, 0), (v, 1), (v, u), (0, u), (1, u)])
        assert sorted(ITraversal(graph, 1).enumerate()) == sorted(
            ITraversal(rebuilt(graph), 1).enumerate()
        )


# --------------------------------------------------------------------- #
# Incremental indices vs the recomputed oracle
# --------------------------------------------------------------------- #
class TestIncrementalIndices:
    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_indices_match_oracle_after_every_batch(self, backend):
        for index, base in enumerate(GRAPHS):
            graph = as_backend(base.copy(), backend)
            alpha, beta = 2, 2
            dyn = DynamicGraphIndex(graph, alpha=alpha, beta=beta)
            for inserts, deletes in mutation_script(graph, steps=6, seed=47 + index):
                dyn.apply(inserts=inserts, deletes=deletes)
                total, supports, core = recomputed_oracle(graph, alpha, beta)
                label = f"{backend} g{index} epoch={graph.epoch}"
                assert dyn.butterfly_count == total, label
                assert dyn.butterflies.supports == supports, label
                assert tuple(map(set, dyn.core_members)) == core, label

    def test_bitruss_from_maintained_supports_matches_scratch(self):
        base = GRAPHS[0].copy()
        dyn = DynamicGraphIndex(base)
        apply_batches = mutation_script(base, steps=5, seed=7)
        for inserts, deletes in apply_batches:
            dyn.apply(inserts=inserts, deletes=deletes)
        for k in (1, 2):
            maintained = dyn.bitruss(k)
            scratch = k_bitruss(rebuilt(base), k)
            assert sorted(maintained.edges()) == sorted(scratch.edges())

    def test_index_apply_mirrors_batch_epoch_contract(self):
        graph = BipartiteGraph(3, 3, [(0, 0), (1, 1), (2, 2)])
        dyn = DynamicGraphIndex(graph, alpha=1, beta=1)
        assert dyn.apply(inserts=[(0, 1)], deletes=[(2, 2)]) == (1, 1)
        assert graph.epoch == 1
        assert dyn.apply(inserts=[(0, 1)]) == (0, 0)  # noop batch
        assert graph.epoch == 1
        # Supports stayed a closed set: no stale entries for removed edges.
        assert dyn.butterflies.supports == edge_butterfly_counts(graph)


# --------------------------------------------------------------------- #
# Plan repair: reprepare == prepare from scratch
# --------------------------------------------------------------------- #
class TestReprepare:
    @staticmethod
    def _plan_content(plan):
        graph = plan.graph
        return (
            plan.mode,
            graph.n_left,
            graph.n_right,
            sorted(graph.edges()),
            plan.left_map,
            plan.right_map,
            plan.left_order,
            plan.right_order,
            plan.removed_left,
            plan.removed_right,
            plan.removed_edges,
            plan.order_strategy,
            plan.epoch,
            plan.core_left,
            plan.core_right,
        )

    @pytest.mark.parametrize("mode", ("core", "core+order"))
    def test_reprepare_is_content_identical_to_prepare(self, mode):
        for index, base in enumerate(GRAPHS):
            graph = base.copy()
            previous = prepare(graph, 1, mode=mode, theta_left=2, theta_right=2)
            for inserts, deletes in mutation_script(graph, steps=4, seed=index):
                applied_in, applied_del = [], []
                for edge in inserts:
                    if graph.add_edge(*edge):
                        applied_in.append(edge)
                for edge in deletes:
                    if graph.remove_edge(*edge):
                        applied_del.append(edge)
                repaired = reprepare(
                    graph,
                    1,
                    previous,
                    inserts=applied_in,
                    deletes=applied_del,
                    mode=mode,
                    theta_left=2,
                    theta_right=2,
                )
                scratch = prepare(graph, 1, mode=mode, theta_left=2, theta_right=2)
                assert self._plan_content(repaired) == self._plan_content(
                    scratch
                ), f"{mode} g{index} epoch={graph.epoch}"
                previous = repaired


# --------------------------------------------------------------------- #
# Stale cursors: rejected exactly when the epoch moved
# --------------------------------------------------------------------- #
def small_query(graph, **overrides):
    query = {
        "graph": {
            "n_left": graph.n_left,
            "n_right": graph.n_right,
            "edges": [list(edge) for edge in sorted(graph.edges())],
        },
        "k": 1,
    }
    query.update(overrides)
    return query


class TestStaleCursors:
    # 6 maximal 1-biplexes, so pagination has pages left after the first;
    # (3, 3) is absent and is the edge the update tests insert.
    GRAPH = BipartiteGraph(
        4, 4, [(v, u) for v in range(4) for u in range(4) if (v + u) % 3]
    )

    def test_engine_cursor_rejected_after_epoch_change(self):
        from repro.core import EnumerationSession

        graph = self.GRAPH.copy()
        session = EnumerationSession(graph, 1)
        session.next_batch(2)
        cursor = session.cursor()
        # Same epoch: resumes fine.
        resumed = EnumerationSession.resume(graph, 1, cursor)
        assert resumed.next_batch(1)
        graph.add_edge(3, 3)
        with pytest.raises(StaleCursorError, match="epoch"):
            EnumerationSession.resume(graph, 1, cursor)

    def test_service_cursor_stale_only_after_update(self):
        service = QueryService()
        query = small_query(self.GRAPH)
        opened = service.open_session(query, page_size=2)
        cursor = opened["cursor"]
        # No update yet: the cursor resumes.
        assert service.next_page(cursor=cursor)["solutions"]
        service.update({"graph": query["graph"], "insert": [[3, 3]]})
        with pytest.raises(ServiceStaleCursorError):
            service.next_page(cursor=cursor)
        # A cursor minted *after* the update is good again.
        fresh = service.open_session(small_query(self.GRAPH), page_size=2)
        assert service.next_page(cursor=fresh["cursor"])["solutions"]

    def test_noop_update_keeps_cursors_valid(self):
        service = QueryService()
        query = small_query(self.GRAPH)
        opened = service.open_session(query, page_size=2)
        cursor = opened["cursor"]
        outcome = service.update(
            {"graph": query["graph"], "insert": [[0, 1]]}  # already present
        )
        assert outcome["epoch"] == 0
        assert (outcome["added"], outcome["removed"]) == (0, 0)
        assert service.next_page(cursor=cursor)["solutions"]


# --------------------------------------------------------------------- #
# Service update path: validation, cache invalidation, plan repair
# --------------------------------------------------------------------- #
class TestServiceUpdate:
    def test_update_invalidates_and_repairs(self):
        service = QueryService()
        graph = TestStaleCursors.GRAPH
        query = small_query(graph)
        before = service.enumerate(query)
        assert service.enumerate(query)["cached"]
        outcome = service.update({"graph": query["graph"], "insert": [[3, 3]]})
        assert outcome["epoch"] == 1
        assert outcome["added"] == 1
        assert outcome["plans_invalidated"] == 1
        assert outcome["results_invalidated"] == 1
        after = service.enumerate(query)
        assert not after["cached"]
        assert service.registry.counters()["plans_repaired"] == 1
        # The post-update answer equals a cold service on the mutated graph.
        mutated = graph.copy()
        mutated.add_edge(3, 3)
        cold = QueryService().enumerate(small_query(mutated))
        assert after["solutions"] == cold["solutions"]
        assert before["solutions"] != after["solutions"]

    def test_update_validation_errors(self):
        service = QueryService()
        query = small_query(TestStaleCursors.GRAPH)
        service.enumerate(query)
        with pytest.raises(QueryError, match="non-empty insert or delete"):
            service.update({"graph": query["graph"]})
        with pytest.raises(QueryError, match="out of range"):
            service.update({"graph": query["graph"], "insert": [[99, 0]]})
        with pytest.raises(QueryError, match="unknown update field"):
            service.update({"graph": query["graph"], "insert": [[0, 0]], "k": 1})
        with pytest.raises(QueryError, match="insert"):
            service.update({"graph": query["graph"], "insert": [[0]]})

    def test_update_of_unloaded_graph_is_a_query_error(self):
        service = QueryService()
        with pytest.raises(QueryError):
            service.update({"graph": {"path": "/nonexistent.txt"}, "insert": [[0, 0]]})

    def test_stats_report_update_counters(self):
        service = QueryService()
        query = small_query(TestStaleCursors.GRAPH)
        service.enumerate(query)
        service.update({"graph": query["graph"], "insert": [[3, 3]]})
        stats = service.stats()
        assert stats["updates"] == 1
        assert stats["results_invalidated"] == 1
        assert stats["updates_applied"] == 1
        assert stats["plan_invalidations"] == 1


# --------------------------------------------------------------------- #
# Rate limiter
# --------------------------------------------------------------------- #
class TestRateLimiter:
    def test_token_bucket_with_injected_clock(self):
        clock = {"now": 0.0}
        limiter = RateLimiter(rate=2.0, burst=2, clock=lambda: clock["now"])
        assert limiter.allow("a") == (True, 0.0)
        assert limiter.allow("a") == (True, 0.0)
        allowed, retry = limiter.allow("a")
        assert not allowed and retry == pytest.approx(0.5)
        # Another client has its own bucket.
        assert limiter.allow("b")[0]
        # Refill restores capacity.
        clock["now"] = 1.0
        assert limiter.allow("a")[0]

    def test_rejection_counter(self):
        limiter = RateLimiter(rate=1.0, burst=1, clock=lambda: 0.0)
        limiter.allow("a")
        limiter.allow("a")
        assert limiter.rejected == 1

    def test_limiter_from_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_RATE_LIMIT", raising=False)
        assert limiter_from_env() is None
        assert limiter_from_env(rate=5.0).rate == 5.0
        monkeypatch.setenv("REPRO_RATE_LIMIT", "2.5")
        assert limiter_from_env().rate == 2.5
        assert limiter_from_env(rate=9.0).rate == 9.0  # explicit beats env
        monkeypatch.setenv("REPRO_RATE_LIMIT", "0")
        assert limiter_from_env() is None
        monkeypatch.setenv("REPRO_RATE_LIMIT", "not-a-number")
        with pytest.raises(ValueError):
            limiter_from_env()

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            RateLimiter(rate=0)
        with pytest.raises(ValueError):
            RateLimiter(rate=1.0, burst=0.5)
