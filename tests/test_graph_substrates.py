"""Tests for the general graph, inflation, cores, butterflies, generators and I/O."""

import pytest

from backend_matrix import ALL_BACKENDS

from repro.graph import (
    BipartiteGraph,
    Graph,
    alpha_beta_core,
    alpha_beta_core_subgraph,
    erdos_renyi_bipartite,
    inflate,
    inflated_edge_count,
    join_vertex_sets,
    planted_biplex_graph_with_blocks,
    power_law_bipartite,
    read_edge_list,
    read_konect,
    review_graph_with_camouflage,
    split_vertex_set,
    theta_core_for_large_mbps,
    write_edge_list,
    write_konect,
)
from repro.graph.butterfly import (
    _count_from_side,
    _pivot_from_left,
    bitruss_number,
    count_butterflies,
    edge_butterfly_counts,
    k_bitruss,
)
from repro.graph.general import BitsetGraph
from repro.graph.generators import degree_histogram


class TestGeneralGraph:
    def test_basic_properties(self):
        graph = Graph(4, edges=[(0, 1), (1, 2), (2, 3)])
        assert graph.num_vertices == 4
        assert graph.num_edges == 3
        assert graph.degree(1) == 2
        assert graph.has_edge(2, 3) and not graph.has_edge(0, 3)

    def test_rejects_self_loops_and_bad_ids(self):
        graph = Graph(2)
        with pytest.raises(ValueError):
            graph.add_edge(0, 0)
        with pytest.raises(IndexError):
            graph.add_edge(0, 5)
        with pytest.raises(ValueError):
            Graph(-1)

    def test_edges_listed_once(self):
        graph = Graph(3, edges=[(0, 1), (1, 0), (1, 2)])
        assert sorted(graph.edges()) == [(0, 1), (1, 2)]

    def test_kplex_predicate(self):
        triangle = Graph(3, edges=[(0, 1), (1, 2), (0, 2)])
        assert triangle.subgraph_is_kplex({0, 1, 2}, 1)
        path = Graph(3, edges=[(0, 1), (1, 2)])
        assert not path.subgraph_is_kplex({0, 1, 2}, 1)
        assert path.subgraph_is_kplex({0, 1, 2}, 2)

    def test_non_neighbors_within(self):
        graph = Graph(4, edges=[(0, 1)])
        assert graph.non_neighbors_within(0, {1, 2, 3}) == {2, 3}
        assert graph.missing_within(0, {1, 2, 3}) == 2


class TestInflation:
    def test_inflated_edge_count_formula(self, example_graph):
        assert inflated_edge_count(example_graph) == 5 * 4 // 2 + 5 * 4 // 2 + 16

    def test_inflate_structure(self, tiny_graph):
        inflated = inflate(tiny_graph)
        assert inflated.num_vertices == 5
        assert inflated.num_edges == inflated_edge_count(tiny_graph)
        # Same-side pairs are connected.
        assert inflated.has_edge(0, 1)          # two left vertices
        assert inflated.has_edge(2, 3)          # two right vertices (shifted by n_left)
        # Cross edges copied.
        assert inflated.has_edge(0, 2 + 0)      # v0 - u0

    def test_biplex_plex_correspondence(self, example_graph):
        inflated = inflate(example_graph)
        # H1 = ({v0, v1, v4}, {u0..u3}) is a 1-biplex <=> 2-plex in the inflation.
        vertex_set = join_vertex_sets(frozenset({0, 1, 4}), frozenset({0, 1, 2, 3}), 5)
        assert inflated.subgraph_is_kplex(vertex_set, 2)

    def test_split_and_join_roundtrip(self):
        left, right = frozenset({0, 2}), frozenset({1, 3})
        joined = join_vertex_sets(left, right, 5)
        assert split_vertex_set(joined, 5) == (left, right)


class TestCores:
    def test_complete_graph_core_is_everything(self, complete_graph):
        left, right = alpha_beta_core(complete_graph, 3, 3)
        assert left == {0, 1, 2}
        assert right == {0, 1, 2}

    def test_star_core_peels_leaves(self):
        graph = BipartiteGraph(3, 1, edges=[(0, 0), (1, 0), (2, 0)])
        left, right = alpha_beta_core(graph, 1, 2)
        assert right == {0}
        assert left == {0, 1, 2}
        left, right = alpha_beta_core(graph, 2, 1)
        assert left == set() and right == set()

    def test_core_subgraph_mapping(self, example_graph):
        subgraph, left_map, right_map = alpha_beta_core_subgraph(example_graph, 3, 3)
        for new_left, original_left in enumerate(left_map):
            assert subgraph.degree_of_left(new_left) == len(
                set(example_graph.neighbors_of_left(original_left)) & set(right_map)
            )

    def test_core_degrees_satisfied(self, example_graph):
        left, right = alpha_beta_core(example_graph, 3, 2)
        for v in left:
            assert len(set(example_graph.neighbors_of_left(v)) & right) >= 3
        for u in right:
            assert len(set(example_graph.neighbors_of_right(u)) & left) >= 2

    def test_theta_core_contains_every_large_mbp(self, example_graph):
        from repro.baselines import enumerate_mbps_bruteforce

        theta, k = 3, 1
        core, left_map, right_map = theta_core_for_large_mbps(example_graph, k, theta)
        core_left, core_right = set(left_map), set(right_map)
        for solution in enumerate_mbps_bruteforce(example_graph, k):
            if len(solution.left) >= theta and len(solution.right) >= theta:
                assert solution.left <= core_left
                assert solution.right <= core_right

    def test_zero_thresholds_keep_everything(self, example_graph):
        left, right = alpha_beta_core(example_graph, 0, 0)
        assert left == set(example_graph.left_vertices())
        assert right == set(example_graph.right_vertices())

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_core_backends_agree(self, backend):
        from repro.graph import as_backend

        for seed in range(3):
            graph = erdos_renyi_bipartite(9, 7, num_edges=25 + seed * 5, seed=seed)
            converted = as_backend(graph, backend)
            for alpha, beta in ((0, 0), (1, 1), (2, 3), (3, 2), (6, 6)):
                assert alpha_beta_core(converted, alpha, beta) == alpha_beta_core(
                    graph, alpha, beta
                )
        # Side sizes beyond 64 force multi-word packed rows.
        wide = erdos_renyi_bipartite(130, 70, num_edges=700, seed=23)
        converted = as_backend(wide, backend)
        for bound in (3, 5, 8):
            assert alpha_beta_core(converted, bound, bound) == alpha_beta_core(
                wide, bound, bound
            )


class TestButterflies:
    def test_single_butterfly(self):
        graph = BipartiteGraph(2, 2, edges=[(0, 0), (0, 1), (1, 0), (1, 1)])
        assert count_butterflies(graph) == 1
        assert all(count == 1 for count in edge_butterfly_counts(graph).values())

    def test_no_butterflies_in_a_tree(self, tiny_graph):
        assert count_butterflies(tiny_graph) == 0

    def test_counts_match_bruteforce_on_example(self, example_graph):
        # Brute-force count of 2x2 complete subgraphs.
        from itertools import combinations

        expected = 0
        for v1, v2 in combinations(range(example_graph.n_left), 2):
            common = set(example_graph.neighbors_of_left(v1)) & set(
                example_graph.neighbors_of_left(v2)
            )
            expected += len(common) * (len(common) - 1) // 2
        assert count_butterflies(example_graph) == expected

    def test_k_bitruss_edges_have_support(self, example_graph):
        truss = k_bitruss(example_graph, 2)
        support = edge_butterfly_counts(truss)
        assert all(count >= 2 for count in support.values()) or truss.num_edges == 0

    def test_k_bitruss_zero_is_identity(self, example_graph):
        assert k_bitruss(example_graph, 0).num_edges == example_graph.num_edges

    def test_k_bitruss_rejects_negative(self, example_graph):
        with pytest.raises(ValueError):
            k_bitruss(example_graph, -1)

    def test_bitruss_numbers_consistent(self, example_graph):
        numbers = bitruss_number(example_graph)
        for edge, number in numbers.items():
            if number >= 1:
                truss = k_bitruss(example_graph, number)
                assert edge in set(truss.edges())

    def test_bitruss_numbers_match_bruteforce_maxima(self):
        # Dense 4x4 graph (complete minus a perfect matching): every edge's
        # bitruss number must equal the largest k whose k-bitruss keeps it.
        graph = BipartiteGraph(
            4, 4, edges=[(v, u) for v in range(4) for u in range(4) if v != u]
        )
        numbers = bitruss_number(graph)
        for edge in graph.edges():
            expected = 0
            for k in range(1, graph.num_edges + 1):
                surviving = set(k_bitruss(graph, k).edges())
                if edge in surviving:
                    expected = k
                else:
                    break
            assert numbers[edge] == expected, edge

    def test_incremental_peeling_matches_recompute(self):
        # The incremental support updates must peel exactly the edges the
        # naive recompute-every-round peeling removes.
        def naive_k_bitruss(graph, k):
            working = graph.copy()
            while True:
                support = edge_butterfly_counts(working)
                to_remove = [edge for edge, count in support.items() if count < k]
                if not to_remove:
                    return working
                for v, u in to_remove:
                    working.remove_edge(v, u)

        for seed in range(4):
            graph = erdos_renyi_bipartite(6, 6, num_edges=18 + seed * 4, seed=seed)
            # to_packed() selects the numpy class or the array('Q') fallback
            # depending on the environment; both must agree with the oracle.
            backend_graphs = [graph, graph.to_bitset(), graph.to_packed()]
            for k in (1, 2, 3):
                for backend_graph in backend_graphs:
                    assert sorted(k_bitruss(backend_graph, k).edges()) == sorted(
                        naive_k_bitruss(graph, k).edges()
                    )

    def test_pivot_side_prefers_cheaper_wedges(self):
        # A single left hub: all wedges are centred on the hub, so anchoring
        # on the left (walking wedges centred on degree-1 right vertices) is
        # the cheap direction — the old inverted branch picked the right side.
        left_hub = BipartiteGraph(1, 8, edges=[(0, u) for u in range(8)])
        assert _pivot_from_left(left_hub) is True
        right_hub = BipartiteGraph(8, 1, edges=[(v, 0) for v in range(8)])
        assert _pivot_from_left(right_hub) is False

    def test_count_identical_from_both_sides(self):
        for seed in range(3):
            graph = erdos_renyi_bipartite(7, 4, num_edges=14 + seed, seed=seed)
            expected = _count_from_side(graph, from_left=True)
            assert _count_from_side(graph, from_left=False) == expected
            assert count_butterflies(graph) == expected

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_butterfly_backends_agree(self, backend):
        from repro.graph import as_backend

        for seed in range(3):
            graph = erdos_renyi_bipartite(6, 9, num_edges=20 + seed * 3, seed=seed)
            converted = as_backend(graph, backend)
            assert count_butterflies(converted) == count_butterflies(graph)
            assert edge_butterfly_counts(converted) == edge_butterfly_counts(graph)

    @staticmethod
    def _naive_edge_supports(graph):
        """Brute-force oracle: the literal 4-loop over rectangle corners."""
        support = {}
        for v, u in graph.edges():
            count = 0
            for v_prime in graph.left_vertices():
                if v_prime == v or not graph.has_edge(v_prime, u):
                    continue
                for u_prime in graph.right_vertices():
                    if u_prime == u:
                        continue
                    if graph.has_edge(v, u_prime) and graph.has_edge(v_prime, u_prime):
                        count += 1
            support[(v, u)] = count
        return support

    def test_edge_supports_match_naive_four_loop_all_backends(self):
        # The oracle is quartic, so it runs once per graph and all three
        # backend implementations are differenced against the same result.
        from repro.graph import as_backend

        cases = [
            erdos_renyi_bipartite(6, 9, num_edges=22 + 4 * seed, seed=seed)
            for seed in range(3)
        ]
        # Side sizes beyond 64 force multi-word packed rows (and a multi-word
        # unpacked incidence matrix in the vectorized kernel).
        cases.append(erdos_renyi_bipartite(70, 70, num_edges=260, seed=23))
        for graph in cases:
            expected = self._naive_edge_supports(graph)
            for backend in ("set", "bitset", "packed"):
                assert edge_butterfly_counts(as_backend(graph, backend)) == expected, (
                    backend,
                    graph,
                )

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_butterfly_backends_agree_beyond_one_word(self, backend):
        # Side sizes beyond 64 force multi-word packed rows.
        from repro.graph import as_backend

        graph = erdos_renyi_bipartite(70, 130, num_edges=650, seed=17)
        converted = as_backend(graph, backend)
        assert count_butterflies(converted) == count_butterflies(graph)


class TestBitsetGeneralGraph:
    def test_masks_track_edges(self):
        graph = BitsetGraph(4, edges=[(0, 1), (1, 2)])
        assert graph.adj_mask(1) == 0b101
        assert graph.adj_mask(3) == 0
        assert graph.full_mask == 0b1111
        graph.add_edge(1, 3)
        assert graph.adj_mask(1) == 0b1101
        assert graph.adj_mask(3) == 0b010

    def test_to_bitset_roundtrip(self):
        graph = Graph(5, edges=[(0, 1), (2, 3), (3, 4)])
        bitset = graph.to_bitset()
        assert isinstance(bitset, BitsetGraph)
        assert sorted(bitset.edges()) == sorted(graph.edges())
        assert bitset.to_bitset() is bitset

    def test_inflate_bitset_backend(self, tiny_graph):
        from repro.graph import inflate

        plain = inflate(tiny_graph)
        masked = inflate(tiny_graph, backend="bitset")
        assert isinstance(masked, BitsetGraph)
        assert sorted(masked.edges()) == sorted(plain.edges())
        with pytest.raises(ValueError):
            inflate(tiny_graph, backend="numpy")

    def test_inflate_packed_backend(self, tiny_graph):
        from repro.graph import (
            inflate,
            packed_available,
            packed_graph_class,
            supports_batch,
            supports_vector_batch,
        )

        packed = inflate(tiny_graph, backend="packed")
        assert isinstance(packed, packed_graph_class())
        assert supports_batch(packed)
        assert supports_vector_batch(packed) == packed_available()
        assert sorted(packed.edges()) == sorted(inflate(tiny_graph).edges())


class TestGenerators:
    def test_er_exact_edge_count(self):
        graph = erdos_renyi_bipartite(10, 12, num_edges=30, seed=3)
        assert graph.num_edges == 30

    def test_er_density_parameter(self):
        graph = erdos_renyi_bipartite(20, 20, edge_density=2.0, seed=3)
        assert graph.num_edges == 80

    def test_er_parameter_validation(self):
        with pytest.raises(ValueError):
            erdos_renyi_bipartite(3, 3, num_edges=5, edge_density=1.0)
        with pytest.raises(ValueError):
            erdos_renyi_bipartite(3, 3)
        with pytest.raises(ValueError):
            erdos_renyi_bipartite(2, 2, num_edges=10)

    def test_er_dense_regime(self):
        graph = erdos_renyi_bipartite(6, 6, num_edges=30, seed=1)
        assert graph.num_edges == 30

    def test_er_deterministic_with_seed(self):
        first = erdos_renyi_bipartite(8, 8, num_edges=20, seed=42)
        second = erdos_renyi_bipartite(8, 8, num_edges=20, seed=42)
        assert first == second

    def test_power_law_reaches_target(self):
        graph = power_law_bipartite(30, 30, num_edges=80, seed=5)
        assert graph.num_edges == 80

    def test_planted_blocks_are_k_biplexes(self):
        from repro.core import is_k_biplex

        graph, blocks = planted_biplex_graph_with_blocks(
            20, 20, block_left=5, block_right=5, k=1, num_blocks=2, seed=7
        )
        for left_block, right_block in blocks:
            assert is_k_biplex(graph, left_block, right_block, 1)

    def test_planted_blocks_do_not_fit(self):
        with pytest.raises(ValueError):
            planted_biplex_graph_with_blocks(4, 4, 3, 3, 1, num_blocks=2)

    def test_review_graph_ground_truth(self):
        graph, injection = review_graph_with_camouflage(
            n_real_users=30,
            n_real_products=20,
            n_real_reviews=60,
            n_fake_users=5,
            n_fake_products=5,
            n_fake_reviews=15,
            n_camouflage_reviews=15,
            seed=1,
        )
        assert graph.n_left == 35 and graph.n_right == 25
        assert injection.fake_users == set(range(30, 35))
        assert injection.fake_products == set(range(20, 25))
        # Fake users have both in-block and camouflage edges.
        for user in injection.fake_users:
            neighbors = graph.neighbors_of_left(user)
            assert any(p in injection.fake_products for p in neighbors)

    def test_degree_histogram_sums_to_side_sizes(self, example_graph):
        left_hist, right_hist = degree_histogram(example_graph)
        assert sum(left_hist.values()) == example_graph.n_left
        assert sum(right_hist.values()) == example_graph.n_right


class TestIO:
    def test_edge_list_roundtrip(self, tmp_path, example_graph):
        path = tmp_path / "graph.txt"
        write_edge_list(example_graph, path)
        assert read_edge_list(path) == example_graph

    def test_edge_list_without_header(self, tmp_path):
        path = tmp_path / "plain.txt"
        path.write_text("0 0\n1 2\n# comment\n")
        graph = read_edge_list(path)
        assert graph.n_left == 2 and graph.n_right == 3
        assert graph.num_edges == 2

    def test_edge_list_rejects_inconsistent_header(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("% 1 1\n0 5\n")
        with pytest.raises(ValueError):
            read_edge_list(path)

    def test_edge_list_rejects_malformed_line(self, tmp_path):
        path = tmp_path / "bad2.txt"
        path.write_text("justone\n")
        with pytest.raises(ValueError):
            read_edge_list(path)

    def test_konect_roundtrip(self, tmp_path, example_graph):
        path = tmp_path / "out.example"
        write_konect(example_graph, path, name="example")
        assert read_konect(path) == example_graph

    def test_konect_rejects_zero_based(self, tmp_path):
        path = tmp_path / "out.bad"
        path.write_text("0 1\n")
        with pytest.raises(ValueError):
            read_konect(path)
