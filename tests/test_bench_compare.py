"""Tests of the benchmark snapshot comparator (repro.bench.compare)."""

from __future__ import annotations

import json

import pytest

from repro.bench.compare import (
    EXIT_COUNT_MISMATCH,
    EXIT_OK,
    EXIT_REGRESSION,
    EXIT_USAGE,
    compare_snapshots,
    main,
)


def snapshot(**runs):
    """A minimal repro-bench-enum/1 document; runs map config -> prep entries."""
    return {
        "schema": "repro-bench-enum/1",
        "python": "3.12.0",
        "bench_scale": 1.0,
        "time_limit": 60.0,
        "runs": [
            {
                "config": config,
                "k": 1,
                "theta_left": 0,
                "theta_right": 0,
                "n_left": 5,
                "n_right": 5,
                "num_edges": 10,
                "preps": preps,
            }
            for config, preps in runs.items()
        ],
    }


def entry(seconds, num_solutions=10, truncated=False):
    return {
        "seconds": seconds,
        "num_solutions": num_solutions,
        "truncated": truncated,
        "removed_left": 0,
        "removed_right": 0,
        "removed_edges": 0,
    }


class TestCompareSnapshots:
    def test_identical_snapshots_pass(self):
        base = snapshot(er={"core": entry(1.0)})
        code, lines = compare_snapshots(base, base)
        assert code == EXIT_OK
        assert any(line.startswith("ok") for line in lines)

    def test_small_speedup_and_slowdown_within_threshold_pass(self):
        base = snapshot(er={"core": entry(1.0)})
        new = snapshot(er={"core": entry(1.15)})
        assert compare_snapshots(base, new, threshold=0.2)[0] == EXIT_OK
        faster = snapshot(er={"core": entry(0.5)})
        assert compare_snapshots(base, faster, threshold=0.2)[0] == EXIT_OK

    def test_regression_past_threshold_fails(self):
        base = snapshot(er={"core": entry(1.0)})
        new = snapshot(er={"core": entry(1.5)})
        code, lines = compare_snapshots(base, new, threshold=0.2)
        assert code == EXIT_REGRESSION
        assert any(line.startswith("SLOW") for line in lines)

    def test_count_mismatch_outranks_timing(self):
        base = snapshot(er={"core": entry(1.0, num_solutions=10)})
        new = snapshot(er={"core": entry(0.1, num_solutions=11)})
        code, lines = compare_snapshots(base, new)
        assert code == EXIT_COUNT_MISMATCH
        assert any(line.startswith("COUNT") for line in lines)

    def test_sub_floor_timings_are_ignored(self):
        base = snapshot(er={"core": entry(0.001)})
        new = snapshot(er={"core": entry(0.040)})  # 40x, but both tiny
        assert compare_snapshots(base, new, min_seconds=0.05)[0] == EXIT_OK

    def test_truncated_runs_are_skipped(self):
        base = snapshot(er={"core": entry(1.0, truncated=True)})
        new = snapshot(er={"core": entry(99.0, num_solutions=1)})
        code, lines = compare_snapshots(base, new)
        assert code == EXIT_OK
        assert any(line.startswith("SKIP") for line in lines)

    def test_non_overlapping_runs_are_reported_not_failed(self):
        base = snapshot(old={"core": entry(1.0)})
        new = snapshot(new={"core": entry(1.0)})
        code, lines = compare_snapshots(base, new)
        assert code == EXIT_OK
        assert sum(line.startswith("SKIP") for line in lines) == 2


class TestCompareCLI:
    def write(self, tmp_path, name, document):
        path = tmp_path / name
        path.write_text(json.dumps(document))
        return str(path)

    def test_exit_codes_flow_through(self, tmp_path, capsys):
        base = self.write(tmp_path, "base.json", snapshot(er={"core": entry(1.0)}))
        same = self.write(tmp_path, "same.json", snapshot(er={"core": entry(1.0)}))
        slow = self.write(tmp_path, "slow.json", snapshot(er={"core": entry(2.0)}))
        assert main([base, same]) == EXIT_OK
        assert main([base, slow, "--threshold", "0.2"]) == EXIT_REGRESSION
        assert main([base, slow, "--threshold", "2.0"]) == EXIT_OK
        out = capsys.readouterr().out
        assert "no regression" in out

    def test_bad_inputs_exit_usage(self, tmp_path, capsys):
        missing = str(tmp_path / "missing.json")
        good = self.write(tmp_path, "good.json", snapshot(er={"core": entry(1.0)}))
        assert main([missing, good]) == EXIT_USAGE
        wrong_schema = self.write(tmp_path, "bad.json", {"schema": "other/1"})
        assert main([wrong_schema, good]) == EXIT_USAGE
        capsys.readouterr()

    def test_harness_snapshot_round_trips(self, tmp_path, monkeypatch):
        """A real harness snapshot compares clean against itself."""
        monkeypatch.setenv("REPRO_BENCH_TINY", "1")
        from repro.bench.harness import collect_bench_snapshot

        real = collect_bench_snapshot(time_limit=30.0)
        path = self.write(tmp_path, "real.json", real)
        assert main([path, path]) == EXIT_OK
