"""Tests for the iTraversal algorithm and its variants."""

import pytest

from repro.baselines import enumerate_mbps_bruteforce
from repro.core import (
    Biplex,
    ITraversal,
    TraversalConfig,
    check_all_solutions,
    enumerate_mbps,
    is_maximal_k_biplex,
    itraversal_config,
)
from repro.graph import erdos_renyi_bipartite, paper_example_graph


class TestBasics:
    def test_rejects_invalid_k(self, example_graph):
        with pytest.raises(ValueError):
            ITraversal(example_graph, 0)

    def test_rejects_unknown_variant(self, example_graph):
        with pytest.raises(ValueError):
            ITraversal(example_graph, 1, variant="bogus")

    def test_rejects_unknown_anchor(self, example_graph):
        with pytest.raises(ValueError):
            ITraversal(example_graph, 1, anchor="top")

    def test_initial_solution_is_left_anchored(self, example_graph):
        algorithm = ITraversal(example_graph, 1)
        h0 = algorithm.initial_solution()
        assert set(h0.right) == set(example_graph.right_vertices())
        assert set(h0.left) == {4}

    def test_initial_solution_right_anchor(self, example_graph):
        algorithm = ITraversal(example_graph, 1, anchor="right")
        h0 = algorithm.initial_solution()
        assert set(h0.left) == set(example_graph.left_vertices())

    def test_config_exposed(self, example_graph):
        algorithm = ITraversal(example_graph, 1, variant="no-exclusion")
        assert algorithm.config.exclusion is False
        assert algorithm.config.right_shrinking is True


class TestCorrectness:
    def test_matches_bruteforce_on_example(self, example_graph):
        for k in (1, 2):
            expected = set(enumerate_mbps_bruteforce(example_graph, k))
            assert set(ITraversal(example_graph, k).enumerate()) == expected

    @pytest.mark.parametrize("variant", ["full", "no-exclusion", "left-anchored-only"])
    @pytest.mark.parametrize("k", [1, 2])
    def test_all_variants_match_bruteforce(self, example_graph, variant, k):
        expected = set(enumerate_mbps_bruteforce(example_graph, k))
        got = set(ITraversal(example_graph, k, variant=variant).enumerate())
        assert got == expected

    @pytest.mark.parametrize("anchor", ["left", "right"])
    def test_both_anchors_match_bruteforce(self, example_graph, anchor):
        expected = set(enumerate_mbps_bruteforce(example_graph, 1))
        got = set(ITraversal(example_graph, 1, anchor=anchor).enumerate())
        assert got == expected

    @pytest.mark.parametrize("seed", range(10))
    def test_matches_bruteforce_on_random_graphs(self, seed):
        graph = erdos_renyi_bipartite(4, 5, num_edges=6 + seed, seed=seed)
        for k in (1, 2):
            expected = set(enumerate_mbps_bruteforce(graph, k))
            got = set(ITraversal(graph, k).enumerate())
            assert got == expected

    def test_solutions_are_valid_and_unique(self, example_graph):
        solutions = ITraversal(example_graph, 1).enumerate()
        check_all_solutions(example_graph, solutions, 1)

    def test_no_solution_is_subset_of_another(self, example_graph):
        solutions = ITraversal(example_graph, 1).enumerate()
        for first in solutions:
            for second in solutions:
                if first != second:
                    assert not (first.left <= second.left and first.right <= second.right)

    def test_known_solutions_present(self, example_graph):
        solutions = set(ITraversal(example_graph, 1).enumerate())
        assert Biplex.of([4], [0, 1, 2, 3, 4]) in solutions
        assert Biplex.of([0, 1, 4], [0, 1, 2, 3]) in solutions
        assert Biplex.of([1, 2, 4], [0, 1, 2]) in solutions

    def test_empty_graph(self):
        graph = erdos_renyi_bipartite(3, 3, num_edges=0, seed=1)
        solutions = ITraversal(graph, 1).enumerate()
        # (∅, R) is the only maximal 1-biplex together with (L, ∅)-style sets
        # reachable by dropping right vertices; verify against brute force.
        assert set(solutions) == set(enumerate_mbps_bruteforce(graph, 1))


class TestLimits:
    def test_max_results(self, example_graph):
        algorithm = ITraversal(example_graph, 1, max_results=3)
        solutions = algorithm.enumerate()
        assert len(solutions) == 3
        assert algorithm.stats.hit_result_limit is True
        assert algorithm.stats.truncated is True

    def test_time_limit_zero_truncates(self, example_graph):
        algorithm = ITraversal(example_graph, 1, time_limit=0.0)
        solutions = algorithm.enumerate()
        assert algorithm.stats.hit_time_limit is True
        assert len(solutions) <= 1

    def test_streaming_stop_early(self, example_graph):
        algorithm = ITraversal(example_graph, 1)
        iterator = algorithm.run()
        first = next(iterator)
        assert isinstance(first, Biplex)

    def test_early_break_finalizes_stats(self, example_graph):
        # Regression: abandoning the generator mid-run (early break /
        # close()) used to leave stats.elapsed_seconds at 0.0 because the
        # finalization line after the DFS never executed.
        algorithm = ITraversal(example_graph, 1)
        iterator = algorithm.run()
        next(iterator)
        iterator.close()
        assert algorithm.stats.elapsed_seconds > 0.0
        assert algorithm.stats.num_reported == 1

    def test_early_break_in_for_loop_finalizes_stats(self, example_graph):
        algorithm = ITraversal(example_graph, 1)
        for _ in algorithm.run():
            break
        assert algorithm.stats.elapsed_seconds > 0.0

    def test_stats_counts(self, example_graph):
        algorithm = ITraversal(example_graph, 1)
        solutions = algorithm.enumerate()
        stats = algorithm.stats
        assert stats.num_reported == len(solutions)
        # Serial runs discover each solution exactly once; a parallel run
        # (REPRO_JOBS > 1) additionally counts cross-shard rediscoveries,
        # which the coordinator tallies in num_duplicate_solutions.
        assert stats.num_solutions == len(solutions) + stats.num_duplicate_solutions
        assert stats.num_links >= stats.num_solutions - 1
        assert stats.elapsed_seconds > 0


class TestRightExtensible:
    """The right-shrinking test must match a brute-force scan over all of R.

    In particular the ``len(left) <= k`` regime (where even a right vertex
    with no neighbour in ``left`` may be addable) used to fall back to
    scanning every right vertex of G; it now tests a single zero-adjacency
    representative, which must not change any answer.
    """

    @pytest.mark.parametrize("k", [1, 3])
    @pytest.mark.parametrize("backend", ["set", "bitset"])
    def test_matches_bruteforce_scan(self, k, backend):
        import random

        from repro.core import can_add_right
        from repro.core.traversal import ReverseSearchEngine, TraversalConfig
        from repro.graph.bipartite import subsets_within_budget

        rng = random.Random(11)
        graphs = [
            erdos_renyi_bipartite(
                rng.randint(2, 5), rng.randint(2, 5), num_edges=rng.randint(1, 4), seed=index
            )
            for index in range(4)
        ]
        for graph in graphs:
            engine = ReverseSearchEngine(graph, k, TraversalConfig(backend=backend))
            for left in subsets_within_budget(list(graph.left_vertices()), k + 1):
                for right in subsets_within_budget(list(graph.right_vertices()), 2):
                    local = Biplex.of(left, right)
                    expected = any(
                        can_add_right(graph, set(left), set(right), u, k)
                        for u in graph.right_vertices()
                        if u not in right
                    )
                    assert engine._right_extensible(local) == expected


class TestSizeThresholds:
    def test_theta_filters_small_solutions(self, example_graph):
        all_solutions = ITraversal(example_graph, 1).enumerate()
        large = ITraversal(example_graph, 1, theta_left=2, theta_right=3).enumerate()
        expected = {
            s for s in all_solutions if len(s.left) >= 2 and len(s.right) >= 3
        }
        assert set(large) == expected

    def test_theta_zero_keeps_everything(self, example_graph):
        assert set(ITraversal(example_graph, 1, theta_left=0, theta_right=0).enumerate()) == set(
            ITraversal(example_graph, 1).enumerate()
        )


class TestOutputOrder:
    def test_alternate_order_same_solution_set(self, example_graph):
        pre = set(ITraversal(example_graph, 1, output_order="pre").enumerate())
        alternate = set(ITraversal(example_graph, 1, output_order="alternate").enumerate())
        assert pre == alternate


class TestFunctionalWrappers:
    def test_enumerate_mbps(self, example_graph):
        solutions, stats = enumerate_mbps(example_graph, 1)
        assert stats.num_reported == len(solutions)
        assert set(solutions) == set(ITraversal(example_graph, 1).enumerate())

    def test_enumerate_mbps_respects_max_results(self, example_graph):
        solutions, stats = enumerate_mbps(example_graph, 1, max_results=2)
        assert len(solutions) == 2
        assert stats.truncated


class TestConfigHelpers:
    def test_itraversal_config_defaults(self):
        config = itraversal_config()
        assert config.left_anchored and config.right_shrinking and config.exclusion
        assert config.initial_solution == "anchored"

    def test_traversal_config_validation(self):
        with pytest.raises(ValueError):
            TraversalConfig(initial_solution="nope")
        with pytest.raises(ValueError):
            TraversalConfig(output_order="sideways")
        with pytest.raises(ValueError):
            TraversalConfig(theta_left=-1)
