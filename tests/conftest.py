"""Shared fixtures for the test suite."""

from __future__ import annotations

import os
import sys

import pytest

# Allow running the tests from a source checkout without installing.
_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.graph import BipartiteGraph, paper_example_graph  # noqa: E402


@pytest.fixture
def example_graph() -> BipartiteGraph:
    """The running example of the paper (Figure 1)."""
    return paper_example_graph()


@pytest.fixture
def tiny_graph() -> BipartiteGraph:
    """A 2 x 3 graph small enough to reason about by hand.

    Edges: v0-{u0,u1}, v1-{u1,u2}.
    """
    return BipartiteGraph(2, 3, edges=[(0, 0), (0, 1), (1, 1), (1, 2)])


@pytest.fixture
def complete_graph() -> BipartiteGraph:
    """A complete 3 x 3 bipartite graph."""
    return BipartiteGraph(3, 3, edges=[(v, u) for v in range(3) for u in range(3)])


@pytest.fixture
def empty_graph() -> BipartiteGraph:
    """A graph with vertices but no edges."""
    return BipartiteGraph(3, 4)


# The shared random-graph helper lives in backend_matrix.py (importable from
# test modules without colliding with the benchmarks' conftest).
