"""Tests of the observability layer (:mod:`repro.obs`) and its wiring.

Four groups:

* unit tests of the registry / tracing / slow-log primitives (snapshot
  determinism, disabled no-op, span-tree shape, threshold gating);
* service-level tests: trace blocks behind the per-request opt-in,
  span-tree shape serial vs ``jobs=2`` (worker spans grafted across the
  process boundary), cache hit/miss counters;
* daemon end-to-end: ``/v1/metrics`` (JSON + text), generic 500 bodies
  with the traceback exchanged for a ``trace_id`` through the error log,
  Content-Length validation, slow-query records;
* the session-table locking regression (close under the record lock,
  never under the table lock).
"""

from __future__ import annotations

import asyncio
import json
import socket
import threading
import time

import pytest

from repro import paper_example_graph, write_edge_list
from repro.core import ITraversal
from repro.obs import (
    MetricsRegistry,
    SlowQueryLog,
    Trace,
    current_trace,
    publish_run_stats,
    render_snapshot_text,
    reset_registry,
    series_key,
    span,
    trace,
)
from repro.service import Budgets, QueryService
from repro.service.http import ServiceHTTPServer
from repro.service.sessions import SessionTable


# --------------------------------------------------------------------- #
# Metrics registry
# --------------------------------------------------------------------- #
class TestMetricsRegistry:
    def test_series_key_sorts_labels(self):
        assert series_key("m", {}) == "m"
        assert series_key("m", {"b": 2, "a": 1}) == "m{a=1,b=2}"

    def test_snapshot_is_deterministic(self):
        def drive(registry):
            registry.inc("requests_total", route="enumerate", outcome="ok")
            registry.inc("requests_total", value=2, route="paginate", outcome="ok")
            registry.gauge("sessions_live", 3)
            registry.observe("latency_ms", 12.0, route="enumerate")
            registry.observe("latency_ms", 700.0, route="enumerate")
            return registry.snapshot()

        first = drive(MetricsRegistry())
        second = drive(MetricsRegistry())
        assert first == second
        assert json.dumps(first, sort_keys=True) == json.dumps(second, sort_keys=True)
        assert list(first["counters"]) == sorted(first["counters"])

    def test_histogram_buckets(self):
        registry = MetricsRegistry()
        registry.observe("ms", 0.5)
        registry.observe("ms", 3.0)
        registry.observe("ms", 99999.0)
        data = registry.snapshot()["histograms"]["ms"]
        assert data["count"] == 3
        assert data["buckets"]["le_1"] == 1
        assert data["buckets"]["le_5"] == 1
        assert data["buckets"]["le_inf"] == 1
        assert data["sum_ms"] == pytest.approx(100002.5)

    def test_disabled_registry_records_nothing(self):
        registry = MetricsRegistry(enabled=False)
        registry.inc("a")
        registry.gauge("b", 1.0)
        registry.observe("c", 5.0)
        assert registry.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}
        assert registry.counter_value("a") == 0

    def test_text_rendering(self):
        registry = MetricsRegistry()
        registry.inc("hits", route="x")
        registry.gauge("live", 2)
        registry.observe("ms", 3.0)
        text = registry.render_text()
        assert "counter hits{route=x} 1" in text
        assert "gauge live 2" in text
        assert "histogram ms count=1" in text
        # A snapshot fetched over HTTP renders identically.
        assert render_snapshot_text(registry.snapshot()) == text

    def test_publish_run_stats_per_site_counters(self):
        registry = MetricsRegistry()
        algorithm = ITraversal(paper_example_graph(), 1)
        algorithm.enumerate()
        publish_run_stats(algorithm.stats, registry=registry)
        snapshot = registry.snapshot()["counters"]
        assert snapshot["engine_runs_total"] == 1
        assert snapshot["engine_solutions_total"] == 13
        # The paper graph exercises at least one prune site.
        assert any(key.startswith("engine_pruned_total{site=") for key in snapshot)

    def test_publish_run_stats_disabled_is_a_noop(self):
        registry = MetricsRegistry(enabled=False)
        algorithm = ITraversal(paper_example_graph(), 1)
        algorithm.enumerate()
        publish_run_stats(algorithm.stats, registry=registry)
        assert registry.snapshot()["counters"] == {}

    def test_env_switch_disables_global_registry(self, monkeypatch):
        monkeypatch.setenv("REPRO_OBS", "off")
        registry = reset_registry()
        try:
            assert registry.enabled is False
        finally:
            monkeypatch.delenv("REPRO_OBS")
            reset_registry()


# --------------------------------------------------------------------- #
# Tracing
# --------------------------------------------------------------------- #
class TestTracing:
    def test_span_tree_shape(self):
        with trace("request") as active:
            with span("parse"):
                pass
            with span("traverse"):
                with span("inner"):
                    pass
        document = active.to_dict()
        names = [child["name"] for child in document["root"]["children"]]
        assert names == ["parse", "traverse"]
        traverse = document["root"]["children"][1]
        assert [c["name"] for c in traverse["children"]] == ["inner"]
        assert document["trace_id"] == active.trace_id

    def test_disabled_trace_yields_none_and_span_noops(self):
        with trace("request", enabled=False) as active:
            assert active is None
            assert current_trace() is None
            with span("phase"):  # must not blow up without a trace
                pass

    def test_attach_grafts_under_active_span(self):
        worker = {"name": "worker[0]", "elapsed_ms": 1.0}
        with trace("request") as active:
            with span("traverse"):
                current_trace().attach(worker)
        traverse = active.to_dict()["root"]["children"][0]
        assert worker in traverse["children"]

    def test_nested_traces_restore_outer(self):
        with trace("outer") as outer:
            with trace("inner"):
                assert current_trace().root.name == "inner"
            assert current_trace() is outer
        assert current_trace() is None

    def test_phase_times_sum_close_to_total(self):
        with trace("request") as active:
            with span("a"):
                time.sleep(0.02)
            with span("b"):
                time.sleep(0.02)
        document = active.to_dict()
        total = document["root"]["elapsed_ms"]
        phase_sum = sum(c["elapsed_ms"] for c in document["root"]["children"])
        assert phase_sum <= total
        assert phase_sum >= 0.9 * total

    def test_trace_explicit_id_is_kept(self):
        assert Trace("r", trace_id="abc123").trace_id == "abc123"


# --------------------------------------------------------------------- #
# Slow-query log
# --------------------------------------------------------------------- #
class TestSlowQueryLog:
    def test_threshold_gates_records(self, tmp_path):
        sink = tmp_path / "slow.jsonl"
        log = SlowQueryLog(threshold_ms=50.0, path=str(sink))
        assert log.record("enumerate", 10.0, "t1") is False
        assert log.record("enumerate", 60.0, "t2") is True
        lines = [json.loads(line) for line in sink.read_text().splitlines()]
        assert len(lines) == 1
        assert lines[0]["kind"] == "slow_query"
        assert lines[0]["trace_id"] == "t2"
        assert lines[0]["route"] == "enumerate"

    def test_no_threshold_disables_slow_records(self, tmp_path):
        log = SlowQueryLog(path=str(tmp_path / "slow.jsonl"))
        assert log.record("enumerate", 1e9, "t") is False

    def test_error_records_always_write(self, tmp_path):
        sink = tmp_path / "log.jsonl"
        log = SlowQueryLog(path=str(sink))  # no threshold at all
        log.error("http", "tid", "Traceback ...")
        record = json.loads(sink.read_text())
        assert record["kind"] == "error"
        assert record["trace_id"] == "tid"
        assert "Traceback" in record["traceback"]

    def test_from_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_SLOW_QUERY_MS", "125.5")
        monkeypatch.setenv("REPRO_SLOW_QUERY_LOG", str(tmp_path / "s.jsonl"))
        log = SlowQueryLog.from_env()
        assert log.threshold_ms == 125.5
        assert log.path == str(tmp_path / "s.jsonl")
        monkeypatch.setenv("REPRO_SLOW_QUERY_MS", "not-a-number")
        assert SlowQueryLog.from_env().threshold_ms is None  # disabled, no crash


# --------------------------------------------------------------------- #
# Service-level wiring
# --------------------------------------------------------------------- #
@pytest.fixture()
def fresh_registry(monkeypatch):
    # Pin the layer on regardless of the ambient environment: these tests
    # assert enabled-mode behaviour (the explicit REPRO_OBS=0 test below
    # covers the disabled mode and sets the variable itself).
    monkeypatch.delenv("REPRO_OBS", raising=False)
    registry = reset_registry()
    yield registry
    reset_registry()


@pytest.fixture(scope="module")
def graph_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("obs-graphs") / "paper.txt"
    write_edge_list(paper_example_graph(), path)
    return str(path)


def _phase_names(trace_block):
    return [child["name"] for child in trace_block["root"]["children"]]


class TestServiceObservability:
    def test_trace_block_is_opt_in(self, fresh_registry, graph_file):
        service = QueryService()
        query = {"graph": {"path": graph_file}, "k": 1}
        plain = service.enumerate(query)
        assert "trace" not in plain
        assert "trace_id" in plain
        traced = service.enumerate({**query, "trace": True})
        assert "trace" in traced
        # The trace flag is not part of the canonical query: the second
        # call hit the cache of the first.
        assert traced["cached"] is True
        assert traced["trace_id"] != plain["trace_id"]

    def test_serial_trace_phases(self, fresh_registry, graph_file):
        service = QueryService()
        response = service.enumerate(
            {"graph": {"path": graph_file}, "k": 1, "jobs": 1, "trace": True}
        )
        assert response["cached"] is False
        names = _phase_names(response["trace"])
        assert names == ["parse", "plan", "traverse", "serialize"]
        root = response["trace"]["root"]
        phase_sum = sum(child["elapsed_ms"] for child in root["children"])
        assert phase_sum <= root["elapsed_ms"] * 1.10

    def test_parallel_trace_grafts_worker_spans(self, fresh_registry, graph_file):
        service = QueryService()
        response = service.enumerate(
            {"graph": {"path": graph_file}, "k": 1, "jobs": 2, "trace": True}
        )
        assert response["cached"] is False
        traverse = next(
            child
            for child in response["trace"]["root"]["children"]
            if child["name"] == "traverse"
        )
        workers = [
            child
            for child in traverse.get("children", [])
            if child["name"].startswith("worker[")
        ]
        assert workers, "parallel run must graft worker spans under traverse"
        shard_names = [
            grandchild["name"]
            for child in workers
            for grandchild in child.get("children", [])
        ]
        assert shard_names and all(name.startswith("shard[") for name in shard_names)
        assert all(child["trace_id"] == response["trace"]["trace_id"] for child in workers)

    def test_request_and_cache_counters(self, fresh_registry, graph_file):
        service = QueryService()
        query = {"graph": {"path": graph_file}, "k": 1}
        service.enumerate(query)
        service.enumerate(query)
        with pytest.raises(Exception):
            service.enumerate({"graph": {"path": graph_file}})  # missing k
        counters = fresh_registry.snapshot()["counters"]
        assert counters["service_requests_total{outcome=ok,route=enumerate}"] == 2
        assert counters["service_requests_total{outcome=error,route=enumerate}"] == 1
        assert counters["service_result_cache_total{outcome=miss}"] == 1
        assert counters["service_result_cache_total{outcome=hit}"] == 1
        assert counters["registry_cache_total{cache=graph,outcome=miss}"] == 1
        assert counters["engine_runs_total"] == 1

    def test_session_counters(self, fresh_registry, graph_file):
        service = QueryService()
        query = {"graph": {"path": graph_file}, "k": 1}
        page = service.open_session(query, page_size=4)
        while not page["exhausted"]:
            page = service.next_page(
                session_id=page["session_id"], cursor=page["cursor"], page_size=4
            )
        counters = fresh_registry.snapshot()["counters"]
        assert counters["service_sessions_total{event=created}"] == 1
        assert counters["service_requests_total{outcome=ok,route=open_session}"] == 1
        assert counters["service_requests_total{outcome=ok,route=next_page}"] >= 1

    def test_disabled_layer_suppresses_traces_and_metrics(
        self, monkeypatch, graph_file
    ):
        monkeypatch.setenv("REPRO_OBS", "0")
        registry = reset_registry()
        try:
            service = QueryService()
            response = service.enumerate(
                {"graph": {"path": graph_file}, "k": 1, "trace": True}
            )
            assert "trace" not in response  # opt-in cannot override the kill switch
            assert "trace_id" in response  # ids still flow (error correlation)
            assert registry.snapshot()["counters"] == {}
        finally:
            monkeypatch.delenv("REPRO_OBS")
            reset_registry()

    def test_slow_query_log_records_service_requests(self, fresh_registry, graph_file, tmp_path):
        sink = tmp_path / "slow.jsonl"
        service = QueryService(
            slow_log=SlowQueryLog(threshold_ms=0.0, path=str(sink))
        )
        response = service.enumerate({"graph": {"path": graph_file}, "k": 1})
        records = [json.loads(line) for line in sink.read_text().splitlines()]
        assert len(records) == 1
        assert records[0]["kind"] == "slow_query"
        assert records[0]["route"] == "enumerate"
        assert records[0]["trace_id"] == response["trace_id"]


# --------------------------------------------------------------------- #
# Daemon end-to-end
# --------------------------------------------------------------------- #
@pytest.fixture()
def obs_daemon(tmp_path, monkeypatch):
    """A live daemon with a file-backed slow log; yields (url, server, sink)."""
    monkeypatch.delenv("REPRO_OBS", raising=False)
    reset_registry()
    sink = tmp_path / "obslog.jsonl"
    service = QueryService(slow_log=SlowQueryLog(path=str(sink)))
    server = ServiceHTTPServer(service=service, port=0)
    started = threading.Event()
    loop_holder = {}

    def run() -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        loop_holder["loop"] = loop

        async def boot():
            await server.start()
            started.set()
            await server.serve_forever()

        try:
            loop.run_until_complete(boot())
        except asyncio.CancelledError:
            pass
        finally:
            loop.run_until_complete(server.aclose())
            loop.close()

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    assert started.wait(timeout=10), "daemon failed to start"
    yield f"http://127.0.0.1:{server.port}", server, sink
    loop = loop_holder["loop"]
    for task in asyncio.all_tasks(loop):
        loop.call_soon_threadsafe(task.cancel)
    thread.join(timeout=10)
    reset_registry()


def _http(server: str, method: str, path: str, payload=None, raw=False):
    import urllib.error
    import urllib.request

    data = None if payload is None else json.dumps(payload).encode()
    request = urllib.request.Request(
        server + path, data=data, method=method,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            body = response.read()
            return response.status, body if raw else json.loads(body)
    except urllib.error.HTTPError as error:
        body = error.read()
        return error.code, body if raw else json.loads(body)


def _raw_request(url: str, request_bytes: bytes) -> bytes:
    host, port = url.replace("http://", "").split(":")
    with socket.create_connection((host, int(port)), timeout=10) as client:
        client.sendall(request_bytes)
        client.shutdown(socket.SHUT_WR)
        chunks = []
        while True:
            chunk = client.recv(65536)
            if not chunk:
                break
            chunks.append(chunk)
    return b"".join(chunks)


class TestDaemonObservability:
    def test_metrics_endpoint_counts_traffic(self, obs_daemon, graph_file):
        url, _, _ = obs_daemon
        reset_registry()
        try:
            query = {"graph": {"path": graph_file}, "k": 1}
            for _ in range(2):
                status, _body = _http(url, "POST", "/v1/enumerate", {"query": query})
                assert status == 200
            status, snapshot = _http(url, "GET", "/v1/metrics")
            assert status == 200
            counters = snapshot["counters"]
            assert counters["http_requests_total{path=/v1/enumerate,status=200}"] == 2
            assert counters["service_requests_total{outcome=ok,route=enumerate}"] == 2
            assert counters["service_result_cache_total{outcome=miss}"] == 1
            assert counters["service_result_cache_total{outcome=hit}"] == 1
            assert (
                "http_request_ms{path=/v1/enumerate}" in snapshot["histograms"]
            )
        finally:
            reset_registry()

    def test_metrics_text_format(self, obs_daemon):
        url, _, _ = obs_daemon
        status, body = _http(url, "GET", "/v1/metrics?format=text", raw=True)
        assert status == 200
        text = body.decode()
        assert text == "" or text.splitlines()[0].split()[0] in (
            "counter", "gauge", "histogram",
        )

    def test_trace_block_round_trips(self, obs_daemon, graph_file):
        url, _, _ = obs_daemon
        status, response = _http(
            url, "POST", "/v1/enumerate",
            {"query": {"graph": {"path": graph_file}, "k": 1, "jobs": 1}, "trace": True},
        )
        assert status == 200
        assert response["trace"]["trace_id"] == response["trace_id"]
        assert "traverse" in _phase_names(response["trace"])

    def test_bad_content_length_is_400(self, obs_daemon):
        url, _, _ = obs_daemon
        for bad in (b"abc", b"-5", b""):
            raw = _raw_request(
                url,
                b"POST /v1/enumerate HTTP/1.1\r\n"
                b"Host: x\r\n"
                b"Content-Length: " + bad + b"\r\n\r\n",
            )
            head = raw.split(b"\r\n", 1)[0]
            assert b"400" in head, (bad, head)
            assert b"Content-Length header" in raw.split(b"\r\n\r\n", 1)[1]

    def test_missing_content_length_still_works(self, obs_daemon):
        url, _, _ = obs_daemon
        raw = _raw_request(url, b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
        assert b"200" in raw.split(b"\r\n", 1)[0]

    def test_500_is_generic_and_logged(self, obs_daemon):
        url, server, sink = obs_daemon

        def explode(*_args, **_kwargs):
            raise RuntimeError("secret internal detail")

        original = server.service.enumerate
        server.service.enumerate = explode
        try:
            status, response = _http(url, "POST", "/v1/enumerate", {"query": {}})
        finally:
            server.service.enumerate = original
        assert status == 500
        assert response["error"] == "internal server error"
        assert "secret internal detail" not in json.dumps(response)
        trace_id = response["trace_id"]
        records = [json.loads(line) for line in sink.read_text().splitlines()]
        errors = [r for r in records if r["kind"] == "error"]
        assert len(errors) == 1
        assert errors[0]["trace_id"] == trace_id
        assert "secret internal detail" in errors[0]["traceback"]

    def test_slow_query_log_through_daemon(self, obs_daemon, graph_file):
        url, server, sink = obs_daemon
        server.service.slow_log.threshold_ms = 0.0
        try:
            status, _ = _http(
                url, "POST", "/v1/enumerate",
                {"query": {"graph": {"path": graph_file}, "k": 1}},
            )
            assert status == 200
        finally:
            server.service.slow_log.threshold_ms = None
        records = [json.loads(line) for line in sink.read_text().splitlines()]
        assert any(
            r["kind"] == "slow_query" and r["route"] == "enumerate" for r in records
        )


# --------------------------------------------------------------------- #
# Session-table locking regression
# --------------------------------------------------------------------- #
class _BlockingCloseSession:
    """A fake session whose close() grabs an external lock.

    Models the real deadlock: EnumerationSession.close() can run
    arbitrary teardown, and the old table closed records while holding
    the table lock — a close that needs the table lock (or any lock a
    pager thread holds while calling into the table) deadlocked.
    """

    def __init__(self, table_lock_getter):
        self._get_lock = table_lock_getter
        self.closed = threading.Event()

    def close(self):
        with self._get_lock():  # must be acquirable => not held by the table
            self.closed.set()


class TestSessionTableLocking:
    def test_eviction_closes_outside_the_table_lock(self):
        clock = {"now": 0.0}
        table = SessionTable(ttl_seconds=10.0, capacity=8, clock=lambda: clock["now"])
        session = _BlockingCloseSession(lambda: table._lock)
        record = table.create(session)  # noqa: F841 - kept live via the table
        clock["now"] = 100.0  # expire it

        done = threading.Event()

        def sweep():
            table.sweep()
            done.set()

        worker = threading.Thread(target=sweep, daemon=True)
        worker.start()
        assert done.wait(timeout=5), "sweep deadlocked closing an expired session"
        assert session.closed.is_set()

    def test_capacity_eviction_closes_outside_the_table_lock(self):
        clock = {"now": 0.0}
        table = SessionTable(ttl_seconds=1000.0, capacity=1, clock=lambda: clock["now"])
        first = _BlockingCloseSession(lambda: table._lock)
        table.create(first)

        done = threading.Event()

        def create_second():
            table.create(_BlockingCloseSession(lambda: table._lock))
            done.set()

        worker = threading.Thread(target=create_second, daemon=True)
        worker.start()
        assert done.wait(timeout=5), "capacity eviction deadlocked"
        assert first.closed.is_set()

    def test_close_waits_for_the_record_lock(self):
        """A sweep must not tear a session down under an active pager."""
        clock = {"now": 0.0}
        table = SessionTable(ttl_seconds=10.0, capacity=8, clock=lambda: clock["now"])
        closed_while_held = []

        class Probe:
            def close(self):
                closed_while_held.append(holder_active.is_set())

        record = table.create(Probe())
        holder_active = threading.Event()
        release = threading.Event()

        def pager():
            with record.lock:
                holder_active.set()
                release.wait(timeout=5)
                holder_active.clear()

        holder = threading.Thread(target=pager, daemon=True)
        holder.start()
        assert holder_active.wait(timeout=5)
        clock["now"] = 100.0

        swept = threading.Event()

        def sweep():
            table.sweep()
            swept.set()

        sweeper = threading.Thread(target=sweep, daemon=True)
        sweeper.start()
        time.sleep(0.1)
        # The sweep is parked on the record lock while the pager holds it.
        assert not swept.is_set()
        assert closed_while_held == []
        release.set()
        assert swept.wait(timeout=5)
        holder.join(timeout=5)
        assert closed_while_held == [False]

    def test_record_lock_is_reentrant_for_self_removal(self):
        """QueryService._page removes an exhausted record it still holds."""
        table = SessionTable(ttl_seconds=10.0, capacity=8)

        class Noop:
            def close(self):
                pass

        record = table.create(Noop())
        with record.lock:
            assert table.remove(record.session_id) is True  # must not self-deadlock

    def test_threaded_pagination_with_ttl_churn(self, graph_file):
        """Concurrent pagers + sweeps + evictions: no deadlock, no error."""
        clock = {"now": 0.0}
        tick = threading.Lock()

        def now():
            with tick:
                return clock["now"]

        table = SessionTable(ttl_seconds=5.0, capacity=4, clock=now)
        service = QueryService(
            sessions=table, budgets=Budgets(max_page_size=1000)
        )
        query = {"graph": {"path": graph_file}, "k": 1}
        errors = []
        barrier = threading.Barrier(4)

        def paginate():
            try:
                barrier.wait(timeout=10)
                for _ in range(3):
                    page = service.open_session(dict(query), page_size=3)
                    while not page["exhausted"]:
                        page = service.next_page(
                            session_id=page["session_id"],
                            cursor=page["cursor"],
                            page_size=3,
                        )
            except Exception as error:  # pragma: no cover - the assertion
                errors.append(error)

        def churn():
            try:
                barrier.wait(timeout=10)
                for _ in range(30):
                    with tick:
                        clock["now"] += 1.0
                    table.sweep()
                    time.sleep(0.005)
            except Exception as error:  # pragma: no cover - the assertion
                errors.append(error)

        threads = [threading.Thread(target=paginate, daemon=True) for _ in range(3)]
        threads.append(threading.Thread(target=churn, daemon=True))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
            assert not thread.is_alive(), "worker deadlocked"
        assert errors == []
