"""Property-based tests (hypothesis) for the core invariants of the library.

These are the repository's strongest correctness guarantees: on arbitrary
small random bipartite graphs, every enumeration algorithm must agree with
the exhaustive brute force, and the structural lemmas the paper relies on
(hereditary property, invariants of the designated initial solution, the
sparsification orderings) must hold.
"""

from __future__ import annotations

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines import enumerate_mbps_bruteforce, enumerate_mbps_imb
from repro.core import (
    BTraversal,
    ITraversal,
    extend_to_maximal,
    initial_solution_left_anchored,
    is_k_biplex,
    is_maximal_k_biplex,
)
from repro.core.enum_almost_sat import (
    EnumAlmostSatConfig,
    enum_local_solutions,
    enum_local_solutions_naive,
)
from repro.graph import BipartiteGraph, as_backend, available_backends
from repro.graph.butterfly import count_butterflies, edge_butterfly_counts, k_bitruss
from repro.graph.cores import alpha_beta_core

SETTINGS = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@st.composite
def bipartite_graphs(draw, max_left=5, max_right=5):
    """Random small bipartite graphs."""
    n_left = draw(st.integers(min_value=1, max_value=max_left))
    n_right = draw(st.integers(min_value=1, max_value=max_right))
    possible = [(v, u) for v in range(n_left) for u in range(n_right)]
    edges = draw(
        st.lists(st.sampled_from(possible), min_size=0, max_size=len(possible), unique=True)
    )
    return BipartiteGraph(n_left, n_right, edges=edges)


#: Deliberately asymmetric side sizes: the butterfly pivot-side selection and
#: the per-side core constraints only show their bugs off the diagonal.
asymmetric_graphs = bipartite_graphs(max_left=7, max_right=3)


def _bruteforce_butterflies(graph):
    """Oracle: count 2 × 2 bicliques by enumerating left pairs."""
    from itertools import combinations

    total = 0
    for v1, v2 in combinations(range(graph.n_left), 2):
        common = len(
            set(graph.neighbors_of_left(v1)) & set(graph.neighbors_of_left(v2))
        )
        total += common * (common - 1) // 2
    return total


def _bruteforce_edge_supports(graph):
    """Oracle: per-edge butterfly membership counted pair-by-pair."""
    support = {}
    for v, u in graph.edges():
        count = 0
        for v_prime in graph.left_vertices():
            if v_prime == v or not graph.has_edge(v_prime, u):
                continue
            for u_prime in graph.right_vertices():
                if u_prime == u:
                    continue
                if graph.has_edge(v, u_prime) and graph.has_edge(v_prime, u_prime):
                    count += 1
        support[(v, u)] = count
    return support


def _bruteforce_alpha_beta_core(graph, alpha, beta):
    """Oracle: recompute every degree each round, remove all violators at once."""
    left = set(graph.left_vertices())
    right = set(graph.right_vertices())
    while True:
        bad_left = {v for v in left if len(set(graph.neighbors_of_left(v)) & right) < alpha}
        bad_right = {u for u in right if len(set(graph.neighbors_of_right(u)) & left) < beta}
        if not bad_left and not bad_right:
            return left, right
        left -= bad_left
        right -= bad_right


ks = st.integers(min_value=1, max_value=2)


class TestCrossAlgorithmEquivalence:
    @SETTINGS
    @given(graph=bipartite_graphs(), k=ks)
    def test_itraversal_matches_bruteforce(self, graph, k):
        assert set(ITraversal(graph, k).enumerate()) == set(
            enumerate_mbps_bruteforce(graph, k)
        )

    @SETTINGS
    @given(graph=bipartite_graphs(), k=ks)
    def test_btraversal_matches_bruteforce(self, graph, k):
        assert set(BTraversal(graph, k).enumerate()) == set(
            enumerate_mbps_bruteforce(graph, k)
        )

    @SETTINGS
    @given(graph=bipartite_graphs(), k=ks)
    def test_imb_matches_bruteforce(self, graph, k):
        assert set(enumerate_mbps_imb(graph, k)) == set(enumerate_mbps_bruteforce(graph, k))

    @SETTINGS
    @given(graph=bipartite_graphs(max_left=4, max_right=4), k=ks)
    def test_variants_and_anchors_agree(self, graph, k):
        reference = set(ITraversal(graph, k).enumerate())
        assert set(ITraversal(graph, k, variant="no-exclusion").enumerate()) == reference
        assert set(ITraversal(graph, k, variant="left-anchored-only").enumerate()) == reference
        assert set(ITraversal(graph, k, anchor="right").enumerate()) == reference

    @SETTINGS
    @given(graph=bipartite_graphs(max_left=4, max_right=4), k=ks)
    def test_enumerators_backend_identical(self, graph, k):
        """Core enumerators and converted baselines agree across backends."""
        from repro.baselines import enumerate_mbps_inflation

        reference = set(enumerate_mbps_bruteforce(graph, k))
        for backend in available_backends():
            assert set(ITraversal(graph, k, backend=backend).enumerate()) == reference
            assert set(BTraversal(graph, k, backend=backend).enumerate()) == reference
            assert set(enumerate_mbps_imb(graph, k, backend=backend)) == reference
            assert set(enumerate_mbps_inflation(graph, k, backend=backend)) == reference


class TestStructuralInvariants:
    @SETTINGS
    @given(graph=bipartite_graphs(), k=ks)
    def test_every_solution_is_a_maximal_k_biplex(self, graph, k):
        for solution in ITraversal(graph, k).enumerate():
            assert is_k_biplex(graph, solution.left, solution.right, k)
            assert is_maximal_k_biplex(graph, solution.left, solution.right, k)

    @SETTINGS
    @given(graph=bipartite_graphs(), k=ks, data=st.data())
    def test_hereditary_property(self, graph, k, data):
        """Lemma 2.2: every subgraph of a k-biplex is a k-biplex."""
        solutions = ITraversal(graph, k).enumerate()
        if not solutions:
            return
        solution = data.draw(st.sampled_from(solutions))
        left_subset = data.draw(st.sets(st.sampled_from(sorted(solution.left) or [0])))
        right_subset = data.draw(st.sets(st.sampled_from(sorted(solution.right) or [0])))
        left_subset &= solution.left
        right_subset &= solution.right
        assert is_k_biplex(graph, left_subset, right_subset, k)

    @SETTINGS
    @given(graph=bipartite_graphs(), k=ks)
    def test_initial_solution_invariants(self, graph, k):
        """H0 = (L0, R) covers the whole right side and is maximal (Section 3.2)."""
        h0 = initial_solution_left_anchored(graph, k)
        assert set(h0.right) == set(graph.right_vertices())
        assert is_maximal_k_biplex(graph, h0.left, h0.right, k)

    @SETTINGS
    @given(graph=bipartite_graphs(), k=ks, data=st.data())
    def test_extension_returns_maximal_superset(self, graph, k, data):
        left = data.draw(st.sets(st.integers(min_value=0, max_value=graph.n_left - 1)))
        right = data.draw(st.sets(st.integers(min_value=0, max_value=graph.n_right - 1)))
        if not is_k_biplex(graph, left, right, k):
            return
        extended = extend_to_maximal(graph, left, right, k)
        assert left <= set(extended.left)
        assert right <= set(extended.right)
        assert is_maximal_k_biplex(graph, extended.left, extended.right, k)

    @SETTINGS
    @given(graph=bipartite_graphs(), k=ks)
    def test_solution_count_monotone_in_structure(self, graph, k):
        """No two distinct solutions may contain one another."""
        solutions = ITraversal(graph, k).enumerate()
        for first in solutions:
            for second in solutions:
                if first != second:
                    assert not first.contains(second)


class TestEnumAlmostSatProperties:
    @SETTINGS
    @given(graph=bipartite_graphs(max_left=4, max_right=4), k=ks, data=st.data())
    def test_refined_enumeration_equals_naive(self, graph, k, data):
        solutions = ITraversal(graph, k).enumerate()
        if not solutions:
            return
        solution = data.draw(st.sampled_from(solutions))
        outside = [v for v in graph.left_vertices() if v not in solution.left]
        if not outside:
            return
        vertex = data.draw(st.sampled_from(outside))
        naive = set(
            enum_local_solutions_naive(graph, set(solution.left), set(solution.right), vertex, k)
        )
        for right_level in (1, 2):
            for left_level in (1, 2):
                config = EnumAlmostSatConfig(right_level, left_level)
                fast = set(
                    enum_local_solutions(
                        graph, set(solution.left), set(solution.right), vertex, k, config
                    )
                )
                assert fast == naive


class TestCoreProperties:
    @SETTINGS
    @given(
        graph=bipartite_graphs(max_left=6, max_right=6),
        alpha=st.integers(min_value=0, max_value=3),
        beta=st.integers(min_value=0, max_value=3),
    )
    def test_core_degree_constraints(self, graph, alpha, beta):
        left, right = alpha_beta_core(graph, alpha, beta)
        for v in left:
            assert len(set(graph.neighbors_of_left(v)) & right) >= alpha
        for u in right:
            assert len(set(graph.neighbors_of_right(u)) & left) >= beta

    @SETTINGS
    @given(
        graph=bipartite_graphs(max_left=6, max_right=6),
        alpha=st.integers(min_value=1, max_value=3),
        beta=st.integers(min_value=1, max_value=3),
    )
    def test_core_is_maximal(self, graph, alpha, beta):
        """No peeled vertex can be added back while keeping the degree bounds."""
        left, right = alpha_beta_core(graph, alpha, beta)
        for v in graph.left_vertices():
            if v in left:
                continue
            # v was peeled: within the core it has fewer than alpha neighbours.
            assert len(set(graph.neighbors_of_left(v)) & right) < alpha

    @SETTINGS
    @given(graph=asymmetric_graphs)
    def test_butterfly_count_matches_bruteforce_on_both_backends(self, graph):
        expected = _bruteforce_butterflies(graph)
        for backend in available_backends():
            assert count_butterflies(as_backend(graph, backend)) == expected

    @SETTINGS
    @given(graph=asymmetric_graphs)
    def test_edge_supports_match_bruteforce_on_both_backends(self, graph):
        expected = _bruteforce_edge_supports(graph)
        for backend in available_backends():
            assert edge_butterfly_counts(as_backend(graph, backend)) == expected

    @SETTINGS
    @given(graph=asymmetric_graphs, k=st.integers(min_value=1, max_value=3))
    def test_k_bitruss_backends_agree_and_supports_hold(self, graph, k):
        expected_edges = sorted(k_bitruss(graph, k).edges())
        for backend in available_backends():
            truss = k_bitruss(as_backend(graph, backend), k)
            assert sorted(truss.edges()) == expected_edges
            assert all(count >= k for count in edge_butterfly_counts(truss).values())

    @SETTINGS
    @given(
        graph=asymmetric_graphs,
        alpha=st.integers(min_value=0, max_value=3),
        beta=st.integers(min_value=0, max_value=3),
    )
    def test_core_matches_bruteforce_on_both_backends(self, graph, alpha, beta):
        expected = _bruteforce_alpha_beta_core(graph, alpha, beta)
        for backend in available_backends():
            assert alpha_beta_core(as_backend(graph, backend), alpha, beta) == expected

    @SETTINGS
    @given(graph=bipartite_graphs(max_left=5, max_right=5), k=ks, theta=st.integers(2, 4))
    def test_large_mbp_enumeration_equals_filtering(self, graph, k, theta):
        from repro.core import LargeMBPEnumerator

        expected = {
            s
            for s in enumerate_mbps_bruteforce(graph, k)
            if len(s.left) >= theta and len(s.right) >= theta
        }
        assert set(LargeMBPEnumerator(graph, k, theta=theta).enumerate()) == expected
