"""Tests for the bTraversal baseline."""

import pytest

from repro.baselines import enumerate_mbps_bruteforce
from repro.core import BTraversal, btraversal_config, enumerate_mbps_btraversal
from repro.graph import erdos_renyi_bipartite


class TestConfig:
    def test_btraversal_config_flags(self):
        config = btraversal_config()
        assert config.left_anchored is False
        assert config.right_shrinking is False
        assert config.exclusion is False
        assert config.initial_solution == "arbitrary"


class TestCorrectness:
    def test_matches_bruteforce_on_example(self, example_graph):
        for k in (1, 2):
            expected = set(enumerate_mbps_bruteforce(example_graph, k))
            assert set(BTraversal(example_graph, k).enumerate()) == expected

    @pytest.mark.parametrize("seed", range(6))
    def test_matches_bruteforce_on_random_graphs(self, seed):
        graph = erdos_renyi_bipartite(4, 4, num_edges=5 + seed, seed=50 + seed)
        for k in (1, 2):
            expected = set(enumerate_mbps_bruteforce(graph, k))
            assert set(BTraversal(graph, k).enumerate()) == expected

    def test_same_solutions_as_itraversal(self, example_graph):
        from repro.core import ITraversal

        assert set(BTraversal(example_graph, 1).enumerate()) == set(
            ITraversal(example_graph, 1).enumerate()
        )


class TestBehaviour:
    def test_generates_more_links_than_itraversal(self, example_graph):
        """The bTraversal solution graph is denser (the point of the paper)."""
        from repro.core import ITraversal

        btraversal = BTraversal(example_graph, 1)
        btraversal.enumerate()
        itraversal = ITraversal(example_graph, 1)
        itraversal.enumerate()
        assert btraversal.stats.num_links > itraversal.stats.num_links

    def test_max_results_limit(self, example_graph):
        algorithm = BTraversal(example_graph, 1, max_results=2)
        assert len(algorithm.enumerate()) == 2
        assert algorithm.stats.hit_result_limit

    def test_functional_wrapper(self, example_graph):
        solutions, stats = enumerate_mbps_btraversal(example_graph, 1)
        assert stats.num_reported == len(solutions)
        assert len(solutions) == len(set(solutions))

    def test_rejects_invalid_k(self, example_graph):
        with pytest.raises(ValueError):
            BTraversal(example_graph, 0)
