"""Tests for the large-MBP extension (Section 5)."""

import pytest

from repro.baselines import enumerate_mbps_bruteforce
from repro.core import ITraversal, LargeMBPEnumerator, enumerate_large_mbps, filter_large
from repro.graph import erdos_renyi_bipartite, paper_example_graph, planted_biplex_graph


def brute_large(graph, k, theta):
    return {
        s
        for s in enumerate_mbps_bruteforce(graph, k)
        if len(s.left) >= theta and len(s.right) >= theta
    }


class TestLargeEnumeration:
    @pytest.mark.parametrize("theta", [2, 3])
    def test_matches_bruteforce_on_example(self, example_graph, theta):
        expected = brute_large(example_graph, 1, theta)
        enumerator = LargeMBPEnumerator(example_graph, 1, theta=theta)
        assert set(enumerator.enumerate()) == expected

    @pytest.mark.parametrize("theta", [2, 3])
    @pytest.mark.parametrize("use_core", [True, False])
    @pytest.mark.parametrize("seed", range(4))
    def test_matches_bruteforce_on_random_graphs(self, seed, theta, use_core):
        graph = erdos_renyi_bipartite(5, 5, num_edges=12 + seed, seed=seed)
        expected = brute_large(graph, 1, theta)
        enumerator = LargeMBPEnumerator(
            graph, 1, theta=theta, use_core_preprocessing=use_core
        )
        assert set(enumerator.enumerate()) == expected

    def test_planted_block_is_found(self):
        graph = planted_biplex_graph(
            15, 15, block_left=5, block_right=5, k=1, background_edges=10, seed=3
        )
        solutions = LargeMBPEnumerator(graph, 1, theta=4).enumerate()
        assert solutions, "the planted near-biplex block must be recovered"
        assert all(len(s.left) >= 4 and len(s.right) >= 4 for s in solutions)

    def test_asymmetric_thresholds(self, example_graph):
        enumerator = LargeMBPEnumerator(example_graph, 1, theta_left=1, theta_right=4)
        for solution in enumerator.enumerate():
            assert len(solution.left) >= 1
            assert len(solution.right) >= 4

    def test_core_graph_exposed(self, example_graph):
        enumerator = LargeMBPEnumerator(example_graph, 1, theta=3)
        assert enumerator.core_graph.n_left <= example_graph.n_left
        assert enumerator.core_graph.n_right <= example_graph.n_right

    def test_translated_ids_reference_original_graph(self):
        graph = planted_biplex_graph(
            12, 12, block_left=4, block_right=4, k=1, background_edges=5, seed=9
        )
        for solution in LargeMBPEnumerator(graph, 1, theta=3).enumerate():
            for v in solution.left:
                assert 0 <= v < graph.n_left
            for u in solution.right:
                assert 0 <= u < graph.n_right

    def test_functional_wrapper(self, example_graph):
        solutions, stats = enumerate_large_mbps(example_graph, 1, theta=3)
        assert set(solutions) == brute_large(example_graph, 1, 3)
        assert stats.num_reported == len(solutions)


class TestAgainstPostFiltering:
    def test_equals_enumerate_then_filter(self, example_graph):
        everything = ITraversal(example_graph, 1).enumerate()
        filtered = set(filter_large(everything, 3, 3))
        direct = set(LargeMBPEnumerator(example_graph, 1, theta=3).enumerate())
        assert direct == filtered

    def test_filter_large_keeps_order(self, example_graph):
        everything = ITraversal(example_graph, 1).enumerate()
        filtered = filter_large(everything, 1, 1)
        assert filtered == [s for s in everything if len(s.left) >= 1 and len(s.right) >= 1]


class TestTruncationPropagation:
    """A capped run must never be reported as complete (PR 5 bugfix).

    The engine raises the result-limit flag *before* yielding the capped
    solution, so even a consumer that stops iterating the moment it has its
    ``max_results`` solutions (break / islice — the natural way to respect
    a cap) observes ``stats.truncated``; previously the flag was only set
    when the abandoned generator was resumed, which never happens.
    """

    def test_max_results_one_marks_truncated(self, example_graph):
        enumerator = LargeMBPEnumerator(example_graph, 1, theta=1, max_results=1)
        solutions = enumerator.enumerate()
        assert len(solutions) == 1
        assert enumerator.stats.hit_result_limit
        assert enumerator.stats.truncated
        assert enumerator.truncated

    def test_consumer_break_at_cap_marks_truncated(self, example_graph):
        enumerator = LargeMBPEnumerator(example_graph, 1, theta=1, max_results=1)
        for _ in enumerator.run():
            break  # the generator is never resumed past the capped yield
        assert enumerator.stats.hit_result_limit
        assert enumerator.truncated

    def test_islice_consumption_marks_truncated(self, example_graph):
        from itertools import islice

        enumerator = LargeMBPEnumerator(example_graph, 1, theta=1, max_results=2)
        taken = list(islice(enumerator.run(), 2))
        assert len(taken) == 2
        assert enumerator.truncated

    def test_tiny_time_limit_marks_truncated(self, example_graph):
        enumerator = LargeMBPEnumerator(example_graph, 1, theta=1, time_limit=1e-9)
        solutions = enumerator.enumerate()
        assert solutions == []
        assert enumerator.stats.hit_time_limit
        assert enumerator.truncated

    def test_uncapped_run_is_not_marked(self, example_graph):
        enumerator = LargeMBPEnumerator(example_graph, 1, theta=2)
        enumerator.enumerate()
        assert not enumerator.truncated

    def test_filtered_capped_solutions_keep_their_status(self, example_graph):
        # filter_large itself is status-free; the run's stats are the source
        # of truth for completeness of the filtered list.
        enumerator = LargeMBPEnumerator(example_graph, 1, theta=1, max_results=1)
        filtered = filter_large(enumerator.enumerate(), 2, 2)
        assert len(filtered) <= 1
        assert enumerator.truncated

    def test_itraversal_break_at_cap_marks_truncated(self, example_graph):
        # The fix lives in the engine, so the plain traversals gain it too.
        algorithm = ITraversal(example_graph, 1, max_results=1)
        next(algorithm.run())
        assert algorithm.stats.hit_result_limit


class TestPruningDoesNotOverPrune:
    @pytest.mark.parametrize("seed", range(4))
    def test_theta_larger_than_any_solution(self, seed):
        graph = erdos_renyi_bipartite(4, 4, num_edges=6, seed=200 + seed)
        enumerator = LargeMBPEnumerator(graph, 1, theta=10)
        assert enumerator.enumerate() == []

    def test_theta_one_equals_plain_enumeration_nonempty_sides(self, example_graph):
        plain = {
            s
            for s in ITraversal(example_graph, 1).enumerate()
            if len(s.left) >= 1 and len(s.right) >= 1
        }
        assert set(LargeMBPEnumerator(example_graph, 1, theta=1).enumerate()) == plain
