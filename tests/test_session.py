"""Tests of long-lived enumeration sessions and resumable cursors.

The tentpole contract: a session interrupted at *any* point and resumed
from its cursor token produces the **exact suffix** of the uninterrupted
run — across every adjacency backend, serial and parallel, and every prep
mode.  Plus the front-end equivalences (``session().stream()`` ==
``run()``), the token hygiene errors, and cross-backend cursor
portability (the fingerprint deliberately excludes the backend).
"""

from __future__ import annotations

import pytest
from backend_matrix import ALL_BACKENDS, random_graphs

from repro.core import CursorError, EnumerationSession, ITraversal
from repro.core.itraversal import itraversal_config
from repro.graph import erdos_renyi_bipartite, paper_example_graph

GRAPHS = [
    paper_example_graph(),
    erdos_renyi_bipartite(7, 6, num_edges=26, seed=11),
]


def _session(graph, k=1, **overrides):
    config = itraversal_config(**overrides)
    return EnumerationSession(graph, k, config)


def _full_run(graph, k=1, **overrides):
    session = _session(graph, k, **overrides)
    return list(session.stream())


class TestSessionBasics:
    def test_stream_equals_classic_run(self):
        graph = paper_example_graph()
        expected = ITraversal(graph, 1).enumerate()
        assert _full_run(graph) == expected

    def test_next_batch_pages_through_everything(self):
        graph = paper_example_graph()
        expected = _full_run(graph)
        session = _session(graph)
        collected = []
        while not session.exhausted:
            collected.extend(session.next_batch(3))
        assert collected == expected
        assert session.emitted == len(expected)

    def test_next_batch_rejects_non_positive_sizes(self):
        session = _session(paper_example_graph())
        with pytest.raises(ValueError):
            session.next_batch(0)

    def test_front_end_session_methods(self):
        graph = paper_example_graph()
        expected = ITraversal(graph, 1).enumerate()
        session = ITraversal(graph, 1).session()
        assert list(session.stream()) == expected

    def test_exhausted_only_after_observation(self):
        graph = paper_example_graph()
        total = len(_full_run(graph))
        session = _session(graph)
        session.next_batch(total)
        assert not session.exhausted  # end not yet observed
        assert session.next_batch(1) == []
        assert session.exhausted


class TestCursorSuffixEquality:
    """Resume from any checkpoint yields the exact suffix."""

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    @pytest.mark.parametrize("prep", ["off", "core", "core+order"])
    def test_serial_matrix(self, backend, prep):
        for graph in GRAPHS:
            expected = _full_run(graph, backend=backend, prep=prep, jobs=1)
            cuts = sorted({0, 1, len(expected) // 2, max(len(expected) - 1, 0)})
            for cut in cuts:
                session = _session(graph, backend=backend, prep=prep, jobs=1)
                prefix = session.next_batch(cut) if cut else []
                token = session.cursor()
                session.close()
                resumed = EnumerationSession.resume(
                    graph,
                    1,
                    token,
                    itraversal_config(backend=backend, prep=prep, jobs=1),
                )
                suffix = list(resumed.stream())
                assert prefix + suffix == expected, (backend, prep, cut)

    @pytest.mark.parametrize("prep", ["off", "core+order"])
    def test_parallel_offset_cursor(self, prep):
        graph = GRAPHS[1]
        expected = _full_run(graph, prep=prep, jobs=2)
        cut = len(expected) // 2
        session = _session(graph, prep=prep, jobs=2)
        prefix = session.next_batch(cut)
        token = session.cursor()
        session.close()
        resumed = EnumerationSession.resume(
            graph, 1, token, itraversal_config(prep=prep, jobs=2)
        )
        suffix = list(resumed.stream())
        assert prefix + suffix == expected

    def test_mid_batch_checkpoints_compose(self):
        """Checkpoint after every page; each resume continues exactly."""
        graph = GRAPHS[1]
        expected = _full_run(graph)
        collected = []
        session = _session(graph)
        while True:
            page = session.next_batch(5)
            collected.extend(page)
            if session.exhausted:
                break
            token = session.cursor()
            session.close()
            session = EnumerationSession.resume(graph, 1, token, itraversal_config())
        assert collected == expected

    def test_cross_backend_portability(self):
        """A cursor captured on one backend resumes on another."""
        graph = paper_example_graph()
        expected = _full_run(graph, backend="bitset")
        session = _session(graph, backend="bitset")
        prefix = session.next_batch(4)
        token = session.cursor()
        session.close()
        resumed = EnumerationSession.resume(
            graph, 1, token, itraversal_config(backend="set")
        )
        assert prefix + list(resumed.stream()) == expected

    def test_exhausted_cursor_resumes_empty(self):
        graph = paper_example_graph()
        session = _session(graph)
        list(session.stream())
        token = session.cursor()
        resumed = EnumerationSession.resume(graph, 1, token, itraversal_config())
        assert resumed.exhausted
        assert list(resumed.stream()) == []

    def test_random_graph_sweep(self):
        for graph in random_graphs(4, max_side=5, seed=77):
            expected = _full_run(graph, jobs=1)
            cut = max(1, len(expected) // 3)
            session = _session(graph, jobs=1)
            prefix = session.next_batch(cut)
            token = session.cursor()
            session.close()
            resumed = EnumerationSession.resume(graph, 1, token, itraversal_config(jobs=1))
            assert prefix + list(resumed.stream()) == expected


class TestCursorHygiene:
    def test_malformed_token_rejected(self):
        with pytest.raises(CursorError):
            EnumerationSession.resume(
                paper_example_graph(), 1, "not-a-token", itraversal_config()
            )

    def test_wrong_graph_rejected(self):
        session = _session(paper_example_graph())
        session.next_batch(2)
        token = session.cursor()
        other = erdos_renyi_bipartite(4, 4, num_edges=9, seed=3)
        with pytest.raises(CursorError):
            EnumerationSession.resume(other, 1, token, itraversal_config())

    def test_wrong_k_rejected(self):
        session = _session(paper_example_graph())
        session.next_batch(2)
        token = session.cursor()
        with pytest.raises(CursorError):
            EnumerationSession.resume(paper_example_graph(), 2, token, itraversal_config())

    def test_jobs_mode_mismatch_rejected(self):
        session = _session(paper_example_graph(), jobs=1)
        session.next_batch(2)
        token = session.cursor()
        with pytest.raises(CursorError):
            EnumerationSession.resume(
                paper_example_graph(), 1, token, itraversal_config(jobs=2)
            )

    def test_completion_order_refuses_cursor(self):
        config = itraversal_config(jobs=2)
        from dataclasses import replace

        config = replace(config, parallel_order="completion")
        session = EnumerationSession(paper_example_graph(), 1, config)
        with pytest.raises(CursorError):
            session.cursor()
        session.close()

    def test_budgets_may_differ_on_resume(self):
        """max_results / time_limit are deliberately not fingerprinted.

        Pinned to jobs=1: a *capped* parallel run keeps the first
        arrivals (scheduling-dependent subset), so only serial capped
        prefixes are comparable against the uncapped stream.
        """
        graph = paper_example_graph()
        expected = _full_run(graph, jobs=1)
        session = _session(graph, max_results=4, jobs=1)
        prefix = session.next_batch(3)
        token = session.cursor()
        session.close()
        resumed = EnumerationSession.resume(
            graph, 1, token, itraversal_config(max_results=None, jobs=1)
        )
        assert prefix + list(resumed.stream()) == expected


class TestStatsContinuity:
    def test_resumed_stats_carry_counters(self):
        graph = GRAPHS[1]
        session = _session(graph)
        session.next_batch(5)
        token = session.cursor()
        reported_before = session.stats.num_reported
        session.close()
        resumed = EnumerationSession.resume(graph, 1, token, itraversal_config())
        list(resumed.stream())
        full = _session(graph)
        list(full.stream())
        # num_reported continues from the checkpoint and lands on the total.
        assert reported_before == 5
        assert resumed.stats.num_reported == full.stats.num_reported
