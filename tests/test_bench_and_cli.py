"""Tests for the benchmark harness, reporting utilities, experiment drivers and CLI."""

import pytest

from repro.bench import (
    EXPERIMENTS,
    INF,
    OUT,
    Measurement,
    bench_scale,
    format_seconds,
    format_table,
    pivot,
    run_algorithms,
    run_imb,
    run_inflation,
    run_itraversal,
    scaled,
    time_call,
)
from repro.bench.experiments import (
    experiment_fig7a,
    experiment_fig7de,
    experiment_fig8b,
    experiment_fig9b,
    experiment_fig10,
    experiment_fig11cd,
    experiment_fig12,
    experiment_table1,
)
from repro.cli import main
from repro.graph import paper_example_graph, write_edge_list


class TestReporting:
    def test_format_seconds(self):
        assert format_seconds(None) == INF
        assert format_seconds(0.01234) == "0.0123"
        assert format_seconds(3.14159) == "3.14"
        assert format_seconds(250.0) == "250"
        assert format_seconds(OUT) == OUT

    def test_format_table_alignment(self):
        rows = [{"a": 1, "b": "x"}, {"a": 22, "b": None}]
        text = format_table(rows, title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "b" in lines[1]
        assert "ND" in text  # None rendered as the paper's "ND"

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([], title="empty")

    def test_pivot(self):
        rows = [
            {"dataset": "a", "algorithm": "x", "seconds": 1.0},
            {"dataset": "a", "algorithm": "y", "seconds": 2.0},
            {"dataset": "b", "algorithm": "x", "seconds": 3.0},
        ]
        wide = pivot(rows, index="dataset", column="algorithm", value="seconds")
        assert wide[0] == {"dataset": "a", "x": 1.0, "y": 2.0}
        assert wide[1]["x"] == 3.0


class TestHarness:
    def test_bench_scale_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        assert bench_scale() == 1.0
        assert scaled(100) == 100

    def test_bench_scale_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.25")
        assert bench_scale() == 0.25
        assert scaled(100) == 25
        monkeypatch.setenv("REPRO_BENCH_SCALE", "not-a-float")
        assert bench_scale() == 1.0

    def test_time_call(self):
        measurement = time_call(lambda: [1, 2, 3], label="demo")
        assert measurement.algorithm == "demo"
        assert measurement.num_solutions == 3
        assert measurement.seconds >= 0

    def test_time_call_counts_lazy_iterables(self):
        # Generators must be materialised (inside the timed window) instead
        # of silently reporting num_solutions=0.
        def generator():
            yield from range(4)

        measurement = time_call(generator, label="lazy")
        assert measurement.num_solutions == 4
        assert measurement.seconds >= 0
        assert time_call(lambda: iter((1, 2)), label="iter").num_solutions == 2
        assert time_call(lambda: frozenset({1, 2, 3}), label="fs").num_solutions == 3
        assert time_call(lambda: None, label="none").num_solutions == 0
        assert time_call(lambda: 42, label="scalar").num_solutions == 0

    def test_display_without_seconds_or_marker(self):
        # A measurement that never produced a timing must not leak None into
        # the report tables; INF is the paper's "did not finish" marker.
        assert Measurement(algorithm="x", seconds=None).display == INF
        assert Measurement(algorithm="x", seconds=1.5).display == 1.5
        assert Measurement(algorithm="x", seconds=None, marker=OUT).display == OUT

    def test_run_itraversal_measurement(self, example_graph):
        measurement = run_itraversal(example_graph, 1, max_results=5, time_limit=10.0)
        assert measurement.marker is None
        assert measurement.num_solutions == 5
        assert isinstance(measurement.display, float)

    def test_run_imb_inf_marker(self, example_graph):
        measurement = run_imb(example_graph, 1, max_results=None, time_limit=0.0)
        assert measurement.marker == INF
        assert measurement.display == INF

    def test_run_inflation_out_marker(self, example_graph):
        measurement = run_inflation(
            example_graph, 1, max_results=None, time_limit=5.0, memory_edge_budget=1
        )
        assert measurement.marker == OUT

    def test_run_algorithms_order(self, example_graph):
        measurements = run_algorithms(
            example_graph, 1, ["iTraversal", "bTraversal"], max_results=5, time_limit=10.0
        )
        assert [m.algorithm for m in measurements] == ["iTraversal", "bTraversal"]


class TestBenchSnapshot:
    """The JSON benchmark snapshots (python -m repro.bench.harness --emit-json)."""

    def test_snapshot_shape_and_prep_invariance(self, monkeypatch):
        from repro.bench.harness import SNAPSHOT_PREPS, collect_bench_snapshot

        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.25")
        snapshot = collect_bench_snapshot(time_limit=30.0)
        assert snapshot["schema"] == "repro-bench-enum/1"
        assert snapshot["bench_scale"] == 0.25
        assert snapshot["runs"]
        for run in snapshot["runs"]:
            assert set(run["preps"]) == set(SNAPSHOT_PREPS)
            counts = {m["num_solutions"] for m in run["preps"].values()}
            # The prep ablation must never change the solution count.
            assert len(counts) == 1, run["config"]
            for measurement in run["preps"].values():
                assert measurement["seconds"] >= 0
                assert not measurement["truncated"]

    def test_emit_json_writes_file(self, tmp_path, capsys, monkeypatch):
        import json

        from repro.bench.harness import main as harness_main

        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.25")
        target = tmp_path / "BENCH_enum.json"
        assert harness_main(["--emit-json", str(target), "--time-limit", "30"]) == 0
        payload = json.loads(target.read_text())
        assert payload["schema"] == "repro-bench-enum/1"
        assert payload["time_limit"] == 30.0
        assert str(target) in capsys.readouterr().out

    def test_emit_json_stdout(self, capsys, monkeypatch):
        import json

        from repro.bench.harness import main as harness_main

        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.25")
        assert harness_main(["--emit-json", "-"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert [run["config"] for run in payload["runs"]]


class TestExperimentDrivers:
    def test_registry_contains_every_figure(self):
        assert {
            "table1",
            "fig7a",
            "fig7bc",
            "fig7de",
            "fig8a",
            "fig8b",
            "fig9a",
            "fig9b",
            "fig10",
            "fig11ab",
            "fig11cd",
            "fig12",
            "fig13",
            "variants",
            "anchor",
        } <= set(EXPERIMENTS)

    def test_table1_rows(self):
        rows = experiment_table1()
        assert len(rows) == 10

    def test_fig7a_small_subset(self):
        rows = experiment_fig7a(
            datasets=("divorce",), max_results=20, time_limit=5.0,
            algorithms=("bTraversal", "iTraversal"),
        )
        assert len(rows) == 1
        assert "iTraversal" in rows[0] and "bTraversal" in rows[0]

    def test_fig7de_row_per_count(self):
        rows = experiment_fig7de(
            dataset="divorce", result_counts=(1, 5), time_limit=5.0,
            algorithms=("iTraversal",),
        )
        assert [row["num_results"] for row in rows] == [1, 5]

    def test_fig8b_delay_rows(self):
        rows = experiment_fig8b(k_values=(1,), max_left=5, max_right=6, time_limit=5.0)
        assert len(rows) == 1
        assert set(rows[0]) >= {"k", "iMB", "bTraversal", "FaPlexen", "iTraversal"}

    def test_fig9b_rows(self):
        rows = experiment_fig9b(
            edge_density_values=(0.5,), num_vertices=40, max_results=10, time_limit=5.0
        )
        assert rows[0]["edge_density"] == 0.5

    def test_fig10_rows(self):
        rows = experiment_fig10(dataset="cfat", theta_values=(5,), time_limit=5.0)
        assert rows[0]["theta"] == 5
        assert "iTraversal" in rows[0] and "iMB" in rows[0]

    def test_fig11cd_link_ordering(self):
        rows = experiment_fig11cd(dataset="divorce", k_values=(1,), max_left=5, max_right=6)
        row = rows[0]
        assert row["bTraversal_links"] >= row["iTraversal-ES-RS_links"]
        assert row["iTraversal-ES-RS_links"] >= row["iTraversal-ES_links"]

    def test_fig12_rows(self):
        rows = experiment_fig12(dataset="divorce", k_values=(1,), num_trials=5, time_limit=5.0)
        assert rows and {"L2.0+R2.0", "Inflation"} <= set(rows[0])


class TestCLI:
    def test_datasets_command(self, capsys):
        assert main(["datasets"]) == 0
        output = capsys.readouterr().out
        assert "divorce" in output and "google" in output

    def test_enumerate_dataset(self, capsys):
        assert main(["enumerate", "--dataset", "divorce", "-k", "1", "--max-results", "5"]) == 0
        output = capsys.readouterr().out
        assert "solutions=5" in output

    def test_enumerate_from_file(self, tmp_path, capsys):
        path = tmp_path / "g.txt"
        write_edge_list(paper_example_graph(), path)
        assert main(["enumerate", "--input", str(path), "-k", "1", "--quiet"]) == 0
        output = capsys.readouterr().out
        assert "solutions=" in output
        assert "L: [" not in output  # quiet mode suppresses the listing

    def test_enumerate_with_theta(self, tmp_path, capsys):
        path = tmp_path / "g.txt"
        write_edge_list(paper_example_graph(), path)
        assert main(["enumerate", "--input", str(path), "--theta", "3"]) == 0
        assert "solutions=" in capsys.readouterr().out

    def test_enumerate_with_jobs(self, tmp_path, capsys):
        path = tmp_path / "g.txt"
        write_edge_list(paper_example_graph(), path)
        assert main(["enumerate", "--input", str(path), "-k", "1", "--jobs", "2", "--quiet"]) == 0
        parallel_summary = capsys.readouterr().out
        assert main(["enumerate", "--input", str(path), "-k", "1", "--jobs", "1", "--quiet"]) == 0
        serial_summary = capsys.readouterr().out
        # Same solution count either way; the summary line stays one line.
        assert parallel_summary.split("max_left")[0] == serial_summary.split("max_left")[0]

    def test_enumerate_rejects_negative_jobs(self, tmp_path, capsys):
        path = tmp_path / "g.txt"
        write_edge_list(paper_example_graph(), path)
        assert main(["enumerate", "--input", str(path), "--jobs", "-3"]) == 2
        assert "jobs" in capsys.readouterr().err

    def test_invalid_repro_jobs_env_is_a_clean_error(self, tmp_path, capsys, monkeypatch):
        from repro.parallel import JOBS_ENV_VAR

        monkeypatch.setenv(JOBS_ENV_VAR, "lots")
        path = tmp_path / "g.txt"
        write_edge_list(paper_example_graph(), path)
        assert main(["enumerate", "--input", str(path)]) == 2
        assert JOBS_ENV_VAR in capsys.readouterr().err

    def test_enumerate_reports_prep_reduction_sizes(self, tmp_path, capsys):
        path = tmp_path / "g.txt"
        write_edge_list(paper_example_graph(), path)
        assert main(["enumerate", "--input", str(path), "--prep", "core+order", "--quiet"]) == 0
        output = capsys.readouterr().out
        assert "prep=core+order" in output
        assert "removed_left=" in output and "removed_edges=" in output

    def test_enumerate_prep_modes_agree(self, tmp_path, capsys):
        path = tmp_path / "g.txt"
        write_edge_list(paper_example_graph(), path)
        counts = {}
        for prep in ("off", "core", "core+order"):
            assert main(
                ["enumerate", "--input", str(path), "--theta", "2", "--prep", prep, "--quiet"]
            ) == 0
            counts[prep] = capsys.readouterr().out.split("max_left")[0]
        assert counts["off"] == counts["core"] == counts["core+order"]

    def test_enumerate_rejects_invalid_prep(self, tmp_path, capsys):
        path = tmp_path / "g.txt"
        write_edge_list(paper_example_graph(), path)
        assert main(["enumerate", "--input", str(path), "--prep", "maximal"]) == 2
        err = capsys.readouterr().err
        assert "prep" in err and "maximal" in err

    def test_invalid_repro_prep_env_is_a_clean_error(self, tmp_path, capsys, monkeypatch):
        from repro.prep import PREP_ENV_VAR

        monkeypatch.setenv(PREP_ENV_VAR, "everything")
        path = tmp_path / "g.txt"
        write_edge_list(paper_example_graph(), path)
        assert main(["enumerate", "--input", str(path)]) == 2
        assert PREP_ENV_VAR in capsys.readouterr().err

    def test_experiment_command(self, capsys):
        assert main(["experiment", "table1"]) == 0
        assert "divorce" in capsys.readouterr().out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "does-not-exist"])

    def test_missing_source_rejected(self):
        with pytest.raises(SystemExit):
            main(["enumerate", "-k", "1"])
