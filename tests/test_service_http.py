"""End-to-end tests of the HTTP/JSON daemon and the ``query`` CLI family.

The daemon runs on an ephemeral port inside a background thread (its own
asyncio loop); the client side goes through the real ``repro-mbp query``
code paths — the same request helpers, pagination loop and output
formatting the CLI ships — so these tests double as the in-repo version
of the CI service smoke job.
"""

from __future__ import annotations

import asyncio
import csv
import io
import json
import threading

import pytest

from repro import paper_example_graph, write_edge_list
from repro.cli import main as cli_main
from repro.core import ITraversal
from repro.service.http import ServiceHTTPServer


@pytest.fixture(scope="module")
def daemon():
    """A live daemon on an ephemeral port; yields its base URL."""
    server = ServiceHTTPServer(port=0)
    started = threading.Event()
    loop_holder = {}

    def run() -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        loop_holder["loop"] = loop

        async def boot():
            await server.start()
            started.set()
            await server.serve_forever()

        try:
            loop.run_until_complete(boot())
        except asyncio.CancelledError:
            pass
        finally:
            loop.run_until_complete(server.aclose())
            loop.close()

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    assert started.wait(timeout=10), "daemon failed to start"
    yield f"http://127.0.0.1:{server.port}"
    loop = loop_holder["loop"]
    for task in asyncio.all_tasks(loop):
        loop.call_soon_threadsafe(task.cancel)
    thread.join(timeout=10)


@pytest.fixture(scope="module")
def graph_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("graphs") / "paper.txt"
    write_edge_list(paper_example_graph(), path)
    return str(path)


def http_json(server: str, method: str, path: str, payload=None):
    import urllib.error
    import urllib.request

    data = None if payload is None else json.dumps(payload).encode()
    request = urllib.request.Request(
        server + path, data=data, method=method,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def expected_solutions():
    solutions = ITraversal(paper_example_graph(), 1).enumerate()
    return [[sorted(s.left), sorted(s.right)] for s in solutions]


class TestDaemonProtocol:
    def test_healthz_and_stats(self, daemon):
        assert http_json(daemon, "GET", "/healthz") == (200, {"ok": True})
        status, stats = http_json(daemon, "GET", "/v1/stats")
        assert status == 200
        assert "graph_loads" in stats and "sessions_live" in stats

    def test_enumerate_route(self, daemon, graph_file):
        status, response = http_json(
            daemon, "POST", "/v1/enumerate",
            {"query": {"graph": {"path": graph_file}, "k": 1}},
        )
        assert status == 200
        assert response["solutions"] == expected_solutions()
        assert response["status"]["truncated"] is False

    def test_paginate_route_and_cursor_fallback(self, daemon, graph_file):
        query = {"graph": {"path": graph_file}, "k": 1}
        status, page = http_json(
            daemon, "POST", "/v1/enumerate",
            {"query": query, "paginate": True, "page_size": 4},
        )
        assert status == 200 and page["page_size"] == 4
        collected = list(page["solutions"])
        # Cancel the live session; the cursor must still finish the stream.
        status, cancelled = http_json(
            daemon, "POST", "/v1/cancel", {"session_id": page["session_id"]}
        )
        assert status == 200 and cancelled["cancelled"] is True
        status, rest = http_json(
            daemon, "POST", "/v1/paginate",
            {"cursor": page["cursor"], "page_size": 1000},
        )
        assert status == 200
        assert collected + rest["solutions"] == expected_solutions()

    def test_error_statuses(self, daemon):
        assert http_json(daemon, "GET", "/nope")[0] == 404
        assert http_json(daemon, "POST", "/healthz", {})[0] == 405
        assert http_json(daemon, "POST", "/v1/enumerate", {"query": {"k": 1}})[0] == 400
        assert http_json(
            daemon, "POST", "/v1/paginate", {"session_id": "gone"}
        )[0] == 404
        assert http_json(daemon, "POST", "/v1/paginate", {"cursor": "junk"})[0] == 400
        assert http_json(daemon, "POST", "/v1/cancel", {})[0] == 400


class TestQueryCLI:
    def run_cli(self, capsys, *argv):
        code = cli_main(list(argv))
        captured = capsys.readouterr()
        return code, captured.out

    def test_server_run_equals_library_run(self, daemon, graph_file, capsys):
        code, out = self.run_cli(
            capsys, "query", "run", "--input", graph_file, "--format", "json"
        )
        assert code == 0
        library = json.loads(out)
        code, out = self.run_cli(
            capsys, "query", "run", "--input", graph_file,
            "--server", daemon, "--page-size", "3", "--format", "json",
        )
        assert code == 0
        service = json.loads(out)
        assert service["solutions"] == library["solutions"]
        assert service["num_solutions"] == 13

    def test_table_and_csv_formats(self, daemon, graph_file, capsys):
        code, out = self.run_cli(
            capsys, "query", "run", "--input", graph_file,
            "--server", daemon, "--format", "table",
        )
        assert code == 0
        assert out.count("L: [") == 13
        assert "# solutions=13" in out
        code, out = self.run_cli(
            capsys, "query", "run", "--input", graph_file,
            "--server", daemon, "--format", "csv",
        )
        assert code == 0
        rows = list(csv.reader(io.StringIO(out)))
        assert rows[0] == ["left", "right"]
        assert len(rows) == 14  # header + 13 solutions

    def test_status_subcommand(self, daemon, capsys):
        code, out = self.run_cli(capsys, "query", "status", "--server", daemon)
        assert code == 0
        assert "graph_loads" in json.loads(out)

    def test_unreachable_server_is_a_clean_error(self, capsys, graph_file):
        code = cli_main(
            ["query", "run", "--input", graph_file,
             "--server", "http://127.0.0.1:9", "--format", "json"]
        )
        captured = capsys.readouterr()
        assert code == 2
        assert "error:" in captured.err

    def test_local_pagination_equals_one_shot(self, graph_file, capsys):
        code, out = self.run_cli(
            capsys, "query", "run", "--input", graph_file,
            "--page-size", "2", "--format", "json",
        )
        assert code == 0
        assert json.loads(out)["solutions"] == expected_solutions()


# --------------------------------------------------------------------- #
# Mutable epochs over the wire (PR 10): /v1/update, stale cursors,
# unknown-session 404s, the rate limiter, and the query-CLI additions.
# --------------------------------------------------------------------- #
from contextlib import contextmanager

from repro.graph import BipartiteGraph
from repro.service import RateLimiter


@contextmanager
def live_daemon(server: ServiceHTTPServer):
    """Boot ``server`` on a background loop; yields its base URL."""
    started = threading.Event()
    loop_holder = {}

    def run() -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        loop_holder["loop"] = loop

        async def boot():
            await server.start()
            started.set()
            await server.serve_forever()

        try:
            loop.run_until_complete(boot())
        except asyncio.CancelledError:
            pass
        finally:
            loop.run_until_complete(server.aclose())
            loop.close()

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    assert started.wait(timeout=10), "daemon failed to start"
    try:
        yield f"http://127.0.0.1:{server.port}"
    finally:
        loop = loop_holder["loop"]
        for task in asyncio.all_tasks(loop):
            loop.call_soon_threadsafe(task.cancel)
        thread.join(timeout=10)


def inline_query(**overrides):
    """An inline graph spec (own registry key: no cross-test interference)."""
    graph = BipartiteGraph(
        4, 4, [(v, u) for v in range(4) for u in range(4) if (v + u) % 3]
    )
    query = {
        "graph": {
            "n_left": 4,
            "n_right": 4,
            "edges": [list(edge) for edge in sorted(graph.edges())],
        },
        "k": 1,
    }
    query.update(overrides)
    return query


class TestUpdateRoute:
    def test_update_then_stale_cursor_409(self, daemon):
        query = inline_query()
        status, page = http_json(
            daemon, "POST", "/v1/enumerate",
            {"query": query, "paginate": True, "page_size": 2},
        )
        assert status == 200
        before = page["status"]["num_solutions"]

        status, outcome = http_json(
            daemon, "POST", "/v1/update",
            {"graph": query["graph"], "insert": [[3, 3]]},
        )
        assert status == 200
        assert outcome["epoch"] == 1 and outcome["added"] == 1
        assert outcome["plans_invalidated"] >= 1

        # The pre-update cursor is now stale: 409 with a machine code.
        status, error = http_json(
            daemon, "POST", "/v1/paginate", {"cursor": page["cursor"]}
        )
        assert status == 409
        assert error["code"] == "stale_cursor"
        assert "stale_cursor" in error["error"]

        # A fresh query sees the mutated graph.
        status, after = http_json(daemon, "POST", "/v1/enumerate", {"query": query})
        assert status == 200
        assert after["status"]["num_solutions"] != before

    def test_update_validation_400s(self, daemon):
        query = inline_query()
        http_json(daemon, "POST", "/v1/enumerate", {"query": query})
        status, error = http_json(
            daemon, "POST", "/v1/update", {"graph": query["graph"]}
        )
        assert status == 400 and "non-empty" in error["error"]
        status, error = http_json(
            daemon, "POST", "/v1/update",
            {"graph": query["graph"], "insert": [[99, 0]]},
        )
        assert status == 400 and "out of range" in error["error"]

    def test_unknown_session_is_404_not_500(self, daemon):
        status, error = http_json(
            daemon, "POST", "/v1/cancel", {"session_id": "never-existed"}
        )
        assert status == 404
        assert error["code"] == "unknown_session"
        assert "never-existed" in error["error"]
        status, error = http_json(
            daemon, "POST", "/v1/paginate", {"session_id": "never-existed"}
        )
        assert status == 404
        # Type confusion stays a 400, not a 500.
        assert http_json(daemon, "POST", "/v1/cancel", {"session_id": 7})[0] == 400
        assert http_json(
            daemon, "POST", "/v1/paginate", {"session_id": 7}
        )[0] == 400
        assert http_json(
            daemon, "POST", "/v1/paginate", {"cursor": "x", "page_size": "many"}
        )[0] == 400


class TestRateLimitedDaemon:
    def test_429_with_retry_after_then_recovery(self):
        clock = {"now": 0.0}
        limiter = RateLimiter(rate=1.0, burst=2, clock=lambda: clock["now"])
        server = ServiceHTTPServer(port=0, limiter=limiter)
        with live_daemon(server) as url:
            import urllib.error
            import urllib.request

            assert http_json(url, "GET", "/healthz") == (200, {"ok": True})
            assert http_json(url, "GET", "/healthz") == (200, {"ok": True})
            request = urllib.request.Request(url + "/healthz")
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request, timeout=10)
            assert excinfo.value.code == 429
            assert excinfo.value.headers["Retry-After"] == "1"
            body = json.loads(excinfo.value.read())
            assert body["error"] == "rate limit exceeded"
            assert body["retry_after"] == 1
            # Refill: the same client is welcome again.
            clock["now"] = 5.0
            assert http_json(url, "GET", "/healthz") == (200, {"ok": True})
            # The rejection shows up in the metrics snapshot.
            status, metrics = http_json(url, "GET", "/v1/metrics")
            assert status == 200
            assert metrics["counters"].get("http_rate_limited_total", 0) >= 1


class TestQueryUpdateCLI:
    def test_update_roundtrip(self, daemon, tmp_path, capsys):
        graph = BipartiteGraph(
            4, 4, [(v, u) for v in range(4) for u in range(4) if (v + u) % 3]
        )
        path = tmp_path / "mutable.txt"
        write_edge_list(graph, path)
        code = cli_main(
            ["query", "run", "--input", str(path), "--server", daemon,
             "--format", "json"]
        )
        assert code == 0
        before = json.loads(capsys.readouterr().out)["num_solutions"]
        code = cli_main(
            ["query", "update", "--input", str(path), "--server", daemon,
             "--insert", "3:3"]
        )
        assert code == 0
        outcome = json.loads(capsys.readouterr().out)
        assert outcome["epoch"] == 1 and outcome["added"] == 1
        code = cli_main(
            ["query", "run", "--input", str(path), "--server", daemon,
             "--format", "json"]
        )
        assert code == 0
        assert json.loads(capsys.readouterr().out)["num_solutions"] != before

    def test_bad_edge_flag_is_a_clean_error(self, daemon, graph_file, capsys):
        code = cli_main(
            ["query", "update", "--input", graph_file, "--server", daemon,
             "--insert", "3-3"]
        )
        captured = capsys.readouterr()
        assert code == 2
        assert "not of the form L:R" in captured.err


class TestStatsWatchCleanExit:
    SNAPSHOT = {"schema": "repro-metrics/1", "series": []}

    def test_ctrl_c_exits_zero(self, monkeypatch, capsys):
        import time as time_module

        monkeypatch.setattr(
            "repro.cli._server_request", lambda *a, **k: dict(self.SNAPSHOT)
        )

        def interrupt(_seconds):
            raise KeyboardInterrupt

        monkeypatch.setattr(time_module, "sleep", interrupt)
        code = cli_main(
            ["query", "stats", "--server", "http://unused", "--watch", "1"]
        )
        assert code == 0
        capsys.readouterr()

    def test_closed_pipe_exits_zero(self, monkeypatch):
        import sys as sys_module

        monkeypatch.setattr(
            "repro.cli._server_request", lambda *a, **k: dict(self.SNAPSHOT)
        )

        class DeadPipe:
            def write(self, _text):
                raise BrokenPipeError(32, "Broken pipe")

            def flush(self):
                raise BrokenPipeError(32, "Broken pipe")

            def fileno(self):
                raise OSError("stream has no descriptor")

        monkeypatch.setattr(sys_module, "stdout", DeadPipe())
        code = cli_main(
            ["query", "stats", "--server", "http://unused", "--watch", "1"]
        )
        assert code == 0
