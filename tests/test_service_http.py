"""End-to-end tests of the HTTP/JSON daemon and the ``query`` CLI family.

The daemon runs on an ephemeral port inside a background thread (its own
asyncio loop); the client side goes through the real ``repro-mbp query``
code paths — the same request helpers, pagination loop and output
formatting the CLI ships — so these tests double as the in-repo version
of the CI service smoke job.
"""

from __future__ import annotations

import asyncio
import csv
import io
import json
import threading

import pytest

from repro import paper_example_graph, write_edge_list
from repro.cli import main as cli_main
from repro.core import ITraversal
from repro.service.http import ServiceHTTPServer


@pytest.fixture(scope="module")
def daemon():
    """A live daemon on an ephemeral port; yields its base URL."""
    server = ServiceHTTPServer(port=0)
    started = threading.Event()
    loop_holder = {}

    def run() -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        loop_holder["loop"] = loop

        async def boot():
            await server.start()
            started.set()
            await server.serve_forever()

        try:
            loop.run_until_complete(boot())
        except asyncio.CancelledError:
            pass
        finally:
            loop.run_until_complete(server.aclose())
            loop.close()

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    assert started.wait(timeout=10), "daemon failed to start"
    yield f"http://127.0.0.1:{server.port}"
    loop = loop_holder["loop"]
    for task in asyncio.all_tasks(loop):
        loop.call_soon_threadsafe(task.cancel)
    thread.join(timeout=10)


@pytest.fixture(scope="module")
def graph_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("graphs") / "paper.txt"
    write_edge_list(paper_example_graph(), path)
    return str(path)


def http_json(server: str, method: str, path: str, payload=None):
    import urllib.error
    import urllib.request

    data = None if payload is None else json.dumps(payload).encode()
    request = urllib.request.Request(
        server + path, data=data, method=method,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def expected_solutions():
    solutions = ITraversal(paper_example_graph(), 1).enumerate()
    return [[sorted(s.left), sorted(s.right)] for s in solutions]


class TestDaemonProtocol:
    def test_healthz_and_stats(self, daemon):
        assert http_json(daemon, "GET", "/healthz") == (200, {"ok": True})
        status, stats = http_json(daemon, "GET", "/v1/stats")
        assert status == 200
        assert "graph_loads" in stats and "sessions_live" in stats

    def test_enumerate_route(self, daemon, graph_file):
        status, response = http_json(
            daemon, "POST", "/v1/enumerate",
            {"query": {"graph": {"path": graph_file}, "k": 1}},
        )
        assert status == 200
        assert response["solutions"] == expected_solutions()
        assert response["status"]["truncated"] is False

    def test_paginate_route_and_cursor_fallback(self, daemon, graph_file):
        query = {"graph": {"path": graph_file}, "k": 1}
        status, page = http_json(
            daemon, "POST", "/v1/enumerate",
            {"query": query, "paginate": True, "page_size": 4},
        )
        assert status == 200 and page["page_size"] == 4
        collected = list(page["solutions"])
        # Cancel the live session; the cursor must still finish the stream.
        status, cancelled = http_json(
            daemon, "POST", "/v1/cancel", {"session_id": page["session_id"]}
        )
        assert status == 200 and cancelled["cancelled"] is True
        status, rest = http_json(
            daemon, "POST", "/v1/paginate",
            {"cursor": page["cursor"], "page_size": 1000},
        )
        assert status == 200
        assert collected + rest["solutions"] == expected_solutions()

    def test_error_statuses(self, daemon):
        assert http_json(daemon, "GET", "/nope")[0] == 404
        assert http_json(daemon, "POST", "/healthz", {})[0] == 405
        assert http_json(daemon, "POST", "/v1/enumerate", {"query": {"k": 1}})[0] == 400
        assert http_json(
            daemon, "POST", "/v1/paginate", {"session_id": "gone"}
        )[0] == 404
        assert http_json(daemon, "POST", "/v1/paginate", {"cursor": "junk"})[0] == 400
        assert http_json(daemon, "POST", "/v1/cancel", {})[0] == 400


class TestQueryCLI:
    def run_cli(self, capsys, *argv):
        code = cli_main(list(argv))
        captured = capsys.readouterr()
        return code, captured.out

    def test_server_run_equals_library_run(self, daemon, graph_file, capsys):
        code, out = self.run_cli(
            capsys, "query", "run", "--input", graph_file, "--format", "json"
        )
        assert code == 0
        library = json.loads(out)
        code, out = self.run_cli(
            capsys, "query", "run", "--input", graph_file,
            "--server", daemon, "--page-size", "3", "--format", "json",
        )
        assert code == 0
        service = json.loads(out)
        assert service["solutions"] == library["solutions"]
        assert service["num_solutions"] == 13

    def test_table_and_csv_formats(self, daemon, graph_file, capsys):
        code, out = self.run_cli(
            capsys, "query", "run", "--input", graph_file,
            "--server", daemon, "--format", "table",
        )
        assert code == 0
        assert out.count("L: [") == 13
        assert "# solutions=13" in out
        code, out = self.run_cli(
            capsys, "query", "run", "--input", graph_file,
            "--server", daemon, "--format", "csv",
        )
        assert code == 0
        rows = list(csv.reader(io.StringIO(out)))
        assert rows[0] == ["left", "right"]
        assert len(rows) == 14  # header + 13 solutions

    def test_status_subcommand(self, daemon, capsys):
        code, out = self.run_cli(capsys, "query", "status", "--server", daemon)
        assert code == 0
        assert "graph_loads" in json.loads(out)

    def test_unreachable_server_is_a_clean_error(self, capsys, graph_file):
        code = cli_main(
            ["query", "run", "--input", graph_file,
             "--server", "http://127.0.0.1:9", "--format", "json"]
        )
        captured = capsys.readouterr()
        assert code == 2
        assert "error:" in captured.err

    def test_local_pagination_equals_one_shot(self, graph_file, capsys):
        code, out = self.run_cli(
            capsys, "query", "run", "--input", graph_file,
            "--page-size", "2", "--format", "json",
        )
        assert code == 0
        assert json.loads(out)["solutions"] == expected_solutions()
