"""Tests for the analysis layer: datasets registry, metrics, fraud case study."""

import math

import pytest

from repro.analysis import (
    ALL_DATASETS,
    SMALL_DATASETS,
    ClassificationMetrics,
    FraudStudyConfig,
    average_density,
    build_study_graph,
    classification_metrics,
    covered_vertices,
    dataset_specs,
    get_spec,
    load_dataset,
    run_fraud_detection_study,
    subgraph_density,
    table1_rows,
)
from repro.analysis.fraud import (
    evaluate_alpha_beta_core,
    evaluate_biclique,
    evaluate_biplex,
    evaluate_quasi_biclique,
)
from repro.core import Biplex
from repro.graph import paper_example_graph


class TestDatasetRegistry:
    def test_all_paper_datasets_present(self):
        assert ALL_DATASETS == (
            "divorce",
            "cfat",
            "crime",
            "opsahl",
            "marvel",
            "writer",
            "actors",
            "imdb",
            "dblp",
            "google",
        )
        assert set(SMALL_DATASETS) <= set(ALL_DATASETS)

    def test_get_spec_case_insensitive(self):
        assert get_spec("Divorce").name == "divorce"
        with pytest.raises(KeyError):
            get_spec("does-not-exist")

    def test_specs_record_paper_statistics(self):
        spec = get_spec("google")
        assert spec.paper_n_left == 17091929
        assert spec.paper_edges == 14693125
        assert spec.scale_factor > 1000

    def test_load_dataset_matches_spec_shape(self):
        for name in ("divorce", "cfat", "writer"):
            spec = get_spec(name)
            graph = load_dataset(name)
            assert graph.n_left == spec.n_left
            assert graph.n_right == spec.n_right
            assert graph.num_edges > 0

    def test_load_dataset_deterministic(self):
        assert load_dataset("cfat") == load_dataset("cfat")
        assert load_dataset("cfat", seed=99) != load_dataset("cfat")

    def test_dataset_ordering_preserved(self):
        """Stand-ins keep the relative size ordering of the paper's datasets."""
        sizes = [load_dataset(name).num_vertices for name in ("divorce", "cfat", "opsahl")]
        assert sizes == sorted(sizes)

    def test_table1_rows(self):
        rows = table1_rows()
        assert len(rows) == len(ALL_DATASETS)
        assert {"name", "|L|", "|R|", "|E|", "paper_|E|", "scale_factor"} <= set(rows[0])

    def test_specs_mapping_complete(self):
        assert set(dataset_specs()) == set(ALL_DATASETS)


class TestMetrics:
    def test_classification_metrics_basic(self):
        metrics = classification_metrics({1, 2, 3}, {2, 3, 4})
        assert metrics.true_positives == 2
        assert metrics.false_positives == 1
        assert metrics.false_negatives == 1
        assert metrics.precision == pytest.approx(2 / 3)
        assert metrics.recall == pytest.approx(2 / 3)
        assert metrics.f1 == pytest.approx(2 / 3)
        assert metrics.defined

    def test_metrics_undefined_when_nothing_predicted(self):
        metrics = classification_metrics(set(), {1, 2})
        assert not metrics.defined
        assert math.isnan(metrics.precision)
        assert metrics.recall == 0.0
        assert math.isnan(metrics.f1)

    def test_perfect_prediction(self):
        metrics = classification_metrics({1, 2}, {1, 2})
        assert metrics.precision == 1.0 and metrics.recall == 1.0 and metrics.f1 == 1.0

    def test_f1_zero_when_no_overlap(self):
        metrics = classification_metrics({1}, {2})
        assert metrics.f1 == 0.0

    def test_subgraph_density(self):
        graph = paper_example_graph()
        full = Biplex.of([4], [0, 1, 2, 3, 4])
        assert subgraph_density(graph, full) == 1.0
        empty = Biplex.of([], [])
        assert subgraph_density(graph, empty) == 0.0

    def test_average_density(self):
        graph = paper_example_graph()
        biplexes = [Biplex.of([4], [0, 1]), Biplex.of([0], [0, 1])]
        assert 0 < average_density(graph, biplexes) <= 1.0
        assert average_density(graph, []) == 0.0

    def test_covered_vertices(self):
        left, right = covered_vertices([Biplex.of([1], [2]), Biplex.of([3], [2, 4])])
        assert left == {1, 3}
        assert right == {2, 4}


@pytest.fixture(scope="module")
def small_study_config():
    return FraudStudyConfig(
        n_real_users=60,
        n_real_products=30,
        n_real_reviews=220,
        n_fake_users=12,
        n_fake_products=12,
        fake_block_density=0.5,
        theta_users=3,
        theta_products_values=(3, 4),
        k_values=(1,),
        delta_values=(0.2,),
        max_structures=300,
        time_limit_per_structure=5.0,
        seed=7,
    )


@pytest.fixture(scope="module")
def small_study_graph(small_study_config):
    return build_study_graph(small_study_config)


class TestFraudStudy:
    def test_config_review_counts(self, small_study_config):
        assert small_study_config.n_fake_reviews == int(0.5 * 12 * 12)
        assert small_study_config.n_camouflage_reviews == small_study_config.n_fake_reviews

    def test_graph_shape(self, small_study_config, small_study_graph):
        graph, injection = small_study_graph
        assert graph.n_left == 72 and graph.n_right == 42
        assert len(injection.fake_users) == 12
        assert len(injection.fake_products) == 12

    def test_biplex_detector_recovers_fraud_block(self, small_study_config, small_study_graph):
        graph, injection = small_study_graph
        result = evaluate_biplex(
            graph, injection, k=1, theta_users=3, theta_products=4,
            max_structures=300, time_limit=5.0,
        )
        assert result.defined
        assert result.num_structures > 0
        # At this (deliberately tiny) scale the absolute scores are modest;
        # the benchmark-scale study in benchmarks/bench_fig13_fraud.py probes
        # the paper's actual operating points.
        assert result.recall >= 0.5
        assert result.precision >= 0.1

    def test_core_detector_low_precision_high_recall(
        self, small_study_config, small_study_graph
    ):
        graph, injection = small_study_graph
        result = evaluate_alpha_beta_core(graph, injection, alpha=3, beta=3)
        assert result.recall >= 0.5
        # The core contains many real users/products too.
        assert result.precision < 0.9

    def test_biclique_recall_drops_with_threshold(self, small_study_config, small_study_graph):
        graph, injection = small_study_graph
        low = evaluate_biclique(graph, injection, 3, 3, 300, 5.0)
        high = evaluate_biclique(graph, injection, 3, 6, 300, 5.0)
        assert high.recall <= low.recall + 1e-9

    def test_quasi_biclique_detector_runs(self, small_study_config, small_study_graph):
        graph, injection = small_study_graph
        result = evaluate_quasi_biclique(graph, injection, 0.2, 3, 4, 200)
        assert result.structure == "0.2-QB"
        assert 0 <= result.recall <= 1 or math.isnan(result.recall)

    def test_full_study_report(self, small_study_config):
        report = run_fraud_detection_study(small_study_config)
        rows = report.rows()
        assert rows, "the sweep must produce rows"
        structures = {row["structure"] for row in rows}
        assert "1-biplex" in structures
        assert "biclique" in structures
        assert "(a,b)-core" in structures
        best = report.best_f1_by_structure()
        assert best.get("1-biplex", 0) > 0


class TestStreamingFraudStudy:
    def test_camouflage_split_reconstructs_full_graph(self, small_study_config):
        from repro.analysis.fraud import streaming_camouflage_edges

        base, injection, camouflage = streaming_camouflage_edges(small_study_config)
        full, full_injection = build_study_graph(small_study_config)
        assert injection.fake_users == full_injection.fake_users
        assert injection.fake_products == full_injection.fake_products
        assert len(camouflage) == small_study_config.n_camouflage_reviews
        merged = sorted(set(base.edges()) | set(camouflage))
        assert merged == sorted(full.edges())
        assert not set(camouflage) & set(base.edges())

    def test_streaming_study_tracks_the_attack(self, small_study_config):
        from repro.analysis.fraud import run_streaming_fraud_study
        from repro.graph.cores import alpha_beta_core
        from repro.graph.dynamic import recomputed_oracle

        report = run_streaming_fraud_study(small_study_config, num_batches=4)
        assert len(report.batches) == 4
        assert [b.epoch for b in report.batches] == [1, 2, 3, 4]
        arrived = [b.edges_arrived for b in report.batches]
        assert arrived == sorted(arrived)  # cumulative
        assert arrived[-1] == len(report.camouflage_edges)
        # After the last batch the maintained state equals a from-scratch
        # recompute on the mutated graph.
        final = report.batches[-1]
        total, _supports, core = recomputed_oracle(
            report.graph, report.alpha, report.beta
        )
        assert final.butterfly_count == total
        assert (final.core_users, final.core_products) == (
            len(core[0]),
            len(core[1]),
        )
        left, right = alpha_beta_core(report.graph, report.alpha, report.beta)
        assert (set(left), set(right)) == core
