"""Tests for the packed numpy substrate: batch API, row/mask lock-step, and
the numpy-absent degradation contract."""

import pytest

from repro.graph import (
    BipartiteGraph,
    PackedBipartiteGraph,
    PackedGraph,
    as_backend,
    erdos_renyi_bipartite,
    inflate,
    iter_bits,
    packed_available,
    supports_batch,
    supports_masks,
)
from repro.graph.general import Graph

np = pytest.importorskip("numpy") if packed_available() else None

requires_packed = pytest.mark.skipif(
    not packed_available(), reason="packed backend requires numpy >= 2.0"
)


@requires_packed
class TestPackedBipartiteGraph:
    def test_rows_match_masks_and_sets(self, example_graph):
        from repro.graph.packed import unpack_row

        packed = example_graph.to_packed()
        assert supports_batch(packed) and supports_masks(packed)
        for v in packed.left_vertices():
            assert unpack_row(packed.rows("left")[v]) == packed.adj_left_mask(v)
            assert set(iter_bits(packed.adj_left_mask(v))) == packed.neighbors_of_left(v)
        for u in packed.right_vertices():
            assert unpack_row(packed.rows("right")[u]) == packed.adj_right_mask(u)

    def test_mutation_keeps_rows_in_lockstep(self):
        graph = PackedBipartiteGraph(70, 130)  # multi-word rows on both sides
        assert graph.add_edge(3, 100) is True
        assert graph.add_edge(3, 100) is False
        assert int(graph.rows("left")[3, 100 // 64]) == 1 << (100 % 64)
        assert int(graph.rows("right")[100, 0]) == 1 << 3
        assert graph.remove_edge(3, 100) is True
        assert not graph.rows("left").any()
        assert not graph.rows("right").any()

    def test_popcount_rows(self, example_graph):
        packed = example_graph.to_packed()
        degrees = packed.popcount_rows("left")
        assert degrees.tolist() == [
            packed.degree_of_left(v) for v in packed.left_vertices()
        ]
        # Restricted to a subset mask (Python int or packed row).
        subset = {0, 2, 4}
        mask = sum(1 << u for u in subset)
        restricted = packed.popcount_rows("left", mask)
        assert restricted.tolist() == [
            len(packed.neighbors_of_left(v) & subset) for v in packed.left_vertices()
        ]
        from repro.graph.packed import pack_mask

        assert (
            packed.popcount_rows("left", pack_mask(mask, packed.n_right)) == restricted
        ).all()

    def test_common_neighbors_matrix(self, example_graph):
        packed = example_graph.to_packed()
        common = packed.common_neighbors_matrix("left")
        for v1 in packed.left_vertices():
            for v2 in packed.left_vertices():
                expected = len(
                    packed.neighbors_of_left(v1) & packed.neighbors_of_left(v2)
                )
                assert common[v1, v2] == expected
        # Blocked selectors (what the butterfly counter passes) are just
        # submatrices of the full broadcast.
        block = packed.common_neighbors_matrix(
            "left", anchors=slice(1, 3), others=slice(2, None)
        )
        assert (block == common[1:3, 2:]).all()

    def test_side_argument_forms(self, example_graph):
        from repro.graph import Side

        packed = example_graph.to_packed()
        assert (packed.rows(Side.LEFT) == packed.rows("left")).all()
        assert (packed.rows(Side.RIGHT) == packed.rows("right")).all()
        with pytest.raises(ValueError):
            packed.rows("middle")

    def test_derived_graphs_stay_packed(self, example_graph):
        packed = example_graph.to_packed()
        assert isinstance(packed.copy(), PackedBipartiteGraph)
        assert isinstance(packed.swap_sides(), PackedBipartiteGraph)
        assert isinstance(packed.induced_subgraph([0, 4], [0, 1]), PackedBipartiteGraph)
        assert packed.copy() == example_graph

    def test_conversions(self, example_graph):
        packed = example_graph.to_packed()
        assert packed.to_packed() is packed
        assert packed.to_bitset() is packed  # already mask-capable
        assert as_backend(example_graph, "packed") == example_graph
        assert supports_batch(as_backend(example_graph, "packed"))
        assert as_backend(packed, "packed") is packed
        assert as_backend(packed, "bitset") is packed
        assert as_backend(packed, "set") is packed

    def test_pack_helpers_roundtrip(self):
        from repro.graph.packed import pack_indices, pack_mask, unpack_row, words_for

        assert words_for(0) == 0 and words_for(1) == 1
        assert words_for(64) == 1 and words_for(65) == 2
        mask = (1 << 100) | (1 << 63) | 1
        assert unpack_row(pack_mask(mask, 130)) == mask
        assert unpack_row(pack_indices([0, 63, 100], 130)) == mask
        flags = np.zeros(130, dtype=bool)
        flags[[0, 63, 100]] = True
        assert unpack_row(pack_indices(flags, 130)) == mask


@requires_packed
class TestPackedGeneralGraph:
    def test_rows_and_popcounts(self):
        graph = PackedGraph(70, edges=[(0, 1), (1, 69), (0, 69)])
        assert supports_batch(graph)
        assert int(graph.rows()[1, 69 // 64]) == 1 << (69 % 64)
        assert graph.popcount_rows().tolist() == [graph.degree(u) for u in graph.vertices()]
        assert graph.popcount_rows(0b10).tolist() == [
            len(graph.neighbors(u) & {1}) for u in graph.vertices()
        ]
        assert graph.to_packed() is graph
        converted = Graph(4, edges=[(0, 1)]).to_packed()
        assert isinstance(converted, PackedGraph)
        assert sorted(converted.edges()) == [(0, 1)]

    def test_kplex_enumeration_on_packed_inflation(self, tiny_graph):
        from repro.baselines import enumerate_mbps_inflation

        expected = set(enumerate_mbps_inflation(tiny_graph, 1, backend="set"))
        assert set(enumerate_mbps_inflation(tiny_graph, 1, backend="packed")) == expected


@requires_packed
class TestPackedEndToEnd:
    def test_imb_and_quasi_biclique_on_packed(self, example_graph):
        from repro.baselines import enumerate_mbps_imb, find_quasi_bicliques_greedy

        assert set(enumerate_mbps_imb(example_graph, 1, backend="packed")) == set(
            enumerate_mbps_imb(example_graph, 1, backend="set")
        )
        assert set(find_quasi_bicliques_greedy(example_graph, 0.25, 2, 2, backend="packed")) == set(
            find_quasi_bicliques_greedy(example_graph, 0.25, 2, 2, backend="set")
        )

    def test_large_mbp_enumerator_on_packed(self):
        from repro.core.large import LargeMBPEnumerator

        graph = erdos_renyi_bipartite(12, 12, num_edges=70, seed=4)
        expected = set(
            LargeMBPEnumerator(graph, 1, theta=3, backend="set").enumerate()
        )
        enumerator = LargeMBPEnumerator(graph, 1, theta=3, backend="packed")
        assert supports_batch(enumerator.core_graph)
        assert set(enumerator.enumerate()) == expected

    def test_cli_backend_packed(self, tmp_path, capsys, example_graph):
        from repro.cli import main
        from repro.graph import write_edge_list

        path = tmp_path / "graph.txt"
        write_edge_list(example_graph, path)
        assert main(["enumerate", "--input", str(path), "--backend", "packed", "--quiet"]) == 0
        packed_out = capsys.readouterr().out
        assert main(["enumerate", "--input", str(path), "--backend", "set", "--quiet"]) == 0
        set_out = capsys.readouterr().out
        assert packed_out.split("elapsed")[0] == set_out.split("elapsed")[0]


class TestNumpyAbsentDegradation:
    """The contract when numpy is missing: only the packed backend errors,
    with a clear message; everything else keeps working."""

    @pytest.fixture
    def no_numpy(self, monkeypatch):
        from repro.graph import packed as packed_module

        monkeypatch.setattr(packed_module, "_np", None)
        return packed_module

    def test_packed_available_reports_false(self, no_numpy):
        assert not no_numpy.packed_available()

    def test_constructors_raise_clear_error(self, no_numpy, example_graph):
        from repro.graph import PackedBackendUnavailable

        # The dedicated subclass lets callers (e.g. the CLI) distinguish the
        # configuration problem from fail-loud internal RuntimeErrors.
        with pytest.raises(PackedBackendUnavailable, match="numpy"):
            PackedBipartiteGraph(2, 2)
        with pytest.raises(RuntimeError, match="packed"):
            example_graph.to_packed()
        with pytest.raises(PackedBackendUnavailable, match="numpy"):
            PackedGraph(3)

    def test_as_backend_raises_only_for_packed(self, no_numpy, example_graph):
        with pytest.raises(RuntimeError, match="numpy"):
            as_backend(example_graph, "packed")
        assert supports_masks(as_backend(example_graph, "bitset"))
        assert as_backend(example_graph, "set") is example_graph

    def test_inflate_raises_only_for_packed(self, no_numpy, tiny_graph):
        with pytest.raises(RuntimeError, match="numpy"):
            inflate(tiny_graph, backend="packed")
        assert inflate(tiny_graph, backend="bitset").num_edges == inflate(tiny_graph).num_edges

    def test_enumeration_raises_cleanly_for_packed(self, no_numpy, example_graph):
        from repro.core import ITraversal

        with pytest.raises(RuntimeError, match="numpy"):
            ITraversal(example_graph, 1, backend="packed")
        assert ITraversal(example_graph, 1, backend="bitset").enumerate()

    def test_cli_reports_clean_error(self, no_numpy, tmp_path, capsys, example_graph):
        from repro.cli import main
        from repro.graph import write_edge_list

        path = tmp_path / "graph.txt"
        write_edge_list(example_graph, path)
        assert main(["enumerate", "--input", str(path), "--backend", "packed"]) == 2
        captured = capsys.readouterr()
        assert "numpy" in captured.err
        assert main(["enumerate", "--input", str(path), "--backend", "bitset", "--quiet"]) == 0


def test_example_graph_has_edges(example_graph):
    assert isinstance(example_graph, BipartiteGraph) and example_graph.num_edges > 0
