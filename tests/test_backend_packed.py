"""Tests for the packed substrate: batch API, row/mask lock-step, the
numpy-free ``array('Q')`` fallback, and the numpy-absent degradation
contract."""

import pytest

from repro.graph import (
    ArrayPackedBipartiteGraph,
    ArrayPackedGraph,
    BipartiteGraph,
    PackedBipartiteGraph,
    PackedGraph,
    as_backend,
    erdos_renyi_bipartite,
    inflate,
    iter_bits,
    packed_available,
    supports_batch,
    supports_masks,
    supports_vector_batch,
)
from repro.graph.general import Graph

np = pytest.importorskip("numpy") if packed_available() else None

requires_packed = pytest.mark.skipif(
    not packed_available(), reason="packed backend requires numpy >= 2.0"
)


@requires_packed
class TestPackedBipartiteGraph:
    def test_rows_match_masks_and_sets(self, example_graph):
        from repro.graph.packed import unpack_row

        packed = example_graph.to_packed()
        assert supports_batch(packed) and supports_masks(packed)
        for v in packed.left_vertices():
            assert unpack_row(packed.rows("left")[v]) == packed.adj_left_mask(v)
            assert set(iter_bits(packed.adj_left_mask(v))) == packed.neighbors_of_left(v)
        for u in packed.right_vertices():
            assert unpack_row(packed.rows("right")[u]) == packed.adj_right_mask(u)

    def test_mutation_keeps_rows_in_lockstep(self):
        graph = PackedBipartiteGraph(70, 130)  # multi-word rows on both sides
        assert graph.add_edge(3, 100) is True
        assert graph.add_edge(3, 100) is False
        assert int(graph.rows("left")[3, 100 // 64]) == 1 << (100 % 64)
        assert int(graph.rows("right")[100, 0]) == 1 << 3
        assert graph.remove_edge(3, 100) is True
        assert not graph.rows("left").any()
        assert not graph.rows("right").any()

    def test_popcount_rows(self, example_graph):
        packed = example_graph.to_packed()
        degrees = packed.popcount_rows("left")
        assert degrees.tolist() == [
            packed.degree_of_left(v) for v in packed.left_vertices()
        ]
        # Restricted to a subset mask (Python int or packed row).
        subset = {0, 2, 4}
        mask = sum(1 << u for u in subset)
        restricted = packed.popcount_rows("left", mask)
        assert restricted.tolist() == [
            len(packed.neighbors_of_left(v) & subset) for v in packed.left_vertices()
        ]
        from repro.graph.packed import pack_mask

        assert (
            packed.popcount_rows("left", pack_mask(mask, packed.n_right)) == restricted
        ).all()

    def test_common_neighbors_matrix(self, example_graph):
        packed = example_graph.to_packed()
        common = packed.common_neighbors_matrix("left")
        for v1 in packed.left_vertices():
            for v2 in packed.left_vertices():
                expected = len(
                    packed.neighbors_of_left(v1) & packed.neighbors_of_left(v2)
                )
                assert common[v1, v2] == expected
        # Blocked selectors (what the butterfly counter passes) are just
        # submatrices of the full broadcast.
        block = packed.common_neighbors_matrix(
            "left", anchors=slice(1, 3), others=slice(2, None)
        )
        assert (block == common[1:3, 2:]).all()

    def test_side_argument_forms(self, example_graph):
        from repro.graph import Side

        packed = example_graph.to_packed()
        assert (packed.rows(Side.LEFT) == packed.rows("left")).all()
        assert (packed.rows(Side.RIGHT) == packed.rows("right")).all()
        with pytest.raises(ValueError):
            packed.rows("middle")

    def test_derived_graphs_stay_packed(self, example_graph):
        packed = example_graph.to_packed()
        assert isinstance(packed.copy(), PackedBipartiteGraph)
        assert isinstance(packed.swap_sides(), PackedBipartiteGraph)
        assert isinstance(packed.induced_subgraph([0, 4], [0, 1]), PackedBipartiteGraph)
        assert packed.copy() == example_graph

    def test_conversions(self, example_graph):
        packed = example_graph.to_packed()
        assert packed.to_packed() is packed
        assert packed.to_bitset() is packed  # already mask-capable
        assert as_backend(example_graph, "packed") == example_graph
        assert supports_batch(as_backend(example_graph, "packed"))
        assert as_backend(packed, "packed") is packed
        assert as_backend(packed, "bitset") is packed
        assert as_backend(packed, "set") is packed

    def test_pack_helpers_roundtrip(self):
        from repro.graph.packed import pack_indices, pack_mask, unpack_row, words_for

        assert words_for(0) == 0 and words_for(1) == 1
        assert words_for(64) == 1 and words_for(65) == 2
        mask = (1 << 100) | (1 << 63) | 1
        assert unpack_row(pack_mask(mask, 130)) == mask
        assert unpack_row(pack_indices([0, 63, 100], 130)) == mask
        flags = np.zeros(130, dtype=bool)
        flags[[0, 63, 100]] = True
        assert unpack_row(pack_indices(flags, 130)) == mask


@requires_packed
class TestPackedGeneralGraph:
    def test_rows_and_popcounts(self):
        graph = PackedGraph(70, edges=[(0, 1), (1, 69), (0, 69)])
        assert supports_batch(graph)
        assert int(graph.rows()[1, 69 // 64]) == 1 << (69 % 64)
        assert graph.popcount_rows().tolist() == [graph.degree(u) for u in graph.vertices()]
        assert graph.popcount_rows(0b10).tolist() == [
            len(graph.neighbors(u) & {1}) for u in graph.vertices()
        ]
        assert graph.to_packed() is graph
        converted = Graph(4, edges=[(0, 1)]).to_packed()
        assert isinstance(converted, PackedGraph)
        assert sorted(converted.edges()) == [(0, 1)]

    def test_kplex_enumeration_on_packed_inflation(self, tiny_graph):
        from repro.baselines import enumerate_mbps_inflation

        expected = set(enumerate_mbps_inflation(tiny_graph, 1, backend="set"))
        assert set(enumerate_mbps_inflation(tiny_graph, 1, backend="packed")) == expected


@requires_packed
class TestPackedEndToEnd:
    def test_imb_and_quasi_biclique_on_packed(self, example_graph):
        from repro.baselines import enumerate_mbps_imb, find_quasi_bicliques_greedy

        assert set(enumerate_mbps_imb(example_graph, 1, backend="packed")) == set(
            enumerate_mbps_imb(example_graph, 1, backend="set")
        )
        assert set(find_quasi_bicliques_greedy(example_graph, 0.25, 2, 2, backend="packed")) == set(
            find_quasi_bicliques_greedy(example_graph, 0.25, 2, 2, backend="set")
        )

    def test_large_mbp_enumerator_on_packed(self):
        from repro.core.large import LargeMBPEnumerator

        graph = erdos_renyi_bipartite(12, 12, num_edges=70, seed=4)
        expected = set(
            LargeMBPEnumerator(graph, 1, theta=3, backend="set").enumerate()
        )
        enumerator = LargeMBPEnumerator(graph, 1, theta=3, backend="packed")
        assert supports_batch(enumerator.core_graph)
        assert set(enumerator.enumerate()) == expected

    def test_cli_backend_packed(self, tmp_path, capsys, example_graph):
        from repro.cli import main
        from repro.graph import write_edge_list

        path = tmp_path / "graph.txt"
        write_edge_list(example_graph, path)
        assert main(["enumerate", "--input", str(path), "--backend", "packed", "--quiet"]) == 0
        packed_out = capsys.readouterr().out
        assert main(["enumerate", "--input", str(path), "--backend", "set", "--quiet"]) == 0
        set_out = capsys.readouterr().out
        assert packed_out.split("elapsed")[0] == set_out.split("elapsed")[0]


class TestArrayFallbackParity:
    """The ``array('Q')`` fallback must be bit-identical to the numpy path
    on the same graph: same rows, same popcounts, same common-neighbour
    matrices — pinned with numpy present so both implementations can run
    side by side (including multi-word rows beyond 64 vertices)."""

    def _pair(self, graph):
        edges = list(graph.edges())
        return (
            PackedBipartiteGraph(graph.n_left, graph.n_right, edges),
            ArrayPackedBipartiteGraph(graph.n_left, graph.n_right, edges),
        )

    @requires_packed
    @pytest.mark.parametrize("seed", range(3))
    def test_rows_and_popcounts_bit_identical(self, seed):
        graph = erdos_renyi_bipartite(70, 130, num_edges=500 + 40 * seed, seed=seed)
        vectorized, fallback = self._pair(graph)
        for side in ("left", "right"):
            assert [list(row) for row in fallback.rows(side)] == vectorized.rows(
                side
            ).tolist()
            assert fallback.popcount_rows(side) == vectorized.popcount_rows(side).tolist()
            mask = sum(1 << bit for bit in range(0, fallback.row_bits(side), 3))
            assert (
                fallback.popcount_rows(side, mask)
                == vectorized.popcount_rows(side, mask).tolist()
            )

    @requires_packed
    def test_selectors_accept_numpy_booleans(self, example_graph):
        # numpy booleans are not `bool` instances but are index-like, so a
        # naive isinstance check would misread the mask as indices [0, 1...].
        vectorized, fallback = self._pair(example_graph)
        flags = np.zeros(example_graph.n_left, dtype=bool)
        flags[[0, 2]] = True
        assert (
            fallback.common_neighbors_matrix("left", anchors=flags.tolist())
            == fallback.common_neighbors_matrix("left", anchors=flags)
            == vectorized.common_neighbors_matrix("left", anchors=flags).tolist()
        )

    @requires_packed
    def test_common_neighbors_matrix_bit_identical(self, example_graph):
        vectorized, fallback = self._pair(example_graph)
        assert (
            fallback.common_neighbors_matrix("left")
            == vectorized.common_neighbors_matrix("left").tolist()
        )
        assert (
            fallback.common_neighbors_matrix("right", anchors=slice(1, 3), others=[0, 2])
            == vectorized.common_neighbors_matrix(
                "right", anchors=slice(1, 3), others=[0, 2]
            ).tolist()
        )

    def test_fallback_capabilities_and_lockstep(self):
        graph = ArrayPackedBipartiteGraph(70, 130)
        assert supports_batch(graph) and supports_masks(graph)
        assert not supports_vector_batch(graph)
        assert graph.add_edge(3, 100) is True
        assert graph.add_edge(3, 100) is False
        assert graph.rows("left")[3][100 // 64] == 1 << (100 % 64)
        assert graph.rows("right")[100][0] == 1 << 3
        assert graph.remove_edge(3, 100) is True
        assert all(not any(row) for row in graph.rows("left"))
        assert graph.to_packed() is graph

    def test_fallback_general_graph(self):
        graph = ArrayPackedGraph(70, edges=[(0, 1), (1, 69), (0, 69)])
        assert supports_batch(graph) and not supports_vector_batch(graph)
        assert graph.rows()[1][69 // 64] == 1 << (69 % 64)
        assert graph.popcount_rows() == [graph.degree(u) for u in graph.vertices()]
        assert graph.popcount_rows(0b10) == [
            len(graph.neighbors(u) & {1}) for u in graph.vertices()
        ]
        assert graph.to_packed() is graph


class TestNumpyAbsentFallback:
    """The contract when numpy is missing: the packed backend degrades to
    the ``array('Q')`` fallback (same surface, mask-path speed) instead of
    erroring; only *direct* construction of the numpy classes raises."""

    @pytest.fixture
    def no_numpy(self, monkeypatch):
        from repro.graph import packed as packed_module

        monkeypatch.setattr(packed_module, "_np", None)
        return packed_module

    def test_packed_available_reports_false(self, no_numpy):
        assert not no_numpy.packed_available()

    def test_direct_numpy_classes_raise_clear_error(self, no_numpy):
        from repro.graph import PackedBackendUnavailable

        # The dedicated subclass lets callers distinguish the configuration
        # problem from fail-loud internal RuntimeErrors.
        with pytest.raises(PackedBackendUnavailable, match="numpy"):
            PackedBipartiteGraph(2, 2)
        with pytest.raises(PackedBackendUnavailable, match="numpy"):
            PackedGraph(3)

    def test_conversions_select_the_fallback(self, no_numpy, example_graph, tiny_graph):
        packed = example_graph.to_packed()
        assert isinstance(packed, ArrayPackedBipartiteGraph)
        assert supports_batch(packed) and not supports_vector_batch(packed)
        assert packed == example_graph
        assert isinstance(as_backend(example_graph, "packed"), ArrayPackedBipartiteGraph)
        assert as_backend(packed, "packed") is packed
        assert isinstance(inflate(tiny_graph, backend="packed"), ArrayPackedGraph)
        from repro.graph import available_backends

        assert available_backends() == ("set", "bitset", "packed")

    def test_enumeration_works_on_the_fallback(self, no_numpy, example_graph):
        from repro.core import ITraversal

        expected = ITraversal(example_graph, 1, backend="set").enumerate()
        assert ITraversal(example_graph, 1, backend="packed").enumerate() == expected

    def test_butterfly_and_cores_work_on_the_fallback(self, no_numpy, example_graph):
        from repro.graph.butterfly import edge_butterfly_counts, k_bitruss
        from repro.graph.cores import alpha_beta_core

        packed = example_graph.to_packed()
        assert edge_butterfly_counts(packed) == edge_butterfly_counts(example_graph)
        assert sorted(k_bitruss(packed, 1).edges()) == sorted(
            k_bitruss(example_graph, 1).edges()
        )
        assert alpha_beta_core(packed, 2, 2) == alpha_beta_core(example_graph, 2, 2)

    def test_cli_backend_packed_succeeds(self, no_numpy, tmp_path, capsys, example_graph):
        from repro.cli import main
        from repro.graph import write_edge_list

        path = tmp_path / "graph.txt"
        write_edge_list(example_graph, path)
        assert main(["enumerate", "--input", str(path), "--backend", "packed", "--quiet"]) == 0
        packed_out = capsys.readouterr().out
        assert main(["enumerate", "--input", str(path), "--backend", "set", "--quiet"]) == 0
        set_out = capsys.readouterr().out
        assert packed_out.split("elapsed")[0] == set_out.split("elapsed")[0]


def test_example_graph_has_edges(example_graph):
    assert isinstance(example_graph, BipartiteGraph) and example_graph.num_edges > 0
