"""Tests for the EnumAlmostSat procedure and its refinement variants."""

import pytest

from repro.core import Biplex, ITraversal
from repro.core.enum_almost_sat import (
    EnumAlmostSatConfig,
    count_local_solutions,
    enum_local_solutions,
    enum_local_solutions_inflation,
    enum_local_solutions_naive,
)
from repro.graph import erdos_renyi_bipartite, paper_example_graph

ALL_CONFIGS = [
    EnumAlmostSatConfig(right_refinement=r, left_refinement=l) for r in (1, 2) for l in (1, 2)
]


class TestConfig:
    def test_labels(self):
        assert EnumAlmostSatConfig(2, 2).label == "L2.0+R2.0"
        assert EnumAlmostSatConfig(right_refinement=1, left_refinement=2).label == "L2.0+R1.0"

    def test_invalid_levels_rejected(self):
        with pytest.raises(ValueError):
            EnumAlmostSatConfig(right_refinement=3)
        with pytest.raises(ValueError):
            EnumAlmostSatConfig(left_refinement=0)


class TestPaperExample:
    def test_example_3_1(self, example_graph):
        """From H0 = ({v4}, R) adding v0 yields the local solution ({v0, v4}, R \\ {u4})."""
        locals_found = list(
            enum_local_solutions(example_graph, {4}, set(range(5)), 0, 1)
        )
        assert Biplex.of([0, 4], [0, 1, 2, 3]) in locals_found

    def test_example_3_2_round_one(self, example_graph):
        """From H0 adding v1: the local solution ({v1, v4}, {u0..u3}) appears."""
        locals_found = list(
            enum_local_solutions(example_graph, {4}, set(range(5)), 1, 1)
        )
        assert Biplex.of([1, 4], [0, 1, 2, 3]) in locals_found

    def test_example_3_2_round_two(self, example_graph):
        """From H1 = ({v0, v1, v4}, {u0..u3}) adding v2: ({v1, v2, v4}, {u0, u1, u2})."""
        locals_found = list(
            enum_local_solutions(example_graph, {0, 1, 4}, {0, 1, 2, 3}, 2, 1)
        )
        assert Biplex.of([1, 2, 4], [0, 1, 2]) in locals_found

    def test_every_local_solution_contains_v(self, example_graph):
        for v in (0, 1, 2, 3):
            for local in enum_local_solutions(example_graph, {4}, set(range(5)), v, 1):
                assert v in local.left

    def test_rejects_vertex_already_in_solution(self, example_graph):
        with pytest.raises(ValueError):
            list(enum_local_solutions(example_graph, {4}, set(range(5)), 4, 1))


class TestAgainstNaive:
    @pytest.mark.parametrize("config", ALL_CONFIGS, ids=lambda c: c.label)
    def test_all_refinements_match_naive_on_example(self, example_graph, config):
        solution_left, solution_right = {4}, set(range(5))
        for v in (0, 1, 2, 3):
            fast = set(
                enum_local_solutions(example_graph, solution_left, solution_right, v, 1, config)
            )
            naive = set(
                enum_local_solutions_naive(example_graph, solution_left, solution_right, v, 1)
            )
            assert fast == naive

    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("k", [1, 2])
    def test_refinements_match_naive_on_random_graphs(self, seed, k):
        graph = erdos_renyi_bipartite(4, 4, num_edges=7 + seed % 6, seed=seed)
        solutions = ITraversal(graph, k).enumerate()
        for solution in solutions[:2]:
            outside = [v for v in graph.left_vertices() if v not in solution.left]
            for v in outside[:2]:
                naive = set(
                    enum_local_solutions_naive(
                        graph, set(solution.left), set(solution.right), v, k
                    )
                )
                for config in ALL_CONFIGS:
                    fast = set(
                        enum_local_solutions(
                            graph, set(solution.left), set(solution.right), v, k, config
                        )
                    )
                    assert fast == naive, config.label

    @pytest.mark.parametrize("seed", range(5))
    def test_inflation_variant_matches_naive(self, seed):
        graph = erdos_renyi_bipartite(4, 4, num_edges=8, seed=100 + seed)
        k = 1
        solutions = ITraversal(graph, k).enumerate()
        solution = solutions[0]
        outside = [v for v in graph.left_vertices() if v not in solution.left]
        if not outside:
            pytest.skip("solution already covers the left side")
        v = outside[0]
        naive = set(
            enum_local_solutions_naive(graph, set(solution.left), set(solution.right), v, k)
        )
        inflation = set(
            enum_local_solutions_inflation(graph, set(solution.left), set(solution.right), v, k)
        )
        assert inflation == naive


class TestPrecomputedMissCounts:
    def test_solution_right_missing_gives_same_result(self, example_graph):
        left, right = {4}, set(range(5))
        precomputed = {
            u: example_graph.missing_right(u, left) for u in right
        }
        for v in (0, 1, 2):
            with_precomputed = set(
                enum_local_solutions(
                    example_graph, left, right, v, 1, solution_right_missing=precomputed
                )
            )
            without = set(enum_local_solutions(example_graph, left, right, v, 1))
            assert with_precomputed == without


class TestMinRightSize:
    def test_min_right_size_filters_small_local_solutions(self, example_graph):
        left, right = {4}, set(range(5))
        unfiltered = list(enum_local_solutions(example_graph, left, right, 0, 1))
        filtered = list(
            enum_local_solutions(example_graph, left, right, 0, 1, min_right_size=4)
        )
        assert all(len(local.right) >= 4 for local in filtered)
        assert set(filtered) <= set(unfiltered)

    def test_min_right_size_zero_is_noop(self, example_graph):
        left, right = {4}, set(range(5))
        assert set(enum_local_solutions(example_graph, left, right, 0, 1)) == set(
            enum_local_solutions(example_graph, left, right, 0, 1, min_right_size=0)
        )


class TestCounting:
    def test_count_matches_enumeration(self, example_graph):
        left, right = {4}, set(range(5))
        assert count_local_solutions(example_graph, left, right, 0, 1) == len(
            list(enum_local_solutions(example_graph, left, right, 0, 1))
        )

    def test_no_duplicate_local_solutions(self, example_graph):
        left, right = {4}, set(range(5))
        for v in (0, 1, 2, 3):
            found = list(enum_local_solutions(example_graph, left, right, v, 1))
            assert len(found) == len(set(found))
