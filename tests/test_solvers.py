"""Differential tests for the solver objectives (maximum / top-k).

The oracle is the full enumeration: ``maximum`` must return the min-key
solution among the maximum-size ones, ``top-k`` the first ``n`` of the
full set sorted by ``(-size, key)``.  Both are pinned across the backend
matrix, serial and ``jobs=2``, and the prep modes — the incumbent-bound
pruning (and the cross-worker bound gossip) must never change answers,
only skip work.
"""

import pytest

from backend_matrix import ALL_BACKENDS, random_graphs

from repro.core import (
    EnumerationSession,
    LargeMBPEnumerator,
    MaximumSize,
    TopK,
    enumerate_mbps,
    itraversal_config,
    make_objective,
    resolve_objective,
)
from repro.core.biplex import Biplex
from repro.graph import erdos_renyi_bipartite, paper_example_graph

GRAPHS = [paper_example_graph()] + random_graphs(4, max_side=5, seed=7)

#: One slightly larger graph for the parallel legs (enough shards to
#: actually fan out on jobs=2).
PARALLEL_GRAPH = erdos_renyi_bipartite(8, 7, num_edges=34, seed=5)


def _oracle(graph, k, theta_left=0, theta_right=0):
    solutions, _ = enumerate_mbps(graph, k, jobs=1)
    solutions = [
        s
        for s in solutions
        if len(s.left) >= theta_left and len(s.right) >= theta_right
    ]
    return sorted(solutions, key=lambda s: (-s.size, s.key()))


class TestResolveObjective:
    def test_defaults_to_enumerate(self):
        assert resolve_objective() == ("enumerate", None)
        assert resolve_objective(None, None) == ("enumerate", None)

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="mode must be one of"):
            resolve_objective("largest")

    def test_top_k_needs_top(self):
        with pytest.raises(ValueError, match="top-k mode needs top"):
            resolve_objective("top-k")
        with pytest.raises(ValueError, match="positive integer"):
            resolve_objective("top-k", 0)
        with pytest.raises(ValueError, match="positive integer"):
            resolve_objective("top-k", True)

    def test_top_rejected_outside_top_k(self):
        with pytest.raises(ValueError, match="only applies to the top-k mode"):
            resolve_objective("maximum", 3)
        with pytest.raises(ValueError, match="only applies to the top-k mode"):
            resolve_objective(None, 3)

    def test_factory_dispatch(self):
        assert isinstance(make_objective("maximum"), MaximumSize)
        assert isinstance(make_objective("top-k", 2), TopK)
        assert make_objective("enumerate").trivial


class TestObjectiveUnits:
    def _biplex(self, left, right):
        return Biplex(left=frozenset(left), right=frozenset(right))

    def test_maximum_tie_breaks_by_key(self):
        objective = MaximumSize()
        later = self._biplex([1, 2], [3, 4])
        earlier = self._biplex([0, 2], [3, 4])
        assert objective.observe(later)
        assert objective.observe(earlier)  # same size, smaller key wins
        assert not objective.observe(later)
        assert objective.results() == [earlier]
        assert objective.prune_below() == 4

    def test_top_k_bound_only_when_full(self):
        objective = TopK(2)
        assert objective.prune_below() == 0
        objective.observe(self._biplex([0], [1, 2]))
        assert objective.prune_below() == 0
        objective.observe(self._biplex([0, 1], [1, 2]))
        assert objective.prune_below() == 3  # the 2nd-best size

    def test_state_round_trip(self):
        for objective in (MaximumSize(), TopK(3)):
            objective.observe(self._biplex([0, 1], [2]))
            objective.observe(self._biplex([0], [2, 3]))
            clone = type(objective)(3) if isinstance(objective, TopK) else type(objective)()
            clone.load_state(objective.state())
            assert clone.results() == objective.results()
            assert clone.prune_below() == objective.prune_below()


class TestSolverDifferential:
    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    @pytest.mark.parametrize("prep", ["off", "core+order"])
    def test_maximum_matches_oracle_serial(self, backend, prep):
        for graph in GRAPHS:
            for k in (1, 2):
                oracle = _oracle(graph, k)
                solutions, stats = enumerate_mbps(
                    graph, k, backend=backend, prep=prep, jobs=1, mode="maximum"
                )
                assert solutions == oracle[:1]
                if oracle:
                    assert stats.best_size == oracle[0].size

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    @pytest.mark.parametrize("prep", ["off", "core+order"])
    def test_top_k_matches_oracle_serial(self, backend, prep):
        for graph in GRAPHS:
            oracle = _oracle(graph, 1)
            for top in (1, 3, len(oracle) + 5):
                solutions, _ = enumerate_mbps(
                    graph, 1, backend=backend, prep=prep, jobs=1, mode="top-k", top=top
                )
                assert solutions == oracle[:top]

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_solver_modes_match_oracle_jobs2(self, backend):
        oracle = _oracle(PARALLEL_GRAPH, 1)
        solutions, stats = enumerate_mbps(
            PARALLEL_GRAPH, 1, backend=backend, jobs=2, mode="maximum"
        )
        assert solutions == oracle[:1]
        assert stats.best_size == oracle[0].size
        solutions, _ = enumerate_mbps(
            PARALLEL_GRAPH, 1, backend=backend, jobs=2, mode="top-k", top=5
        )
        assert solutions == oracle[:5]

    @pytest.mark.parametrize("prep", ["off", "core"])
    def test_solver_modes_match_oracle_jobs2_prep(self, prep):
        oracle = _oracle(PARALLEL_GRAPH, 1)
        solutions, _ = enumerate_mbps(
            PARALLEL_GRAPH, 1, prep=prep, jobs=2, mode="top-k", top=3
        )
        assert solutions == oracle[:3]

    def test_bound_pruning_actually_fires(self):
        _, stats = enumerate_mbps(PARALLEL_GRAPH, 1, jobs=1, mode="maximum")
        assert stats.num_pruned_by_bound > 0

    def test_enumerate_mode_never_counts_bound_prunes(self):
        _, stats = enumerate_mbps(PARALLEL_GRAPH, 1, jobs=1)
        assert stats.num_pruned_by_bound == 0
        assert stats.best_size == max(s.size for s in _oracle(PARALLEL_GRAPH, 1))

    def test_large_mbp_solver_client(self):
        """Thresholds and the incumbent bound share one pruning path."""
        graph = PARALLEL_GRAPH
        oracle = _oracle(graph, 1, theta_left=2, theta_right=2)
        enumerator = LargeMBPEnumerator(graph, 1, theta=2, mode="maximum")
        assert enumerator.enumerate() == oracle[:1]
        enumerator = LargeMBPEnumerator(graph, 1, theta=2, mode="top-k", top=4)
        assert enumerator.enumerate() == oracle[:4]


class TestSolverCursors:
    def _config(self, **overrides):
        return itraversal_config(jobs=1, **overrides)

    def test_top_k_resume_mid_run_is_deterministic(self):
        graph = PARALLEL_GRAPH
        oracle = _oracle(graph, 1)
        for cap in (1, 5, 20, 60):
            session = EnumerationSession(
                graph, 1, self._config(objective="top-k", top=4, max_results=cap)
            )
            partial = list(session.stream())  # capped leg: best-so-far answers
            token = session.cursor()
            session.close()
            resumed = EnumerationSession.resume(
                graph, 1, token, self._config(objective="top-k", top=4)
            )
            final = list(resumed.stream())
            if session.stats.truncated:
                # The cap interrupted the traversal: the resumed leg owes
                # the full refined answer set.
                assert final == oracle[:4], f"cap={cap}"
            else:
                # Bound pruning finished the traversal under the cap: the
                # first leg already emitted the final answers and the
                # exhausted cursor resumes empty.
                assert partial == oracle[:4], f"cap={cap}"
                assert final == [], f"cap={cap}"

    def test_maximum_resume_mid_run_is_deterministic(self):
        graph = PARALLEL_GRAPH
        oracle = _oracle(graph, 1)
        session = EnumerationSession(
            graph, 1, self._config(objective="maximum", max_results=3)
        )
        list(session.stream())
        token = session.cursor()
        session.close()
        resumed = EnumerationSession.resume(
            graph, 1, token, self._config(objective="maximum")
        )
        assert list(resumed.stream()) == oracle[:1]

    def test_capped_leg_emits_best_so_far(self):
        graph = PARALLEL_GRAPH
        session = EnumerationSession(
            graph, 1, self._config(objective="top-k", top=4, max_results=6)
        )
        partial = list(session.stream())
        assert 0 < len(partial) <= 4
        assert session.stats.truncated

    def test_exhausted_solver_cursor_resumes_empty(self):
        graph = GRAPHS[0]
        session = EnumerationSession(graph, 1, self._config(objective="maximum"))
        answer = list(session.stream())
        assert len(answer) == 1
        token = session.cursor()
        resumed = EnumerationSession.resume(
            graph, 1, token, self._config(objective="maximum")
        )
        assert resumed.exhausted
        assert list(resumed.stream()) == []

    def test_objective_is_fingerprinted(self):
        from repro.core import CursorError

        graph = GRAPHS[0]
        session = EnumerationSession(graph, 1, self._config(objective="maximum"))
        session.next_batch(1)
        token = session.cursor()
        session.close()
        with pytest.raises(CursorError):
            EnumerationSession.resume(graph, 1, token, self._config())
        with pytest.raises(CursorError):
            EnumerationSession.resume(
                graph, 1, token, self._config(objective="top-k", top=2)
            )

    def test_offset_solver_cursor_resumes_pagination(self):
        graph = PARALLEL_GRAPH
        oracle = _oracle(graph, 1)
        config = itraversal_config(jobs=2, objective="top-k", top=3)
        session = EnumerationSession(graph, 1, config)
        first = session.next_batch(2)
        assert first == oracle[:2]
        token = session.cursor()
        session.close()
        # The uncapped leg completed its traversal, so the refined set is
        # final: the offset resume re-runs and skips the consumed prefix.
        resumed = EnumerationSession.resume(graph, 1, token, config)
        assert list(resumed.stream()) == oracle[2:3]


class TestBoundCoreSets:
    def test_unbounded_returns_everything(self):
        from repro.prep import bound_core_sets

        graph = paper_example_graph()
        left, right = bound_core_sets(graph, 1, 0)
        assert left == set(range(graph.n_left))
        assert right == set(range(graph.n_right))

    def test_every_qualifying_solution_survives(self):
        from repro.prep import bound_core_sets

        for graph in GRAPHS:
            oracle = _oracle(graph, 1)
            if not oracle:
                continue
            bound = oracle[0].size
            left, right = bound_core_sets(graph, 1, bound)
            for solution in oracle:
                if solution.size >= bound:
                    assert set(solution.left) <= left
                    assert set(solution.right) <= right

    def test_tight_bound_peels_something(self):
        """The re-reduction bites once the bound exceeds a side's head-room.

        A planted dense block in a sparse background: the maximum biplex
        spans the block, so ``bound − n_left`` forces a right-side size
        that the background-only right vertices cannot reach.
        """
        from repro.graph.generators import planted_biplex_graph
        from repro.prep import bound_core_sets

        graph = planted_biplex_graph(
            12, 9, block_left=9, block_right=4, k=1, background_edges=8, seed=2
        )
        oracle = _oracle(graph, 1)
        bound = oracle[0].size
        left, right = bound_core_sets(graph, 1, bound)
        assert len(right) < graph.n_right
        for solution in oracle:
            if solution.size >= bound:
                assert set(solution.left) <= left
                assert set(solution.right) <= right


class TestServiceObjectives:
    def _service(self):
        from repro.service import QueryService

        return QueryService()

    def _query(self, graph, **extra):
        edges = [
            [v, u]
            for v in range(graph.n_left)
            for u in sorted(graph.neighbors_of_left(v))
        ]
        return {
            "graph": {
                "n_left": graph.n_left,
                "n_right": graph.n_right,
                "edges": edges,
            },
            "k": 1,
            **extra,
        }

    def test_mode_separates_result_cache_entries(self):
        """A maximum answer must never be served for an enumerate query."""
        service = self._service()
        graph = PARALLEL_GRAPH
        maximum = service.enumerate(self._query(graph, mode="maximum"))
        plain = service.enumerate(self._query(graph))
        assert maximum["num_solutions"] == 1
        assert plain["num_solutions"] == len(_oracle(graph, 1))
        assert not plain["cached"]
        # Same fingerprint, different mode → distinct plan-cache entries.
        assert service.registry.counters()["plans_built"] == 2
        again = service.enumerate(self._query(graph, mode="maximum"))
        assert again["cached"]
        assert again["num_solutions"] == 1

    def test_status_block_reports_mode_and_bound_counters(self):
        service = self._service()
        response = service.enumerate(self._query(GRAPHS[0], mode="maximum"))
        status = response["status"]
        assert status["mode"] == "maximum"
        assert status["best_size"] > 0
        assert "num_pruned_by_bound" in status

    def test_top_k_normalization_errors(self):
        from repro.service import QueryError

        service = self._service()
        with pytest.raises(QueryError, match="top-k mode needs top"):
            service.normalize(self._query(GRAPHS[0], mode="top-k"))
        with pytest.raises(QueryError, match="mode must be one of"):
            service.normalize(self._query(GRAPHS[0], mode="biggest"))
        with pytest.raises(QueryError, match="only applies to the top-k mode"):
            service.normalize(self._query(GRAPHS[0], top=3))

    def test_paginated_top_k_with_service_cursor(self):
        service = self._service()
        graph = PARALLEL_GRAPH
        oracle = _oracle(graph, 1)
        response = service.open_session(
            self._query(graph, mode="top-k", top=4), page_size=2
        )
        solutions = list(response["solutions"])
        pages = 1
        while not response["exhausted"]:
            # Cursor-only resume: drop the live session on purpose.  The
            # completed-traversal cursor paginates the final answer list,
            # so this loop terminates without duplicates.
            response = service.next_page(
                cursor=response["cursor"], page_size=2
            )
            solutions.extend(response["solutions"])
            pages += 1
            assert pages <= 8, "cursor pagination failed to make progress"
        expected = [[sorted(s.left), sorted(s.right)] for s in oracle[:4]]
        assert solutions == expected
