"""Unit tests for the k-biplex primitives (Definitions 2.1-2.3 and extensions)."""

import pytest

from repro.core import (
    Biplex,
    arbitrary_initial_solution,
    can_add_left,
    can_add_right,
    extend_to_maximal,
    initial_solution_left_anchored,
    initial_solution_right_anchored,
    is_k_biplex,
    is_maximal_k_biplex,
)
from repro.core.biplex import biplex_edge_count, iter_biplex_missing_pairs, violating_vertices
from repro.graph import BipartiteGraph, paper_example_graph


class TestBiplexValue:
    def test_of_and_size(self):
        biplex = Biplex.of([2, 1], [3])
        assert biplex.left == frozenset({1, 2})
        assert biplex.right == frozenset({3})
        assert biplex.size == 3

    def test_hashable_and_equal(self):
        assert Biplex.of([1], [2]) == Biplex.of({1}, {2})
        assert len({Biplex.of([1], [2]), Biplex.of([1], [2])}) == 1

    def test_contains(self):
        big = Biplex.of([1, 2], [3, 4])
        small = Biplex.of([1], [3])
        assert big.contains(small)
        assert not small.contains(big)
        assert big.contains(big)

    def test_key_is_sorted(self):
        assert Biplex.of([3, 1], [2]).key() == ((1, 3), (2,))

    def test_vertices(self):
        left, right = Biplex.of([1], [2, 3]).vertices()
        assert left == frozenset({1})
        assert right == frozenset({2, 3})


class TestIsKBiplex:
    def test_empty_sides_are_biplexes(self, example_graph):
        assert is_k_biplex(example_graph, [], [], 1)
        assert is_k_biplex(example_graph, [], example_graph.right_vertices(), 1)
        assert is_k_biplex(example_graph, example_graph.left_vertices(), [], 1)

    def test_complete_graph_is_biplex_for_any_k(self, complete_graph):
        assert is_k_biplex(complete_graph, [0, 1, 2], [0, 1, 2], 1)

    def test_paper_example_solutions(self, example_graph):
        # H0, H1 and H'' from the worked examples are 1-biplexes.
        assert is_k_biplex(example_graph, [4], [0, 1, 2, 3, 4], 1)
        assert is_k_biplex(example_graph, [0, 1, 4], [0, 1, 2, 3], 1)
        assert is_k_biplex(example_graph, [1, 2, 4], [0, 1, 2], 1)

    def test_violating_subgraph(self, example_graph):
        # v3 misses u0, u1 and u2: three misses exceed k = 1 and k = 2.
        assert not is_k_biplex(example_graph, [3], [0, 1, 2, 3, 4], 1)
        assert not is_k_biplex(example_graph, [3], [0, 1, 2, 3, 4], 2)
        assert is_k_biplex(example_graph, [3], [0, 1, 2, 3, 4], 3)

    def test_right_side_violation(self):
        graph = BipartiteGraph(3, 1, edges=[(0, 0)])
        # u0 misses v1 and v2.
        assert not is_k_biplex(graph, [0, 1, 2], [0], 1)
        assert is_k_biplex(graph, [0, 1, 2], [0], 2)


class TestCanAdd:
    def test_can_add_left_respects_own_budget(self, example_graph):
        # v3 misses u0, u1, u2 so it cannot join ({v4}, R) for k = 1.
        assert not can_add_left(example_graph, {4}, set(range(5)), 3, 1)
        assert can_add_left(example_graph, {4}, set(range(5)), 3, 3)

    def test_can_add_left_respects_partner_budget(self, example_graph):
        # Adding v0 to ({v1, v2, v4}, {u0, u1, u2}) would overload u2
        # (u2 already misses v2 and v0 also misses u2).
        assert not can_add_left(example_graph, {1, 2, 4}, {0, 1, 2}, 0, 1)

    def test_can_add_already_member(self, example_graph):
        assert not can_add_left(example_graph, {4}, {0, 1}, 4, 1)
        assert not can_add_right(example_graph, {4}, {0, 1}, 0, 1)

    def test_can_add_right(self, example_graph):
        # u3 can join ({v1, v4}, {u0, u1, u2}) for k = 1: v1 and v4 are adjacent to u3.
        assert can_add_right(example_graph, {1, 4}, {0, 1, 2}, 3, 1)
        # u4 cannot: v1 misses u0 already and also misses u4.
        assert not can_add_right(example_graph, {1, 4}, {0, 1, 2}, 4, 1)

    def test_can_add_mirrors_is_k_biplex(self, example_graph):
        left, right = {0, 4}, {0, 1, 3}
        for v in example_graph.left_vertices():
            if v in left:
                continue
            expected = is_k_biplex(example_graph, left | {v}, right, 1)
            assert can_add_left(example_graph, left, right, v, 1) == expected
        for u in example_graph.right_vertices():
            if u in right:
                continue
            expected = is_k_biplex(example_graph, left, right | {u}, 1)
            assert can_add_right(example_graph, left, right, u, 1) == expected


class TestMaximality:
    def test_paper_solutions_are_maximal(self, example_graph):
        assert is_maximal_k_biplex(example_graph, [4], [0, 1, 2, 3, 4], 1)
        assert is_maximal_k_biplex(example_graph, [0, 1, 4], [0, 1, 2, 3], 1)
        assert is_maximal_k_biplex(example_graph, [1, 2, 4], [0, 1, 2], 1)

    def test_subgraph_of_maximal_is_not_maximal(self, example_graph):
        assert not is_maximal_k_biplex(example_graph, [4], [0, 1, 2], 1)
        assert not is_maximal_k_biplex(example_graph, [], [0, 1, 2, 3, 4], 1)

    def test_non_biplex_is_not_maximal(self, example_graph):
        assert not is_maximal_k_biplex(example_graph, [0, 3], [0, 1, 2, 3, 4], 1)

    def test_candidate_pools_restrict_the_check(self, example_graph):
        # ({v4}, {u0, u1, u2}) is not maximal in G, but is maximal when only
        # u0..u2 and v4 are candidates.
        assert not is_maximal_k_biplex(example_graph, [4], [0, 1, 2], 1)
        assert is_maximal_k_biplex(
            example_graph, [4], [0, 1, 2], 1, candidate_left=[4], candidate_right=[0, 1, 2]
        )


class TestExtension:
    def test_extension_reaches_maximal(self, example_graph):
        result = extend_to_maximal(example_graph, [4], [0, 1, 2, 3, 4], 1)
        assert is_maximal_k_biplex(example_graph, result.left, result.right, 1)

    def test_extension_is_superset(self, example_graph):
        result = extend_to_maximal(example_graph, [1], [0, 1, 2], 1)
        assert {1} <= set(result.left)
        assert {0, 1, 2} <= set(result.right)

    def test_extension_restricted_to_left_candidates(self, example_graph):
        result = extend_to_maximal(example_graph, [1, 4], [0, 1, 2], 1, candidate_right=())
        # No right vertex may be added even though u3 would fit.
        assert set(result.right) == {0, 1, 2}
        assert is_maximal_k_biplex(
            example_graph, result.left, result.right, 1, candidate_right=()
        )

    def test_extension_deterministic(self, example_graph):
        first = extend_to_maximal(example_graph, [], [], 1)
        second = extend_to_maximal(example_graph, [], [], 1)
        assert first == second

    def test_extension_example_from_paper(self, example_graph):
        # Example 3.1: the local solution ({v0, v4}, {u0..u3}) extends to H1
        # by including v1.
        result = extend_to_maximal(example_graph, [0, 4], [0, 1, 2, 3], 1)
        assert result == Biplex.of([0, 1, 4], [0, 1, 2, 3])


class TestInitialSolutions:
    def test_left_anchored_initial_solution(self, example_graph):
        h0 = initial_solution_left_anchored(example_graph, 1)
        assert set(h0.right) == set(example_graph.right_vertices())
        assert set(h0.left) == {4}
        assert is_maximal_k_biplex(example_graph, h0.left, h0.right, 1)

    def test_left_anchored_is_maximal_for_all_k(self, example_graph):
        for k in (1, 2, 3):
            h0 = initial_solution_left_anchored(example_graph, k)
            assert is_maximal_k_biplex(example_graph, h0.left, h0.right, k)

    def test_right_anchored_initial_solution(self, example_graph):
        h0 = initial_solution_right_anchored(example_graph, 1)
        assert set(h0.left) == set(example_graph.left_vertices())
        assert is_maximal_k_biplex(example_graph, h0.left, h0.right, 1)

    def test_arbitrary_initial_solution_is_maximal(self, example_graph):
        h0 = arbitrary_initial_solution(example_graph, 1)
        assert is_maximal_k_biplex(example_graph, h0.left, h0.right, 1)

    def test_initial_solution_on_empty_graph(self, empty_graph):
        h0 = initial_solution_left_anchored(empty_graph, 1)
        # With no edges, each left vertex misses every right vertex; only
        # graphs with |R| <= k admit left vertices.
        assert set(h0.right) == set(empty_graph.right_vertices())
        assert set(h0.left) == set()


class TestHelpers:
    def test_violating_vertices(self, example_graph):
        bad_left, bad_right = violating_vertices(
            example_graph, [0, 3], [0, 1, 2, 3, 4], 1
        )
        assert 3 in bad_left
        assert 0 in bad_right or bad_right == set() or isinstance(bad_right, set)

    def test_violating_vertices_empty_for_biplex(self, example_graph):
        bad_left, bad_right = violating_vertices(example_graph, [4], [0, 1, 2, 3, 4], 1)
        assert bad_left == set()
        assert bad_right == set()

    def test_biplex_edge_count(self, example_graph):
        biplex = Biplex.of([0, 1, 4], [0, 1, 2, 3])
        count = biplex_edge_count(example_graph, biplex)
        assert count == 3 * 4 - 2  # v0 misses u2, v1 misses u0

    def test_missing_pairs(self, example_graph):
        biplex = Biplex.of([0, 1, 4], [0, 1, 2, 3])
        missing = set(iter_biplex_missing_pairs(example_graph, biplex))
        assert missing == {(0, 2), (1, 0)}
