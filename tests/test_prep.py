"""Unit tests for the preprocessing pipeline (:mod:`repro.prep`).

Covers the pieces the differential harness cannot attribute precisely:

* the threshold-driven bounds themselves (asymmetric core, bitruss support),
* soundness of the reduction against the brute-force oracle — every
  θ-large maximal k-biplex survives, nothing extra appears,
* the fixpoint property the parallel workers rely on (re-reducing a
  reduced graph is an identity),
* id remapping round-trips on graphs with isolated and peeled vertices,
* the ordering heuristics (valid permutations, deterministic),
* prep-mode resolution (``REPRO_PREP``, invalid values),
* the re-exploration cascade fallback's re-arm discipline.
"""

from __future__ import annotations

import pytest

from repro.baselines import enumerate_mbps_bruteforce
from repro.core import ITraversal
from repro.core.large import filter_large
from repro.graph import BipartiteGraph, as_backend, erdos_renyi_bipartite, paper_example_graph
from repro.prep import (
    PREP_MODES,
    ORDER_STRATEGIES,
    bitruss_support_bound,
    default_prep,
    degeneracy_order,
    degree_order,
    gamma_score_order,
    prepare,
    reduce_for_thresholds,
    resolve_prep,
    threshold_core_bounds,
)


def graph_with_fringe() -> BipartiteGraph:
    """A dense 3x3 block plus pendant/isolated vertices on both sides.

    Left vertices 3/4 hang off the block with a single edge each, left
    vertex 5 and right vertices 3/4 are fully isolated.  Any (2, 2)-core
    reduction must peel all of them and remap the block.
    """
    edges = [(v, u) for v in range(3) for u in range(3)]
    edges += [(3, 0), (4, 2)]
    return BipartiteGraph(n_left=6, n_right=5, edges=edges)


# --------------------------------------------------------------------- #
# Bounds
# --------------------------------------------------------------------- #
class TestBounds:
    def test_core_bounds_swap_sides(self):
        # theta_right constrains *left* degrees: a left vertex of a solution
        # must see at least theta_right - k right vertices.
        assert threshold_core_bounds(1, 2, 4) == (3, 1)
        assert threshold_core_bounds(2, 5, 0) == (0, 3)

    def test_core_bounds_clamp_at_zero(self):
        assert threshold_core_bounds(3, 2, 2) == (0, 0)
        assert threshold_core_bounds(0, 0, 0) == (0, 0)

    def test_support_bound_zero_without_both_thresholds(self):
        assert bitruss_support_bound(1, 3, 0) == 0
        assert bitruss_support_bound(1, 0, 3) == 0
        assert bitruss_support_bound(0, 0, 0) == 0

    def test_support_bound_positive_needs_room_beyond_k(self):
        # theta = k + 1 leaves a = b = 0: no butterfly is guaranteed.
        assert bitruss_support_bound(1, 2, 2) == 0
        # theta_L = theta_R = 4, k = 1: a = b = 2, bound = 2 * (2 - 1) = 2.
        assert bitruss_support_bound(1, 4, 4) == 2

    def test_support_bound_asymmetric_takes_best_orientation(self):
        k, tl, tr = 1, 5, 3
        a, b = tl - k - 1, tr - k - 1  # 3, 1
        expected = max(a * (b - k), b * (a - k))
        assert bitruss_support_bound(k, tl, tr) == expected > 0


# --------------------------------------------------------------------- #
# Reduction
# --------------------------------------------------------------------- #
class TestReduction:
    def test_identity_without_thresholds(self):
        graph = paper_example_graph()
        reduction = reduce_for_thresholds(graph, 1)
        assert reduction.is_identity
        assert reduction.graph is graph
        assert (reduction.removed_left, reduction.removed_right) == (0, 0)

    def test_peels_fringe_and_remaps(self):
        reduction = reduce_for_thresholds(graph_with_fringe(), 1, 3, 3)
        assert not reduction.is_identity
        assert reduction.graph.n_left == 3 and reduction.graph.n_right == 3
        assert reduction.left_map == [0, 1, 2]
        assert reduction.right_map == [0, 1, 2]
        assert reduction.removed_left == 3
        assert reduction.removed_right == 2

    def test_reduction_is_a_fixpoint(self):
        """Workers re-run prepare() on the reduced graph: it must not move."""
        for seed in range(6):
            graph = erdos_renyi_bipartite(8, 7, num_edges=20, seed=seed)
            for tl, tr in ((3, 3), (2, 4), (4, 2), (0, 3)):
                reduction = reduce_for_thresholds(graph, 1, tl, tr)
                again = reduce_for_thresholds(reduction.graph, 1, tl, tr)
                assert again.is_identity, (seed, tl, tr)

    @pytest.mark.parametrize("k", (1, 2))
    def test_reduction_preserves_large_solutions(self, k):
        """Oracle check: the reduced graph holds exactly the θ-large MBPs."""
        for seed in range(4):
            graph = erdos_renyi_bipartite(6, 6, num_edges=14, seed=100 + seed)
            reference_all = enumerate_mbps_bruteforce(graph, k)
            for tl, tr in ((2, 2), (3, 2), (1, 4)):
                expected = {
                    s.key() for s in filter_large(reference_all, tl, tr)
                }
                reduction = reduce_for_thresholds(graph, k, tl, tr)
                left_map = reduction.left_map or list(
                    reduction.graph.left_vertices()
                )
                right_map = reduction.right_map or list(
                    reduction.graph.right_vertices()
                )
                got = set()
                for s in enumerate_mbps_bruteforce(reduction.graph, k):
                    if len(s.left) >= tl and len(s.right) >= tr:
                        got.add(
                            (
                                tuple(sorted(left_map[v] for v in s.left)),
                                tuple(sorted(right_map[u] for u in s.right)),
                            )
                        )
                assert got == expected, (seed, k, tl, tr)

    def test_reduction_sound_for_bicliques(self):
        """k = 0 (maximal bicliques, the iMB biclique path) peels safely too."""
        from repro.baselines import enumerate_mbps_imb

        for seed in range(4):
            graph = erdos_renyi_bipartite(6, 6, num_edges=16, seed=200 + seed)
            expected = set(
                enumerate_mbps_imb(graph, 0, theta_left=2, theta_right=2, prep="off")
            )
            got = set(
                enumerate_mbps_imb(graph, 0, theta_left=2, theta_right=2, prep="core")
            )
            assert got == expected, seed

    def test_backend_class_is_preserved(self):
        graph = as_backend(graph_with_fringe(), "packed")
        reduction = reduce_for_thresholds(graph, 1, 3, 3)
        assert type(reduction.graph) is type(graph)


# --------------------------------------------------------------------- #
# Orderings
# --------------------------------------------------------------------- #
class TestOrderings:
    @pytest.mark.parametrize("strategy", sorted(ORDER_STRATEGIES))
    def test_orders_are_permutations(self, strategy):
        for seed in range(4):
            graph = erdos_renyi_bipartite(7, 5, num_edges=15, seed=seed)
            left, right = ORDER_STRATEGIES[strategy](graph)
            assert sorted(left) == list(graph.left_vertices())
            assert sorted(right) == list(graph.right_vertices())

    def test_orders_are_deterministic(self):
        graph = erdos_renyi_bipartite(9, 8, num_edges=30, seed=5)
        assert degeneracy_order(graph) == degeneracy_order(graph)
        assert degree_order(graph) == degree_order(graph)
        assert gamma_score_order(graph) == gamma_score_order(graph)

    def test_degree_order_is_ascending(self):
        graph = graph_with_fringe()
        left, _ = degree_order(graph)
        degrees = [graph.degree_of_left(v) for v in left]
        assert degrees == sorted(degrees)

    def test_degeneracy_starts_at_minimum_degree(self):
        graph = graph_with_fringe()
        left, right = degeneracy_order(graph)
        # The isolated vertices peel first on their sides.
        assert left[0] == 5
        assert right[0] == 3


class TestAutoOrder:
    def test_dense_graph_picks_degree(self):
        from repro.prep import choose_order_strategy
        from repro.graph import BipartiteGraph

        # Complete bipartite: density 1.0, way past the dense threshold.
        edges = [(v, u) for v in range(4) for u in range(4)]
        graph = BipartiteGraph(4, 4, edges=edges)
        assert choose_order_strategy(graph) == "degree"

    def test_hub_skewed_graph_picks_degeneracy(self):
        from repro.prep import choose_order_strategy
        from repro.graph import BipartiteGraph

        # One left hub over a large sparse fringe: max degree far above mean.
        edges = [(0, u) for u in range(12)] + [(v, v - 1) for v in range(1, 12)]
        graph = BipartiteGraph(12, 12, edges=edges)
        assert choose_order_strategy(graph) == "degeneracy"

    def test_sparse_even_graph_picks_gamma(self):
        from repro.prep import choose_order_strategy
        from repro.graph import BipartiteGraph

        # A long cycle: every degree 2, sparse — no hubs, no density.
        n = 10
        edges = [(v, v) for v in range(n)] + [(v, (v + 1) % n) for v in range(n)]
        graph = BipartiteGraph(n, n, edges=edges)
        assert choose_order_strategy(graph) == "gamma"

    def test_degenerate_graphs_pick_degree(self):
        from repro.prep import choose_order_strategy
        from repro.graph import BipartiteGraph

        assert choose_order_strategy(BipartiteGraph(0, 0, edges=[])) == "degree"
        assert choose_order_strategy(BipartiteGraph(3, 3, edges=[])) == "degree"

    def test_auto_is_a_registered_strategy(self):
        for seed in range(3):
            graph = erdos_renyi_bipartite(6, 6, num_edges=14, seed=seed)
            left, right = ORDER_STRATEGIES["auto"](graph)
            assert sorted(left) == list(graph.left_vertices())
            assert sorted(right) == list(graph.right_vertices())

    def test_plan_records_concrete_strategy(self):
        from repro.prep import choose_order_strategy

        graph = graph_with_fringe()
        plan = prepare(graph, 1, "core+order", order_strategy="auto")
        assert plan.order_strategy in ("degeneracy", "degree", "gamma")
        assert plan.order_strategy == choose_order_strategy(plan.graph)
        explicit = prepare(graph, 1, "core+order", order_strategy="gamma")
        assert explicit.order_strategy == "gamma"
        assert prepare(graph, 1, "core").order_strategy is None

    def test_auto_preserves_solution_set(self, monkeypatch):
        monkeypatch.setenv("REPRO_ORDER", "auto")
        for seed in range(3):
            graph = erdos_renyi_bipartite(6, 5, num_edges=14, seed=seed)
            baseline = ITraversal(graph, 1, prep="off").enumerate()
            auto = ITraversal(graph, 1, prep="core+order").enumerate()
            assert sorted(s.key() for s in auto) == sorted(s.key() for s in baseline)

    def test_env_var_resolves_default(self, monkeypatch):
        from repro.prep import default_order_strategy, resolve_order_strategy

        monkeypatch.delenv("REPRO_ORDER", raising=False)
        assert default_order_strategy() == "degeneracy"
        assert resolve_order_strategy(None) == "degeneracy"
        monkeypatch.setenv("REPRO_ORDER", "auto")
        assert resolve_order_strategy(None) == "auto"
        plan = prepare(graph_with_fringe(), 1, "core+order")
        assert plan.order_strategy in ("degeneracy", "degree", "gamma")

    def test_invalid_env_var_raises_with_its_name(self, monkeypatch):
        monkeypatch.setenv("REPRO_ORDER", "zigzag")
        with pytest.raises(ValueError, match="REPRO_ORDER"):
            prepare(graph_with_fringe(), 1, "core+order")


# --------------------------------------------------------------------- #
# Plans, modes, environment
# --------------------------------------------------------------------- #
class TestPlanResolution:
    def test_resolve_prep_passthrough_and_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_PREP", raising=False)
        assert resolve_prep(None) == "core"
        assert default_prep() == "core"
        for mode in PREP_MODES:
            assert resolve_prep(mode) == mode

    def test_env_var_overrides_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_PREP", "core+order")
        assert resolve_prep(None) == "core+order"
        algorithm = ITraversal(paper_example_graph(), 1)
        assert algorithm.prep.mode == "core+order"

    def test_invalid_mode_raises(self):
        with pytest.raises(ValueError, match="unknown prep mode"):
            resolve_prep("bogus")
        with pytest.raises(ValueError, match="unknown prep mode"):
            ITraversal(paper_example_graph(), 1, prep="bogus")
        from repro.core.traversal import TraversalConfig

        with pytest.raises(ValueError, match="prep must be one of"):
            TraversalConfig(prep="bogus")

    def test_invalid_env_var_raises_with_its_name(self, monkeypatch):
        monkeypatch.setenv("REPRO_PREP", "nope")
        with pytest.raises(ValueError, match="REPRO_PREP"):
            default_prep()

    def test_prepare_off_is_bare(self):
        graph = graph_with_fringe()
        plan = prepare(graph, 1, "off", theta_left=3, theta_right=3)
        assert plan.is_identity_map
        assert plan.graph is graph
        assert plan.left_order is None and plan.right_order is None

    def test_prepare_unknown_order_strategy_raises(self):
        with pytest.raises(ValueError, match="order strategy"):
            prepare(graph_with_fringe(), 1, "core+order", order_strategy="zigzag")


# --------------------------------------------------------------------- #
# Translation through the enumerators
# --------------------------------------------------------------------- #
class TestTranslation:
    @pytest.mark.parametrize("prep", ("core", "core+order"))
    @pytest.mark.parametrize("jobs", (1, 2))
    def test_solutions_come_back_in_original_ids(self, prep, jobs):
        """Round-trip on a graph whose fringe is peeled away.

        The block solution must be reported with the *original* ids even
        though the engine ran on a remapped 3x3 graph.
        """
        graph = graph_with_fringe()
        reference = {
            s.key()
            for s in filter_large(enumerate_mbps_bruteforce(graph, 1), 3, 3)
        }
        algorithm = ITraversal(
            graph, 1, theta_left=3, theta_right=3, prep=prep, jobs=jobs
        )
        got = {s.key() for s in algorithm.enumerate()}
        assert got == reference
        plan = algorithm.prep
        assert plan.removed_left == 3 and plan.removed_right == 2

    def test_translation_on_peeled_isolated_vertices(self):
        """Isolated vertices in the middle of the id range shift the maps."""
        edges = [(0, 0), (0, 2), (2, 0), (2, 2), (0, 3), (2, 3), (3, 0), (3, 2), (3, 3)]
        graph = BipartiteGraph(n_left=4, n_right=4, edges=edges)  # left 1, right 1 isolated
        reference = {
            s.key()
            for s in filter_large(enumerate_mbps_bruteforce(graph, 1), 2, 2)
        }
        algorithm = ITraversal(graph, 1, theta_left=2, theta_right=2, prep="core")
        assert {s.key() for s in algorithm.enumerate()} == reference
        assert not algorithm.prep.is_identity_map

    def test_initial_solution_is_translated(self):
        graph = graph_with_fringe()
        algorithm = ITraversal(graph, 1, theta_left=3, theta_right=3, prep="core")
        initial = algorithm.initial_solution()
        # The fringe right vertices 3/4 were peeled: the anchored initial
        # solution's right side is the reduced block, in original ids.
        assert initial.right <= {0, 1, 2}


# --------------------------------------------------------------------- #
# Golden outputs: prep="off" reproduces the historical traversal exactly
# --------------------------------------------------------------------- #
#: ITraversal k=1 on the paper's example graph, captured before the prep
#: pipeline existed.  ``prep="off"`` (and, without thresholds, the default
#: ``"core"``) must reproduce this list bit for bit — order included — on
#: every backend.
PAPER_EXAMPLE_GOLDEN_K1 = [
    ((4,), (0, 1, 2, 3, 4)),
    ((0, 1, 4), (0, 1, 2, 3)),
    ((0, 1, 2, 4), (0, 1, 3)),
    ((0, 1, 2, 3, 4), (1, 3)),
    ((1, 2, 4), (0, 1, 2)),
    ((0, 2, 4), (0, 1, 3, 4)),
    ((1, 2, 3, 4), (1, 3, 4)),
    ((0, 2, 3, 4), (1, 3, 4)),
    ((0, 2, 3, 4), (0, 3, 4)),
    ((1, 4), (1, 2, 3, 4)),
    ((1, 2, 4), (1, 2, 4)),
    ((1, 3, 4), (2, 3, 4)),
    ((2, 4), (0, 1, 2, 4)),
]


class TestGoldenOutputs:
    @pytest.mark.parametrize("backend", ("set", "bitset", "packed"))
    @pytest.mark.parametrize("prep", ("off", "core"))
    def test_paper_example_bit_for_bit(self, backend, prep):
        # jobs=1 pinned: the golden list is the *serial* DFS order (a
        # REPRO_JOBS=2 environment would switch to sorted parallel output).
        keys = [
            s.key()
            for s in ITraversal(
                paper_example_graph(), 1, backend=backend, prep=prep, jobs=1
            ).enumerate()
        ]
        assert keys == PAPER_EXAMPLE_GOLDEN_K1

    def test_off_matches_historical_behaviour_across_backends(self):
        """Same DFS order on every backend, thresholds on or off."""
        graph = erdos_renyi_bipartite(6, 5, num_edges=14, seed=7)
        for theta in (0, 2):
            runs = [
                [
                    s.key()
                    for s in ITraversal(
                        graph,
                        1,
                        theta_left=theta,
                        theta_right=theta,
                        backend=backend,
                        prep="off",
                        jobs=1,
                    ).enumerate()
                ]
                for backend in ("set", "bitset", "packed")
            ]
            assert runs[0] == runs[1] == runs[2]
            assert runs[0], f"theta={theta} must produce solutions"


# --------------------------------------------------------------------- #
# Cascade fallback plumbing
# --------------------------------------------------------------------- #
class TestCascadeFallback:
    def test_serial_runs_never_reexplore(self):
        graph = erdos_renyi_bipartite(10, 6, num_edges=28, seed=3)
        algorithm = ITraversal(graph, 1, jobs=1)
        algorithm.enumerate()
        assert algorithm.stats.num_reexplorations == 0

    def test_fallback_rearms_between_shards(self):
        """A shard that trips the fallback must not poison the next shard."""
        from repro.core.traversal import ReverseSearchEngine, TraversalConfig

        graph = erdos_renyi_bipartite(8, 5, num_edges=18, seed=1)
        engine = ReverseSearchEngine(graph, 1, TraversalConfig())
        engine._inherit_exclusions_requested = True
        root = engine._initial_solution()
        anchors = [
            (side, vertex) for side, vertex in engine._candidate_vertices(root)
        ][:2]
        assert len(anchors) == 2
        list(engine.run_shard(root, anchors[0], frozenset()))
        engine._inherit_exclusions = False  # simulate a tripped fallback
        list(engine.run_shard(root, anchors[1], frozenset()))
        assert engine._inherit_exclusions is True

    def test_merged_parallel_counter_is_deterministic(self):
        graph = erdos_renyi_bipartite(14, 4, num_edges=26, seed=2)
        counts = set()
        for _ in range(2):
            algorithm = ITraversal(graph, 1, jobs=2)
            algorithm.enumerate()
            counts.add(
                (algorithm.stats.num_reexplorations, algorithm.stats.num_links)
            )
        assert len(counts) == 1
