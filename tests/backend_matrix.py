"""The adjacency-backend matrix shared by the parametrized equivalence tests.

Lives in its own module (not ``conftest``) so test files can import it
without colliding with the benchmarks' ``conftest`` when pytest collects
both directories in one run.
"""

#: The full backend matrix for parametrized equivalence tests.  All three
#: backends are always exercised: without a capable numpy the ``packed``
#: entry runs on the ``array('Q')`` fallback substrate, which is exactly
#: the degradation path the suite must pin.
ALL_BACKENDS = ("set", "bitset", "packed")


def random_graphs(count: int, max_side: int = 6, seed: int = 0):
    """A deterministic collection of small random graphs for exhaustive checks.

    Shared by the cross-backend equivalence and differential tests; lives
    here (not in ``conftest``) for the same import-collision reason as
    :data:`ALL_BACKENDS`.
    """
    import random

    from repro.graph import erdos_renyi_bipartite

    graphs = []
    rng = random.Random(seed)
    for index in range(count):
        n_left = rng.randint(2, max_side)
        n_right = rng.randint(2, max_side)
        num_edges = rng.randint(1, n_left * n_right)
        graphs.append(
            erdos_renyi_bipartite(
                n_left, n_right, num_edges=num_edges, seed=seed * 1000 + index
            )
        )
    return graphs
