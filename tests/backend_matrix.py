"""The adjacency-backend matrix shared by the parametrized equivalence tests.

Lives in its own module (not ``conftest``) so test files can import it
without colliding with the benchmarks' ``conftest`` when pytest collects
both directories in one run.
"""

import pytest

from repro.graph import packed_available

#: The full backend matrix for parametrized equivalence tests; ``packed`` is
#: skipped (not failed) on interpreters without a capable numpy.
ALL_BACKENDS = (
    "set",
    "bitset",
    pytest.param(
        "packed",
        marks=pytest.mark.skipif(
            not packed_available(), reason="packed backend requires numpy >= 2.0"
        ),
    ),
)
