"""Round-trip property tests for graph I/O and generator input validation.

The I/O half pins the PR 5 bugfix bundle: ``write_edge_list → read_edge_list``
and ``write_konect → read_konect`` must preserve the graph exactly —
including isolated vertices, which the KONECT reader used to drop because it
ignored the ``% num_edges n_left n_right`` meta line its own writer emits —
and both readers must tolerate comment/blank lines, CRLF endings, a UTF-8
BOM and duplicate edge lines (idempotent adds).

The generator half pins fail-fast validation (negative counts / densities
and over-capacity requests raise ``ValueError`` instead of looping or
silently clamping) and cross-platform seed determinism via golden edge
sets (``random.Random`` is a portable, versioned generator, so these sets
are stable across OSes and CPython versions).
"""

from __future__ import annotations

import random

import pytest

from repro.graph import BipartiteGraph
from repro.graph.generators import (
    erdos_renyi_bipartite,
    planted_biplex_graph_with_blocks,
    power_law_bipartite,
    review_graph_with_camouflage,
)
from repro.graph.io import (
    read_edge_list,
    read_konect,
    write_edge_list,
    write_konect,
)


def _random_graphs_with_isolated_vertices(count: int, seed: int):
    """Random graphs with deliberately oversized sides (trailing isolated
    vertices on both sides are the round-trip case that used to break)."""
    rng = random.Random(seed)
    graphs = []
    for index in range(count):
        n_left = rng.randint(1, 8)
        n_right = rng.randint(1, 8)
        max_edges = n_left * n_right
        num_edges = rng.randint(0, max_edges)
        graph = erdos_renyi_bipartite(
            n_left + rng.randint(0, 3),
            n_right + rng.randint(0, 3),
            num_edges=0,
            seed=index,
        )
        dense = erdos_renyi_bipartite(n_left, n_right, num_edges=num_edges, seed=index)
        for left_vertex, right_vertex in dense.edges():
            graph.add_edge(left_vertex, right_vertex)
        graphs.append(graph)
    return graphs


class TestEdgeListRoundTrip:
    def test_round_trip_preserves_graph_exactly(self, tmp_path):
        for index, graph in enumerate(_random_graphs_with_isolated_vertices(8, seed=5)):
            path = tmp_path / f"graph{index}.txt"
            write_edge_list(graph, path)
            loaded = read_edge_list(path)
            assert loaded == graph
            assert (loaded.n_left, loaded.n_right) == (graph.n_left, graph.n_right)
            assert loaded.num_edges == graph.num_edges

    def test_duplicate_lines_are_idempotent(self, tmp_path):
        path = tmp_path / "dup.txt"
        path.write_text("% 2 2\n0 0\n0 0\n1 1\n0 0\n")
        graph = read_edge_list(path)
        assert graph.num_edges == 2

    def test_crlf_blank_and_comment_lines(self, tmp_path):
        path = tmp_path / "crlf.txt"
        path.write_bytes(b"% 3 3\r\n# comment\r\n\r\n0 0\r\n% another comment\r\n2 2\r\n")
        graph = read_edge_list(path)
        assert (graph.n_left, graph.n_right, graph.num_edges) == (3, 3, 2)

    def test_utf8_bom_tolerated(self, tmp_path):
        path = tmp_path / "bom.txt"
        path.write_bytes("﻿% 2 2\n0 0\n1 1\n".encode("utf-8"))
        graph = read_edge_list(path)
        assert (graph.n_left, graph.n_right, graph.num_edges) == (2, 2, 2)

    def test_header_smaller_than_ids_rejected(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("% 1 1\n0 0\n3 0\n")
        with pytest.raises(ValueError, match="declared size header"):
            read_edge_list(path)

    def test_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0\n")
        with pytest.raises(ValueError, match="malformed"):
            read_edge_list(path)


class TestKonectRoundTrip:
    def test_round_trip_preserves_isolated_vertices(self, tmp_path):
        # Regression: read_konect ignored the `% m n_left n_right` meta line
        # write_konect emits, so trailing isolated vertices vanished.
        graph = BipartiteGraph(6, 5, edges=[(0, 0), (1, 1)])
        path = tmp_path / "out.test"
        write_konect(graph, path)
        loaded = read_konect(path)
        assert (loaded.n_left, loaded.n_right) == (6, 5)
        assert loaded == graph

    def test_round_trip_random_graphs(self, tmp_path):
        for index, graph in enumerate(_random_graphs_with_isolated_vertices(8, seed=9)):
            path = tmp_path / f"out.graph{index}"
            write_konect(graph, path)
            loaded = read_konect(path)
            assert loaded == graph, f"g{index}"

    def test_file_without_meta_line_infers_sizes(self, tmp_path):
        path = tmp_path / "out.nometa"
        path.write_text("% bip\n1 1\n2 2\n")
        graph = read_konect(path)
        assert (graph.n_left, graph.n_right, graph.num_edges) == (2, 2, 2)

    def test_duplicate_rows_and_extra_columns_are_tolerated(self, tmp_path):
        # KONECT rows may carry weight/timestamp columns and repeated
        # ratings; both must collapse to one unweighted edge.
        path = tmp_path / "out.dup"
        path.write_text("% bip unweighted test\n% 3 2 2\n1 1 5 100\n1 1 3 200\n2 2 1 300\n")
        graph = read_konect(path)
        assert graph.num_edges == 2
        assert (graph.n_left, graph.n_right) == (2, 2)

    def test_numeric_comment_beyond_the_header_lines_is_not_a_size_line(self, tmp_path):
        # Only the first two physical lines may carry the KONECT size meta;
        # a numeric comment later (dates, statistics) must not inflate the
        # sides.
        path = tmp_path / "out.latecomment"
        path.write_text("% bip unweighted test\n1 1\n% 7 2020 12\n2 2\n")
        graph = read_konect(path)
        assert (graph.n_left, graph.n_right, graph.num_edges) == (2, 2, 2)

    def test_sloppy_meta_smaller_than_ids_grows_sides(self, tmp_path):
        path = tmp_path / "out.sloppy"
        path.write_text("% 1 1 1\n3 4\n")
        graph = read_konect(path)
        assert (graph.n_left, graph.n_right) == (3, 4)

    def test_crlf_and_bom(self, tmp_path):
        path = tmp_path / "out.crlf"
        path.write_bytes("﻿% bip\r\n% 2 3 3\r\n1 1\r\n\r\n2 2\r\n".encode("utf-8"))
        graph = read_konect(path)
        assert (graph.n_left, graph.n_right, graph.num_edges) == (3, 3, 2)

    def test_zero_based_ids_rejected(self, tmp_path):
        path = tmp_path / "out.zero"
        path.write_text("0 1\n")
        with pytest.raises(ValueError, match="1-based"):
            read_konect(path)


class TestGeneratorValidation:
    def test_erdos_renyi_rejects_negative_num_edges(self):
        with pytest.raises(ValueError, match="num_edges"):
            erdos_renyi_bipartite(4, 4, num_edges=-1)

    def test_erdos_renyi_rejects_negative_density(self):
        with pytest.raises(ValueError, match="edge_density"):
            erdos_renyi_bipartite(4, 4, edge_density=-0.5)

    def test_erdos_renyi_rejects_impossible_density(self):
        # density 2.0 on a 2x2 graph asks for 8 edges; only 4 pairs exist.
        with pytest.raises(ValueError, match="cannot place"):
            erdos_renyi_bipartite(2, 2, edge_density=2.0)

    def test_power_law_rejects_negative_and_over_capacity(self):
        with pytest.raises(ValueError, match="num_edges"):
            power_law_bipartite(3, 3, num_edges=-2)
        with pytest.raises(ValueError, match="cannot place"):
            power_law_bipartite(3, 3, num_edges=10)

    def test_power_law_empty_side_with_edges_rejected(self):
        # Used to spin forever in the uniform top-up loop (randrange(0)).
        with pytest.raises(ValueError, match="cannot place"):
            power_law_bipartite(0, 5, num_edges=1)

    def test_planted_rejects_bad_background_edges(self):
        with pytest.raises(ValueError, match="background_edges"):
            planted_biplex_graph_with_blocks(4, 4, 2, 2, 1, background_edges=-1)
        with pytest.raises(ValueError, match="cannot place"):
            planted_biplex_graph_with_blocks(4, 4, 2, 2, 1, background_edges=17)

    def test_review_graph_rejects_negative_counts(self):
        with pytest.raises(ValueError, match="n_real_reviews"):
            review_graph_with_camouflage(3, 3, -1, 1, 1, 1, 1)
        with pytest.raises(ValueError, match="n_camouflage_reviews"):
            review_graph_with_camouflage(3, 3, 1, 1, 1, 1, -4)

    def test_review_graph_rejects_over_capacity_counts(self):
        # 2x2 real block has 4 pairs; 100 real reviews cannot fit.
        with pytest.raises(ValueError, match="n_real_reviews"):
            review_graph_with_camouflage(2, 2, 100, 1, 1, 1, 1)
        with pytest.raises(ValueError, match="n_fake_reviews"):
            review_graph_with_camouflage(3, 3, 1, 2, 2, 50, 1)
        with pytest.raises(ValueError, match="n_camouflage_reviews"):
            review_graph_with_camouflage(3, 3, 1, 2, 2, 1, 50)


class TestSeedDeterminism:
    """Golden edge sets: the same seed must generate the same graph on
    every platform and CPython version (pinned here, verified on CI's
    OS/version matrix)."""

    def test_erdos_renyi_sparse_regime_golden(self):
        graph = erdos_renyi_bipartite(5, 4, num_edges=7, seed=42)
        assert sorted(graph.edges()) == [
            (0, 0), (0, 1), (1, 0), (1, 1), (2, 1), (4, 1), (4, 3),
        ]

    def test_erdos_renyi_dense_regime_golden(self):
        # 7 > 9 // 2 edges: exercises the shuffled-complement code path.
        graph = erdos_renyi_bipartite(3, 3, num_edges=7, seed=7)
        assert sorted(graph.edges()) == [
            (0, 0), (0, 1), (1, 0), (1, 1), (2, 0), (2, 1), (2, 2),
        ]

    def test_power_law_golden(self):
        graph = power_law_bipartite(5, 5, num_edges=8, seed=11)
        assert sorted(graph.edges()) == [
            (0, 0), (0, 1), (1, 0), (1, 1), (2, 0), (3, 1), (4, 3), (4, 4),
        ]

    def test_same_seed_same_graph_repeatedly(self):
        first = erdos_renyi_bipartite(9, 7, edge_density=1.5, seed=123)
        second = erdos_renyi_bipartite(9, 7, edge_density=1.5, seed=123)
        assert first == second
        third = erdos_renyi_bipartite(9, 7, edge_density=1.5, seed=124)
        assert first != third
