"""Tests of the sharded parallel enumeration engine (repro.parallel).

The correctness bar is the tentpole contract: any ``jobs`` value produces
exactly the serial solution set, the default ``parallel_order="sorted"``
output equals the canonically-sorted serial output as a *list*, limits are
enforced cooperatively, and the merged stats follow the documented
contract.  The systematic backend × algorithm × jobs sweep lives in
``test_backend_differential.py``; this module covers the engine-specific
machinery — shard planning, jobs resolution, stats merging, cancellation.
"""

from __future__ import annotations

import os

import pytest
from backend_matrix import random_graphs

from repro.core import BTraversal, ITraversal, LargeMBPEnumerator
from repro.core.btraversal import btraversal_config
from repro.core.traversal import ReverseSearchEngine, TraversalConfig
from repro.core.verify import canonical, check_all_solutions, same_solutions
from repro.graph import erdos_renyi_bipartite, paper_example_graph
from repro.parallel import JOBS_ENV_VAR, resolve_jobs, shard_plan


#: Big enough that the shard plan has several entries (the engine falls
#: back to serial below two shards) and the solution space is non-trivial.
GRAPHS = [
    paper_example_graph(),
    erdos_renyi_bipartite(10, 10, edge_density=2.0, seed=17),
    erdos_renyi_bipartite(12, 8, edge_density=2.5, seed=3),
]


class TestResolveJobs:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(JOBS_ENV_VAR, raising=False)
        assert resolve_jobs(None) == 1

    def test_env_variable_supplies_default(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV_VAR, "3")
        assert resolve_jobs(None) == 3

    def test_explicit_value_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV_VAR, "3")
        assert resolve_jobs(2) == 2

    def test_zero_means_cpu_count(self, monkeypatch):
        monkeypatch.delenv(JOBS_ENV_VAR, raising=False)
        assert resolve_jobs(0) == (os.cpu_count() or 1)

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="jobs"):
            resolve_jobs(-1)

    def test_invalid_env_rejected(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV_VAR, "many")
        with pytest.raises(ValueError, match=JOBS_ENV_VAR):
            resolve_jobs(None)

    def test_config_rejects_negative_jobs(self):
        with pytest.raises(ValueError, match="jobs"):
            TraversalConfig(jobs=-2)

    def test_config_rejects_unknown_parallel_order(self):
        with pytest.raises(ValueError, match="parallel_order"):
            TraversalConfig(parallel_order="dfs")


class TestShardPlan:
    def test_exclusion_prefixes_mirror_serial_accumulation(self):
        graph = paper_example_graph()
        engine = ReverseSearchEngine(graph, 1, TraversalConfig())
        root = engine._initial_solution()
        shards = shard_plan(engine, root)
        assert len(shards) >= 2
        left_seen = []
        for shard in shards:
            assert shard.side == "L"  # iTraversal is left-anchored
            assert shard.vertex not in root.left
            assert shard.exclusion == frozenset(left_seen)
            left_seen.append(shard.vertex)

    def test_btraversal_plan_covers_both_sides_without_exclusions(self):
        graph = paper_example_graph()
        engine = ReverseSearchEngine(graph, 1, btraversal_config())
        root = engine._initial_solution()
        shards = shard_plan(engine, root)
        assert {shard.side for shard in shards} == {"L", "R"}
        assert all(shard.exclusion == frozenset() for shard in shards)

    def test_large_mbp_root_pruning_empties_the_plan(self):
        # theta_right above |R|: serial returns no children from the root,
        # so the plan must be empty too (right-shrinking solution pruning).
        graph = paper_example_graph()
        config = TraversalConfig(theta_left=2, theta_right=graph.n_right + 1)
        engine = ReverseSearchEngine(graph, 1, config)
        root = engine._initial_solution()
        assert shard_plan(engine, root) == []


class TestParallelMatchesSerial:
    @pytest.mark.parametrize("k", (1, 2))
    def test_sorted_mode_equals_sorted_serial_exactly(self, k):
        for graph in GRAPHS:
            serial = ITraversal(graph, k, jobs=1).enumerate()
            parallel_algorithm = ITraversal(graph, k, jobs=2)
            parallel = parallel_algorithm.enumerate()
            assert same_solutions(serial, parallel)
            if parallel_algorithm.stats.num_shards >= 2:
                # List equality, not just set equality: when the parallel
                # machinery engages, sorted mode is pinned to the canonical
                # order — the serial output sorted the same way, duplicates
                # included (there are none).  A degenerate plan (< 2
                # shards) falls back to the serial DFS and keeps its order.
                assert [s.key() for s in parallel] == canonical(serial)
            check_all_solutions(graph, parallel, k, label=f"parallel jobs=2 k={k}")

    def test_completion_mode_streams_the_same_set(self):
        graph = GRAPHS[1]
        serial = ITraversal(graph, 1, jobs=1).enumerate()
        engine = ReverseSearchEngine(
            graph, 1, TraversalConfig(jobs=2, parallel_order="completion")
        )
        parallel = engine.enumerate()
        assert same_solutions(serial, parallel)
        assert len(parallel) == len(set(parallel))  # merge deduplicates

    def test_btraversal_parallel(self):
        graph = GRAPHS[0]
        serial = BTraversal(graph, 1, jobs=1).enumerate()
        parallel = BTraversal(graph, 1, jobs=2).enumerate()
        assert [s.key() for s in parallel] == canonical(serial)

    def test_right_anchored_parallel(self):
        graph = GRAPHS[2]
        serial = ITraversal(graph, 1, anchor="right", jobs=1).enumerate()
        parallel = ITraversal(graph, 1, anchor="right", jobs=2).enumerate()
        assert same_solutions(serial, parallel)

    def test_alternate_output_order_parallel(self):
        graph = GRAPHS[1]
        serial = ITraversal(graph, 1, output_order="alternate", jobs=1).enumerate()
        parallel = ITraversal(graph, 1, output_order="alternate", jobs=2).enumerate()
        assert same_solutions(serial, parallel)

    def test_large_mbp_enumerator_parallel(self):
        for graph in GRAPHS:
            serial = LargeMBPEnumerator(graph, 1, theta=2, jobs=1).enumerate()
            parallel = LargeMBPEnumerator(graph, 1, theta=2, jobs=2).enumerate()
            assert same_solutions(serial, parallel)

    def test_many_jobs_beyond_shard_count(self):
        graph = GRAPHS[0]
        serial = ITraversal(graph, 1, jobs=1).enumerate()
        parallel = ITraversal(graph, 1, jobs=16).enumerate()
        assert same_solutions(serial, parallel)

    def test_env_default_engages_the_parallel_engine(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV_VAR, "2")
        graph = GRAPHS[1]
        algorithm = ITraversal(graph, 1)
        solutions = algorithm.enumerate()
        assert algorithm.stats.num_shards >= 2  # proof the parallel path ran
        monkeypatch.delenv(JOBS_ENV_VAR)
        assert same_solutions(ITraversal(graph, 1).enumerate(), solutions)


class TestStatsMergeContract:
    def test_merged_counters(self):
        graph = GRAPHS[1]
        serial_algorithm = ITraversal(graph, 1, jobs=1)
        serial = serial_algorithm.enumerate()
        algorithm = ITraversal(graph, 1, jobs=2)
        parallel = algorithm.enumerate()
        stats = algorithm.stats
        assert stats.num_reported == len(parallel) == len(serial)
        assert stats.num_shards >= 2
        # Work counters are sums over shard traversals: unique discoveries
        # plus the cross-shard duplicates the merge removed.  (They are not
        # comparable to the serial counters in either direction: shards
        # rediscover each other's solutions, but they also start from exact
        # prefix exclusions and so trigger fewer exclusion-shrink
        # re-explorations than one serial DFS does.)
        assert stats.num_solutions == len(serial) + stats.num_duplicate_solutions
        assert stats.num_links > 0
        assert stats.elapsed_seconds > 0.0
        assert not stats.truncated

    def test_work_counters_are_deterministic(self):
        # Each shard's traversal is a pure function of (root, anchor,
        # exclusion); the merged sums must not depend on scheduling.
        graph = GRAPHS[1]
        runs = []
        for _ in range(2):
            algorithm = ITraversal(graph, 1, jobs=2)
            algorithm.enumerate()
            stats = algorithm.stats
            runs.append(
                (
                    stats.num_solutions,
                    stats.num_links,
                    stats.num_almost_sat_graphs,
                    stats.num_local_solutions,
                    stats.num_duplicate_solutions,
                )
            )
        assert runs[0] == runs[1]


class TestCooperativeLimits:
    def test_max_results_cap(self):
        graph = GRAPHS[1]
        algorithm = ITraversal(graph, 1, max_results=5, jobs=2)
        solutions = algorithm.enumerate()
        assert len(solutions) == 5
        assert len(set(solutions)) == 5
        assert algorithm.stats.hit_result_limit
        assert algorithm.stats.truncated

    def test_tiny_time_limit_reports_truncation(self):
        graph = GRAPHS[1]
        algorithm = ITraversal(graph, 1, time_limit=1e-9, jobs=2)
        solutions = algorithm.enumerate()
        assert solutions == []
        assert algorithm.stats.hit_time_limit

    def test_consumer_break_keeps_serial_reporting_semantics(self):
        graph = GRAPHS[1]
        algorithm = ITraversal(graph, 1, jobs=2)
        iterator = algorithm.run()
        next(iterator)
        iterator.close()
        assert algorithm.stats.num_reported == 1
        assert algorithm.stats.elapsed_seconds > 0.0


class TestDifferentialSweep:
    """Small-graph sweep against the serial engine (serial fallback paths
    included: tiny graphs often yield < 2 shards)."""

    @pytest.mark.parametrize("k", (1, 2))
    def test_random_graphs(self, k):
        for index, graph in enumerate(random_graphs(4, max_side=6, seed=99)):
            serial = ITraversal(graph, k, jobs=1).enumerate()
            parallel = ITraversal(graph, k, jobs=2).enumerate()
            assert same_solutions(serial, parallel), f"g{index} k={k}"
