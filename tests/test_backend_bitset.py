"""Tests for the bitset substrate and the set/bitset/packed backend matrix."""

import pytest

from backend_matrix import ALL_BACKENDS, random_graphs

from repro.core import (
    BTraversal,
    ITraversal,
    TraversalConfig,
    can_add_left,
    can_add_left_masked,
    can_add_right,
    can_add_right_masked,
    extend_to_maximal,
    initial_solution_left_anchored,
    initial_solution_right_anchored,
    is_k_biplex,
    run_with_stats,
)
from repro.graph import (
    BitsetBipartiteGraph,
    as_backend,
    iter_bits,
    mask_of,
    supports_masks,
)
from repro.graph import erdos_renyi_bipartite
from repro.graph.bipartite import MirrorView


class TestBitsetGraph:
    def test_masks_match_sets(self, example_graph):
        graph = example_graph.to_bitset()
        for v in graph.left_vertices():
            assert set(iter_bits(graph.adj_left_mask(v))) == graph.neighbors_of_left(v)
        for u in graph.right_vertices():
            assert set(iter_bits(graph.adj_right_mask(u))) == graph.neighbors_of_right(u)

    def test_to_bitset_preserves_graph(self, example_graph):
        bitset = example_graph.to_bitset()
        assert isinstance(bitset, BitsetBipartiteGraph)
        assert bitset == example_graph
        assert bitset.num_edges == example_graph.num_edges
        assert supports_masks(bitset) and not supports_masks(example_graph)

    def test_to_bitset_on_bitset_is_identity(self, example_graph):
        bitset = example_graph.to_bitset()
        assert bitset.to_bitset() is bitset

    def test_to_setgraph_roundtrip(self, example_graph):
        assert example_graph.to_bitset().to_setgraph() == example_graph

    def test_add_and_remove_edge_update_masks(self):
        graph = BitsetBipartiteGraph(2, 3)
        assert graph.add_edge(0, 2) is True
        assert graph.add_edge(0, 2) is False
        assert graph.adj_left_mask(0) == 0b100
        assert graph.adj_right_mask(2) == 0b01
        assert graph.num_edges == 1
        assert graph.remove_edge(0, 2) is True
        assert graph.adj_left_mask(0) == 0
        assert graph.adj_right_mask(2) == 0
        assert graph.num_edges == 0

    def test_universe_masks(self):
        graph = BitsetBipartiteGraph(3, 5)
        assert graph.full_left_mask == 0b111
        assert graph.full_right_mask == 0b11111

    def test_derived_graphs_stay_bitset(self, example_graph):
        graph = example_graph.to_bitset()
        assert isinstance(graph.copy(), BitsetBipartiteGraph)
        assert isinstance(graph.swap_sides(), BitsetBipartiteGraph)
        assert isinstance(graph.induced_subgraph([0, 4], [0, 1]), BitsetBipartiteGraph)
        assert graph.swap_sides() == example_graph.swap_sides()
        assert graph.induced_subgraph([0, 4], [0, 1]) == example_graph.induced_subgraph(
            [0, 4], [0, 1]
        )

    def test_as_backend(self, example_graph):
        assert as_backend(example_graph, "set") is example_graph
        converted = as_backend(example_graph, "bitset")
        assert supports_masks(converted)
        assert as_backend(converted, "bitset") is converted
        with pytest.raises(ValueError):
            as_backend(example_graph, "numpy")

    def test_mask_helpers_roundtrip(self):
        assert mask_of([0, 2, 5]) == 0b100101
        assert list(iter_bits(0b100101)) == [0, 2, 5]
        assert list(iter_bits(0)) == []


class TestMirrorViewMasks:
    def test_mirror_forwards_capability(self, example_graph):
        assert not supports_masks(MirrorView(example_graph))
        mirror = MirrorView(example_graph.to_bitset())
        assert supports_masks(mirror)

    def test_mirror_swaps_masks(self, example_graph):
        graph = example_graph.to_bitset()
        mirror = MirrorView(graph)
        for u in graph.right_vertices():
            assert mirror.adj_left_mask(u) == graph.adj_right_mask(u)
        for v in graph.left_vertices():
            assert mirror.adj_right_mask(v) == graph.adj_left_mask(v)


class TestMaskedPrimitives:
    """The masked twins must agree with the set-based primitives everywhere."""

    def _subset_pairs(self, graph):
        import random

        rng = random.Random(42)
        for _ in range(20):
            left = {v for v in graph.left_vertices() if rng.random() < 0.5}
            right = {u for u in graph.right_vertices() if rng.random() < 0.5}
            yield left, right

    @pytest.mark.parametrize("k", [1, 2])
    def test_can_add_agrees(self, k):
        for graph in random_graphs(4, max_side=6, seed=5):
            bitset = graph.to_bitset()
            for left, right in self._subset_pairs(graph):
                left_mask, right_mask = mask_of(left), mask_of(right)
                for v in graph.left_vertices():
                    assert can_add_left_masked(
                        bitset, left_mask, right_mask, v, k
                    ) == can_add_left(graph, set(left), set(right), v, k)
                for u in graph.right_vertices():
                    assert can_add_right_masked(
                        bitset, left_mask, right_mask, u, k
                    ) == can_add_right(graph, set(left), set(right), u, k)

    @pytest.mark.parametrize("k", [1, 2])
    def test_is_k_biplex_agrees(self, k):
        for graph in random_graphs(4, max_side=6, seed=6):
            bitset = graph.to_bitset()
            for left, right in self._subset_pairs(graph):
                assert is_k_biplex(bitset, left, right, k) == is_k_biplex(
                    graph, left, right, k
                )

    @pytest.mark.parametrize("k", [1, 2])
    def test_extend_to_maximal_identical(self, k):
        for graph in random_graphs(4, max_side=6, seed=7):
            bitset = graph.to_bitset()
            for left, right in self._subset_pairs(graph):
                if not is_k_biplex(graph, left, right, k):
                    continue
                assert extend_to_maximal(bitset, left, right, k) == extend_to_maximal(
                    graph, left, right, k
                )
                assert extend_to_maximal(
                    bitset, left, right, k, candidate_right=()
                ) == extend_to_maximal(graph, left, right, k, candidate_right=())

    @pytest.mark.parametrize("k", [1, 2])
    def test_initial_solutions_identical(self, k):
        for graph in random_graphs(6, max_side=6, seed=8):
            bitset = graph.to_bitset()
            assert initial_solution_left_anchored(bitset, k) == initial_solution_left_anchored(
                graph, k
            )
            assert initial_solution_right_anchored(bitset, k) == initial_solution_right_anchored(
                graph, k
            )


class TestBackendEquivalence:
    """Property-style check: every backend enumerates the identical MBP *list*
    (same solutions in the same order) as the plain-set reference."""

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    @pytest.mark.parametrize("k", [1, 2])
    def test_itraversal_backends_agree(self, k, backend):
        for graph in random_graphs(6, max_side=6, seed=1):
            expected = [s.key() for s in ITraversal(graph, k, backend="set").enumerate()]
            got = [s.key() for s in ITraversal(graph, k, backend=backend).enumerate()]
            assert got == expected

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    @pytest.mark.parametrize("k", [1, 2])
    def test_btraversal_backends_agree(self, k, backend):
        for graph in random_graphs(6, max_side=6, seed=2):
            expected = [s.key() for s in BTraversal(graph, k, backend="set").enumerate()]
            got = [s.key() for s in BTraversal(graph, k, backend=backend).enumerate()]
            assert got == expected

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    @pytest.mark.parametrize("variant", ["full", "no-exclusion", "left-anchored-only"])
    def test_variants_agree_on_example(self, example_graph, variant, backend):
        expected = set(ITraversal(example_graph, 1, variant=variant, backend="set").enumerate())
        got = set(ITraversal(example_graph, 1, variant=variant, backend=backend).enumerate())
        assert got == expected

    def test_bitset_input_graph_used_directly(self, example_graph):
        bitset = example_graph.to_bitset()
        expected = set(ITraversal(example_graph, 1).enumerate())
        assert set(ITraversal(bitset, 1).enumerate()) == expected

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_stats_counters_identical(self, example_graph, backend):
        _, set_stats = run_with_stats(example_graph, 1, TraversalConfig(backend="set"))
        _, stats = run_with_stats(example_graph, 1, TraversalConfig(backend=backend))
        assert set_stats.num_solutions == stats.num_solutions
        assert set_stats.num_links == stats.num_links
        assert set_stats.num_almost_sat_graphs == stats.num_almost_sat_graphs
        assert set_stats.num_local_solutions == stats.num_local_solutions

    def test_config_rejects_unknown_backend(self):
        with pytest.raises(ValueError):
            TraversalConfig(backend="gpu")


class TestDefaultBackend:
    def test_bitset_is_the_default(self, monkeypatch):
        from repro.graph import BACKEND_ENV_VAR, default_backend
        from repro.graph.bipartite import paper_example_graph

        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        assert default_backend() == "bitset"
        assert TraversalConfig().backend == "bitset"
        engine_graph = ITraversal(paper_example_graph(), 1)._engine.graph
        assert supports_masks(engine_graph)

    def test_env_var_overrides_default(self, monkeypatch):
        from repro.graph import BACKEND_ENV_VAR, default_backend

        monkeypatch.setenv(BACKEND_ENV_VAR, "set")
        assert default_backend() == "set"
        assert TraversalConfig().backend == "set"
        monkeypatch.setenv(BACKEND_ENV_VAR, "packed")
        assert default_backend() == "packed"
        monkeypatch.setenv(BACKEND_ENV_VAR, "numpy")
        with pytest.raises(ValueError):
            default_backend()


class TestCliBackend:
    def test_enumerate_with_bitset_backend(self, tmp_path, capsys, example_graph):
        from repro.cli import main
        from repro.graph import write_edge_list

        path = tmp_path / "graph.txt"
        write_edge_list(example_graph, path)
        assert main(["enumerate", "--input", str(path), "--backend", "bitset", "--quiet"]) == 0
        bitset_out = capsys.readouterr().out
        assert main(["enumerate", "--input", str(path), "--quiet"]) == 0
        set_out = capsys.readouterr().out
        # Identical solution counts; only the timing figure may differ.
        assert bitset_out.split("elapsed")[0] == set_out.split("elapsed")[0]
