"""End-to-end integration tests crossing module boundaries."""

import pytest

from repro import (
    BipartiteGraph,
    ITraversal,
    enumerate_large_mbps,
    enumerate_mbps,
    paper_example_graph,
    planted_biplex_graph,
    read_edge_list,
    write_edge_list,
)
from repro.analysis import load_dataset
from repro.baselines import enumerate_mbps_bruteforce
from repro.core import check_all_solutions, same_solutions
from repro.core.verify import canonical, missing_and_extra, summarize_solutions
from repro.graph.cores import theta_core_for_large_mbps


class TestPublicAPIRoundtrip:
    def test_quickstart_flow(self):
        """The README quickstart: build a graph, enumerate, inspect stats."""
        graph = BipartiteGraph(3, 3, edges=[(0, 0), (0, 1), (1, 1), (2, 2), (1, 2)])
        solutions, stats = enumerate_mbps(graph, k=1)
        check_all_solutions(graph, solutions, 1)
        assert stats.num_reported == len(solutions)
        assert same_solutions(solutions, enumerate_mbps_bruteforce(graph, 1))

    def test_file_roundtrip_then_enumerate(self, tmp_path):
        graph = paper_example_graph()
        path = tmp_path / "example.txt"
        write_edge_list(graph, path)
        loaded = read_edge_list(path)
        assert same_solutions(
            ITraversal(loaded, 1).enumerate(), ITraversal(graph, 1).enumerate()
        )

    def test_summary_and_diff_helpers(self):
        graph = paper_example_graph()
        solutions = ITraversal(graph, 1).enumerate()
        summary = summarize_solutions(solutions)
        assert summary["count"] == len(solutions)
        assert summary["max_total"] >= summary["max_left"]
        missing, extra = missing_and_extra(solutions, solutions[:-1])
        assert len(missing) == 1 and not extra
        assert canonical(solutions) == canonical(list(reversed(solutions)))
        assert summarize_solutions([]) == {
            "count": 0,
            "max_left": 0,
            "max_right": 0,
            "max_total": 0,
        }


class TestPlantedStructureRecovery:
    def test_planted_biplexes_recovered_through_the_full_stack(self):
        """Generator -> core preprocessing -> large-MBP enumeration."""
        graph = planted_biplex_graph(
            24, 24, block_left=6, block_right=6, k=1, background_edges=30, num_blocks=2, seed=5
        )
        solutions, stats = enumerate_large_mbps(graph, k=1, theta=5)
        assert solutions, "the planted blocks must yield large MBPs"
        assert not stats.truncated
        # Each reported structure must intersect a planted block heavily: the
        # blocks occupy vertex ranges [0, 6) and [6, 12) on both sides.
        for solution in solutions:
            block_ids = {0, 1} & {min(v // 6, 1) for v in solution.left}
            assert block_ids, "solutions should align with planted blocks"

    def test_core_preprocessing_shrinks_sparse_background(self):
        graph = planted_biplex_graph(
            30, 30, block_left=6, block_right=6, k=1, background_edges=40, num_blocks=1, seed=8
        )
        core, left_map, right_map = theta_core_for_large_mbps(graph, k=1, theta=5)
        assert core.num_vertices < graph.num_vertices
        with_core = set(enumerate_large_mbps(graph, 1, theta=5, use_core_preprocessing=True)[0])
        without_core = set(
            enumerate_large_mbps(graph, 1, theta=5, use_core_preprocessing=False)[0]
        )
        assert with_core == without_core


class TestDatasetPipelines:
    @pytest.mark.parametrize("name", ["divorce", "cfat"])
    def test_registry_dataset_enumeration(self, name):
        graph = load_dataset(name)
        solutions, stats = enumerate_mbps(graph, 1, max_results=25)
        assert len(solutions) == 25
        check_all_solutions(graph, solutions, 1)

    def test_streaming_interface_consistent_with_batch(self):
        graph = load_dataset("divorce")
        algorithm = ITraversal(graph, 1, max_results=30)
        streamed = list(algorithm.run())
        batch = ITraversal(graph, 1, max_results=30).enumerate()
        assert streamed == batch
