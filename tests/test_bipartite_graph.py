"""Unit tests for the BipartiteGraph data structure."""

import pytest

from repro.graph import BipartiteGraph, Side, paper_example_graph
from repro.graph.bipartite import MirrorView, freeze, sorted_tuple, subsets_within_budget


class TestConstruction:
    def test_empty_graph_has_no_edges(self):
        graph = BipartiteGraph(3, 4)
        assert graph.num_edges == 0
        assert graph.n_left == 3
        assert graph.n_right == 4
        assert graph.num_vertices == 7

    def test_negative_sizes_rejected(self):
        with pytest.raises(ValueError):
            BipartiteGraph(-1, 3)
        with pytest.raises(ValueError):
            BipartiteGraph(3, -2)

    def test_edges_from_constructor(self):
        graph = BipartiteGraph(2, 2, edges=[(0, 0), (1, 1)])
        assert graph.num_edges == 2
        assert graph.has_edge(0, 0)
        assert graph.has_edge(1, 1)
        assert not graph.has_edge(0, 1)

    def test_duplicate_edges_counted_once(self):
        graph = BipartiteGraph(2, 2, edges=[(0, 0), (0, 0), (0, 0)])
        assert graph.num_edges == 1

    def test_duplicate_edges_do_not_skew_density(self):
        # Regression: duplicate insertions must be idempotent — _num_edges
        # (and therefore edge_density) may only count distinct edges.
        graph = BipartiteGraph(2, 3, edges=[(0, 0), (1, 1), (0, 0), (1, 1), (0, 0)])
        assert graph.num_edges == 2
        assert graph.edge_density == pytest.approx(2 / 5)
        for _ in range(3):
            assert graph.add_edge(0, 0) is False
        assert graph.num_edges == 2
        assert graph.edge_density == pytest.approx(2 / 5)
        assert graph.degree_of_left(0) == 1
        assert graph.degree_of_right(0) == 1

    def test_zero_vertex_graph(self):
        graph = BipartiteGraph(0, 0)
        assert graph.num_vertices == 0
        assert graph.edge_density == 0.0


class TestMutation:
    def test_add_edge_returns_true_only_when_new(self):
        graph = BipartiteGraph(2, 2)
        assert graph.add_edge(0, 1) is True
        assert graph.add_edge(0, 1) is False
        assert graph.num_edges == 1

    def test_add_edge_out_of_range(self):
        graph = BipartiteGraph(2, 2)
        with pytest.raises(IndexError):
            graph.add_edge(2, 0)
        with pytest.raises(IndexError):
            graph.add_edge(0, 5)
        with pytest.raises(IndexError):
            graph.add_edge(-1, 0)

    def test_remove_edge(self):
        graph = BipartiteGraph(2, 2, edges=[(0, 0)])
        assert graph.remove_edge(0, 0) is True
        assert graph.remove_edge(0, 0) is False
        assert graph.num_edges == 0
        assert not graph.has_edge(0, 0)


class TestQueries:
    def test_neighbors_and_degrees(self, tiny_graph):
        assert sorted(tiny_graph.neighbors_of_left(0)) == [0, 1]
        assert sorted(tiny_graph.neighbors_of_right(1)) == [0, 1]
        assert tiny_graph.degree_of_left(1) == 2
        assert tiny_graph.degree_of_right(2) == 1

    def test_side_based_accessors(self, tiny_graph):
        assert tiny_graph.neighbors(Side.LEFT, 0) == tiny_graph.neighbors_of_left(0)
        assert tiny_graph.neighbors(Side.RIGHT, 1) == tiny_graph.neighbors_of_right(1)
        assert tiny_graph.degree(Side.LEFT, 0) == 2
        assert tiny_graph.side_size(Side.LEFT) == 2
        assert tiny_graph.side_size(Side.RIGHT) == 3

    def test_side_other(self):
        assert Side.LEFT.other() is Side.RIGHT
        assert Side.RIGHT.other() is Side.LEFT

    def test_gamma_and_non_gamma(self, tiny_graph):
        assert tiny_graph.gamma_left(0, {0, 1, 2}) == {0, 1}
        assert tiny_graph.non_gamma_left(0, {0, 1, 2}) == {2}
        assert tiny_graph.gamma_right(1, {0, 1}) == {0, 1}
        assert tiny_graph.non_gamma_right(0, {0, 1}) == {1}

    def test_missing_counts(self, tiny_graph):
        assert tiny_graph.missing_left(0, {0, 1, 2}) == 1
        assert tiny_graph.missing_left(0, [0, 1]) == 0
        assert tiny_graph.missing_right(2, {0, 1}) == 1
        assert tiny_graph.missing_right(2, frozenset({1})) == 0

    def test_missing_counts_set_and_iterable_agree(self, example_graph):
        for v in example_graph.left_vertices():
            subset = set(range(3))
            assert example_graph.missing_left(v, subset) == example_graph.missing_left(
                v, list(subset)
            )

    def test_edge_density(self):
        graph = BipartiteGraph(2, 3, edges=[(0, 0), (1, 1)])
        assert graph.edge_density == pytest.approx(2 / 5)


class TestDerivedGraphs:
    def test_induced_subgraph(self, example_graph):
        subgraph = example_graph.induced_subgraph([0, 4], [0, 1, 2])
        assert subgraph.n_left == 2
        assert subgraph.n_right == 3
        # v0 is adjacent to u0, u1 (not u2); v4 adjacent to all.
        assert subgraph.num_edges == 5

    def test_induced_subgraph_with_mapping(self, example_graph):
        subgraph, left_map, right_map = example_graph.induced_subgraph_with_mapping(
            [4, 0], [2, 0]
        )
        assert left_map == [0, 4]
        assert right_map == [0, 2]
        assert subgraph.has_edge(left_map.index(4), right_map.index(2))

    def test_edges_iteration_roundtrip(self, example_graph):
        edges = set(example_graph.edges())
        rebuilt = BipartiteGraph(example_graph.n_left, example_graph.n_right, edges=edges)
        assert rebuilt == example_graph

    def test_copy_is_independent(self, tiny_graph):
        clone = tiny_graph.copy()
        clone.add_edge(0, 2)
        assert not tiny_graph.has_edge(0, 2)
        assert clone != tiny_graph

    def test_swap_sides(self, tiny_graph):
        swapped = tiny_graph.swap_sides()
        assert swapped.n_left == tiny_graph.n_right
        assert swapped.n_right == tiny_graph.n_left
        for left_vertex, right_vertex in tiny_graph.edges():
            assert swapped.has_edge(right_vertex, left_vertex)

    def test_equality(self):
        first = BipartiteGraph(2, 2, edges=[(0, 0)])
        second = BipartiteGraph(2, 2, edges=[(0, 0)])
        third = BipartiteGraph(2, 2, edges=[(0, 1)])
        assert first == second
        assert first != third
        assert first != "not a graph"


class TestMirrorView:
    def test_mirror_swaps_sides(self, tiny_graph):
        mirror = MirrorView(tiny_graph)
        assert mirror.n_left == tiny_graph.n_right
        assert mirror.n_right == tiny_graph.n_left
        assert mirror.num_edges == tiny_graph.num_edges
        assert mirror.num_vertices == tiny_graph.num_vertices

    def test_mirror_adjacency(self, tiny_graph):
        mirror = MirrorView(tiny_graph)
        for left_vertex, right_vertex in tiny_graph.edges():
            assert mirror.has_edge(right_vertex, left_vertex)
        assert mirror.neighbors_of_left(1) == tiny_graph.neighbors_of_right(1)
        assert mirror.neighbors_of_right(0) == tiny_graph.neighbors_of_left(0)
        assert mirror.degree_of_left(2) == tiny_graph.degree_of_right(2)
        assert mirror.degree_of_right(1) == tiny_graph.degree_of_left(1)

    def test_mirror_missing_and_gamma(self, tiny_graph):
        mirror = MirrorView(tiny_graph)
        assert mirror.missing_left(2, {0, 1}) == tiny_graph.missing_right(2, {0, 1})
        assert mirror.missing_right(0, {0, 1, 2}) == tiny_graph.missing_left(0, {0, 1, 2})
        assert mirror.gamma_left(1, {0, 1}) == tiny_graph.gamma_right(1, {0, 1})
        assert mirror.non_gamma_right(0, {0, 1, 2}) == tiny_graph.non_gamma_left(0, {0, 1, 2})
        assert list(mirror.left_vertices()) == list(tiny_graph.right_vertices())


class TestPaperExample:
    def test_shape(self, example_graph):
        assert example_graph.n_left == 5
        assert example_graph.n_right == 5
        assert example_graph.num_edges == 16

    def test_v4_connects_everything(self, example_graph):
        assert example_graph.degree_of_left(4) == 5

    def test_every_other_left_vertex_misses_at_least_two(self, example_graph):
        # Required for H0 = ({v4}, R) to be a maximal 1-biplex (Section 3.2).
        all_right = set(example_graph.right_vertices())
        for v in range(4):
            assert example_graph.missing_left(v, all_right) >= 2


class TestHelpers:
    def test_freeze_and_sorted_tuple(self):
        assert freeze([3, 1, 1]) == frozenset({1, 3})
        assert sorted_tuple({3, 1}) == (1, 3)

    def test_subsets_within_budget(self):
        subsets = list(subsets_within_budget([1, 2, 3], 2))
        assert () in subsets
        assert (1,) in subsets and (3,) in subsets
        assert (1, 2) in subsets
        assert (1, 2, 3) not in subsets
        # ascending size order
        sizes = [len(s) for s in subsets]
        assert sizes == sorted(sizes)

    def test_subsets_budget_larger_than_pool(self):
        assert list(subsets_within_budget([1], 5)) == [(), (1,)]
