"""Large maximal k-biplex search with size thresholds and core preprocessing (Section 5).

Run with ``python examples/large_biplex_search.py``.

The script plants two dense user-item communities inside a sparse background
graph and recovers them by enumerating only the *large* maximal 1-biplexes
(both sides of size at least θ), demonstrating:

* the ``(θ − k, θ − k)``-core preprocessing that shrinks the graph first,
* the size-threshold pruning rules inside the traversal, and
* how much work is saved compared to enumerating everything and filtering.
"""

from __future__ import annotations

import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro import ITraversal
from repro.core import LargeMBPEnumerator, filter_large
from repro.graph import planted_biplex_graph_with_blocks


def main() -> None:
    theta, k = 6, 1
    graph, blocks = planted_biplex_graph_with_blocks(
        n_left=40,
        n_right=40,
        block_left=8,
        block_right=8,
        k=k,
        background_edges=70,
        num_blocks=2,
        seed=21,
    )
    print(
        f"Planted-community graph: {graph.n_left} x {graph.n_right}, {graph.num_edges} edges; "
        f"two hidden 8x8 near-biplex blocks"
    )

    # Direct large-MBP enumeration (with core preprocessing).
    enumerator = LargeMBPEnumerator(graph, k, theta=theta, use_core_preprocessing=True)
    start = time.perf_counter()
    large = enumerator.enumerate()
    direct_seconds = time.perf_counter() - start
    core = enumerator.core_graph
    print(
        f"\n(θ−k)-core preprocessing: {graph.num_vertices} -> {core.num_vertices} vertices, "
        f"{graph.num_edges} -> {core.num_edges} edges"
    )
    print(f"Large MBPs (both sides >= {theta}): {len(large)} found in {direct_seconds:.3f}s")
    for solution in sorted(large, key=lambda s: -s.size)[:5]:
        print(f"  |L|={len(solution.left):2d} |R|={len(solution.right):2d}  "
              f"L={sorted(solution.left)}  R={sorted(solution.right)}")

    # Recovered communities vs the planted ground truth.
    for index, (left_block, right_block) in enumerate(blocks):
        hits = sum(
            1
            for solution in large
            if len(solution.left & frozenset(left_block)) >= theta - k
            and len(solution.right & frozenset(right_block)) >= theta - k
        )
        print(f"Planted block {index}: covered by {hits} large MBP(s)")

    # Contrast with enumerate-everything-then-filter (what bTraversal must do).
    start = time.perf_counter()
    full_enumeration = ITraversal(graph, k, time_limit=60)
    everything = full_enumeration.enumerate()
    filtered = filter_large(everything, theta, theta)
    naive_seconds = time.perf_counter() - start
    print(
        f"\nEnumerate-then-filter: {len(everything)} MBPs enumerated, {len(filtered)} large, "
        f"{naive_seconds:.3f}s ({naive_seconds / max(direct_seconds, 1e-9):.1f}x slower)"
    )
    if full_enumeration.stats.truncated:
        print("(the full enumeration hit its time limit, so the comparison is a lower bound)")
    else:
        assert set(filtered) == set(large)
        print("Both approaches report exactly the same large MBPs.")


if __name__ == "__main__":
    main()
