"""Solution-graph analysis: why iTraversal is fast (Figures 3 and 11).

Run with ``python examples/solution_graph_analysis.py``.

The reverse-search algorithms walk an implicit *solution graph* whose nodes
are the maximal k-biplexes.  This script materialises that graph for the
paper's running example and for a small random graph, and reports how many
links survive each of iTraversal's sparsification techniques:

    G  (bTraversal)  ⊇  G_L (left-anchored)  ⊇  G_R (right-shrinking)  ⊇  G_E (+ exclusion)
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro import paper_example_graph
from repro.core import ITraversal, build_solution_graph
from repro.graph import erdos_renyi_bipartite

VARIANTS = (
    ("btraversal", "G   (bTraversal)"),
    ("left-anchored", "G_L (left-anchored traversal)"),
    ("right-shrinking", "G_R (right-shrinking traversal)"),
    ("itraversal", "G_E (full iTraversal)"),
)


def analyse(name, graph, k=1):
    print(f"\n=== {name}: |L|={graph.n_left}, |R|={graph.n_right}, |E|={graph.num_edges}, k={k} ===")
    h0 = ITraversal(graph, k).initial_solution()
    print(f"Initial solution H0: L={sorted(h0.left)} R={sorted(h0.right)}")
    for variant, label in VARIANTS:
        solution_graph = build_solution_graph(graph, k, variant=variant)
        reachable = solution_graph.reachable_from(h0) if variant != "itraversal" else None
        reach_note = (
            f", all {len(reachable)}/{solution_graph.num_nodes} solutions reachable from H0"
            if reachable is not None
            else ""
        )
        print(
            f"  {label:<34} nodes={solution_graph.num_nodes:3d} "
            f"links={solution_graph.num_links:5d}{reach_note}"
        )


def main() -> None:
    analyse("paper example (Figure 1)", paper_example_graph(), k=1)
    analyse("random ER graph", erdos_renyi_bipartite(8, 8, num_edges=20, seed=3), k=1)
    print(
        "\nThe link counts shrink by roughly an order of magnitude per technique, which is\n"
        "exactly the effect the paper reports (its Figure 11 measures ~0.1% of the original\n"
        "links remaining after all three techniques on the real datasets)."
    )


if __name__ == "__main__":
    main()
