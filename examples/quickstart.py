"""Quickstart: enumerate maximal k-biplexes of a small bipartite graph.

Run with ``python examples/quickstart.py``.

The script builds the paper's running example (Figure 1), enumerates its
maximal 1-biplexes and 2-biplexes with iTraversal, shows the designated
initial solution ``H0 = (L0, R)``, cross-checks the result against the
bTraversal baseline, and demonstrates the preprocessing pipeline
(``prep="core+order"``) on a thresholded query — the core/bitruss
reduction shrinks the graph before the traversal starts, and the reported
solutions still carry the original vertex ids.
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro import BipartiteGraph, BTraversal, ITraversal, paper_example_graph


def describe(biplex) -> str:
    left = ", ".join(f"v{v}" for v in sorted(biplex.left))
    right = ", ".join(f"u{u}" for u in sorted(biplex.right))
    return f"L = {{{left}}}  R = {{{right}}}"


def main() -> None:
    graph = paper_example_graph()
    print(f"Input graph: |L| = {graph.n_left}, |R| = {graph.n_right}, |E| = {graph.num_edges}")
    print()

    for k in (1, 2):
        algorithm = ITraversal(graph, k)
        print(f"Initial solution H0 for k = {k}: {describe(algorithm.initial_solution())}")
        solutions = algorithm.enumerate()
        print(f"Maximal {k}-biplexes ({len(solutions)} found):")
        for solution in sorted(solutions, key=lambda s: s.key()):
            print(f"  {describe(solution)}")
        stats = algorithm.stats
        print(
            f"  [stats] solutions={stats.num_solutions} links={stats.num_links} "
            f"almost-satisfying graphs={stats.num_almost_sat_graphs} "
            f"elapsed={stats.elapsed_seconds * 1000:.1f} ms"
        )

        baseline = set(BTraversal(graph, k).enumerate())
        assert baseline == set(solutions), "iTraversal and bTraversal must agree"
        print(f"  cross-checked against bTraversal: {len(baseline)} solutions, identical\n")

    # Thresholded queries benefit from the preprocessing pipeline: the
    # (α,β)-core / bitruss reduction peels vertices that cannot appear in
    # any θ-large solution, and the degeneracy ordering anchors the
    # traversal at sparse vertices first.  prep="core" is the default
    # (a no-op without thresholds); "off" restores the raw traversal.
    # A pendant left vertex and an isolated right vertex make the
    # reduction visible: neither can be part of a θ-large solution.
    fringed = BipartiteGraph(
        n_left=graph.n_left + 1,
        n_right=graph.n_right + 1,
        edges=list(graph.edges()) + [(graph.n_left, 0)],
    )
    theta = 3
    algorithm = ITraversal(fringed, 1, theta_left=theta, theta_right=theta, prep="core+order")
    solutions = algorithm.enumerate()
    plan = algorithm.prep
    print(f"Large maximal 1-biplexes (both sides >= {theta}): {len(solutions)} found")
    print(
        f"  [prep={plan.mode}] removed {plan.removed_left} left / "
        f"{plan.removed_right} right vertices and {plan.removed_edges} edges "
        "before enumerating"
    )
    for solution in sorted(solutions, key=lambda s: s.key()):
        print(f"  {describe(solution)}")
    unpruned = [
        s
        for s in ITraversal(fringed, 1, prep="off").enumerate()
        if len(s.left) >= theta and len(s.right) >= theta
    ]
    assert set(unpruned) == set(solutions), "prep must not change the solution set"
    print("  cross-checked against the unpruned enumeration: identical")


if __name__ == "__main__":
    main()
