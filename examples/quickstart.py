"""Quickstart: enumerate maximal k-biplexes of a small bipartite graph.

Run with ``python examples/quickstart.py``.

The script builds the paper's running example (Figure 1), enumerates its
maximal 1-biplexes and 2-biplexes with iTraversal, shows the designated
initial solution ``H0 = (L0, R)``, and cross-checks the result against the
bTraversal baseline.
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro import BTraversal, ITraversal, paper_example_graph


def describe(biplex) -> str:
    left = ", ".join(f"v{v}" for v in sorted(biplex.left))
    right = ", ".join(f"u{u}" for u in sorted(biplex.right))
    return f"L = {{{left}}}  R = {{{right}}}"


def main() -> None:
    graph = paper_example_graph()
    print(f"Input graph: |L| = {graph.n_left}, |R| = {graph.n_right}, |E| = {graph.num_edges}")
    print()

    for k in (1, 2):
        algorithm = ITraversal(graph, k)
        print(f"Initial solution H0 for k = {k}: {describe(algorithm.initial_solution())}")
        solutions = algorithm.enumerate()
        print(f"Maximal {k}-biplexes ({len(solutions)} found):")
        for solution in sorted(solutions, key=lambda s: s.key()):
            print(f"  {describe(solution)}")
        stats = algorithm.stats
        print(
            f"  [stats] solutions={stats.num_solutions} links={stats.num_links} "
            f"almost-satisfying graphs={stats.num_almost_sat_graphs} "
            f"elapsed={stats.elapsed_seconds * 1000:.1f} ms"
        )

        baseline = set(BTraversal(graph, k).enumerate())
        assert baseline == set(solutions), "iTraversal and bTraversal must agree"
        print(f"  cross-checked against bTraversal: {len(baseline)} solutions, identical\n")


if __name__ == "__main__":
    main()
