"""Case study: detecting fake reviewers with maximal k-biplexes (Figure 13).

Run with ``python examples/fraud_detection.py``.

The script injects a random camouflage attack into a synthetic review graph
(fake users review a pool of fake products *and* sprinkle camouflage reviews
on real products), then compares three cohesive-structure detectors —
maximal bicliques, maximal 1-biplexes and the (α, β)-core — at recovering
the injected users and products.
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.analysis.fraud import (
    FraudStudyConfig,
    build_study_graph,
    evaluate_alpha_beta_core,
    evaluate_biclique,
    evaluate_biplex,
)


def main() -> None:
    config = FraudStudyConfig(
        n_real_users=150,
        n_real_products=60,
        n_real_reviews=800,
        n_fake_users=25,
        n_fake_products=25,
        fake_block_density=0.4,
        theta_users=4,
        seed=11,
    )
    graph, injection = build_study_graph(config)
    print(
        f"Review graph: {graph.n_left} users x {graph.n_right} products, "
        f"{graph.num_edges} reviews "
        f"({len(injection.fake_users)} fake users, {len(injection.fake_products)} fake products)"
    )
    print()
    print(f"{'detector':<14} {'theta_R':>7} {'precision':>10} {'recall':>8} {'F1':>6}  structures")
    print("-" * 60)

    for theta_products in (3, 4, 5):
        results = [
            evaluate_biclique(graph, injection, config.theta_users, theta_products, 1000, 10.0),
            evaluate_biplex(graph, injection, 1, config.theta_users, theta_products, 1000, 10.0),
            evaluate_alpha_beta_core(graph, injection, alpha=theta_products, beta=config.theta_users),
        ]
        for result in results:
            precision = f"{result.precision:.2f}" if result.defined else "ND"
            f1 = f"{result.f1:.2f}" if result.defined else "ND"
            print(
                f"{result.structure:<14} {theta_products:>7} {precision:>10} "
                f"{result.recall:>8.2f} {f1:>6}  {result.num_structures}"
            )
        print("-" * 60)

    print(
        "\nExpected shape (paper, Figure 13): 1-biplex keeps both precision and recall high,\n"
        "bicliques lose recall as theta_R grows, and the (alpha, beta)-core has high recall\n"
        "but low precision because it also captures busy real users and popular products."
    )


if __name__ == "__main__":
    main()
