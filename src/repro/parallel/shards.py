"""Shard-plan computation: one shard per root anchor, serial-faithful.

The plan replicates the serial engine's root-level ``_children`` pass
*without* running EnumAlmostSat: it only needs the anchor order and the
exclusion-prefix bookkeeping, both of which are pure functions of the root
solution and the configuration.  Every per-anchor decision that needs the
graph (the Section 5 Γ-pruning, the local-solution enumeration) happens
inside the worker that executes the shard.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List

from ..core.biplex import Biplex


@dataclass(frozen=True)
class Shard:
    """One unit of parallel work: a root anchor plus its exclusion prefix.

    Attributes
    ----------
    side:
        ``"L"`` or ``"R"`` — which side the anchor vertex lives on (right
        anchors only occur for bTraversal-style configurations).
    vertex:
        The Step-1 candidate vertex outside the root solution.
    exclusion:
        The exclusion set the serial DFS would hand the children derived
        from this anchor: the left anchors processed before it (empty when
        the exclusion strategy is off).
    """

    side: str
    vertex: int
    exclusion: FrozenSet[int]


def shard_plan(engine, root: Biplex) -> List[Shard]:
    """The shards of ``engine``'s traversal forest below ``root``.

    Mirrors the serial root expansion exactly: same anchor order (the
    engine's ``_candidate_vertices`` — the prep plan's candidate ordering
    when one is set, otherwise left side ascending then, without
    left-anchoring, right side ascending), same early-out prunings with
    the root's empty exclusion set, and the same exclusion-prefix
    accumulation (*every* earlier left anchor joins the prefix, whether or
    not its almost-satisfying graph survived the Γ-pruning — serial
    appends pruned candidates to ``processed`` too).  Because the plan is
    built on the engine's (possibly prep-reduced) graph, shards cover the
    reduced vertex space and an ordering-aware prep also evens out the
    root selection: low-degeneracy anchors lead, dense hubs arrive last
    with the largest exclusion prefixes.
    """
    config = engine.config
    # Section 5 solution pruning at the root (serial `_children` early outs,
    # evaluated with the root's empty exclusion set).
    if (
        config.theta_right
        and config.right_shrinking
        and len(root.right) < config.theta_right
    ):
        return []
    if (
        config.theta_left
        and config.exclusion
        and engine.graph.n_left < config.theta_left
    ):
        return []
    shards: List[Shard] = []
    processed: List[int] = []
    for side, vertex in engine._candidate_vertices(root):
        if side == "L" and config.exclusion:
            shards.append(Shard(side, vertex, frozenset(processed)))
            processed.append(vertex)
        else:
            shards.append(Shard(side, vertex, frozenset()))
    return shards
