"""Sharded parallel enumeration of maximal k-biplexes.

The reverse-search traversals decompose the solution space into subtrees
rooted at the children of the designated initial solution ``H0`` — one
bundle of subtrees per Step-1 *anchor* (a candidate vertex outside ``H0``).
That decomposition is exactly what makes the enumeration scale out:

Shard-by-anchor decomposition
-----------------------------
A *shard* is one anchor together with its exclusion prefix: the left
anchors the root expansion processes before it (Section 3.5 of the paper;
:func:`repro.parallel.shards.shard_plan` replicates the serial root pass,
including the Section 5 large-MBP pruning).  Workers explore their shards
with these prefixes **inherited** down the whole subtree
(``ReverseSearchEngine._inherit_exclusions`` — unlike serial runs, which
apply exclusion per expansion only), so shard ``i`` prunes every solution
containing an earlier shard's anchor: the paper's own visit-once device
doubles as the partitioning function and makes the shards *nearly
disjoint* — on dense ER the union of shard traversals can even undercut
the serial link count.  Inherited sets over-prune (the PR 5 serial
completeness bug), which the engine's re-exploration rule repairs: the
worker's visited map stores the exclusion set each solution was explored
with, and a link whose intersection strictly shrinks it re-explores that
subtree without re-reporting.  bTraversal (no exclusion) shards the same
way but its shards overlap heavily; the engine stays correct (the
coordinator deduplicates) yet the duplicated traversal caps the speedup —
as it also does on left-heavy sparse graphs (many anchors, weak
right-shrinking), where the inherited sets cascade and a parallel run can
be far slower than serial while still exact.  Dense ER — the paper's
scalability workload — is the profitable regime.

Completeness does not rest on disjointness: each worker enumerates every
solution reachable from its anchors' children under the repaired
discipline, the coordinator owns the root, and cross-shard rediscoveries
are merged away; the union over all shards is pinned against the serial
set (itself pinned against the brute-force oracle) by the differential
harness.

Execution model
---------------
The coordinator (:func:`repro.parallel.engine.run_parallel`) computes the
root and the shard plan, then fans the shards out over ``jobs`` worker
processes through a task queue (dynamic load balancing: workers pull the
next shard when done).  Workers stream batches of solutions back through a
result queue; the coordinator deduplicates against everything already seen
and either re-yields immediately (``parallel_order="completion"``) or
buffers and finally yields in canonical sorted order
(``parallel_order="sorted"``, the default — deterministic, and equal to
the serial output sorted by :meth:`Biplex.key`, which is what the
differential harness pins).  ``max_results`` and ``time_limit`` are
enforced cooperatively: the coordinator counts unique yields and watches
the wall-clock deadline, and cancels the remaining shards through a shared
event the workers poll; workers additionally bound each shard by the
remaining time budget.

Stats-merge contract
--------------------
The coordinator leaves one merged :class:`~repro.core.traversal.TraversalStats`
on the engine:

* ``num_reported`` — exact: the unique solutions actually yielded.
* ``num_solutions`` / ``num_links`` / ``num_almost_sat_graphs`` /
  ``num_local_solutions`` — summed over the workers.  They measure work
  *performed*; when shard subtrees overlap (always for bTraversal,
  occasionally for iTraversal) they exceed the serial counts, and because
  shards are assigned dynamically the sums may vary slightly run to run.
* ``elapsed_seconds`` — the coordinator's wall clock for the whole run.
* ``hit_result_limit`` / ``hit_time_limit`` — OR over every worker and the
  coordinator's own cap/deadline enforcement, so ``stats.truncated`` is
  true whenever any part of the run was cut short.
* ``num_shards`` — the size of the shard plan; ``num_duplicate_solutions``
  — cross-shard rediscoveries the coordinator merged away.
"""

from __future__ import annotations

import os
from typing import Optional

#: Environment variable supplying the default worker count when
#: ``TraversalConfig.jobs`` is ``None`` (mirrors ``REPRO_BACKEND``).
JOBS_ENV_VAR = "REPRO_JOBS"


def resolve_jobs(jobs: Optional[int]) -> int:
    """Resolve a ``jobs`` setting to a concrete worker count.

    ``None`` reads the ``REPRO_JOBS`` environment variable (default 1), so
    CI can drive the whole suite through the parallel engine with one knob;
    ``0`` means one worker per CPU core; negative values are rejected.
    """
    if jobs is None:
        raw = os.environ.get(JOBS_ENV_VAR)
        if raw is None:
            return 1
        try:
            jobs = int(raw)
        except ValueError:
            raise ValueError(
                f"{JOBS_ENV_VAR}={raw!r} is not a valid worker count; expected an integer"
            ) from None
    if jobs < 0:
        raise ValueError("jobs must be >= 0 (0 = one worker per CPU core)")
    if jobs == 0:
        return os.cpu_count() or 1
    return jobs


from .shards import Shard, shard_plan  # noqa: E402
from .engine import run_parallel  # noqa: E402

__all__ = [
    "JOBS_ENV_VAR",
    "Shard",
    "resolve_jobs",
    "run_parallel",
    "shard_plan",
]
