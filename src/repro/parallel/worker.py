"""Worker-process entry point of the sharded parallel engine.

Kept in its own importable module so the ``spawn`` start method can pickle
the target by reference; under ``fork`` (the Linux default) the arguments
are inherited and never serialised.  The worker owns one
:class:`~repro.core.traversal.ReverseSearchEngine` for its whole lifetime,
but ``run_shard`` resets the visited map per shard on purpose: each
shard's traversal is a pure function of ``(root, anchor, exclusion)``, so
the merged work counters do not depend on how the dynamic scheduler
assigned shards to workers (cross-shard duplicates are removed by the
coordinator instead).  The per-shard stats are accumulated into one
running total that is shipped back exactly once, at exit.
"""

from __future__ import annotations

import time
import traceback
from dataclasses import asdict

from ..core.traversal import ReverseSearchEngine, TraversalStats

#: Solutions are streamed back in batches of this size: large enough to
#: amortise the queue/pickling round trip, small enough that the
#: coordinator's max_results cancellation stays responsive.
SOLUTION_BATCH_SIZE = 64


class _ThrottledCancel:
    """Poll a shared event only every ``interval`` probes.

    The engine probes the cancellation hook on every time check (per
    reported solution and per Step-1 candidate); reading a
    ``multiprocessing.Event`` is a shared-semaphore access, cheap but not
    free, so the probe is decimated.
    """

    __slots__ = ("_event", "_interval", "_tick")

    def __init__(self, event, interval: int = 64) -> None:
        self._event = event
        self._interval = interval
        self._tick = 0

    def __call__(self) -> bool:
        self._tick += 1
        if self._tick % self._interval:
            return False
        return self._event.is_set()


class _SharedBound:
    """Cross-process incumbent size bound (solver-mode gossip).

    The engine consults :meth:`read` on its hot pruning paths, so the
    shared ``multiprocessing.Value`` is only touched every ``interval``
    probes and the last-seen bound is served in between — the bound is
    monotone, so a stale read only means pruning a little less, never
    wrongly.  :meth:`publish` max-merges immediately: a worker's improved
    incumbent is exactly what lets the *other* workers prune.
    """

    __slots__ = ("_value", "_interval", "_tick", "_cached")

    def __init__(self, value, interval: int = 32) -> None:
        self._value = value
        self._interval = interval
        self._tick = 0
        self._cached = value.value

    def read(self) -> int:
        self._tick += 1
        if self._tick % self._interval == 0:
            self._cached = self._value.value
        return self._cached

    def publish(self, bound: int) -> None:
        if bound <= self._cached:
            return
        self._cached = bound
        with self._value.get_lock():
            raw = self._value.get_obj()
            if bound > raw.value:
                raw.value = bound


def _accumulate(totals: TraversalStats, shard_stats: TraversalStats) -> None:
    """Fold one shard's counters into the worker's running totals."""
    totals.num_solutions += shard_stats.num_solutions
    totals.num_reported += shard_stats.num_reported
    totals.num_links += shard_stats.num_links
    totals.num_almost_sat_graphs += shard_stats.num_almost_sat_graphs
    totals.num_local_solutions += shard_stats.num_local_solutions
    totals.num_reexplorations += shard_stats.num_reexplorations
    totals.num_pruned_by_bound += shard_stats.num_pruned_by_bound
    totals.num_pruned_size_filter += shard_stats.num_pruned_size_filter
    totals.num_pruned_subtree += shard_stats.num_pruned_subtree
    totals.num_pruned_anchor += shard_stats.num_pruned_anchor
    totals.num_pruned_exclusion += shard_stats.num_pruned_exclusion
    totals.num_pruned_core_bound += shard_stats.num_pruned_core_bound
    totals.num_pruned_right_extensible += shard_stats.num_pruned_right_extensible
    if shard_stats.best_size > totals.best_size:
        totals.best_size = shard_stats.best_size
    totals.elapsed_seconds += shard_stats.elapsed_seconds
    totals.hit_result_limit |= shard_stats.hit_result_limit
    totals.hit_time_limit |= shard_stats.hit_time_limit


def worker_main(
    worker_id: int,
    graph,
    k: int,
    config,
    root,
    shards,
    task_queue,
    result_queue,
    cancel_event,
    deadline,
    bound_value=None,
    trace_id=None,
) -> None:
    """Pull shard indices until the sentinel, streaming solutions back.

    ``config`` arrives pre-sanitised by the coordinator (``jobs=1``, no
    ``max_results`` — the global cap is enforced cooperatively, a per-shard
    cap could starve the merged unique count).  ``deadline`` is an absolute
    ``time.time()`` instant shared by every worker; each shard runs with
    whatever budget remains of it.  ``bound_value`` (solver modes only) is
    the shared incumbent-size cell of the gossip channel; the worker's
    objective state deliberately persists across its shards — unlike the
    visited map, an incumbent carried over can only tighten pruning, never
    change the answer.

    ``trace_id`` is the coordinator's request trace propagating through
    the shard-dispatch path: when set, the worker records one span per
    shard it ran and ships the serialized tree back in its ``"done"``
    message, where the coordinator grafts it under the request's active
    span (``Trace.attach``).  ``None`` (tracing off) records nothing.
    """
    totals = TraversalStats()
    shard_spans = [] if trace_id is not None else None
    try:
        engine = ReverseSearchEngine(graph, k, config)
        engine._cancel = _ThrottledCancel(cancel_event)
        if bound_value is not None:
            engine._bound_channel = _SharedBound(bound_value)
        # Inherited exclusion prefixes keep the shards nearly disjoint; the
        # engine's visited-map re-exploration rule repairs the over-pruning
        # they cause (see ReverseSearchEngine.__init__).  Requested — not
        # set directly — because run_shard re-arms the live flag per shard:
        # on left-heavy sparse inputs the engine's cascade fallback may
        # drop to per-expansion exclusion partway through a shard, and that
        # decision must not leak into the next shard's traversal.
        engine._inherit_exclusions_requested = True
        while True:
            index = task_queue.get()
            if index is None:
                break
            if cancel_event.is_set():
                break
            if deadline is not None:
                remaining = deadline - time.time()
                if remaining <= 0:
                    totals.hit_time_limit = True
                    break
                engine.config.time_limit = remaining
            shard = shards[index]
            batch = []
            try:
                for solution in engine.run_shard(
                    root, (shard.side, shard.vertex), shard.exclusion
                ):
                    batch.append(solution)
                    if len(batch) >= SOLUTION_BATCH_SIZE:
                        result_queue.put(("solutions", batch))
                        batch = []
                    if cancel_event.is_set():
                        break
            finally:
                _accumulate(totals, engine.stats)
                totals.num_shards += 1
                if shard_spans is not None:
                    shard_spans.append(
                        {
                            "name": f"shard[{index}]",
                            "elapsed_ms": round(
                                engine.stats.elapsed_seconds * 1000.0, 3
                            ),
                            "anchor": [shard.side, shard.vertex],
                        }
                    )
                if batch:
                    result_queue.put(("solutions", batch))
    except (KeyboardInterrupt, EOFError, BrokenPipeError):  # pragma: no cover
        # Parent interrupted or tore the queues down mid-run; the "done"
        # message below is best-effort.
        pass
    except BaseException:
        try:
            result_queue.put(("error", worker_id, traceback.format_exc()))
        except Exception:  # pragma: no cover - queues already gone
            pass
        return
    worker_span = None
    if shard_spans is not None:
        worker_span = {
            "name": f"worker[{worker_id}]",
            "elapsed_ms": round(totals.elapsed_seconds * 1000.0, 3),
            "trace_id": trace_id,
            "shards": totals.num_shards,
            "children": shard_spans,
        }
    try:
        result_queue.put(("done", worker_id, asdict(totals), worker_span))
    except Exception:  # pragma: no cover - queues already gone
        pass
