"""Coordinator of the sharded parallel enumeration.

See the package docstring (:mod:`repro.parallel`) for the decomposition and
the stats-merge contract.  The coordinator is a generator: it computes the
root solution and the shard plan, spins up the worker pool, then merges the
result stream — deduplicating cross-shard rediscoveries, enforcing
``max_results`` / ``time_limit`` cooperatively, and leaving one merged
:class:`~repro.core.traversal.TraversalStats` on the engine no matter how
the iteration ends (exhaustion, caller ``break``, worker failure).
"""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_module
import time
from collections import deque
from dataclasses import replace
from typing import Iterator, List, Optional

from ..core.biplex import Biplex
from ..core.traversal import TraversalStats
from ..obs import current_trace, get_registry
from .shards import shard_plan
from .worker import worker_main

#: Environment variable forcing a multiprocessing start method (``fork`` /
#: ``spawn`` / ``forkserver``).  Default: ``fork`` where available (cheap,
#: no pickling of the graph), the platform default otherwise.
START_METHOD_ENV_VAR = "REPRO_PARALLEL_START_METHOD"

_POLL_SECONDS = 0.05
_JOIN_SECONDS = 2.0

#: The engine's per-prune-site counters, summed across workers exactly
#: like the other work counters (see TraversalStats).
_PRUNE_SITE_FIELDS = (
    "num_pruned_size_filter",
    "num_pruned_subtree",
    "num_pruned_anchor",
    "num_pruned_exclusion",
    "num_pruned_core_bound",
    "num_pruned_right_extensible",
)


def _mp_context():
    method = os.environ.get(START_METHOD_ENV_VAR)
    if method:
        return multiprocessing.get_context(method)
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def _merge_worker_stats(merged: TraversalStats, data: dict) -> None:
    """Fold one worker's final counters into the merged stats.

    ``num_reported`` is deliberately not summed: workers count their own
    yields including cross-shard duplicates, while the merged value is the
    coordinator's exact unique count.
    """
    merged.num_solutions += data["num_solutions"]
    merged.num_links += data["num_links"]
    merged.num_almost_sat_graphs += data["num_almost_sat_graphs"]
    merged.num_local_solutions += data["num_local_solutions"]
    merged.num_reexplorations += data["num_reexplorations"]
    merged.num_pruned_by_bound += data["num_pruned_by_bound"]
    for site_field in _PRUNE_SITE_FIELDS:
        # .get: a "done" message from an older worker build lacks the
        # per-site counters; treat absence as zero.
        setattr(merged, site_field, getattr(merged, site_field) + data.get(site_field, 0))
    if data["best_size"] > merged.best_size:
        merged.best_size = data["best_size"]
    merged.hit_result_limit |= data["hit_result_limit"]
    merged.hit_time_limit |= data["hit_time_limit"]


def _shutdown(workers, task_queue, result_queue, merged: TraversalStats) -> None:
    """Reap the pool: drain (merging late stats), join, terminate stragglers.

    Draining while joining matters: a worker blocked on a full result pipe
    cannot observe the cancellation event, so the coordinator keeps eating
    messages until every process has exited (or the grace period ends).
    """
    grace_end = time.time() + _JOIN_SECONDS
    while any(process.is_alive() for process in workers) and time.time() < grace_end:
        _drain(result_queue, merged)
        for process in workers:
            process.join(timeout=0.02)
    for process in workers:
        if process.is_alive():
            process.terminate()
    for process in workers:
        process.join(timeout=1.0)
    _drain(result_queue, merged)
    for q in (task_queue, result_queue):
        try:
            q.close()
            q.cancel_join_thread()
        except (OSError, ValueError):  # pragma: no cover - queue already gone
            pass


def _drain(result_queue, merged: TraversalStats) -> None:
    """Discard queued solution batches, but keep late worker stats."""
    while True:
        try:
            message = result_queue.get_nowait()
        except queue_module.Empty:
            return
        except (OSError, ValueError):  # pragma: no cover - queue already gone
            return
        if message[0] == "done":
            _merge_worker_stats(merged, message[2])


def run_parallel(engine) -> Iterator[Biplex]:
    """Run ``engine``'s traversal sharded over a process pool.

    Falls back to the serial DFS when the resolved worker count or the
    shard plan cannot keep two workers busy (the parallel machinery would
    be pure overhead and the serial run is, by construction, the one-worker
    special case).
    """
    from . import resolve_jobs

    config = engine.config
    jobs = resolve_jobs(config.jobs)
    start_wall = time.perf_counter()
    deadline = (
        time.time() + config.time_limit if config.time_limit is not None else None
    )
    root = engine._initial_solution()
    shards = shard_plan(engine, root)
    if jobs < 2 or len(shards) < 2:
        yield from engine._run_serial()
        return

    worker_config = replace(config, jobs=1, time_limit=None, max_results=None)
    ctx = _mp_context()
    cancel = ctx.Event()
    task_queue = ctx.Queue()
    result_queue = ctx.Queue()
    # Solver modes gossip the incumbent size through one shared cell: the
    # coordinator (which observes every unique arrival) max-merges into it,
    # the workers read it into their pruning bound (see worker._SharedBound).
    solver = not engine.objective.trivial
    bound_value = ctx.Value("q", 0) if solver else None

    def publish_bound() -> None:
        bound = engine.objective.prune_below()
        if bound_value is None or not bound:
            return
        with bound_value.get_lock():
            raw = bound_value.get_obj()
            if bound > raw.value:
                raw.value = bound

    worker_count = min(jobs, len(shards))
    # The request trace (if any) propagates into the workers by id only;
    # each worker ships its span subtree back in its "done" message and the
    # coordinator grafts it under the active span (Trace.attach).
    active_trace = current_trace()
    trace_id = active_trace.trace_id if active_trace is not None else None
    registry = get_registry()
    if registry.enabled:
        registry.inc("parallel_runs_total")
        registry.inc("parallel_shards_total", value=len(shards))
        registry.inc("parallel_workers_total", value=worker_count)
    for index in range(len(shards)):
        task_queue.put(index)
    for _ in range(worker_count):
        task_queue.put(None)
    workers = [
        ctx.Process(
            target=worker_main,
            args=(
                worker_id,
                engine.graph,
                engine.k,
                worker_config,
                root,
                shards,
                task_queue,
                result_queue,
                cancel,
                deadline,
                bound_value,
                trace_id,
            ),
            daemon=True,
        )
        for worker_id in range(worker_count)
    ]

    # Fresh incumbent per run, exactly like _run_serial does for the serial
    # path — a previous run's bound must not pre-prune this one.
    engine.objective.reset()
    merged = TraversalStats(num_solutions=1, num_shards=len(shards))
    seen = {root}
    ordered = config.parallel_order == "sorted"
    buffered: List[Biplex] = []
    stop = False
    worker_error: Optional[str] = None
    # Arrivals drive the cap; ``merged.num_reported`` counts solutions
    # actually delivered to the consumer (serial semantics — a caller that
    # abandons the generator early sees only what it consumed).
    arrived = 0

    def cap_reached() -> bool:
        return config.max_results is not None and arrived >= config.max_results

    try:
        for process in workers:
            process.start()
        # The designated root is the coordinator's own solution; filter,
        # count and deadline-check it exactly as the serial _report would.
        if deadline is not None and time.time() > deadline:
            merged.hit_time_limit = True
            stop = True
        elif engine._passes_size_filter(root):
            arrived += 1
            if root.size > merged.best_size:
                merged.best_size = root.size
            if solver and engine.objective.observe(root):
                publish_bound()
            if cap_reached():
                merged.hit_result_limit = True
                stop = True
            if ordered:
                buffered.append(root)
            else:
                merged.num_reported += 1
                yield root
        pending = worker_count
        backlog: deque = deque()
        while pending and not stop:
            if backlog:
                message = backlog.popleft()
            else:
                try:
                    message = result_queue.get(timeout=_POLL_SECONDS)
                except queue_module.Empty:
                    if deadline is not None and time.time() > deadline:
                        merged.hit_time_limit = True
                        break
                    if all(not process.is_alive() for process in workers):
                        # Exit race: a worker can flush its last messages
                        # and exit between polls — pick them up before
                        # declaring it lost.
                        while True:
                            try:
                                backlog.append(result_queue.get_nowait())
                            except queue_module.Empty:
                                break
                        if not backlog:
                            raise RuntimeError(
                                "a parallel enumeration worker exited without "
                                "reporting; solutions may be missing"
                            )
                    continue
            kind = message[0]
            if kind == "solutions":
                for solution in message[1]:
                    if solution in seen:
                        merged.num_duplicate_solutions += 1
                        continue
                    seen.add(solution)
                    arrived += 1
                    if solution.size > merged.best_size:
                        merged.best_size = solution.size
                    if solver and engine.objective.observe(solution):
                        # Workers gossip through their own engines already;
                        # the coordinator's merged view catches incumbents
                        # a worker found right before exiting.
                        publish_bound()
                    if cap_reached():
                        merged.hit_result_limit = True
                        stop = True
                    if ordered:
                        buffered.append(solution)
                    else:
                        merged.num_reported += 1
                        yield solution
                    if stop:
                        break
            elif kind == "done":
                _merge_worker_stats(merged, message[2])
                if active_trace is not None and len(message) > 3 and message[3]:
                    active_trace.attach(message[3])
                pending -= 1
            else:  # "error"
                worker_error = message[2]
                stop = True
        if worker_error is not None:
            raise RuntimeError(
                f"parallel enumeration worker failed:\n{worker_error}"
            )
    finally:
        cancel.set()
        _shutdown(workers, task_queue, result_queue, merged)
        merged.elapsed_seconds = time.perf_counter() - start_wall
        if registry.enabled and merged.num_duplicate_solutions:
            registry.inc(
                "parallel_duplicates_total",
                value=merged.num_duplicate_solutions,
            )
        engine.stats = merged
        # Rough parity with the serial run, whose visited mapping holds
        # every discovered solution afterwards.
        engine._visited = dict.fromkeys(seen, frozenset())
    if ordered:
        buffered.sort(key=lambda solution: solution.key())
        for solution in buffered:
            # ``merged`` is the same object as ``engine.stats`` by now, so
            # late increments stay visible even though the finally above
            # already ran.
            merged.num_reported += 1
            yield solution
