"""Packed adjacency backend: contiguous ``uint64`` bit-matrices.

:class:`PackedBipartiteGraph` is the third adjacency substrate behind the
:mod:`repro.graph.protocol` surface (after plain sets and Python-int
bitmasks).  Adjacency is stored as one *packed row* per vertex inside a
contiguous numpy ``uint64`` matrix: bit ``u`` of row ``v`` of the left
matrix (word ``u // 64``, bit ``u % 64``) is set iff ``(v, u)`` is an edge,
and symmetrically for the right matrix.

The class *is* a :class:`~repro.graph.bitset.BitsetBipartiteGraph`, so every
existing mask-based fast path (the traversal engines, iMB, the k-plex
enumerator, δ-QB checks) runs on it unchanged and produces identical
solution sets.  What the packed rows add is the *batch* capability
(:func:`repro.graph.protocol.supports_batch`): whole-side vectorized
predicates in the style of the BBK implementations (Baudin et al., 2024)
and the parallel butterfly counters of Wang et al. (VLDB 2019) —

* ``rows(side)`` exposes the full bit-matrix of one side,
* ``popcount_rows(side, mask)`` computes ``|Γ(v) ∩ S|`` for *every* vertex
  of a side in one ``np.bitwise_and`` + ``np.bitwise_count`` sweep,
* ``common_neighbors_matrix(side)`` yields all pairwise common-neighbour
  counts of a side as a single broadcasted matrix expression.

Butterfly counting, bitruss peeling, (α, β)-core peeling and the
enumeration-side Γ / δ̄ predicates detect the capability and switch to these
whole-row operations instead of per-vertex Python-int loops; see
``graph/butterfly.py``, ``graph/cores.py`` and ``core/{biplex,traversal}``.

numpy is an *optional* dependency.  When a capable numpy (>= 2.0, for
``np.bitwise_count``) is importable, ``to_packed()`` / ``as_backend(...,
"packed")`` build the vectorized classes above.  Without it they fall back
to :class:`ArrayPackedBipartiteGraph` / :class:`ArrayPackedGraph` — the same
word layout held in ``array('Q')`` rows behind the identical ``rows`` /
``popcount_rows`` / ``common_neighbors_matrix`` surface — so ``--backend
packed`` degrades gracefully instead of erroring.  The fallback advertises
``supports_batch`` but not ``batch_vectorized``
(:func:`repro.graph.protocol.supports_vector_batch`), so the algorithms
keep their Python-int mask fast paths rather than looping over words in
Python.  Constructing the numpy classes *directly* without numpy still
raises a clear :class:`PackedBackendUnavailable`.
"""

from __future__ import annotations

from array import array
from collections.abc import Iterable
from typing import List, Sequence, Tuple

from .bipartite import Side
from .bitset import BitsetBipartiteGraph
from .general import BitsetGraph

try:  # pragma: no cover - exercised via packed_available() in both states
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

#: Bits per packed word.
WORD_BITS = 64

_WORD_MASK = (1 << WORD_BITS) - 1

_NUMPY_ERROR = (
    "the vectorized 'packed' classes require numpy >= 2.0 (np.bitwise_count); "
    "install numpy, or build the graph via to_packed() / as_backend(..., "
    "'packed') to get the numpy-free array('Q') fallback"
)


class PackedBackendUnavailable(RuntimeError):
    """Raised when the packed backend is requested without a capable numpy.

    A :class:`RuntimeError` subclass so generic error handling keeps
    working, but distinguishable from fail-loud internal errors (callers
    like the CLI catch exactly this to print a configuration hint instead
    of swallowing real bugs).
    """


def packed_available() -> bool:
    """Whether the *vectorized* packed classes can be used.

    Requires a numpy with ``bitwise_count`` (>= 2.0).  The packed *backend*
    itself is always available: without numpy, conversions select the
    ``array('Q')`` fallback classes instead (same batch surface, no
    vectorization).
    """
    return _np is not None and hasattr(_np, "bitwise_count")


def _require_numpy():
    if not packed_available():
        raise PackedBackendUnavailable(_NUMPY_ERROR)
    return _np


def words_for(n_bits: int) -> int:
    """Number of 64-bit words needed to hold ``n_bits`` bits."""
    return (max(n_bits, 0) + WORD_BITS - 1) // WORD_BITS


def mask_words(mask: int, n_bits: int) -> List[int]:
    """Split an arbitrary-precision Python-int bitmask into 64-bit words.

    Pure-Python twin of :func:`pack_mask`; also used by the ``array('Q')``
    fallback classes, so it must not touch numpy.
    """
    return [(mask >> (WORD_BITS * w)) & _WORD_MASK for w in range(words_for(n_bits))]


def pack_mask(mask: int, n_bits: int):
    """Pack an arbitrary-precision Python-int bitmask into a ``uint64`` row.

    Goes through ``int.to_bytes`` + ``np.frombuffer`` (both C speed) rather
    than a Python word loop: the enumeration fast paths convert one mask per
    predicate call, so this conversion sits on the hot path.  The returned
    array is read-only (it views the bytes object) — every consumer only
    ever reads it.
    """
    np = _require_numpy()
    return np.frombuffer(
        mask.to_bytes(words_for(n_bits) * 8, "little"), dtype=np.uint64
    )


def pack_indices(indices, n_bits: int):
    """Pack an iterable (or bool/index array) of bit positions into a row."""
    np = _require_numpy()
    row = np.zeros(words_for(n_bits), dtype=np.uint64)
    idx = np.asarray(list(indices) if not hasattr(indices, "dtype") else indices)
    if idx.dtype == bool:
        idx = np.nonzero(idx)[0]
    if idx.size:
        idx = idx.astype(np.uint64)
        np.bitwise_or.at(
            row, idx >> np.uint64(6), np.left_shift(np.uint64(1), idx & np.uint64(63))
        )
    return row


def unpack_row(row) -> int:
    """Inverse of :func:`pack_mask`: a packed row back to a Python-int mask.

    Accepts a numpy ``uint64`` row or any word sequence (e.g. the fallback's
    ``array('Q')`` rows).
    """
    if hasattr(row, "tobytes"):
        return int.from_bytes(row.tobytes(), "little")
    mask = 0
    for w, word in enumerate(row):
        mask |= word << (WORD_BITS * w)
    return mask


def _side_key(side) -> str:
    if isinstance(side, Side):
        return "left" if side is Side.LEFT else "right"
    if side in ("left", "right"):
        return side
    raise ValueError(f"side must be 'left', 'right' or a Side enum, got {side!r}")


def _rows_from_masks(masks: Sequence[int], n_bits: int):
    """Build a ``uint64`` bit-matrix from per-vertex Python-int masks.

    One ``to_bytes`` sweep per vertex — roughly two orders of magnitude
    faster than replaying every edge through numpy scalar updates, which is
    why the packed constructors build their matrices in bulk after the base
    class has assembled the masks.
    """
    np = _require_numpy()
    n_words = words_for(n_bits)
    row_bytes = n_words * 8
    buffer = bytearray(b"".join(mask.to_bytes(row_bytes, "little") for mask in masks))
    return np.frombuffer(buffer, dtype=np.uint64).reshape(len(masks), n_words)


class PackedBipartiteGraph(BitsetBipartiteGraph):
    """A bitset bipartite graph that also maintains packed ``uint64`` rows.

    Keeps the Python-int masks of the parent class (so every masked fast
    path applies) *and* two contiguous numpy matrices — ``(n_left,
    words(n_right))`` and ``(n_right, words(n_left))`` — kept in lock-step
    by ``add_edge`` / ``remove_edge``.

    Examples
    --------
    >>> g = PackedBipartiteGraph(2, 3, edges=[(0, 0), (0, 2), (1, 1)])
    >>> int(g.rows("left")[0, 0])
    5
    >>> g.popcount_rows("left").tolist()
    [2, 1]
    """

    __slots__ = ("_left_rows", "_right_rows")

    #: Capability flag: the batch row surface is available.
    supports_batch = True

    #: Capability flag: the batch surface is numpy-vectorized (whole-side
    #: sweeps run at C speed, not as Python word loops).
    batch_vectorized = True

    def __init__(
        self,
        n_left: int,
        n_right: int,
        edges: Iterable[Tuple[int, int]] = (),
    ) -> None:
        _require_numpy()
        # The matrices are built in bulk from the Python-int masks *after*
        # the base constructor replays ``edges`` (see _rows_from_masks);
        # add_edge skips row maintenance while they are still unset.
        self._left_rows = None
        self._right_rows = None
        super().__init__(n_left, n_right, edges)
        self._left_rows = _rows_from_masks(self._left_masks, n_right)
        self._right_rows = _rows_from_masks(self._right_masks, n_left)

    # ------------------------------------------------------------------ #
    # Mutation (sets, masks and packed rows stay in lock-step)
    # ------------------------------------------------------------------ #
    def add_edge(self, left_vertex: int, right_vertex: int) -> bool:
        if not super().add_edge(left_vertex, right_vertex):
            return False
        if self._left_rows is not None:
            self._left_rows[left_vertex, right_vertex >> 6] |= _np.uint64(
                1 << (right_vertex & 63)
            )
            self._right_rows[right_vertex, left_vertex >> 6] |= _np.uint64(
                1 << (left_vertex & 63)
            )
        return True

    def remove_edge(self, left_vertex: int, right_vertex: int) -> bool:
        if not super().remove_edge(left_vertex, right_vertex):
            return False
        if self._left_rows is not None:
            self._left_rows[left_vertex, right_vertex >> 6] &= _np.uint64(
                ~(1 << (right_vertex & 63)) & _WORD_MASK
            )
            self._right_rows[right_vertex, left_vertex >> 6] &= _np.uint64(
                ~(1 << (left_vertex & 63)) & _WORD_MASK
            )
        return True

    def add_left_vertex(self) -> int:
        # One zero row on our own matrix; the *other* side's rows gain a
        # zero word only when the new id crosses a 64-bit word boundary.
        self._left_rows = _np.concatenate(
            [self._left_rows, _np.zeros((1, self._left_rows.shape[1]), dtype=_np.uint64)]
        )
        if words_for(self._n_left + 1) > words_for(self._n_left):
            self._right_rows = _np.concatenate(
                [
                    self._right_rows,
                    _np.zeros((self._right_rows.shape[0], 1), dtype=_np.uint64),
                ],
                axis=1,
            )
        return super().add_left_vertex()

    def add_right_vertex(self) -> int:
        self._right_rows = _np.concatenate(
            [self._right_rows, _np.zeros((1, self._right_rows.shape[1]), dtype=_np.uint64)]
        )
        if words_for(self._n_right + 1) > words_for(self._n_right):
            self._left_rows = _np.concatenate(
                [
                    self._left_rows,
                    _np.zeros((self._left_rows.shape[0], 1), dtype=_np.uint64),
                ],
                axis=1,
            )
        return super().add_right_vertex()

    # ------------------------------------------------------------------ #
    # Batch capability
    # ------------------------------------------------------------------ #
    def rows(self, side):
        """The packed bit-matrix of ``side`` (one ``uint64`` row per vertex).

        The returned array is the live storage — treat it as read-only.
        """
        return self._left_rows if _side_key(side) == "left" else self._right_rows

    def row_bits(self, side) -> int:
        """Number of *meaningful* bits per row of ``side``'s matrix."""
        return self._n_right if _side_key(side) == "left" else self._n_left

    def popcount_rows(self, side, mask=None):
        """``|Γ(v) ∩ S|`` for every vertex ``v`` of ``side``, as an int64 vector.

        ``mask`` selects the subset ``S`` of the *other* side: a Python-int
        bitmask, a packed ``uint64`` row, or ``None`` for the full side.
        """
        rows = self.rows(side)
        if mask is not None:
            if isinstance(mask, int):
                mask = pack_mask(mask, self.row_bits(side))
            rows = rows & mask
        return _np.bitwise_count(rows).sum(axis=1, dtype=_np.int64)

    def common_neighbors_matrix(self, side, anchors=None, others=None):
        """Pairwise common-neighbour counts of ``side`` as one broadcast.

        Entry ``(i, j)`` is ``|Γ(anchors[i]) ∩ Γ(others[j])|``; with the
        defaults (both ``None`` = all vertices) that is the full (n, n)
        matrix, whose diagonal holds the degrees.  ``anchors`` / ``others``
        accept anything that indexes rows of the bit-matrix (a ``slice``,
        an index array, a boolean mask) — the butterfly counter passes row
        blocks here to bound the ``len(anchors) · len(others) · words``
        temporary on large sides.
        """
        rows = self.rows(side)
        anchor_rows = rows if anchors is None else rows[anchors]
        other_rows = rows if others is None else rows[others]
        return _np.bitwise_count(anchor_rows[:, None, :] & other_rows[None, :, :]).sum(
            axis=2, dtype=_np.int64
        )

    # ------------------------------------------------------------------ #
    # Conversion
    # ------------------------------------------------------------------ #
    def to_packed(self) -> "PackedBipartiteGraph":
        """Already packed: return ``self`` (no copy)."""
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PackedBipartiteGraph(n_left={self._n_left}, n_right={self._n_right}, "
            f"num_edges={self._num_edges})"
        )


class PackedGraph(BitsetGraph):
    """General-graph sibling of :class:`PackedBipartiteGraph`.

    Used by the inflation pipeline (``inflate(..., backend="packed")``); the
    k-plex enumerator consumes it through the inherited mask capability,
    while batch consumers can read the single ``(n, words(n))`` matrix.
    """

    __slots__ = ("_rows",)

    #: Capability flag: the batch row surface is available.
    supports_batch = True

    #: Capability flag: the batch surface is numpy-vectorized.
    batch_vectorized = True

    def __init__(self, n: int, edges: Iterable[Tuple[int, int]] = ()) -> None:
        _require_numpy()
        # Built in bulk from the masks after the base replay, like the
        # bipartite class.
        self._rows = None
        super().__init__(n, edges)
        self._rows = _rows_from_masks(self._masks, n)

    def add_edge(self, u: int, v: int) -> bool:
        if not super().add_edge(u, v):
            return False
        if self._rows is not None:
            self._rows[u, v >> 6] |= _np.uint64(1 << (v & 63))
            self._rows[v, u >> 6] |= _np.uint64(1 << (u & 63))
        return True

    def rows(self):
        """The packed adjacency matrix (one ``uint64`` row per vertex)."""
        return self._rows

    def popcount_rows(self, mask=None):
        """``|Γ(u) ∩ S|`` for every vertex, as an int64 vector."""
        rows = self._rows
        if mask is not None:
            if isinstance(mask, int):
                mask = pack_mask(mask, self._n)
            rows = rows & mask
        return _np.bitwise_count(rows).sum(axis=1, dtype=_np.int64)

    def to_packed(self) -> "PackedGraph":
        """Already packed: return ``self`` (no copy)."""
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PackedGraph(n={self._n}, num_edges={self._num_edges})"


# ---------------------------------------------------------------------- #
# numpy-free fallback: the same packed surface over array('Q') rows
# ---------------------------------------------------------------------- #
def _is_bool_flag(value) -> bool:
    """Whether ``value`` is a Python or numpy boolean (not an index).

    numpy's boolean scalar is not a ``bool`` subclass but *is* index-like,
    so an ``isinstance(value, bool)`` test alone would silently misread a
    numpy boolean mask as the index array ``[0, 1, ...]``.  Matched by type
    name (``numpy.bool`` since numpy 2, ``numpy.bool_`` before) so the
    fallback stays importable without numpy.
    """
    return isinstance(value, bool) or type(value).__name__ in ("bool", "bool_")


def _select_rows(rows: Sequence, selector) -> Sequence:
    """Index a row list the way numpy fancy indexing would.

    Accepts ``None`` (all rows), a ``slice``, a boolean mask (Python or
    numpy booleans), or an iterable of row indices — the selector forms the
    batch consumers pass to ``common_neighbors_matrix``.
    """
    if selector is None:
        return rows
    if isinstance(selector, slice):
        return rows[selector]
    selected = list(selector)
    if selected and _is_bool_flag(selected[0]):
        return [row for row, flag in zip(rows, selected) if flag]
    return [rows[index] for index in selected]


class ArrayPackedBipartiteGraph(BitsetBipartiteGraph):
    """numpy-free twin of :class:`PackedBipartiteGraph` over ``array('Q')`` rows.

    Same word layout (bit ``u`` of row ``v`` = word ``u // 64``, bit
    ``u % 64``), same ``rows`` / ``popcount_rows`` /
    ``common_neighbors_matrix`` surface, bit-identical results — but plain
    Python word loops instead of vectorized sweeps, so it advertises
    ``supports_batch`` without ``batch_vectorized`` and the algorithms keep
    their Python-int mask fast paths.  Selected automatically by
    ``to_packed()`` / ``as_backend(..., "packed")`` when numpy is absent.

    Examples
    --------
    >>> g = ArrayPackedBipartiteGraph(2, 3, edges=[(0, 0), (0, 2), (1, 1)])
    >>> g.rows("left")[0][0]
    5
    >>> g.popcount_rows("left")
    [2, 1]
    """

    __slots__ = ("_left_rows", "_right_rows")

    #: Capability flag: the batch row surface is available.
    supports_batch = True

    #: The surface is plain Python — whole-side sweeps would be word loops.
    batch_vectorized = False

    def __init__(
        self,
        n_left: int,
        n_right: int,
        edges: Iterable[Tuple[int, int]] = (),
    ) -> None:
        # The rows must exist before the base constructor replays ``edges``
        # through our ``add_edge`` override.
        self._left_rows = [
            array("Q", [0] * words_for(n_right)) for _ in range(max(n_left, 0))
        ]
        self._right_rows = [
            array("Q", [0] * words_for(n_left)) for _ in range(max(n_right, 0))
        ]
        super().__init__(n_left, n_right, edges)

    def add_edge(self, left_vertex: int, right_vertex: int) -> bool:
        if not super().add_edge(left_vertex, right_vertex):
            return False
        self._left_rows[left_vertex][right_vertex >> 6] |= 1 << (right_vertex & 63)
        self._right_rows[right_vertex][left_vertex >> 6] |= 1 << (left_vertex & 63)
        return True

    def remove_edge(self, left_vertex: int, right_vertex: int) -> bool:
        if not super().remove_edge(left_vertex, right_vertex):
            return False
        self._left_rows[left_vertex][right_vertex >> 6] &= _WORD_MASK ^ (
            1 << (right_vertex & 63)
        )
        self._right_rows[right_vertex][left_vertex >> 6] &= _WORD_MASK ^ (
            1 << (left_vertex & 63)
        )
        return True

    def add_left_vertex(self) -> int:
        # Genuinely in-place word-append: array('Q') rows grow with
        # ``row.append(0)`` when the new id crosses a word boundary.
        self._left_rows.append(array("Q", [0] * words_for(self._n_right)))
        if words_for(self._n_left + 1) > words_for(self._n_left):
            for row in self._right_rows:
                row.append(0)
        return super().add_left_vertex()

    def add_right_vertex(self) -> int:
        self._right_rows.append(array("Q", [0] * words_for(self._n_left)))
        if words_for(self._n_right + 1) > words_for(self._n_right):
            for row in self._left_rows:
                row.append(0)
        return super().add_right_vertex()

    def rows(self, side) -> List[array]:
        """The packed rows of ``side``: a list with one ``array('Q')`` per vertex.

        The returned list is the live storage — treat it as read-only.
        """
        return self._left_rows if _side_key(side) == "left" else self._right_rows

    def row_bits(self, side) -> int:
        """Number of *meaningful* bits per row of ``side``'s matrix."""
        return self._n_right if _side_key(side) == "left" else self._n_left

    def popcount_rows(self, side, mask=None) -> List[int]:
        """``|Γ(v) ∩ S|`` for every vertex ``v`` of ``side``, as a list of ints.

        Bit-identical to the numpy implementation (``mask`` may be a
        Python-int bitmask, a word sequence, or ``None`` for the full side).
        """
        rows = self.rows(side)
        if mask is None:
            return [sum(word.bit_count() for word in row) for row in rows]
        if isinstance(mask, int):
            mask = mask_words(mask, self.row_bits(side))
        return [
            sum((word & selected).bit_count() for word, selected in zip(row, mask))
            for row in rows
        ]

    def common_neighbors_matrix(self, side, anchors=None, others=None) -> List[List[int]]:
        """Pairwise common-neighbour counts of ``side`` as a list of lists."""
        rows = self.rows(side)
        anchor_rows = _select_rows(rows, anchors)
        other_rows = _select_rows(rows, others)
        return [
            [
                sum((a & b).bit_count() for a, b in zip(anchor_row, other_row))
                for other_row in other_rows
            ]
            for anchor_row in anchor_rows
        ]

    def to_packed(self) -> "ArrayPackedBipartiteGraph":
        """Already packed: return ``self`` (no copy)."""
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ArrayPackedBipartiteGraph(n_left={self._n_left}, "
            f"n_right={self._n_right}, num_edges={self._num_edges})"
        )


class ArrayPackedGraph(BitsetGraph):
    """numpy-free twin of :class:`PackedGraph` over ``array('Q')`` rows."""

    __slots__ = ("_rows",)

    #: Capability flag: the batch row surface is available.
    supports_batch = True

    #: The surface is plain Python — whole-side sweeps would be word loops.
    batch_vectorized = False

    def __init__(self, n: int, edges: Iterable[Tuple[int, int]] = ()) -> None:
        self._rows = [array("Q", [0] * words_for(n)) for _ in range(max(n, 0))]
        super().__init__(n, edges)

    def add_edge(self, u: int, v: int) -> bool:
        if not super().add_edge(u, v):
            return False
        self._rows[u][v >> 6] |= 1 << (v & 63)
        self._rows[v][u >> 6] |= 1 << (u & 63)
        return True

    def rows(self) -> List[array]:
        """The packed adjacency rows (one ``array('Q')`` per vertex)."""
        return self._rows

    def popcount_rows(self, mask=None) -> List[int]:
        """``|Γ(u) ∩ S|`` for every vertex, as a list of ints."""
        if mask is None:
            return [sum(word.bit_count() for word in row) for row in self._rows]
        if isinstance(mask, int):
            mask = mask_words(mask, self._n)
        return [
            sum((word & selected).bit_count() for word, selected in zip(row, mask))
            for row in self._rows
        ]

    def to_packed(self) -> "ArrayPackedGraph":
        """Already packed: return ``self`` (no copy)."""
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ArrayPackedGraph(n={self._n}, num_edges={self._num_edges})"


# ---------------------------------------------------------------------- #
# Backend selection
# ---------------------------------------------------------------------- #
def packed_bipartite_class():
    """The bipartite class ``to_packed()`` should build in this environment.

    The vectorized :class:`PackedBipartiteGraph` when a capable numpy is
    importable, the :class:`ArrayPackedBipartiteGraph` fallback otherwise.
    """
    return PackedBipartiteGraph if packed_available() else ArrayPackedBipartiteGraph


def packed_graph_class():
    """General-graph sibling of :func:`packed_bipartite_class`."""
    return PackedGraph if packed_available() else ArrayPackedGraph
