"""Packed numpy adjacency backend: contiguous ``uint64`` bit-matrices.

:class:`PackedBipartiteGraph` is the third adjacency substrate behind the
:mod:`repro.graph.protocol` surface (after plain sets and Python-int
bitmasks).  Adjacency is stored as one *packed row* per vertex inside a
contiguous numpy ``uint64`` matrix: bit ``u`` of row ``v`` of the left
matrix (word ``u // 64``, bit ``u % 64``) is set iff ``(v, u)`` is an edge,
and symmetrically for the right matrix.

The class *is* a :class:`~repro.graph.bitset.BitsetBipartiteGraph`, so every
existing mask-based fast path (the traversal engines, iMB, the k-plex
enumerator, δ-QB checks) runs on it unchanged and produces identical
solution sets.  What the packed rows add is the *batch* capability
(:func:`repro.graph.protocol.supports_batch`): whole-side vectorized
predicates in the style of the BBK implementations (Baudin et al., 2024)
and the parallel butterfly counters of Wang et al. (VLDB 2019) —

* ``rows(side)`` exposes the full bit-matrix of one side,
* ``popcount_rows(side, mask)`` computes ``|Γ(v) ∩ S|`` for *every* vertex
  of a side in one ``np.bitwise_and`` + ``np.bitwise_count`` sweep,
* ``common_neighbors_matrix(side)`` yields all pairwise common-neighbour
  counts of a side as a single broadcasted matrix expression.

Butterfly counting and (α, β)-core peeling detect the capability and switch
to these whole-row operations instead of per-vertex Python-int loops; see
``graph/butterfly.py`` and ``graph/cores.py``.

numpy is an *optional* dependency: importing this module never fails, but
constructing a packed graph without a capable numpy (>= 2.0, for
``np.bitwise_count``) raises a clear :class:`RuntimeError`.  The ``set``
and ``bitset`` backends are unaffected either way.
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import List, Optional, Tuple

from .bipartite import BipartiteGraph, Side
from .bitset import BitsetBipartiteGraph
from .general import BitsetGraph

try:  # pragma: no cover - exercised via packed_available() in both states
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

#: Bits per packed word.
WORD_BITS = 64

_NUMPY_ERROR = (
    "the 'packed' adjacency backend requires numpy >= 2.0 (np.bitwise_count); "
    "install numpy or use the 'bitset' / 'set' backends instead"
)


class PackedBackendUnavailable(RuntimeError):
    """Raised when the packed backend is requested without a capable numpy.

    A :class:`RuntimeError` subclass so generic error handling keeps
    working, but distinguishable from fail-loud internal errors (callers
    like the CLI catch exactly this to print a configuration hint instead
    of swallowing real bugs).
    """


def packed_available() -> bool:
    """Whether the packed backend can be used (numpy with ``bitwise_count``)."""
    return _np is not None and hasattr(_np, "bitwise_count")


def _require_numpy():
    if not packed_available():
        raise PackedBackendUnavailable(_NUMPY_ERROR)
    return _np


def words_for(n_bits: int) -> int:
    """Number of 64-bit words needed to hold ``n_bits`` bits."""
    return (max(n_bits, 0) + WORD_BITS - 1) // WORD_BITS


def pack_mask(mask: int, n_bits: int):
    """Pack an arbitrary-precision Python-int bitmask into a ``uint64`` row."""
    np = _require_numpy()
    n_words = words_for(n_bits)
    word_mask = (1 << WORD_BITS) - 1
    return np.array(
        [(mask >> (WORD_BITS * w)) & word_mask for w in range(n_words)], dtype=np.uint64
    )


def pack_indices(indices, n_bits: int):
    """Pack an iterable (or bool/index array) of bit positions into a row."""
    np = _require_numpy()
    row = np.zeros(words_for(n_bits), dtype=np.uint64)
    idx = np.asarray(list(indices) if not hasattr(indices, "dtype") else indices)
    if idx.dtype == bool:
        idx = np.nonzero(idx)[0]
    if idx.size:
        idx = idx.astype(np.uint64)
        np.bitwise_or.at(
            row, idx >> np.uint64(6), np.left_shift(np.uint64(1), idx & np.uint64(63))
        )
    return row


def unpack_row(row) -> int:
    """Inverse of :func:`pack_mask`: a packed row back to a Python-int mask."""
    mask = 0
    for w, word in enumerate(row.tolist()):
        mask |= word << (WORD_BITS * w)
    return mask


def _side_key(side) -> str:
    if isinstance(side, Side):
        return "left" if side is Side.LEFT else "right"
    if side in ("left", "right"):
        return side
    raise ValueError(f"side must be 'left', 'right' or a Side enum, got {side!r}")


class PackedBipartiteGraph(BitsetBipartiteGraph):
    """A bitset bipartite graph that also maintains packed ``uint64`` rows.

    Keeps the Python-int masks of the parent class (so every masked fast
    path applies) *and* two contiguous numpy matrices — ``(n_left,
    words(n_right))`` and ``(n_right, words(n_left))`` — kept in lock-step
    by ``add_edge`` / ``remove_edge``.

    Examples
    --------
    >>> g = PackedBipartiteGraph(2, 3, edges=[(0, 0), (0, 2), (1, 1)])
    >>> int(g.rows("left")[0, 0])
    5
    >>> g.popcount_rows("left").tolist()
    [2, 1]
    """

    __slots__ = ("_left_rows", "_right_rows")

    #: Capability flag: whole-row vectorized operations are available.
    supports_batch = True

    def __init__(
        self,
        n_left: int,
        n_right: int,
        edges: Iterable[Tuple[int, int]] = (),
    ) -> None:
        np = _require_numpy()
        # The rows must exist before the base constructor replays ``edges``
        # through our ``add_edge`` override.
        self._left_rows = np.zeros((max(n_left, 0), words_for(n_right)), dtype=np.uint64)
        self._right_rows = np.zeros((max(n_right, 0), words_for(n_left)), dtype=np.uint64)
        super().__init__(n_left, n_right, edges)

    # ------------------------------------------------------------------ #
    # Mutation (sets, masks and packed rows stay in lock-step)
    # ------------------------------------------------------------------ #
    def add_edge(self, left_vertex: int, right_vertex: int) -> bool:
        if not super().add_edge(left_vertex, right_vertex):
            return False
        self._left_rows[left_vertex, right_vertex >> 6] |= _np.uint64(
            1 << (right_vertex & 63)
        )
        self._right_rows[right_vertex, left_vertex >> 6] |= _np.uint64(
            1 << (left_vertex & 63)
        )
        return True

    def remove_edge(self, left_vertex: int, right_vertex: int) -> bool:
        if not super().remove_edge(left_vertex, right_vertex):
            return False
        self._left_rows[left_vertex, right_vertex >> 6] &= _np.uint64(
            ~(1 << (right_vertex & 63)) & ((1 << WORD_BITS) - 1)
        )
        self._right_rows[right_vertex, left_vertex >> 6] &= _np.uint64(
            ~(1 << (left_vertex & 63)) & ((1 << WORD_BITS) - 1)
        )
        return True

    # ------------------------------------------------------------------ #
    # Batch capability
    # ------------------------------------------------------------------ #
    def rows(self, side):
        """The packed bit-matrix of ``side`` (one ``uint64`` row per vertex).

        The returned array is the live storage — treat it as read-only.
        """
        return self._left_rows if _side_key(side) == "left" else self._right_rows

    def row_bits(self, side) -> int:
        """Number of *meaningful* bits per row of ``side``'s matrix."""
        return self._n_right if _side_key(side) == "left" else self._n_left

    def popcount_rows(self, side, mask=None):
        """``|Γ(v) ∩ S|`` for every vertex ``v`` of ``side``, as an int64 vector.

        ``mask`` selects the subset ``S`` of the *other* side: a Python-int
        bitmask, a packed ``uint64`` row, or ``None`` for the full side.
        """
        rows = self.rows(side)
        if mask is not None:
            if isinstance(mask, int):
                mask = pack_mask(mask, self.row_bits(side))
            rows = rows & mask
        return _np.bitwise_count(rows).sum(axis=1, dtype=_np.int64)

    def common_neighbors_matrix(self, side, anchors=None, others=None):
        """Pairwise common-neighbour counts of ``side`` as one broadcast.

        Entry ``(i, j)`` is ``|Γ(anchors[i]) ∩ Γ(others[j])|``; with the
        defaults (both ``None`` = all vertices) that is the full (n, n)
        matrix, whose diagonal holds the degrees.  ``anchors`` / ``others``
        accept anything that indexes rows of the bit-matrix (a ``slice``,
        an index array, a boolean mask) — the butterfly counter passes row
        blocks here to bound the ``len(anchors) · len(others) · words``
        temporary on large sides.
        """
        rows = self.rows(side)
        anchor_rows = rows if anchors is None else rows[anchors]
        other_rows = rows if others is None else rows[others]
        return _np.bitwise_count(anchor_rows[:, None, :] & other_rows[None, :, :]).sum(
            axis=2, dtype=_np.int64
        )

    # ------------------------------------------------------------------ #
    # Conversion
    # ------------------------------------------------------------------ #
    def to_packed(self) -> "PackedBipartiteGraph":
        """Already packed: return ``self`` (no copy)."""
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PackedBipartiteGraph(n_left={self._n_left}, n_right={self._n_right}, "
            f"num_edges={self._num_edges})"
        )


class PackedGraph(BitsetGraph):
    """General-graph sibling of :class:`PackedBipartiteGraph`.

    Used by the inflation pipeline (``inflate(..., backend="packed")``); the
    k-plex enumerator consumes it through the inherited mask capability,
    while batch consumers can read the single ``(n, words(n))`` matrix.
    """

    __slots__ = ("_rows",)

    #: Capability flag: whole-row vectorized operations are available.
    supports_batch = True

    def __init__(self, n: int, edges: Iterable[Tuple[int, int]] = ()) -> None:
        np = _require_numpy()
        self._rows = np.zeros((max(n, 0), words_for(n)), dtype=np.uint64)
        super().__init__(n, edges)

    def add_edge(self, u: int, v: int) -> bool:
        if not super().add_edge(u, v):
            return False
        self._rows[u, v >> 6] |= _np.uint64(1 << (v & 63))
        self._rows[v, u >> 6] |= _np.uint64(1 << (u & 63))
        return True

    def rows(self):
        """The packed adjacency matrix (one ``uint64`` row per vertex)."""
        return self._rows

    def popcount_rows(self, mask=None):
        """``|Γ(u) ∩ S|`` for every vertex, as an int64 vector."""
        rows = self._rows
        if mask is not None:
            if isinstance(mask, int):
                mask = pack_mask(mask, self._n)
            rows = rows & mask
        return _np.bitwise_count(rows).sum(axis=1, dtype=_np.int64)

    def to_packed(self) -> "PackedGraph":
        """Already packed: return ``self`` (no copy)."""
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PackedGraph(n={self._n}, num_edges={self._num_edges})"
