"""Synthetic bipartite graph generators.

The paper evaluates on two kinds of data:

* real KONECT datasets (Table 1), which are not redistributable here and far
  exceed what a pure-Python enumerator can traverse — the dataset registry in
  :mod:`repro.analysis.datasets` builds scaled stand-ins with these
  generators;
* synthetic Erdős–Rényi (ER) bipartite graphs for the scalability study
  (Figure 9), generated exactly as described in Section 6: create the
  vertices, then create a given number of random edges, where *edge density*
  is defined as ``|E| / (|L| + |R|)``.

In addition we provide a planted-biplex generator (useful for tests that
need graphs with known dense structure) and the fraud/camouflage review
graph generator used by the Figure 13 case study.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .bipartite import BipartiteGraph


def erdos_renyi_bipartite(
    n_left: int,
    n_right: int,
    num_edges: Optional[int] = None,
    edge_density: Optional[float] = None,
    seed: Optional[int] = None,
) -> BipartiteGraph:
    """Generate a random bipartite graph with a fixed number of edges.

    Exactly one of ``num_edges`` and ``edge_density`` must be given.  Edge
    density follows the paper's definition ``|E| / (|L| + |R|)``.

    Edges are sampled uniformly at random without replacement from the
    ``n_left * n_right`` possible pairs.  Requests that cannot be satisfied
    — negative counts or densities, or more edges than the ``n_left *
    n_right`` pairs can hold — raise :class:`ValueError` instead of looping
    or silently returning a smaller graph.  Given the same arguments and
    ``seed``, the generated edge set is identical on every platform
    (``random.Random`` is a portable, versioned generator).
    """
    if (num_edges is None) == (edge_density is None):
        raise ValueError("specify exactly one of num_edges or edge_density")
    if edge_density is not None:
        if edge_density < 0:
            raise ValueError(f"edge_density must be non-negative, got {edge_density}")
        num_edges = int(round(edge_density * (n_left + n_right)))
    assert num_edges is not None
    if num_edges < 0:
        raise ValueError(f"num_edges must be non-negative, got {num_edges}")
    max_edges = n_left * n_right
    if num_edges > max_edges:
        raise ValueError(f"cannot place {num_edges} edges in a {n_left}x{n_right} bipartite graph")
    rng = random.Random(seed)
    graph = BipartiteGraph(n_left, n_right)
    if num_edges > max_edges // 2:
        # Dense regime: sample the complement instead to avoid long rejection loops.
        all_pairs = [(v, u) for v in range(n_left) for u in range(n_right)]
        rng.shuffle(all_pairs)
        for v, u in all_pairs[:num_edges]:
            graph.add_edge(v, u)
        graph.reset_epoch()
        return graph
    placed = 0
    while placed < num_edges:
        v = rng.randrange(n_left)
        u = rng.randrange(n_right)
        if graph.add_edge(v, u):
            placed += 1
    graph.reset_epoch()
    return graph


def power_law_bipartite(
    n_left: int,
    n_right: int,
    num_edges: int,
    exponent: float = 2.0,
    seed: Optional[int] = None,
) -> BipartiteGraph:
    """Generate a bipartite graph with heavy-tailed degree distributions.

    Real bipartite networks (authorship, affiliation, review graphs) have
    skewed degrees; the dataset stand-ins use this generator so that the
    enumeration algorithms see realistic hub structure.  Endpoints of each
    edge are drawn from a discrete power-law weight vector on each side.
    Impossible requests (negative counts, more edges than ``n_left *
    n_right``) raise :class:`ValueError` rather than silently producing a
    smaller graph.
    """
    if num_edges < 0:
        raise ValueError(f"num_edges must be non-negative, got {num_edges}")
    max_edges = n_left * n_right
    if num_edges > max_edges:
        raise ValueError(f"cannot place {num_edges} edges in a {n_left}x{n_right} bipartite graph")
    rng = random.Random(seed)
    left_weights = [1.0 / (i + 1) ** exponent for i in range(n_left)]
    right_weights = [1.0 / (i + 1) ** exponent for i in range(n_right)]
    graph = BipartiteGraph(n_left, n_right)
    target = num_edges
    attempts = 0
    max_attempts = 50 * target + 1000
    while graph.num_edges < target and attempts < max_attempts:
        attempts += 1
        v = rng.choices(range(n_left), weights=left_weights, k=1)[0]
        u = rng.choices(range(n_right), weights=right_weights, k=1)[0]
        graph.add_edge(v, u)
    # Top up with uniform edges if the skewed sampling saturated hubs.
    while graph.num_edges < target:
        v = rng.randrange(n_left)
        u = rng.randrange(n_right)
        graph.add_edge(v, u)
    graph.reset_epoch()
    return graph


def planted_biplex_graph(
    n_left: int,
    n_right: int,
    block_left: int,
    block_right: int,
    k: int,
    background_edges: int = 0,
    num_blocks: int = 1,
    seed: Optional[int] = None,
) -> BipartiteGraph:
    """Generate a sparse background graph with planted near-complete blocks.

    Each planted block spans ``block_left`` left vertices and ``block_right``
    right vertices and is complete except that every block vertex drops at
    most ``k`` of its cross edges, so the block is guaranteed to be a
    k-biplex (usually close to a biclique).  Planted blocks are disjoint.

    Returns the graph only; use :func:`planted_biplex_graph_with_blocks` to
    also retrieve the planted vertex sets.
    """
    graph, _ = planted_biplex_graph_with_blocks(
        n_left,
        n_right,
        block_left,
        block_right,
        k,
        background_edges=background_edges,
        num_blocks=num_blocks,
        seed=seed,
    )
    return graph


def planted_biplex_graph_with_blocks(
    n_left: int,
    n_right: int,
    block_left: int,
    block_right: int,
    k: int,
    background_edges: int = 0,
    num_blocks: int = 1,
    seed: Optional[int] = None,
) -> Tuple[BipartiteGraph, List[Tuple[Set[int], Set[int]]]]:
    """Like :func:`planted_biplex_graph` but also returns the planted blocks.

    ``background_edges`` must be non-negative and at most ``n_left *
    n_right`` (the absolute pair capacity); within that, the filled count
    is additionally capped by the pairs the randomly-built blocks leave
    free, which the caller cannot know in advance.
    """
    if num_blocks * block_left > n_left or num_blocks * block_right > n_right:
        raise ValueError("planted blocks do not fit in the requested graph")
    if background_edges < 0:
        raise ValueError(f"background_edges must be non-negative, got {background_edges}")
    if background_edges > n_left * n_right:
        raise ValueError(
            f"cannot place {background_edges} background edges in a "
            f"{n_left}x{n_right} bipartite graph"
        )
    rng = random.Random(seed)
    graph = BipartiteGraph(n_left, n_right)
    blocks: List[Tuple[Set[int], Set[int]]] = []
    for b in range(num_blocks):
        left_block = set(range(b * block_left, (b + 1) * block_left))
        right_block = set(range(b * block_right, (b + 1) * block_right))
        blocks.append((left_block, right_block))
        for v in left_block:
            # Drop up to k right vertices from v's block neighbourhood.
            drop_count = rng.randint(0, min(k, block_right - 1))
            dropped = set(rng.sample(sorted(right_block), drop_count)) if drop_count else set()
            for u in right_block:
                if u not in dropped:
                    graph.add_edge(v, u)
    placed = 0
    max_background = n_left * n_right - graph.num_edges
    target = min(background_edges, max_background)
    while placed < target:
        v = rng.randrange(n_left)
        u = rng.randrange(n_right)
        if graph.add_edge(v, u):
            placed += 1
    graph.reset_epoch()
    return graph, blocks


@dataclass(frozen=True)
class FraudInjection:
    """Ground truth of a camouflage-attack injection.

    Attributes
    ----------
    fake_users:
        Left-side ids of the injected fake users.
    fake_products:
        Right-side ids of the injected fake products.
    """

    fake_users: Set[int]
    fake_products: Set[int]


def review_graph_with_camouflage(
    n_real_users: int,
    n_real_products: int,
    n_real_reviews: int,
    n_fake_users: int,
    n_fake_products: int,
    n_fake_reviews: int,
    n_camouflage_reviews: int,
    seed: Optional[int] = None,
) -> Tuple[BipartiteGraph, FraudInjection]:
    """Build the Figure 13 case-study graph: real reviews + a fraud block.

    The construction mirrors the paper's *random camouflage attack*: a fraud
    block of ``n_fake_users`` users and ``n_fake_products`` products is
    injected into a real review graph; ``n_fake_reviews`` edges are placed
    uniformly between fake users and fake products, and
    ``n_camouflage_reviews`` edges between fake users and *real* products so
    that every fake user has (approximately) the same number of fake and
    camouflage reviews.

    The paper uses the Amazon software-review data (375 k users, 21 k
    products, 459 k reviews) with a 2 k × 2 k fraud block and 200 k + 200 k
    injected comments.  The caller picks scaled-down sizes; the *ratio*
    between fake and camouflage reviews per fake user (1:1) and the uniform
    randomness of the attack are what matter for the precision/recall
    comparison, and both are preserved here.

    Returns
    -------
    (graph, injection):
        ``graph`` has ``n_real_users + n_fake_users`` left vertices (fake
        users occupy the trailing id range) and similarly for products;
        ``injection`` records the ground-truth fake vertex sets.

    Raises
    ------
    ValueError
        If any size or review count is negative, or a review count exceeds
        the pair capacity of its block (real×real, fake×fake or
        fake-users×real-products).  Within capacity the skewed/balanced
        placement is best-effort: heavily saturated blocks may end up with
        slightly fewer edges than requested.
    """
    for name, value in (
        ("n_real_users", n_real_users),
        ("n_real_products", n_real_products),
        ("n_real_reviews", n_real_reviews),
        ("n_fake_users", n_fake_users),
        ("n_fake_products", n_fake_products),
        ("n_fake_reviews", n_fake_reviews),
        ("n_camouflage_reviews", n_camouflage_reviews),
    ):
        if value < 0:
            raise ValueError(f"{name} must be non-negative, got {value}")
    for name, count, capacity in (
        ("n_real_reviews", n_real_reviews, n_real_users * n_real_products),
        ("n_fake_reviews", n_fake_reviews, n_fake_users * n_fake_products),
        ("n_camouflage_reviews", n_camouflage_reviews, n_fake_users * n_real_products),
    ):
        if count > capacity:
            raise ValueError(
                f"cannot place {count} {name} edges in a block with {capacity} pairs"
            )
    rng = random.Random(seed)
    n_users = n_real_users + n_fake_users
    n_products = n_real_products + n_fake_products
    graph = BipartiteGraph(n_users, n_products)

    # Real reviews: skewed towards popular products, as in real review data.
    product_weights = [1.0 / (i + 1) for i in range(n_real_products)]
    placed = 0
    max_real = n_real_users * n_real_products
    target_real = min(n_real_reviews, max_real)
    while placed < target_real:
        user = rng.randrange(n_real_users)
        product = rng.choices(range(n_real_products), weights=product_weights, k=1)[0]
        if graph.add_edge(user, product):
            placed += 1

    fake_users = set(range(n_real_users, n_users))
    fake_products = set(range(n_real_products, n_products))

    # Fake reviews: uniform between fake users and fake products, spread so
    # that every fake user receives roughly the same number.
    _place_uniform_edges(
        graph,
        rng,
        sorted(fake_users),
        sorted(fake_products),
        n_fake_reviews,
    )
    # Camouflage reviews: fake users -> real products.
    _place_uniform_edges(
        graph,
        rng,
        sorted(fake_users),
        list(range(n_real_products)),
        n_camouflage_reviews,
    )
    graph.reset_epoch()
    return graph, FraudInjection(fake_users=fake_users, fake_products=fake_products)


def _place_uniform_edges(
    graph: BipartiteGraph,
    rng: random.Random,
    left_pool: Sequence[int],
    right_pool: Sequence[int],
    count: int,
) -> None:
    """Place ``count`` random edges between the two pools, balanced per left vertex."""
    if not left_pool or not right_pool:
        return
    per_left = count // len(left_pool)
    remainder = count % len(left_pool)
    for index, left_vertex in enumerate(left_pool):
        quota = per_left + (1 if index < remainder else 0)
        quota = min(quota, len(right_pool))
        placed = 0
        attempts = 0
        while placed < quota and attempts < 20 * quota + 50:
            attempts += 1
            right_vertex = right_pool[rng.randrange(len(right_pool))]
            if graph.add_edge(left_vertex, right_vertex):
                placed += 1


def degree_histogram(graph: BipartiteGraph) -> Tuple[Dict[int, int], Dict[int, int]]:
    """Return ``(left histogram, right histogram)`` mapping degree → count."""
    left: Dict[int, int] = {}
    right: Dict[int, int] = {}
    for v in graph.left_vertices():
        d = graph.degree_of_left(v)
        left[d] = left.get(d, 0) + 1
    for u in graph.right_vertices():
        d = graph.degree_of_right(u)
        right[d] = right.get(d, 0) + 1
    return left, right
