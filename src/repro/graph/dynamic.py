"""Incremental maintenance of graph indices under edge updates.

The static analyses in :mod:`repro.graph.butterfly` / :mod:`repro.graph.cores`
recompute from scratch; this module maintains the same answers *across*
single-edge inserts and deletes, which is what the streaming fraud scenario
and the service update path need (camouflage edges arriving over time must
not force a cold rebuild per edge).

Three indices, one facade:

* :class:`ButterflyIndex` — per-edge butterfly supports and the global
  butterfly count.  The delta of an insert/delete of ``(v, u)`` is exactly
  the set of wedges through the touched endpoints (the pairs ``(v', u')``
  with ``v' ∈ Γ(u) ∩ Γ(u')``, ``u' ∈ Γ(v)``), i.e. the butterflies the edge
  participates in — the same per-wedge accounting the bitruss peel in
  :func:`repro.graph.butterfly.k_bitruss` uses, applied in reverse for
  inserts (cf. the wedge-based parallel counters of Wang et al., VLDB 2019).
* :class:`AlphaBetaCoreIndex` — (α, β)-core membership repaired locally.
  Deletes can only shrink the core and only from the touched endpoints
  (cascade peel inside the old core); inserts can only grow it, and every
  new member is reachable from a touched endpoint through old non-core
  vertices (see ``edge_inserted`` for the maximality argument), so the
  repair peels ``core ∪ candidates`` while computing degrees only for the
  candidate set.
* k-bitruss — not materialised per ``k``; the maintained butterfly supports
  feed :func:`repro.graph.butterfly.k_bitruss` via its ``supports=``
  parameter (:meth:`DynamicGraphIndex.bitruss`), skipping the dominant
  from-scratch support pass while reusing the existing incremental peel.

From-scratch recomputation stays the differential oracle: the mutation test
suite asserts every maintained quantity equals its recomputed twin after
random update sequences on all three backends.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, Optional, Set, Tuple

from .bipartite import BipartiteGraph
from .butterfly import _butterfly_mates, edge_butterfly_counts, k_bitruss
from .cores import alpha_beta_core


class ButterflyIndex:
    """Per-edge butterfly supports maintained under edge updates.

    Wraps a graph (without owning it exclusively) and keeps
    ``supports[(v, u)]`` equal to the number of butterflies containing the
    edge, plus the global butterfly count.  :meth:`insert` / :meth:`delete`
    mutate the underlying graph themselves so the wedge enumeration runs
    against the correct adjacency state (the shared ``_butterfly_mates``
    helper assumes the touched edge is absent).
    """

    def __init__(self, graph: BipartiteGraph) -> None:
        self._graph = graph
        self._supports: Dict[Tuple[int, int], int] = edge_butterfly_counts(graph)
        # Each butterfly contributes 1 to each of its four edges.
        self._total = sum(self._supports.values()) // 4

    @property
    def graph(self) -> BipartiteGraph:
        return self._graph

    @property
    def supports(self) -> Dict[Tuple[int, int], int]:
        """The live support mapping — treat as read-only."""
        return self._supports

    @property
    def total(self) -> int:
        """The number of butterflies in the current graph."""
        return self._total

    def support(self, left_vertex: int, right_vertex: int) -> int:
        return self._supports[(left_vertex, right_vertex)]

    def insert(self, left_vertex: int, right_vertex: int) -> bool:
        """Insert ``(v, u)`` and fold its butterflies into the index.

        Every butterfly gained by the insert contains the new edge, so the
        wedge walk below (run while the edge is still absent, matching the
        ``_butterfly_mates`` contract) enumerates exactly the delta; each
        mate pair raises the support of the three other edges of its
        butterfly by one.
        """
        graph = self._graph
        if graph.has_edge(left_vertex, right_vertex):
            return False
        supports = self._supports
        count = 0
        for v_prime, u_prime in _butterfly_mates(graph, left_vertex, right_vertex):
            for edge in (
                (left_vertex, u_prime),
                (v_prime, right_vertex),
                (v_prime, u_prime),
            ):
                supports[edge] += 1
            count += 1
        graph.add_edge(left_vertex, right_vertex)
        supports[(left_vertex, right_vertex)] = count
        self._total += count
        return True

    def delete(self, left_vertex: int, right_vertex: int) -> bool:
        """Remove ``(v, u)`` and fold its butterflies out of the index."""
        graph = self._graph
        if not graph.has_edge(left_vertex, right_vertex):
            return False
        graph.remove_edge(left_vertex, right_vertex)
        supports = self._supports
        count = supports.pop((left_vertex, right_vertex))
        for v_prime, u_prime in _butterfly_mates(graph, left_vertex, right_vertex):
            for edge in (
                (left_vertex, u_prime),
                (v_prime, right_vertex),
                (v_prime, u_prime),
            ):
                supports[edge] -= 1
        self._total -= count
        return True


class AlphaBetaCoreIndex:
    """(α, β)-core membership repaired locally under edge updates.

    ``edge_inserted`` / ``edge_deleted`` must be called *after* the graph
    mutation (the :class:`DynamicGraphIndex` facade sequences this).
    """

    def __init__(self, graph: BipartiteGraph, alpha: int, beta: int) -> None:
        self._graph = graph
        self._alpha = alpha
        self._beta = beta
        left, right = alpha_beta_core(graph, alpha, beta)
        self._left: Set[int] = set(left)
        self._right: Set[int] = set(right)
        # Degree *within the core*, tracked only for members (the peeling
        # invariant: every tracked degree meets its side's bound).
        self._left_deg: Dict[int, int] = {
            v: len(graph.gamma_left(v, self._right)) for v in self._left
        }
        self._right_deg: Dict[int, int] = {
            u: len(graph.gamma_right(u, self._left)) for u in self._right
        }

    @property
    def members(self) -> Tuple[Set[int], Set[int]]:
        """The core as ``(left_set, right_set)`` — live sets, treat as read-only."""
        return self._left, self._right

    def edge_deleted(self, left_vertex: int, right_vertex: int) -> None:
        """Repair after ``(v, u)`` was removed: the core can only shrink.

        If either endpoint was outside the core the induced subgraph on the
        core is unchanged — it still qualifies, and by peeling monotonicity
        the new core is contained in the old one, so nothing moves.  With
        both endpoints inside, a standard cascade peel from the endpoints
        restores the maximum qualifying subset of the old core, which *is*
        the new core (again by monotonicity).
        """
        if left_vertex not in self._left or right_vertex not in self._right:
            return
        self._left_deg[left_vertex] -= 1
        self._right_deg[right_vertex] -= 1
        queue = deque()
        if self._left_deg[left_vertex] < self._alpha:
            queue.append(("L", left_vertex))
        if self._right_deg[right_vertex] < self._beta:
            queue.append(("R", right_vertex))
        graph = self._graph
        while queue:
            side, vertex = queue.popleft()
            if side == "L":
                if vertex not in self._left:
                    continue
                self._left.discard(vertex)
                del self._left_deg[vertex]
                for u in graph.neighbors_of_left(vertex):
                    if u in self._right:
                        self._right_deg[u] -= 1
                        if self._right_deg[u] < self._beta:
                            queue.append(("R", u))
            else:
                if vertex not in self._right:
                    continue
                self._right.discard(vertex)
                del self._right_deg[vertex]
                for v in graph.neighbors_of_right(vertex):
                    if v in self._left:
                        self._left_deg[v] -= 1
                        if self._left_deg[v] < self._alpha:
                            queue.append(("L", v))

    def edge_inserted(self, left_vertex: int, right_vertex: int) -> None:
        """Repair after ``(v, u)`` was added: the core can only grow.

        Both endpoints in the core: their in-core degrees rise and nothing
        else can change — any set ``C ∪ S`` qualifying in the new graph with
        ``S`` disjoint from the old core ``C`` would qualify in the old graph
        too (the ``S`` degrees never involve the new edge, and ``C`` degrees
        within ``C ∪ S`` already met the bounds), contradicting ``C``'s
        maximality.

        Otherwise, every new member is reachable from a touched endpoint via
        old non-core vertices: a connected-through-``S`` chunk of new members
        containing neither endpoint would, by the same argument, have
        qualified before the insert.  So the candidate set is the BFS closure
        of the endpoints through non-core vertices whose *total* degree meets
        their side's bound (a necessary membership condition), and peeling
        ``core ∪ candidates`` — computing degrees only for candidates, since
        old members keep ≥ their old in-core degrees and can never peel —
        yields exactly the new core.
        """
        in_left = left_vertex in self._left
        in_right = right_vertex in self._right
        if in_left and in_right:
            self._left_deg[left_vertex] += 1
            self._right_deg[right_vertex] += 1
            return
        graph = self._graph
        cand_left: Set[int] = set()
        cand_right: Set[int] = set()
        queue = deque()
        if not in_left and graph.degree_of_left(left_vertex) >= self._alpha:
            cand_left.add(left_vertex)
            queue.append(("L", left_vertex))
        if not in_right and graph.degree_of_right(right_vertex) >= self._beta:
            cand_right.add(right_vertex)
            queue.append(("R", right_vertex))
        while queue:
            side, vertex = queue.popleft()
            if side == "L":
                for u in graph.neighbors_of_left(vertex):
                    if (
                        u not in self._right
                        and u not in cand_right
                        and graph.degree_of_right(u) >= self._beta
                    ):
                        cand_right.add(u)
                        queue.append(("R", u))
            else:
                for v in graph.neighbors_of_right(vertex):
                    if (
                        v not in self._left
                        and v not in cand_left
                        and graph.degree_of_left(v) >= self._alpha
                    ):
                        cand_left.add(v)
                        queue.append(("L", v))
        if not cand_left and not cand_right:
            return
        # Peel the candidates against core ∪ candidates.
        left_deg = {
            v: sum(
                1
                for u in graph.neighbors_of_left(v)
                if u in self._right or u in cand_right
            )
            for v in cand_left
        }
        right_deg = {
            u: sum(
                1
                for v in graph.neighbors_of_right(u)
                if v in self._left or v in cand_left
            )
            for u in cand_right
        }
        peel = deque()
        for v, degree in left_deg.items():
            if degree < self._alpha:
                peel.append(("L", v))
        for u, degree in right_deg.items():
            if degree < self._beta:
                peel.append(("R", u))
        while peel:
            side, vertex = peel.popleft()
            if side == "L":
                if vertex not in cand_left:
                    continue
                cand_left.discard(vertex)
                for u in graph.neighbors_of_left(vertex):
                    if u in cand_right:
                        right_deg[u] -= 1
                        if right_deg[u] == self._beta - 1:
                            peel.append(("R", u))
            else:
                if vertex not in cand_right:
                    continue
                cand_right.discard(vertex)
                for v in graph.neighbors_of_right(vertex):
                    if v in cand_left:
                        left_deg[v] -= 1
                        if left_deg[v] == self._alpha - 1:
                            peel.append(("L", v))
        # Survivors join; old members adjacent to them gain in-core degree.
        for v in cand_left:
            self._left.add(v)
            self._left_deg[v] = left_deg[v]
        for u in cand_right:
            self._right.add(u)
            self._right_deg[u] = right_deg[u]
        for v in cand_left:
            for u in graph.neighbors_of_left(v):
                if u in self._right and u not in cand_right:
                    self._right_deg[u] += 1
        for u in cand_right:
            for v in graph.neighbors_of_right(u):
                if v in self._left and v not in cand_left:
                    self._left_deg[v] += 1


class DynamicGraphIndex:
    """Facade: one mutable graph plus every maintained index, batch-updated.

    ``apply`` mirrors :meth:`BipartiteGraph.apply_batch` epoch semantics
    (one bump per batch that changed anything) while threading each edge
    through the butterfly and core maintenance in the required order.
    """

    def __init__(
        self, graph: BipartiteGraph, alpha: int = 0, beta: int = 0
    ) -> None:
        self.graph = graph
        self.butterflies = ButterflyIndex(graph)
        self.core = AlphaBetaCoreIndex(graph, alpha, beta)

    @property
    def butterfly_count(self) -> int:
        return self.butterflies.total

    @property
    def core_members(self) -> Tuple[Set[int], Set[int]]:
        return self.core.members

    def bitruss(self, k: int) -> BipartiteGraph:
        """The k-bitruss of the current graph, from maintained supports."""
        return k_bitruss(self.graph, k, supports=self.butterflies.supports)

    def apply(
        self,
        inserts: Iterable[Tuple[int, int]] = (),
        deletes: Iterable[Tuple[int, int]] = (),
    ) -> Tuple[int, int]:
        """Apply a mutation batch through every index; returns ``(added, removed)``."""
        graph = self.graph
        saved = graph.epoch
        added = removed = 0
        for left_vertex, right_vertex in inserts:
            if self.butterflies.insert(left_vertex, right_vertex):
                self.core.edge_inserted(left_vertex, right_vertex)
                added += 1
        for left_vertex, right_vertex in deletes:
            if self.butterflies.delete(left_vertex, right_vertex):
                self.core.edge_deleted(left_vertex, right_vertex)
                removed += 1
        # Collapse the per-edge bumps into apply_batch's one-per-batch
        # contract (same-package access to the counter, like apply_batch).
        graph._epoch = saved + 1 if (added or removed) else saved
        return added, removed


def recomputed_oracle(
    graph: BipartiteGraph, alpha: int = 0, beta: int = 0
) -> Tuple[int, Dict[Tuple[int, int], int], Tuple[Set[int], Set[int]]]:
    """From-scratch (butterfly total, edge supports, core) for differential tests."""
    supports = edge_butterfly_counts(graph)
    total = sum(supports.values()) // 4
    left, right = alpha_beta_core(graph, alpha, beta)
    return total, supports, (set(left), set(right))
