"""Reading and writing bipartite graphs.

Two plain-text formats are supported:

* **edge list** — one ``left right`` pair per line, with an optional header
  line ``% n_left n_right`` giving the side sizes (otherwise inferred as
  ``max id + 1``).  Lines starting with ``#`` or ``%`` (other than the size
  header) are ignored.
* **KONECT-style** — the ``out.<name>`` files distributed by the KONECT
  project (http://konect.cc), which the paper's real datasets come from:
  whitespace-separated ``left right [weight [timestamp]]`` rows with 1-based
  ids and ``%``-prefixed comments.  The second comment line conventionally
  carries ``% num_edges n_left n_right``; it is honoured when present, so
  trailing isolated vertices survive a write → read round trip.

Both readers are tolerant of blank lines, ``#``/``%`` comments, CRLF line
endings and a UTF-8 byte-order mark, and both round-trip exactly against
their writers: side sizes (including isolated vertices), edge sets and
duplicate-edge idempotency (repeated lines add one edge) are preserved.
"""

from __future__ import annotations

import os
from typing import List, Optional, TextIO, Tuple, Union

from .bipartite import BipartiteGraph

PathLike = Union[str, "os.PathLike[str]"]


def write_edge_list(graph: BipartiteGraph, path: PathLike) -> None:
    """Write ``graph`` as an edge list with an explicit size header."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(f"% {graph.n_left} {graph.n_right}\n")
        for left_vertex, right_vertex in sorted(graph.edges()):
            handle.write(f"{left_vertex} {right_vertex}\n")


def read_edge_list(path: PathLike) -> BipartiteGraph:
    """Read a graph written by :func:`write_edge_list` (or any 0-based edge list)."""
    # utf-8-sig: tolerate a BOM (files produced on Windows); identical to
    # plain utf-8 otherwise.
    with open(path, "r", encoding="utf-8-sig") as handle:
        return _parse_edge_list(handle)


def _parse_edge_list(handle: TextIO) -> BipartiteGraph:
    declared_sizes: Optional[Tuple[int, int]] = None
    edges: List[Tuple[int, int]] = []
    max_left = -1
    max_right = -1
    for raw_line in handle:
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        if line.startswith("%"):
            fields = line[1:].split()
            if len(fields) >= 2 and declared_sizes is None:
                try:
                    declared_sizes = (int(fields[0]), int(fields[1]))
                except ValueError:
                    pass
            continue
        fields = line.split()
        if len(fields) < 2:
            raise ValueError(f"malformed edge-list line: {line!r}")
        left_vertex, right_vertex = int(fields[0]), int(fields[1])
        if left_vertex < 0 or right_vertex < 0:
            raise ValueError(f"negative vertex id in line: {line!r}")
        edges.append((left_vertex, right_vertex))
        max_left = max(max_left, left_vertex)
        max_right = max(max_right, right_vertex)
    if declared_sizes is not None:
        n_left, n_right = declared_sizes
        if max_left >= n_left or max_right >= n_right:
            raise ValueError("edge references a vertex outside the declared size header")
    else:
        n_left, n_right = max_left + 1, max_right + 1
    return BipartiteGraph(max(n_left, 0), max(n_right, 0), edges=edges)


def read_konect(path: PathLike) -> BipartiteGraph:
    """Read a KONECT ``out.*`` bipartite file (1-based ids, ``%`` comments).

    KONECT's second header line — ``% num_edges n_left n_right`` — is parsed
    when present, so isolated vertices (ids beyond the largest edge
    endpoint) are preserved; without it the side sizes are inferred from
    the maximum ids, exactly as before.  The declared sizes are advisory:
    an edge referencing a vertex beyond them grows the side (real KONECT
    headers are occasionally sloppy), so reading never silently drops
    edges.
    """
    edges: List[Tuple[int, int]] = []
    max_left = 0
    max_right = 0
    declared_sizes: Optional[Tuple[int, int]] = None
    with open(path, "r", encoding="utf-8-sig") as handle:
        for line_number, raw_line in enumerate(handle):
            line = raw_line.strip()
            if not line or line.startswith("#"):
                continue
            if line.startswith("%"):
                # The KONECT layout puts the size meta line at the top of
                # the file (`% <format>` then `% m n_left n_right`); only
                # the first two physical lines are considered, so a numeric
                # comment further down (dates, statistics) cannot be
                # misread as declared sizes.
                fields = line[1:].split()
                if declared_sizes is None and line_number < 2 and len(fields) >= 3:
                    try:
                        declared_sizes = (int(fields[1]), int(fields[2]))
                    except ValueError:
                        pass
                continue
            fields = line.split()
            if len(fields) < 2:
                raise ValueError(f"malformed KONECT line: {line!r}")
            left_vertex, right_vertex = int(fields[0]), int(fields[1])
            if left_vertex < 1 or right_vertex < 1:
                raise ValueError(f"KONECT ids are 1-based; got line: {line!r}")
            edges.append((left_vertex - 1, right_vertex - 1))
            max_left = max(max_left, left_vertex)
            max_right = max(max_right, right_vertex)
    n_left, n_right = max_left, max_right
    if declared_sizes is not None:
        n_left = max(n_left, declared_sizes[0])
        n_right = max(n_right, declared_sizes[1])
    return BipartiteGraph(n_left, n_right, edges=edges)


def write_konect(graph: BipartiteGraph, path: PathLike, name: str = "graph") -> None:
    """Write ``graph`` in KONECT ``out.*`` format (1-based ids)."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(f"% bip unweighted {name}\n")
        handle.write(f"% {graph.num_edges} {graph.n_left} {graph.n_right}\n")
        for left_vertex, right_vertex in sorted(graph.edges()):
            handle.write(f"{left_vertex + 1} {right_vertex + 1}\n")
