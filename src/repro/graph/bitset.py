"""Bitset-backed bipartite graph substrate.

:class:`BitsetBipartiteGraph` stores, next to the per-vertex adjacency sets
of :class:`~repro.graph.bipartite.BipartiteGraph`, one arbitrary-precision
Python ``int`` bitmask per vertex per side: bit ``u`` of ``adj_left_mask(v)``
is set iff ``(v, u)`` is an edge, and symmetrically for the right side.

The mask representation makes the predicates that dominate the enumeration
algorithms word-parallel:

* ``Γ(v, S)`` becomes ``adj_left_mask(v) & mask_of(S)``,
* ``δ̄(v, S)`` becomes ``(mask_of(S) & ~adj_left_mask(v)).bit_count()``,
* the ``can_add_left/right`` checks walk only the set bits of a small
  "missed" mask instead of scanning a Python set per candidate.

The class keeps the exact public API of ``BipartiteGraph`` (it *is* one), so
every existing algorithm runs unchanged on it; the core modules additionally
detect the mask capability via :func:`repro.graph.protocol.supports_masks`
and switch to the bitwise fast paths.  All backends (including the
numpy-backed :class:`repro.graph.packed.PackedBipartiteGraph`, which
subclasses this one) enumerate identical solution sets — the fast paths are
checked against the set implementation by the backend-equivalence test
suite.
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import List, Tuple

from .bipartite import BipartiteGraph


class BitsetBipartiteGraph(BipartiteGraph):
    """A :class:`BipartiteGraph` that also maintains adjacency bitmasks.

    Examples
    --------
    >>> g = BitsetBipartiteGraph(2, 3, edges=[(0, 0), (0, 2), (1, 1)])
    >>> bin(g.adj_left_mask(0))
    '0b101'
    >>> g.adj_right_mask(1)
    2
    >>> g == BipartiteGraph(2, 3, edges=[(0, 0), (0, 2), (1, 1)])
    True
    """

    __slots__ = ("_left_masks", "_right_masks")

    #: Capability flag: tells the algorithms the bitwise fast paths apply.
    supports_masks = True

    def __init__(
        self,
        n_left: int,
        n_right: int,
        edges: Iterable[Tuple[int, int]] = (),
    ) -> None:
        # The masks must exist before the base constructor replays ``edges``
        # through our ``add_edge`` override.
        self._left_masks: List[int] = [0] * max(n_left, 0)
        self._right_masks: List[int] = [0] * max(n_right, 0)
        super().__init__(n_left, n_right, edges)

    # ------------------------------------------------------------------ #
    # Mask accessors (hot path: no bounds checks beyond list indexing)
    # ------------------------------------------------------------------ #
    def adj_left_mask(self, left_vertex: int) -> int:
        """Bitmask over right ids of the neighbours of ``left_vertex``."""
        return self._left_masks[left_vertex]

    def adj_right_mask(self, right_vertex: int) -> int:
        """Bitmask over left ids of the neighbours of ``right_vertex``."""
        return self._right_masks[right_vertex]

    @property
    def full_left_mask(self) -> int:
        """Mask with one bit per left vertex (the left universe ``L``)."""
        return (1 << self._n_left) - 1

    @property
    def full_right_mask(self) -> int:
        """Mask with one bit per right vertex (the right universe ``R``)."""
        return (1 << self._n_right) - 1

    # ------------------------------------------------------------------ #
    # Mutation (keeps sets and masks in lock-step)
    # ------------------------------------------------------------------ #
    def add_edge(self, left_vertex: int, right_vertex: int) -> bool:
        if not super().add_edge(left_vertex, right_vertex):
            return False
        self._left_masks[left_vertex] |= 1 << right_vertex
        self._right_masks[right_vertex] |= 1 << left_vertex
        return True

    def remove_edge(self, left_vertex: int, right_vertex: int) -> bool:
        if not super().remove_edge(left_vertex, right_vertex):
            return False
        self._left_masks[left_vertex] &= ~(1 << right_vertex)
        self._right_masks[right_vertex] &= ~(1 << left_vertex)
        return True

    def add_left_vertex(self) -> int:
        self._left_masks.append(0)
        return super().add_left_vertex()

    def add_right_vertex(self) -> int:
        self._right_masks.append(0)
        return super().add_right_vertex()

    # ------------------------------------------------------------------ #
    # Conversion
    # ------------------------------------------------------------------ #
    def to_bitset(self) -> "BitsetBipartiteGraph":
        """Already bitset-backed: return ``self`` (no copy)."""
        return self

    def to_setgraph(self) -> BipartiteGraph:
        """A plain set-backed copy (useful for backend benchmarking)."""
        return BipartiteGraph(self._n_left, self._n_right, self.edges())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BitsetBipartiteGraph(n_left={self._n_left}, n_right={self._n_right}, "
            f"num_edges={self._num_edges})"
        )
