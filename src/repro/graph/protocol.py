"""The bipartite graph *substrate* protocol and bitmask helpers.

The enumeration algorithms never depend on a concrete graph class — they
only use the query surface below: side sizes, adjacency sets and the
Γ / δ̄ primitives of Section 2.  Any object implementing
:class:`BipartiteSubstrate` (``BipartiteGraph``, ``BitsetBipartiteGraph``,
``MirrorView``) can be handed to the traversal engines.

A substrate may additionally advertise *adjacency masks*: one Python ``int``
per vertex whose set bits are the neighbour ids on the other side.  Masks
turn the hot predicates — ``Γ(v, S)`` intersections, ``δ̄(v, S)`` counts,
``can_add_left/right`` — into word-parallel bitwise operations
(``&``/``~``/``int.bit_count``), which is where the BBK (Baudin et al.,
2024) and symmetric-BK (Yu & Long, 2022) implementations get their
constant-factor speedups from.  Algorithms test for the capability with
:func:`supports_masks` and fall back to set arithmetic otherwise, so the
two backends always produce identical solution sets.
"""

from __future__ import annotations

import os
from typing import Iterable, Iterator, Protocol, Set, runtime_checkable

#: Names accepted by :func:`as_backend` and ``TraversalConfig.backend``.
BACKENDS = ("set", "bitset")

#: Environment variable overriding :func:`default_backend`.
BACKEND_ENV_VAR = "REPRO_BACKEND"


def default_backend() -> str:
    """The adjacency backend used when none is requested explicitly.

    ``bitset`` is the default everywhere (``TraversalConfig``, the CLI, the
    baselines): the word-parallel fast paths win on every workload we
    benchmark and both backends are proven to enumerate identical solution
    sets.  Set the ``REPRO_BACKEND`` environment variable to ``set`` to fall
    back to plain-set adjacency globally — CI runs the whole test suite once
    per backend through exactly this knob.
    """
    backend = os.environ.get(BACKEND_ENV_VAR, "bitset")
    if backend not in BACKENDS:
        raise ValueError(
            f"{BACKEND_ENV_VAR}={backend!r} is not a valid backend; expected one of {BACKENDS}"
        )
    return backend


@runtime_checkable
class BipartiteSubstrate(Protocol):
    """Query surface the enumeration algorithms require of a graph."""

    @property
    def n_left(self) -> int: ...

    @property
    def n_right(self) -> int: ...

    @property
    def num_edges(self) -> int: ...

    def left_vertices(self) -> Iterable[int]: ...

    def right_vertices(self) -> Iterable[int]: ...

    def has_edge(self, left_vertex: int, right_vertex: int) -> bool: ...

    def neighbors_of_left(self, left_vertex: int) -> Set[int]: ...

    def neighbors_of_right(self, right_vertex: int) -> Set[int]: ...

    def gamma_left(self, left_vertex: int, right_subset: Iterable[int]) -> Set[int]: ...

    def gamma_right(self, right_vertex: int, left_subset: Iterable[int]) -> Set[int]: ...

    def missing_left(self, left_vertex: int, right_subset: Iterable[int]) -> int: ...

    def missing_right(self, right_vertex: int, left_subset: Iterable[int]) -> int: ...


@runtime_checkable
class MaskedBipartiteSubstrate(BipartiteSubstrate, Protocol):
    """A substrate that additionally exposes per-vertex adjacency bitmasks."""

    #: Capability flag checked by :func:`supports_masks`.
    supports_masks: bool

    def adj_left_mask(self, left_vertex: int) -> int:
        """Bitmask over right ids: bit ``u`` is set iff ``(v, u)`` is an edge."""
        ...

    def adj_right_mask(self, right_vertex: int) -> int:
        """Bitmask over left ids: bit ``v`` is set iff ``(v, u)`` is an edge."""
        ...


def supports_masks(graph: object) -> bool:
    """Whether ``graph`` advertises the adjacency-mask capability."""
    return bool(getattr(graph, "supports_masks", False))


def mask_of(vertex_ids: Iterable[int]) -> int:
    """Pack an iterable of vertex ids into a bitmask."""
    mask = 0
    for vertex in vertex_ids:
        mask |= 1 << vertex
    return mask


def iter_bits(mask: int) -> Iterator[int]:
    """Yield the set-bit positions of ``mask`` in ascending order."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def as_backend(graph, backend: str):
    """Return ``graph`` converted to the requested adjacency ``backend``.

    ``"set"`` is a no-op (every substrate answers set queries); ``"bitset"``
    converts via ``graph.to_bitset()`` unless the graph already exposes
    masks.  Raises :class:`ValueError` for unknown backend names.
    """
    if backend not in BACKENDS:
        raise ValueError(f"unknown backend {backend!r}; expected one of {BACKENDS}")
    if backend == "bitset" and not supports_masks(graph):
        return graph.to_bitset()
    return graph
