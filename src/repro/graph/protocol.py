"""The bipartite graph *substrate* protocol and bitmask helpers.

The enumeration algorithms never depend on a concrete graph class — they
only use the query surface below: side sizes, adjacency sets and the
Γ / δ̄ primitives of Section 2.  Any object implementing
:class:`BipartiteSubstrate` (``BipartiteGraph``, ``BitsetBipartiteGraph``,
``MirrorView``) can be handed to the traversal engines.

A substrate may additionally advertise optional capabilities, tested with
duck-typed flags so algorithms degrade gracefully:

* *adjacency masks* (:func:`supports_masks`) — one Python ``int`` per
  vertex whose set bits are the neighbour ids on the other side.  Masks
  turn the hot predicates — ``Γ(v, S)`` intersections, ``δ̄(v, S)`` counts,
  ``can_add_left/right`` — into word-parallel bitwise operations
  (``&``/``~``/``int.bit_count``), which is where the BBK (Baudin et al.,
  2024) and symmetric-BK (Yu & Long, 2022) implementations get their
  constant-factor speedups from.
* *batch rows* (:func:`supports_batch`) — ``uint64`` bit-matrices, one
  packed row per vertex, behind the ``rows`` / ``popcount_rows`` /
  ``common_neighbors_matrix`` surface.  When the rows are numpy-backed
  (:func:`supports_vector_batch`,
  :class:`repro.graph.packed.PackedBipartiteGraph`), whole-side predicates
  (butterfly / bitruss edge supports, core-peeling degree updates, the
  enumeration-side Γ / δ̄ candidate scoring) become single vectorized
  ``np.bitwise_and`` + popcount sweeps, the layout used by BBK-style
  implementations and the parallel butterfly counters of Wang et al.
  (VLDB 2019).  The numpy-free
  :class:`~repro.graph.packed.ArrayPackedBipartiteGraph` fallback keeps the
  identical surface over ``array('Q')`` rows without the vectorization.

The backend matrix:

==========  ====================  =======================  ====================
backend     representation        requires                 batch coverage
==========  ====================  =======================  ====================
``set``     adjacency sets        nothing                  none
``bitset``  + Python-int masks    nothing (the default)    none (mask paths)
``packed``  + ``uint64`` rows     nothing — numpy >= 2.0   full when numpy is
            per vertex            enables vectorization    present (butterfly,
                                                           bitruss, cores, Γ/δ̄
                                                           predicates); the
                                                           ``array('Q')``
                                                           fallback keeps the
                                                           surface and rides
                                                           the mask paths
==========  ====================  =======================  ====================

All backends produce identical solution sets; the equivalence suite and the
cross-backend differential harness (``tests/test_backend_differential.py``)
pin that property.

Orthogonal to the backend axis sits the *preprocessing* axis
(:mod:`repro.prep`, selected via ``prep=`` / ``REPRO_PREP``): the engines
first convert the input to the chosen substrate, then hand it to
``prepare()``, which may peel it down to the threshold-driven
(α,β)-core / k-bitruss fixpoint and compute a degeneracy candidate
ordering.  Reductions preserve the substrate class (``copy()`` /
``induced_subgraph_with_mapping`` return ``type(self)``), so the peeled
graph keeps its mask/batch capabilities, and solutions are translated back
to the input graph's vertex ids at the engine boundary.  The two axes
compose freely — every ``backend × prep`` cell enumerates the same
solution set:

==============  =====================================================
prep mode       effect on the (converted) graph
==============  =====================================================
``off``         none — raw graph, canonical candidate order
``core``        (α,β)-core + bitruss peel to a fixpoint (default; an
                identity without size thresholds)
``core+order``  the reduction plus degeneracy anchor/candidate order
==============  =====================================================
"""

from __future__ import annotations

import os
from typing import Iterable, Iterator, Protocol, Set, runtime_checkable

#: Names accepted by :func:`as_backend` and ``TraversalConfig.backend``.
BACKENDS = ("set", "bitset", "packed")

#: Environment variable overriding :func:`default_backend`.
BACKEND_ENV_VAR = "REPRO_BACKEND"


def default_backend() -> str:
    """The adjacency backend used when none is requested explicitly.

    ``bitset`` is the default everywhere (``TraversalConfig``, the CLI, the
    baselines): the word-parallel fast paths win on every workload we
    benchmark, need no third-party dependency, and all backends are proven
    to enumerate identical solution sets.  Set the ``REPRO_BACKEND``
    environment variable to ``set`` for plain-set adjacency or ``packed``
    for the numpy bit-matrix substrate globally — CI runs the whole test
    suite once per backend through exactly this knob.
    """
    backend = os.environ.get(BACKEND_ENV_VAR, "bitset")
    if backend not in BACKENDS:
        raise ValueError(
            f"{BACKEND_ENV_VAR}={backend!r} is not a valid backend; expected one of {BACKENDS}"
        )
    return backend


@runtime_checkable
class BipartiteSubstrate(Protocol):
    """Query surface the enumeration algorithms require of a graph."""

    @property
    def n_left(self) -> int: ...

    @property
    def n_right(self) -> int: ...

    @property
    def num_edges(self) -> int: ...

    def left_vertices(self) -> Iterable[int]: ...

    def right_vertices(self) -> Iterable[int]: ...

    def has_edge(self, left_vertex: int, right_vertex: int) -> bool: ...

    def neighbors_of_left(self, left_vertex: int) -> Set[int]: ...

    def neighbors_of_right(self, right_vertex: int) -> Set[int]: ...

    def gamma_left(self, left_vertex: int, right_subset: Iterable[int]) -> Set[int]: ...

    def gamma_right(self, right_vertex: int, left_subset: Iterable[int]) -> Set[int]: ...

    def missing_left(self, left_vertex: int, right_subset: Iterable[int]) -> int: ...

    def missing_right(self, right_vertex: int, left_subset: Iterable[int]) -> int: ...


@runtime_checkable
class MaskedBipartiteSubstrate(BipartiteSubstrate, Protocol):
    """A substrate that additionally exposes per-vertex adjacency bitmasks."""

    #: Capability flag checked by :func:`supports_masks`.
    supports_masks: bool

    def adj_left_mask(self, left_vertex: int) -> int:
        """Bitmask over right ids: bit ``u`` is set iff ``(v, u)`` is an edge."""
        ...

    def adj_right_mask(self, right_vertex: int) -> int:
        """Bitmask over left ids: bit ``v`` is set iff ``(v, u)`` is an edge."""
        ...


def available_backends() -> tuple:
    """The subset of :data:`BACKENDS` usable in this environment.

    All three, always: since the ``array('Q')`` fallback classes, the
    ``packed`` backend no longer needs numpy (conversions auto-select the
    fallback; only the numpy classes themselves require numpy >= 2.0).
    Kept for API stability — callers that enumerated usable backends keep
    working unchanged.
    """
    return BACKENDS


def supports_masks(graph: object) -> bool:
    """Whether ``graph`` advertises the adjacency-mask capability."""
    return bool(getattr(graph, "supports_masks", False))


def supports_batch(graph: object) -> bool:
    """Whether ``graph`` advertises the packed-row batch capability.

    Batch-capable substrates (:class:`repro.graph.packed.PackedBipartiteGraph`
    and its ``array('Q')`` fallback twin) expose ``rows`` /
    ``popcount_rows`` / ``common_neighbors_matrix``; algorithms that cannot
    use them fall back to the mask or set paths.  Most batch consumers
    additionally require :func:`supports_vector_batch` — the surface alone
    does not make whole-side sweeps fast.
    """
    return bool(getattr(graph, "supports_batch", False))


#: Minimum side size for which a whole-side ``popcount_rows`` sweep beats
#: the per-member Python-int mask loop it replaces inside the enumeration
#: hot paths.  Below this the fixed numpy dispatch overhead (~10 µs per
#: sweep) outweighs the handful of bigint operations saved; measured on
#: dense Erdős–Rényi workloads (the crossover sits between 80 and 120
#: vertices per side).  Whole-graph kernels (butterfly, bitruss, cores) are
#: per-call, not per-candidate, and ignore this threshold.
BATCH_SWEEP_MIN_SIDE = 96


def supports_vector_batch(graph: object) -> bool:
    """Whether ``graph``'s batch rows are numpy-vectorized.

    True only for the numpy-backed packed classes.  The whole-side fast
    paths (butterfly / bitruss kernels, core peeling, the enumeration
    candidate scoring) gate on this rather than on :func:`supports_batch`:
    on the ``array('Q')`` fallback a "vectorized" sweep would be a Python
    word loop, slower than the Python-int mask paths it would replace.
    """
    return bool(getattr(graph, "batch_vectorized", False))


def mask_of(vertex_ids: Iterable[int]) -> int:
    """Pack an iterable of vertex ids into a bitmask."""
    mask = 0
    for vertex in vertex_ids:
        mask |= 1 << vertex
    return mask


def iter_bits(mask: int) -> Iterator[int]:
    """Yield the set-bit positions of ``mask`` in ascending order."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def as_backend(graph, backend: str):
    """Return ``graph`` converted to the requested adjacency ``backend``.

    ``"set"`` is a no-op (every substrate answers set queries); ``"bitset"``
    converts via ``graph.to_bitset()`` unless the graph already exposes
    masks; ``"packed"`` converts via ``graph.to_packed()`` unless the graph
    already exposes batch rows (auto-selecting the ``array('Q')`` fallback
    when numpy is unavailable).  Raises :class:`ValueError` for unknown
    backend names.

    A conversion is the *same logical graph* on a different substrate, so
    the source's mutation epoch is carried over (unlike copies/subgraphs,
    which restart at 0): prep plans and cursor fingerprints built from the
    converted object must agree with ones built from the source, or a
    cursor minted on a mutated graph would mis-report as a generic
    mismatch instead of ``stale_cursor``.
    """
    if backend not in BACKENDS:
        raise ValueError(f"unknown backend {backend!r}; expected one of {BACKENDS}")
    converted = graph
    if backend == "bitset" and not supports_masks(graph):
        converted = graph.to_bitset()
    elif backend == "packed" and not supports_batch(graph):
        converted = graph.to_packed()
    if converted is not graph and hasattr(converted, "reset_epoch"):
        converted.reset_epoch(getattr(graph, "epoch", 0))
    return converted
