"""The bipartite graph *substrate* protocol and bitmask helpers.

The enumeration algorithms never depend on a concrete graph class — they
only use the query surface below: side sizes, adjacency sets and the
Γ / δ̄ primitives of Section 2.  Any object implementing
:class:`BipartiteSubstrate` (``BipartiteGraph``, ``BitsetBipartiteGraph``,
``MirrorView``) can be handed to the traversal engines.

A substrate may additionally advertise optional capabilities, tested with
duck-typed flags so algorithms degrade gracefully:

* *adjacency masks* (:func:`supports_masks`) — one Python ``int`` per
  vertex whose set bits are the neighbour ids on the other side.  Masks
  turn the hot predicates — ``Γ(v, S)`` intersections, ``δ̄(v, S)`` counts,
  ``can_add_left/right`` — into word-parallel bitwise operations
  (``&``/``~``/``int.bit_count``), which is where the BBK (Baudin et al.,
  2024) and symmetric-BK (Yu & Long, 2022) implementations get their
  constant-factor speedups from.
* *batch rows* (:func:`supports_batch`) — contiguous numpy ``uint64``
  bit-matrices, one packed row per vertex
  (:class:`repro.graph.packed.PackedBipartiteGraph`).  Whole-side
  predicates (butterfly common-neighbour counts, core-peeling degree
  updates) become single vectorized ``np.bitwise_and`` + popcount sweeps,
  the layout used by BBK-style implementations and the parallel butterfly
  counters of Wang et al. (VLDB 2019).

The backend matrix is therefore ``set`` (plain adjacency sets, always
available), ``bitset`` (masks; the default) and ``packed`` (masks *and*
batch rows; requires numpy — unavailable numpy makes only this backend
error, with a clear message).  All three produce identical solution sets;
the equivalence suite pins that property.
"""

from __future__ import annotations

import os
from typing import Iterable, Iterator, Protocol, Set, runtime_checkable

#: Names accepted by :func:`as_backend` and ``TraversalConfig.backend``.
BACKENDS = ("set", "bitset", "packed")

#: Environment variable overriding :func:`default_backend`.
BACKEND_ENV_VAR = "REPRO_BACKEND"


def default_backend() -> str:
    """The adjacency backend used when none is requested explicitly.

    ``bitset`` is the default everywhere (``TraversalConfig``, the CLI, the
    baselines): the word-parallel fast paths win on every workload we
    benchmark, need no third-party dependency, and all backends are proven
    to enumerate identical solution sets.  Set the ``REPRO_BACKEND``
    environment variable to ``set`` for plain-set adjacency or ``packed``
    for the numpy bit-matrix substrate globally — CI runs the whole test
    suite once per backend through exactly this knob.
    """
    backend = os.environ.get(BACKEND_ENV_VAR, "bitset")
    if backend not in BACKENDS:
        raise ValueError(
            f"{BACKEND_ENV_VAR}={backend!r} is not a valid backend; expected one of {BACKENDS}"
        )
    return backend


@runtime_checkable
class BipartiteSubstrate(Protocol):
    """Query surface the enumeration algorithms require of a graph."""

    @property
    def n_left(self) -> int: ...

    @property
    def n_right(self) -> int: ...

    @property
    def num_edges(self) -> int: ...

    def left_vertices(self) -> Iterable[int]: ...

    def right_vertices(self) -> Iterable[int]: ...

    def has_edge(self, left_vertex: int, right_vertex: int) -> bool: ...

    def neighbors_of_left(self, left_vertex: int) -> Set[int]: ...

    def neighbors_of_right(self, right_vertex: int) -> Set[int]: ...

    def gamma_left(self, left_vertex: int, right_subset: Iterable[int]) -> Set[int]: ...

    def gamma_right(self, right_vertex: int, left_subset: Iterable[int]) -> Set[int]: ...

    def missing_left(self, left_vertex: int, right_subset: Iterable[int]) -> int: ...

    def missing_right(self, right_vertex: int, left_subset: Iterable[int]) -> int: ...


@runtime_checkable
class MaskedBipartiteSubstrate(BipartiteSubstrate, Protocol):
    """A substrate that additionally exposes per-vertex adjacency bitmasks."""

    #: Capability flag checked by :func:`supports_masks`.
    supports_masks: bool

    def adj_left_mask(self, left_vertex: int) -> int:
        """Bitmask over right ids: bit ``u`` is set iff ``(v, u)`` is an edge."""
        ...

    def adj_right_mask(self, right_vertex: int) -> int:
        """Bitmask over left ids: bit ``v`` is set iff ``(v, u)`` is an edge."""
        ...


def available_backends() -> tuple:
    """The subset of :data:`BACKENDS` usable in this environment.

    ``set`` and ``bitset`` are always available; ``packed`` only when a
    numpy with ``bitwise_count`` (>= 2.0) can be imported.
    """
    from .packed import packed_available

    if packed_available():
        return BACKENDS
    return tuple(backend for backend in BACKENDS if backend != "packed")


def supports_masks(graph: object) -> bool:
    """Whether ``graph`` advertises the adjacency-mask capability."""
    return bool(getattr(graph, "supports_masks", False))


def supports_batch(graph: object) -> bool:
    """Whether ``graph`` advertises the packed-row batch capability.

    Batch-capable substrates (:class:`repro.graph.packed.PackedBipartiteGraph`
    and :class:`~repro.graph.packed.PackedGraph`) expose ``rows`` /
    ``popcount_rows`` for whole-side vectorized predicates; algorithms that
    cannot use them fall back to the mask or set paths.
    """
    return bool(getattr(graph, "supports_batch", False))


def mask_of(vertex_ids: Iterable[int]) -> int:
    """Pack an iterable of vertex ids into a bitmask."""
    mask = 0
    for vertex in vertex_ids:
        mask |= 1 << vertex
    return mask


def iter_bits(mask: int) -> Iterator[int]:
    """Yield the set-bit positions of ``mask`` in ascending order."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def as_backend(graph, backend: str):
    """Return ``graph`` converted to the requested adjacency ``backend``.

    ``"set"`` is a no-op (every substrate answers set queries); ``"bitset"``
    converts via ``graph.to_bitset()`` unless the graph already exposes
    masks; ``"packed"`` converts via ``graph.to_packed()`` unless the graph
    already exposes batch rows (and raises a clear :class:`RuntimeError`
    when numpy is unavailable).  Raises :class:`ValueError` for unknown
    backend names.
    """
    if backend not in BACKENDS:
        raise ValueError(f"unknown backend {backend!r}; expected one of {BACKENDS}")
    if backend == "bitset" and not supports_masks(graph):
        return graph.to_bitset()
    if backend == "packed" and not supports_batch(graph):
        return graph.to_packed()
    return graph
