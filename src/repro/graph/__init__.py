"""Graph substrates: bipartite graphs, general graphs, generators, cores, I/O."""

from .bipartite import BipartiteGraph, Side, freeze, paper_example_graph, sorted_tuple
from .bitset import BitsetBipartiteGraph
from .cores import alpha_beta_core, alpha_beta_core_subgraph, theta_core_for_large_mbps
from .dynamic import (
    AlphaBetaCoreIndex,
    ButterflyIndex,
    DynamicGraphIndex,
    recomputed_oracle,
)
from .general import BitsetGraph, Graph
from .generators import (
    FraudInjection,
    erdos_renyi_bipartite,
    planted_biplex_graph,
    planted_biplex_graph_with_blocks,
    power_law_bipartite,
    review_graph_with_camouflage,
)
from .inflate import inflate, inflated_edge_count, join_vertex_sets, split_vertex_set
from .io import read_edge_list, read_konect, write_edge_list, write_konect
from .packed import (
    ArrayPackedBipartiteGraph,
    ArrayPackedGraph,
    PackedBackendUnavailable,
    PackedBipartiteGraph,
    PackedGraph,
    packed_available,
    packed_bipartite_class,
    packed_graph_class,
)
from .protocol import (
    BACKEND_ENV_VAR,
    BACKENDS,
    BipartiteSubstrate,
    MaskedBipartiteSubstrate,
    as_backend,
    available_backends,
    default_backend,
    iter_bits,
    mask_of,
    supports_batch,
    supports_masks,
    supports_vector_batch,
)

__all__ = [
    "BipartiteGraph",
    "BitsetBipartiteGraph",
    "BipartiteSubstrate",
    "MaskedBipartiteSubstrate",
    "BACKENDS",
    "BACKEND_ENV_VAR",
    "as_backend",
    "available_backends",
    "default_backend",
    "iter_bits",
    "mask_of",
    "supports_batch",
    "supports_masks",
    "supports_vector_batch",
    "Side",
    "Graph",
    "BitsetGraph",
    "ArrayPackedBipartiteGraph",
    "ArrayPackedGraph",
    "PackedBackendUnavailable",
    "PackedBipartiteGraph",
    "PackedGraph",
    "packed_available",
    "packed_bipartite_class",
    "packed_graph_class",
    "FraudInjection",
    "freeze",
    "sorted_tuple",
    "paper_example_graph",
    "erdos_renyi_bipartite",
    "power_law_bipartite",
    "planted_biplex_graph",
    "planted_biplex_graph_with_blocks",
    "review_graph_with_camouflage",
    "alpha_beta_core",
    "alpha_beta_core_subgraph",
    "theta_core_for_large_mbps",
    "AlphaBetaCoreIndex",
    "ButterflyIndex",
    "DynamicGraphIndex",
    "recomputed_oracle",
    "inflate",
    "inflated_edge_count",
    "split_vertex_set",
    "join_vertex_sets",
    "read_edge_list",
    "read_konect",
    "write_edge_list",
    "write_konect",
]
