"""Bipartite graph data structure used throughout the library.

The paper works with an undirected, unweighted bipartite graph
``G = (L ∪ R, E)``.  Vertices on the two sides live in separate integer
namespaces: left vertices are ``0 .. n_left - 1`` and right vertices are
``0 .. n_right - 1``.  Throughout the code base a vertex is therefore always
qualified by the side it belongs to, either implicitly (an argument named
``left_vertex``) or explicitly via the :class:`Side` enum.

The structure is optimised for the access patterns of the enumeration
algorithms:

* neighbourhood queries ``Γ(v, R)`` and non-neighbourhood sizes
  ``δ̄(v, R) = |R \\ Γ(v)|`` against arbitrary vertex subsets,
* induced subgraph reasoning without materialising subgraph copies,
* cheap iteration over both sides.

Adjacency is stored as one ``set`` per vertex per side, which makes the
membership tests that dominate the k-biplex predicates O(1).  A bitmask
backend with word-parallel intersections lives in
:class:`repro.graph.bitset.BitsetBipartiteGraph`; see
:mod:`repro.graph.protocol` for the substrate protocol both implement and
:meth:`BipartiteGraph.to_bitset` for the conversion.
"""

from __future__ import annotations

import enum
from collections.abc import Iterable, Iterator
from typing import FrozenSet, List, Sequence, Set, Tuple


class Side(enum.Enum):
    """Which side of the bipartite graph a vertex belongs to."""

    LEFT = "left"
    RIGHT = "right"

    def other(self) -> "Side":
        """Return the opposite side."""
        return Side.RIGHT if self is Side.LEFT else Side.LEFT


class BipartiteGraph:
    """An undirected, unweighted bipartite graph.

    Parameters
    ----------
    n_left:
        Number of vertices on the left side (ids ``0 .. n_left - 1``).
    n_right:
        Number of vertices on the right side (ids ``0 .. n_right - 1``).
    edges:
        Optional iterable of ``(left_vertex, right_vertex)`` pairs.

    Examples
    --------
    >>> g = BipartiteGraph(2, 3, edges=[(0, 0), (0, 1), (1, 2)])
    >>> g.num_edges
    3
    >>> sorted(g.neighbors_of_left(0))
    [0, 1]
    >>> g.has_edge(1, 0)
    False
    """

    __slots__ = ("_n_left", "_n_right", "_adj_left", "_adj_right", "_num_edges", "_epoch")

    def __init__(
        self,
        n_left: int,
        n_right: int,
        edges: Iterable[Tuple[int, int]] = (),
    ) -> None:
        if n_left < 0 or n_right < 0:
            raise ValueError("side sizes must be non-negative")
        self._n_left = n_left
        self._n_right = n_right
        self._adj_left: List[Set[int]] = [set() for _ in range(n_left)]
        self._adj_right: List[Set[int]] = [set() for _ in range(n_right)]
        self._num_edges = 0
        self._epoch = 0
        for left_vertex, right_vertex in edges:
            self.add_edge(left_vertex, right_vertex)
        # Construction is epoch 0 regardless of how many edges were replayed:
        # the epoch versions *post-construction mutation*, which is what the
        # caches and cursor fingerprints key on.  Copies and subgraphs
        # therefore also (re)start at epoch 0 — epochs are per-object, not a
        # property of the adjacency they describe.
        self._epoch = 0

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #
    @property
    def n_left(self) -> int:
        """Number of left-side vertices."""
        return self._n_left

    @property
    def n_right(self) -> int:
        """Number of right-side vertices."""
        return self._n_right

    @property
    def num_vertices(self) -> int:
        """Total number of vertices, ``|L| + |R|``."""
        return self._n_left + self._n_right

    @property
    def num_edges(self) -> int:
        """Number of edges ``|E|``."""
        return self._num_edges

    @property
    def epoch(self) -> int:
        """Mutation-batch counter: 0 at construction, +1 per successful
        :meth:`add_edge` / :meth:`remove_edge` call and +1 per
        :meth:`apply_batch` that changed anything.  Everything that caches
        derived state for a graph object (prep plans, service result caches,
        session cursors) records the epoch it was computed at and treats a
        mismatch as staleness."""
        return self._epoch

    @property
    def edge_density(self) -> float:
        """Edge density ``|E| / (|L| + |R|)`` as defined in the paper."""
        if self.num_vertices == 0:
            return 0.0
        return self._num_edges / self.num_vertices

    def left_vertices(self) -> range:
        """Iterate over all left-side vertex ids."""
        return range(self._n_left)

    def right_vertices(self) -> range:
        """Iterate over all right-side vertex ids."""
        return range(self._n_right)

    def vertices(self, side: Side) -> range:
        """Iterate over all vertex ids of ``side``."""
        return self.left_vertices() if side is Side.LEFT else self.right_vertices()

    def side_size(self, side: Side) -> int:
        """Number of vertices on ``side``."""
        return self._n_left if side is Side.LEFT else self._n_right

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    def add_edge(self, left_vertex: int, right_vertex: int) -> bool:
        """Add the edge ``(left_vertex, right_vertex)``.

        Returns ``True`` if the edge was newly inserted, ``False`` if it was
        already present.  Raises :class:`IndexError` for out-of-range ids.
        """
        self._check_left(left_vertex)
        self._check_right(right_vertex)
        if right_vertex in self._adj_left[left_vertex]:
            return False
        self._adj_left[left_vertex].add(right_vertex)
        self._adj_right[right_vertex].add(left_vertex)
        self._num_edges += 1
        self._epoch += 1
        return True

    def remove_edge(self, left_vertex: int, right_vertex: int) -> bool:
        """Remove the edge if present.  Returns ``True`` when removed."""
        self._check_left(left_vertex)
        self._check_right(right_vertex)
        if right_vertex not in self._adj_left[left_vertex]:
            return False
        self._adj_left[left_vertex].discard(right_vertex)
        self._adj_right[right_vertex].discard(left_vertex)
        self._num_edges -= 1
        self._epoch += 1
        return True

    def apply_batch(
        self,
        inserts: Iterable[Tuple[int, int]] = (),
        deletes: Iterable[Tuple[int, int]] = (),
    ) -> Tuple[int, int]:
        """Apply a batch of edge mutations as ONE epoch bump.

        Returns ``(added, removed)`` — edges actually inserted / removed
        (no-op pairs are counted out).  The epoch rises by exactly one when
        the batch changed anything and not at all when it was a no-op, so a
        service-level update maps to a single cache-invalidation step no
        matter how many edges it carries.  Id validation happens before any
        mutation per edge, so an :class:`IndexError` mid-batch leaves earlier
        edges applied — callers wanting atomicity validate ids first.
        """
        saved = self._epoch
        added = removed = 0
        for left_vertex, right_vertex in inserts:
            if self.add_edge(left_vertex, right_vertex):
                added += 1
        for left_vertex, right_vertex in deletes:
            if self.remove_edge(left_vertex, right_vertex):
                removed += 1
        self._epoch = saved + 1 if (added or removed) else saved
        return added, removed

    def reset_epoch(self, epoch: int = 0) -> None:
        """Overwrite the mutation counter (default: re-zero it).

        For builders (the random-graph generators) that assemble a graph
        through ``add_edge`` and then hand it out as a *fresh* object: the
        assembly edges are construction, not mutation, so the published
        graph should start at epoch 0 like a constructor-built one.  The
        hot-graph registry passes an explicit ``epoch`` to stamp a backend
        conversion with its source graph's counter, keeping the two in
        lockstep under later batches.
        """
        self._epoch = epoch

    def add_left_vertex(self) -> int:
        """Grow the left side by one isolated vertex; returns its new id.

        Growth bumps the epoch: an isolated vertex is itself enumerable
        content (any vertex set of size ≤ k on the other side tolerates it),
        so cached results over the smaller graph are stale.
        """
        self._adj_left.append(set())
        self._n_left += 1
        self._epoch += 1
        return self._n_left - 1

    def add_right_vertex(self) -> int:
        """Grow the right side by one isolated vertex; returns its new id."""
        self._adj_right.append(set())
        self._n_right += 1
        self._epoch += 1
        return self._n_right - 1

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def has_edge(self, left_vertex: int, right_vertex: int) -> bool:
        """Whether ``(left_vertex, right_vertex)`` is an edge."""
        self._check_left(left_vertex)
        self._check_right(right_vertex)
        return right_vertex in self._adj_left[left_vertex]

    def neighbors_of_left(self, left_vertex: int) -> Set[int]:
        """Right-side neighbours ``Γ(v)`` of a left vertex (the stored set)."""
        self._check_left(left_vertex)
        return self._adj_left[left_vertex]

    def neighbors_of_right(self, right_vertex: int) -> Set[int]:
        """Left-side neighbours ``Γ(u)`` of a right vertex (the stored set)."""
        self._check_right(right_vertex)
        return self._adj_right[right_vertex]

    def neighbors(self, side: Side, vertex: int) -> Set[int]:
        """Neighbours of ``vertex`` located on ``side``."""
        if side is Side.LEFT:
            return self.neighbors_of_left(vertex)
        return self.neighbors_of_right(vertex)

    def degree_of_left(self, left_vertex: int) -> int:
        """Degree of a left vertex."""
        return len(self.neighbors_of_left(left_vertex))

    def degree_of_right(self, right_vertex: int) -> int:
        """Degree of a right vertex."""
        return len(self.neighbors_of_right(right_vertex))

    def degree(self, side: Side, vertex: int) -> int:
        """Degree of ``vertex`` on ``side``."""
        return len(self.neighbors(side, vertex))

    # -- the Γ / δ primitives of Section 2 ----------------------------- #
    def gamma_left(self, left_vertex: int, right_subset: Iterable[int]) -> Set[int]:
        """``Γ(v, R')``: members of ``right_subset`` adjacent to ``left_vertex``."""
        adjacency = self.neighbors_of_left(left_vertex)
        return {u for u in right_subset if u in adjacency}

    def gamma_right(self, right_vertex: int, left_subset: Iterable[int]) -> Set[int]:
        """``Γ(u, L')``: members of ``left_subset`` adjacent to ``right_vertex``."""
        adjacency = self.neighbors_of_right(right_vertex)
        return {v for v in left_subset if v in adjacency}

    def non_gamma_left(self, left_vertex: int, right_subset: Iterable[int]) -> Set[int]:
        """``Γ̄(v, R')``: members of ``right_subset`` *not* adjacent to ``left_vertex``."""
        adjacency = self.neighbors_of_left(left_vertex)
        if isinstance(right_subset, (set, frozenset)):
            return set(right_subset - adjacency)
        return {u for u in right_subset if u not in adjacency}

    def non_gamma_right(self, right_vertex: int, left_subset: Iterable[int]) -> Set[int]:
        """``Γ̄(u, L')``: members of ``left_subset`` *not* adjacent to ``right_vertex``."""
        adjacency = self.neighbors_of_right(right_vertex)
        if isinstance(left_subset, (set, frozenset)):
            return set(left_subset - adjacency)
        return {v for v in left_subset if v not in adjacency}

    def missing_left(self, left_vertex: int, right_subset: Iterable[int]) -> int:
        """``δ̄(v, R')``: number of vertices of ``right_subset`` missed by ``left_vertex``."""
        adjacency = self.neighbors_of_left(left_vertex)
        if isinstance(right_subset, (set, frozenset)):
            return len(right_subset - adjacency)
        return sum(1 for u in right_subset if u not in adjacency)

    def missing_right(self, right_vertex: int, left_subset: Iterable[int]) -> int:
        """``δ̄(u, L')``: number of vertices of ``left_subset`` missed by ``right_vertex``."""
        adjacency = self.neighbors_of_right(right_vertex)
        if isinstance(left_subset, (set, frozenset)):
            return len(left_subset - adjacency)
        return sum(1 for v in left_subset if v not in adjacency)

    # ------------------------------------------------------------------ #
    # Derived graphs
    # ------------------------------------------------------------------ #
    def induced_subgraph(
        self, left_subset: Iterable[int], right_subset: Iterable[int]
    ) -> "BipartiteGraph":
        """Return the induced subgraph ``G[L' ∪ R']`` with *re-labelled* ids.

        Vertex ids in the returned graph are compacted to
        ``0 .. len(subset) - 1`` following the sorted order of the original
        ids.  Use :meth:`induced_subgraph_with_mapping` when the mapping back
        to original ids is needed.
        """
        subgraph, _, _ = self.induced_subgraph_with_mapping(left_subset, right_subset)
        return subgraph

    def induced_subgraph_with_mapping(
        self, left_subset: Iterable[int], right_subset: Iterable[int]
    ) -> Tuple["BipartiteGraph", List[int], List[int]]:
        """Induced subgraph plus ``new id → original id`` maps for both sides."""
        left_ids = sorted(set(left_subset))
        right_ids = sorted(set(right_subset))
        left_index = {original: new for new, original in enumerate(left_ids)}
        right_index = {original: new for new, original in enumerate(right_ids)}
        subgraph = type(self)(len(left_ids), len(right_ids))
        for original_left in left_ids:
            adjacency = self._adj_left[original_left]
            for original_right in right_ids:
                if original_right in adjacency:
                    subgraph.add_edge(left_index[original_left], right_index[original_right])
        return subgraph, left_ids, right_ids

    def edges(self) -> Iterator[Tuple[int, int]]:
        """Iterate over all edges as ``(left_vertex, right_vertex)`` pairs."""
        for left_vertex in range(self._n_left):
            for right_vertex in self._adj_left[left_vertex]:
                yield (left_vertex, right_vertex)

    def copy(self) -> "BipartiteGraph":
        """Return a deep copy of the graph (preserving the backend)."""
        return type(self)(self._n_left, self._n_right, self.edges())

    def swap_sides(self) -> "BipartiteGraph":
        """Return a graph with the two sides exchanged (preserving the backend).

        Used by the *right-anchored* traversal variant, which is the mirror
        image of the left-anchored traversal described in the paper.
        """
        swapped = type(self)(self._n_right, self._n_left)
        for left_vertex, right_vertex in self.edges():
            swapped.add_edge(right_vertex, left_vertex)
        return swapped

    def to_bitset(self) -> "BipartiteGraph":
        """Return a bitset-backed copy of this graph.

        The returned :class:`repro.graph.bitset.BitsetBipartiteGraph`
        compares equal to ``self`` and answers every set query identically,
        but additionally exposes per-vertex adjacency bitmasks that the core
        algorithms exploit for word-parallel fast paths.
        """
        from .bitset import BitsetBipartiteGraph

        return BitsetBipartiteGraph(self._n_left, self._n_right, self.edges())

    def to_packed(self) -> "BipartiteGraph":
        """Return a packed copy of this graph.

        With numpy available the returned
        :class:`repro.graph.packed.PackedBipartiteGraph` exposes contiguous
        ``uint64`` bit-matrix rows for whole-side vectorized predicates;
        without numpy the ``array('Q')``-backed
        :class:`repro.graph.packed.ArrayPackedBipartiteGraph` provides the
        same batch surface (bit-identical results, no vectorization).
        Either way the copy compares equal to ``self`` and answers every set
        and mask query identically.
        """
        from .packed import packed_bipartite_class

        return packed_bipartite_class()(self._n_left, self._n_right, self.edges())

    # ------------------------------------------------------------------ #
    # Dunder / helpers
    # ------------------------------------------------------------------ #
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BipartiteGraph):
            return NotImplemented
        return (
            self._n_left == other._n_left
            and self._n_right == other._n_right
            and self._adj_left == other._adj_left
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BipartiteGraph(n_left={self._n_left}, n_right={self._n_right}, "
            f"num_edges={self._num_edges})"
        )

    def _check_left(self, left_vertex: int) -> None:
        if not 0 <= left_vertex < self._n_left:
            raise IndexError(f"left vertex {left_vertex} out of range [0, {self._n_left})")

    def _check_right(self, right_vertex: int) -> None:
        if not 0 <= right_vertex < self._n_right:
            raise IndexError(f"right vertex {right_vertex} out of range [0, {self._n_right})")


def paper_example_graph() -> BipartiteGraph:
    """The running example of the paper (Figure 1).

    Left vertices ``v0 .. v4`` and right vertices ``u0 .. u4``.  Edges are
    reconstructed from the worked examples in Sections 3.1-3.3:

    * ``H0 = ({v4}, {u0..u4})`` is a maximal 1-biplex, so ``v4`` is adjacent
      to at least four of the five right vertices,
    * ``H1 = ({v0, v1, v4}, {u0..u3})`` and
      ``H'' = ({v1, v2, v4}, {u0, u1, u2})`` are maximal 1-biplexes.

    The concrete adjacency below satisfies every constraint exercised by the
    paper's worked examples (Example 3.1 and Example 3.2): ``H0``, ``H1`` and
    ``H'' = ({v1, v2, v4}, {u0, u1, u2})`` are all maximal 1-biplexes and the
    ThreeStep walks described in the text reproduce exactly.
    """
    edges = [
        (0, 0), (0, 1), (0, 3),            # v0 misses u2, u4
        (1, 1), (1, 2), (1, 3),            # v1 misses u0, u4
        (2, 0), (2, 1), (2, 4),            # v2 misses u2, u3
        (3, 3), (3, 4),                    # v3 misses u0, u1, u2
        (4, 0), (4, 1), (4, 2), (4, 3), (4, 4),  # v4 adjacent to all
    ]
    return BipartiteGraph(5, 5, edges=edges)


class MirrorView:
    """A zero-copy view of a :class:`BipartiteGraph` with the two sides swapped.

    The enumeration code is written in terms of "left" and "right"; the
    reverse-search baselines sometimes need to run the same logic with the
    roles of the sides exchanged (e.g. bTraversal grows almost-satisfying
    graphs with vertices from *either* side, and the right-anchored traversal
    variant mirrors the whole algorithm).  This adapter forwards every query
    to the underlying graph with the sides exchanged in O(1), avoiding a full
    :meth:`BipartiteGraph.swap_sides` copy.
    """

    __slots__ = ("_graph",)

    def __init__(self, graph: "BipartiteGraph") -> None:
        self._graph = graph

    @property
    def n_left(self) -> int:
        return self._graph.n_right

    @property
    def n_right(self) -> int:
        return self._graph.n_left

    @property
    def num_edges(self) -> int:
        return self._graph.num_edges

    @property
    def num_vertices(self) -> int:
        return self._graph.num_vertices

    @property
    def epoch(self) -> int:
        return self._graph.epoch

    # -- mutation surface, forwarded with the sides exchanged ------------ #
    def add_edge(self, left_vertex: int, right_vertex: int) -> bool:
        return self._graph.add_edge(right_vertex, left_vertex)

    def remove_edge(self, left_vertex: int, right_vertex: int) -> bool:
        return self._graph.remove_edge(right_vertex, left_vertex)

    def apply_batch(self, inserts=(), deletes=()):
        return self._graph.apply_batch(
            inserts=[(u, v) for v, u in inserts],
            deletes=[(u, v) for v, u in deletes],
        )

    def add_left_vertex(self) -> int:
        return self._graph.add_right_vertex()

    def add_right_vertex(self) -> int:
        return self._graph.add_left_vertex()

    def left_vertices(self) -> range:
        return self._graph.right_vertices()

    def right_vertices(self) -> range:
        return self._graph.left_vertices()

    def has_edge(self, left_vertex: int, right_vertex: int) -> bool:
        return self._graph.has_edge(right_vertex, left_vertex)

    def neighbors_of_left(self, left_vertex: int) -> Set[int]:
        return self._graph.neighbors_of_right(left_vertex)

    def neighbors_of_right(self, right_vertex: int) -> Set[int]:
        return self._graph.neighbors_of_left(right_vertex)

    def degree_of_left(self, left_vertex: int) -> int:
        return self._graph.degree_of_right(left_vertex)

    def degree_of_right(self, right_vertex: int) -> int:
        return self._graph.degree_of_left(right_vertex)

    def gamma_left(self, left_vertex: int, right_subset: Iterable[int]) -> Set[int]:
        return self._graph.gamma_right(left_vertex, right_subset)

    def gamma_right(self, right_vertex: int, left_subset: Iterable[int]) -> Set[int]:
        return self._graph.gamma_left(right_vertex, left_subset)

    def non_gamma_left(self, left_vertex: int, right_subset: Iterable[int]) -> Set[int]:
        return self._graph.non_gamma_right(left_vertex, right_subset)

    def non_gamma_right(self, right_vertex: int, left_subset: Iterable[int]) -> Set[int]:
        return self._graph.non_gamma_left(right_vertex, left_subset)

    def missing_left(self, left_vertex: int, right_subset: Iterable[int]) -> int:
        return self._graph.missing_right(left_vertex, right_subset)

    def missing_right(self, right_vertex: int, left_subset: Iterable[int]) -> int:
        return self._graph.missing_left(right_vertex, left_subset)

    # -- adjacency-mask capability, forwarded with the sides exchanged ---- #
    @property
    def supports_masks(self) -> bool:
        return bool(getattr(self._graph, "supports_masks", False))

    def adj_left_mask(self, left_vertex: int) -> int:
        return self._graph.adj_right_mask(left_vertex)

    def adj_right_mask(self, right_vertex: int) -> int:
        return self._graph.adj_left_mask(right_vertex)

    # -- batch-row capability, forwarded with the sides exchanged --------- #
    @property
    def supports_batch(self) -> bool:
        return bool(getattr(self._graph, "supports_batch", False))

    @property
    def batch_vectorized(self) -> bool:
        return bool(getattr(self._graph, "batch_vectorized", False))

    @staticmethod
    def _flipped(side):
        if isinstance(side, Side):
            return Side.RIGHT if side is Side.LEFT else Side.LEFT
        if side in ("left", "right"):
            return "right" if side == "left" else "left"
        raise ValueError(f"side must be 'left', 'right' or a Side enum, got {side!r}")

    def rows(self, side):
        return self._graph.rows(self._flipped(side))

    def row_bits(self, side) -> int:
        return self._graph.row_bits(self._flipped(side))

    def popcount_rows(self, side, mask=None):
        return self._graph.popcount_rows(self._flipped(side), mask)

    def common_neighbors_matrix(self, side, anchors=None, others=None):
        return self._graph.common_neighbors_matrix(self._flipped(side), anchors, others)


VertexSet = FrozenSet[int]


def freeze(vertex_ids: Iterable[int]) -> VertexSet:
    """Return an immutable, hashable vertex set."""
    return frozenset(vertex_ids)


def sorted_tuple(vertex_ids: Iterable[int]) -> Tuple[int, ...]:
    """Return the canonical (sorted) tuple form of a vertex set."""
    return tuple(sorted(vertex_ids))


def subsets_within_budget(items: Sequence[int], budget: int) -> Iterator[Tuple[int, ...]]:
    """Yield every subset of ``items`` of size at most ``budget``.

    Subsets are produced in order of increasing size, which is the iteration
    order required by the "refined enumeration on L: 2.0" pruning rule
    (Section 4.4 of the paper).
    """
    from itertools import combinations

    upper = min(budget, len(items))
    for size in range(upper + 1):
        yield from combinations(items, size)
