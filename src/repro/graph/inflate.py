"""Graph inflation: bipartite graph → general graph.

The inflation baseline (Section 1, Section 6.1 of the paper) turns a
bipartite graph ``G = (L ∪ R, E)`` into a general graph by adding an edge
between every pair of vertices on the same side.  In the inflated graph a
vertex subset ``S = L' ∪ R'`` is a ``(k+1)``-plex exactly when ``(L', R')``
is a k-biplex of the original graph, because every same-side pair is
connected and every vertex therefore only misses its cross-side
non-neighbours plus itself.

Vertex numbering convention for the inflated graph: left vertex ``v``
keeps id ``v`` and right vertex ``u`` becomes ``n_left + u``.
"""

from __future__ import annotations

from typing import FrozenSet, Tuple

from .bipartite import BipartiteGraph
from .general import BitsetGraph, Graph
from .protocol import BACKENDS


def inflate(graph: BipartiteGraph, backend: str = "set") -> Graph:
    """Return the inflated general graph of ``graph``.

    The output has ``n_left + n_right`` vertices.  Within-side edges form
    two cliques; cross-side edges are copied from the bipartite graph.
    ``backend="bitset"`` builds a mask-capable :class:`BitsetGraph`, which
    lets the k-plex enumerator running on the inflation use its
    word-parallel fast paths; ``backend="packed"`` builds a
    :class:`repro.graph.packed.PackedGraph` (masks plus numpy ``uint64``
    rows) or, when numpy is absent, the ``array('Q')``-backed
    :class:`repro.graph.packed.ArrayPackedGraph` fallback.

    Warning: the inflated graph has ``Θ(|L|² + |R|²)`` edges, which is the
    very reason the inflation baseline does not scale (the paper reports
    96 k bipartite edges inflating to more than 200 M general edges on the
    Marvel dataset).
    """
    if backend not in BACKENDS:
        raise ValueError(f"unknown backend {backend!r}; expected one of {BACKENDS}")
    n_left = graph.n_left
    n_right = graph.n_right
    if backend == "packed":
        from .packed import packed_graph_class

        graph_class = packed_graph_class()
    else:
        graph_class = BitsetGraph if backend == "bitset" else Graph
    inflated = graph_class(n_left + n_right)
    for u in range(n_left):
        for v in range(u + 1, n_left):
            inflated.add_edge(u, v)
    for u in range(n_right):
        for v in range(u + 1, n_right):
            inflated.add_edge(n_left + u, n_left + v)
    for left_vertex, right_vertex in graph.edges():
        inflated.add_edge(left_vertex, n_left + right_vertex)
    return inflated


def inflated_edge_count(graph: BipartiteGraph) -> int:
    """Number of edges the inflated graph would have, without building it."""
    n_left = graph.n_left
    n_right = graph.n_right
    return n_left * (n_left - 1) // 2 + n_right * (n_right - 1) // 2 + graph.num_edges


def split_vertex_set(
    vertex_set: FrozenSet[int], n_left: int
) -> Tuple[FrozenSet[int], FrozenSet[int]]:
    """Split an inflated-graph vertex set back into ``(left, right)`` ids."""
    left = frozenset(v for v in vertex_set if v < n_left)
    right = frozenset(v - n_left for v in vertex_set if v >= n_left)
    return left, right


def join_vertex_sets(left: FrozenSet[int], right: FrozenSet[int], n_left: int) -> FrozenSet[int]:
    """Inverse of :func:`split_vertex_set`."""
    return frozenset(left) | frozenset(n_left + u for u in right)
