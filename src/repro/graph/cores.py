"""(α, β)-core computation on bipartite graphs.

The (α, β)-core of a bipartite graph is the (unique) maximal vertex set in
which every remaining left vertex has degree at least ``α`` and every
remaining right vertex has degree at least ``β`` *within the set*.  The paper
uses it in two places:

* as a competitor cohesive structure in the fraud-detection case study
  (Figure 13), and
* as a preprocessing step for large-MBP enumeration: every MBP whose two
  sides both have size at least ``θ`` is contained in the
  ``(θ − k, θ − k)``-core, so the input graph can be shrunk before running
  the enumeration (Section 6.1, Figure 10).

The implementation is the standard peeling algorithm: repeatedly delete any
vertex violating its degree constraint; the result is order-independent.
On a mask-capable substrate the alive sets are bitmasks and the degree
updates walk only the set bits of ``adjacency & alive``.  On a vectorized
batch substrate (the numpy ``packed`` classes) peeling is *round-based
and whole-side vectorized*: every violating vertex of a round is removed at
once and both degree vectors are recomputed with one
``np.bitwise_and`` + popcount sweep against the packed removal rows.  All
paths peel the same vertices (the (α, β)-core is unique), so ``set``,
``bitset`` and ``packed`` graphs stay drop-in equivalent.
"""

from __future__ import annotations

from collections import deque
from typing import Set, Tuple

from .bipartite import BipartiteGraph
from .protocol import supports_masks, supports_vector_batch


def alpha_beta_core(graph: BipartiteGraph, alpha: int, beta: int) -> Tuple[Set[int], Set[int]]:
    """Return the vertex sets ``(left, right)`` of the (α, β)-core.

    ``alpha`` constrains left-vertex degrees and ``beta`` constrains
    right-vertex degrees.  Either set may be empty.  Values of 0 or below
    impose no constraint on that side.
    """
    if supports_vector_batch(graph):
        return _alpha_beta_core_packed(graph, alpha, beta)
    if supports_masks(graph):
        return _alpha_beta_core_masked(graph, alpha, beta)
    left_degree = {v: graph.degree_of_left(v) for v in graph.left_vertices()}
    right_degree = {u: graph.degree_of_right(u) for u in graph.right_vertices()}
    left_alive: Set[int] = set(graph.left_vertices())
    right_alive: Set[int] = set(graph.right_vertices())

    queue = deque()
    for v, degree in left_degree.items():
        if degree < alpha:
            queue.append(("L", v))
    for u, degree in right_degree.items():
        if degree < beta:
            queue.append(("R", u))

    while queue:
        side, vertex = queue.popleft()
        if side == "L":
            if vertex not in left_alive:
                continue
            left_alive.discard(vertex)
            for u in graph.neighbors_of_left(vertex):
                if u in right_alive:
                    right_degree[u] -= 1
                    if right_degree[u] < beta:
                        queue.append(("R", u))
        else:
            if vertex not in right_alive:
                continue
            right_alive.discard(vertex)
            for v in graph.neighbors_of_right(vertex):
                if v in left_alive:
                    left_degree[v] -= 1
                    if left_degree[v] < alpha:
                        queue.append(("L", v))
    return left_alive, right_alive


def _alpha_beta_core_packed(graph, alpha: int, beta: int) -> Tuple[Set[int], Set[int]]:
    """Round-based, whole-side vectorized twin of the peeling loop.

    Each round removes *every* currently violating vertex on both sides at
    once; the surviving degrees are then adjusted by one batched
    ``popcount(adjacency & removed)`` per side.  Simultaneous removal
    reaches the same fixpoint as one-at-a-time peeling because the
    (α, β)-core is unique and peeling is monotone.
    """
    import numpy as np

    from .packed import pack_indices

    left_deg = graph.popcount_rows("left")
    right_deg = graph.popcount_rows("right")
    left_alive = np.ones(graph.n_left, dtype=bool)
    right_alive = np.ones(graph.n_right, dtype=bool)
    while True:
        drop_left = left_alive & (left_deg < alpha)
        drop_right = right_alive & (right_deg < beta)
        if not drop_left.any() and not drop_right.any():
            break
        # Degrees of removed vertices go stale, but they are masked out of
        # every later round by the alive filters above.
        if drop_left.any():
            left_alive &= ~drop_left
            removed = pack_indices(drop_left, graph.n_left)
            right_deg = right_deg - graph.popcount_rows("right", removed)
        if drop_right.any():
            right_alive &= ~drop_right
            removed = pack_indices(drop_right, graph.n_right)
            left_deg = left_deg - graph.popcount_rows("left", removed)
    return (
        set(np.nonzero(left_alive)[0].tolist()),
        set(np.nonzero(right_alive)[0].tolist()),
    )


def _alpha_beta_core_masked(graph, alpha: int, beta: int) -> Tuple[Set[int], Set[int]]:
    """Bitmask twin of the peeling loop.

    Alive sets are bitmasks, so the per-neighbour "is it still alive?" test
    is a single shift instead of a set lookup, and the surviving-degree
    recount after a removal walks only ``adjacency & alive`` bits.  Initial
    degrees come from the adjacency sets (a masked substrate always answers
    set queries too), which is O(1) per vertex.
    """
    left_alive = (1 << graph.n_left) - 1
    right_alive = (1 << graph.n_right) - 1
    left_removed: list = []
    right_removed: list = []
    left_degree = [len(graph.neighbors_of_left(v)) for v in range(graph.n_left)]
    right_degree = [len(graph.neighbors_of_right(u)) for u in range(graph.n_right)]

    queue = deque()
    for v, degree in enumerate(left_degree):
        if degree < alpha:
            queue.append(("L", v))
    for u, degree in enumerate(right_degree):
        if degree < beta:
            queue.append(("R", u))

    while queue:
        side, vertex = queue.popleft()
        bit = 1 << vertex
        if side == "L":
            if not left_alive & bit:
                continue
            left_alive ^= bit
            left_removed.append(vertex)
            survivors = graph.adj_left_mask(vertex) & right_alive
            while survivors:
                low = survivors & -survivors
                u = low.bit_length() - 1
                right_degree[u] -= 1
                if right_degree[u] == beta - 1:
                    queue.append(("R", u))
                survivors ^= low
        else:
            if not right_alive & bit:
                continue
            right_alive ^= bit
            right_removed.append(vertex)
            survivors = graph.adj_right_mask(vertex) & left_alive
            while survivors:
                low = survivors & -survivors
                v = low.bit_length() - 1
                left_degree[v] -= 1
                if left_degree[v] == alpha - 1:
                    queue.append(("L", v))
                survivors ^= low
    # Materialising the alive sets from the removal log is O(n); walking the
    # (potentially very wide) alive masks bit-by-bit would be O(n² / 64).
    return (
        set(range(graph.n_left)).difference(left_removed),
        set(range(graph.n_right)).difference(right_removed),
    )


def alpha_beta_core_subgraph(
    graph: BipartiteGraph, alpha: int, beta: int
) -> Tuple[BipartiteGraph, list, list]:
    """Return the induced subgraph of the (α, β)-core plus id mappings.

    The mappings are ``new id → original id`` lists for the left and right
    side respectively, as produced by
    :meth:`BipartiteGraph.induced_subgraph_with_mapping`.
    """
    left_core, right_core = alpha_beta_core(graph, alpha, beta)
    return graph.induced_subgraph_with_mapping(left_core, right_core)


def theta_core_for_large_mbps(
    graph: BipartiteGraph, k: int, theta: int
) -> Tuple[BipartiteGraph, list, list]:
    """Shrink ``graph`` to the ``(θ − k, θ − k)``-core.

    Every maximal k-biplex with both side sizes at least ``θ`` lies inside
    this core: each of its left vertices connects at least ``θ − k`` right
    vertices of the biplex (and vice versa), and peeling never removes a
    vertex whose degree constraint is met within a surviving subgraph.
    """
    bound = max(theta - k, 0)
    return alpha_beta_core_subgraph(graph, bound, bound)
