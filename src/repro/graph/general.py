"""General (non-bipartite) undirected graph.

This substrate exists for the *graph inflation* baseline: a bipartite graph
is inflated by adding an edge between every pair of same-side vertices, after
which maximal ``(k+1)``-plexes of the inflated general graph correspond to
maximal k-biplexes of the original bipartite graph (Section 1 and Section 6
of the paper).  The maximal k-plex enumerator in
:mod:`repro.baselines.kplex` operates on this class.

:class:`BitsetGraph` is the mask-capable sibling (the general-graph analogue
of :class:`repro.graph.bitset.BitsetBipartiteGraph`): it additionally keeps
one adjacency bitmask per vertex, which the k-plex enumerator's ``_fits`` /
``_add`` hot loop turns into word-parallel non-neighbour popcounts.  The
numpy-backed :class:`repro.graph.packed.PackedGraph` extends it with packed
``uint64`` rows (``inflate(..., backend="packed")``).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from typing import List, Set, Tuple


class Graph:
    """A simple undirected graph over vertices ``0 .. n - 1``.

    Parameters
    ----------
    n:
        Number of vertices.
    edges:
        Optional iterable of ``(u, v)`` pairs with ``u != v``.

    Examples
    --------
    >>> g = Graph(3, edges=[(0, 1), (1, 2)])
    >>> g.degree(1)
    2
    >>> g.has_edge(0, 2)
    False
    """

    __slots__ = ("_n", "_adj", "_num_edges")

    def __init__(self, n: int, edges: Iterable[Tuple[int, int]] = ()) -> None:
        if n < 0:
            raise ValueError("number of vertices must be non-negative")
        self._n = n
        self._adj: List[Set[int]] = [set() for _ in range(n)]
        self._num_edges = 0
        for u, v in edges:
            self.add_edge(u, v)

    @property
    def num_vertices(self) -> int:
        """Number of vertices."""
        return self._n

    @property
    def num_edges(self) -> int:
        """Number of (undirected) edges."""
        return self._num_edges

    def vertices(self) -> range:
        """Iterate over all vertex ids."""
        return range(self._n)

    def add_edge(self, u: int, v: int) -> bool:
        """Add the undirected edge ``{u, v}``; self-loops are rejected."""
        self._check(u)
        self._check(v)
        if u == v:
            raise ValueError("self-loops are not supported")
        if v in self._adj[u]:
            return False
        self._adj[u].add(v)
        self._adj[v].add(u)
        self._num_edges += 1
        return True

    def has_edge(self, u: int, v: int) -> bool:
        """Whether ``{u, v}`` is an edge."""
        self._check(u)
        self._check(v)
        return v in self._adj[u]

    def neighbors(self, u: int) -> Set[int]:
        """The neighbour set of ``u`` (the stored set; do not mutate)."""
        self._check(u)
        return self._adj[u]

    def degree(self, u: int) -> int:
        """Degree of ``u``."""
        return len(self.neighbors(u))

    def edges(self) -> Iterator[Tuple[int, int]]:
        """Iterate over edges once each, as ``(u, v)`` with ``u < v``."""
        for u in range(self._n):
            for v in self._adj[u]:
                if u < v:
                    yield (u, v)

    def non_neighbors_within(self, u: int, candidate_set: Iterable[int]) -> Set[int]:
        """Members of ``candidate_set`` that are not adjacent to ``u`` (excluding ``u``)."""
        adjacency = self.neighbors(u)
        return {v for v in candidate_set if v != u and v not in adjacency}

    def missing_within(self, u: int, candidate_set: Iterable[int]) -> int:
        """Number of vertices of ``candidate_set`` (other than ``u``) missed by ``u``."""
        adjacency = self.neighbors(u)
        return sum(1 for v in candidate_set if v != u and v not in adjacency)

    def subgraph_is_kplex(self, vertex_set: Iterable[int], k: int) -> bool:
        """Whether the induced subgraph on ``vertex_set`` is a k-plex.

        A k-plex is a vertex set in which every vertex ``v`` is adjacent to
        at least ``|S| - k`` vertices of the set, i.e. misses at most ``k``
        vertices *including itself* (Berlowitz et al. convention used by the
        paper).
        """
        members = set(vertex_set)
        size = len(members)
        for u in members:
            adjacent_inside = len(self._adj[u] & members)
            if size - adjacent_inside > k:
                return False
        return True

    def to_bitset(self) -> "BitsetGraph":
        """Return a mask-capable copy of this graph (see :class:`BitsetGraph`)."""
        return BitsetGraph(self._n, self.edges())

    def to_packed(self) -> "Graph":
        """Return a packed copy (see :class:`repro.graph.packed.PackedGraph`).

        Falls back to the numpy-free
        :class:`repro.graph.packed.ArrayPackedGraph` when numpy is absent.
        """
        from .packed import packed_graph_class

        return packed_graph_class()(self._n, self.edges())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Graph(n={self._n}, num_edges={self._num_edges})"

    def _check(self, u: int) -> None:
        if not 0 <= u < self._n:
            raise IndexError(f"vertex {u} out of range [0, {self._n})")


class BitsetGraph(Graph):
    """A :class:`Graph` that also maintains one adjacency bitmask per vertex.

    Bit ``v`` of ``adj_mask(u)`` is set iff ``{u, v}`` is an edge.  The class
    keeps the exact public API of ``Graph`` (it *is* one); the k-plex
    enumerator detects the capability via
    :func:`repro.graph.protocol.supports_masks` and switches its hot
    predicates to word-parallel bitwise operations.

    Examples
    --------
    >>> g = BitsetGraph(3, edges=[(0, 1), (1, 2)])
    >>> bin(g.adj_mask(1))
    '0b101'
    >>> g.to_bitset() is g
    True
    """

    __slots__ = ("_masks",)

    #: Capability flag: tells the algorithms the bitwise fast paths apply.
    supports_masks = True

    def __init__(self, n: int, edges: Iterable[Tuple[int, int]] = ()) -> None:
        # The masks must exist before the base constructor replays ``edges``
        # through our ``add_edge`` override.
        self._masks: List[int] = [0] * max(n, 0)
        super().__init__(n, edges)

    def adj_mask(self, u: int) -> int:
        """Bitmask over vertex ids of the neighbours of ``u``."""
        return self._masks[u]

    @property
    def full_mask(self) -> int:
        """Mask with one bit per vertex (the whole vertex universe)."""
        return (1 << self._n) - 1

    def add_edge(self, u: int, v: int) -> bool:
        if not super().add_edge(u, v):
            return False
        self._masks[u] |= 1 << v
        self._masks[v] |= 1 << u
        return True

    def to_bitset(self) -> "BitsetGraph":
        """Already bitset-backed: return ``self`` (no copy)."""
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BitsetGraph(n={self._n}, num_edges={self._num_edges})"
