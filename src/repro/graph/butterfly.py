"""Butterfly counting and k-bitruss decomposition.

A *butterfly* is a complete 2 × 2 biclique.  The *k-bitruss* of a bipartite
graph is the maximal subgraph in which every edge participates in at least
``k`` butterflies.  The paper discusses k-bitruss as one of the alternative
cohesive-structure definitions (Sections 1 and 7); it imposes no
disconnection constraint, which is why k-biplexes are preferred for the
fraud-detection task.  We provide both primitives so the case study and the
documentation can compare against them.

The butterfly counting routine follows the vertex-priority idea of Wang et
al. (VLDB 2019) in spirit: wedges are accumulated from the side that makes
the wedge-centred work smaller.  On a mask-capable substrate
(:func:`repro.graph.protocol.supports_masks`) the per-pair common
neighbourhoods are word-parallel ``&`` + popcount operations instead of
per-vertex dictionary accumulation.  On a vectorized batch substrate
(:func:`repro.graph.protocol.supports_vector_batch`, the numpy ``packed``
classes) the pairwise common-neighbour counts come from blocked, whole-row
``np.bitwise_and`` + popcount broadcasts over the packed bit-matrix — no
per-vertex Python loop at all.  Per-edge butterfly supports ride the same
kernel: support((v, u)) falls out of one blocked common-neighbour matrix
and one integer matmul against the unpacked incidence matrix.  All
implementations return identical counts, so ``set``, ``bitset`` and
``packed`` graphs stay drop-in equivalent.

k-bitruss peeling is *incremental*: the butterfly supports are computed
once — on the vectorized kernel when the substrate allows — and removing an
edge only re-scores the edges that shared a butterfly with it, instead of
recomputing every support from scratch per round.  The incremental updates
stay on the mask paths even on the packed backend: a peeled edge has
support < k by definition, so each removal walks fewer than k butterflies,
which beats any whole-row re-scoring of the affected anchor rows.
"""

from __future__ import annotations

from collections import defaultdict, deque
from typing import Dict, Iterator, Optional, Tuple

from .bipartite import BipartiteGraph
from .protocol import iter_bits, supports_masks, supports_vector_batch


def count_butterflies(graph: BipartiteGraph) -> int:
    """Total number of butterflies (2 × 2 bicliques) in ``graph``.

    Counting is done by enumerating wedges centred on the side with the
    smaller total wedge count: for every pair of same-side vertices the
    number of common neighbours ``c`` contributes ``c * (c - 1) / 2``
    butterflies; summing over pairs via per-pair wedge counts avoids
    materialising the pairs explicitly.  A batch-capable substrate takes
    the fully vectorized pairwise route instead.
    """
    if supports_vector_batch(graph):
        return _count_butterflies_packed(graph)
    return _count_from_side(graph, from_left=_pivot_from_left(graph))


def _count_butterflies_packed(graph) -> int:
    """Whole-row vectorized twin of :func:`_count_from_side`.

    Anchors on the side whose pairwise sweep moves fewer words
    (``n² · words(other)``), then pulls blocked pairwise common-neighbour
    counts from ``common_neighbors_matrix``; each unordered pair
    contributes ``C(common, 2)`` butterflies.
    """
    import numpy as np

    side = _cheap_anchor_side(graph)
    n, words = graph.rows(side).shape
    if n < 2:
        return 0
    # Blocked to bound the (block × n × words) temporary at ~8 MB.
    block = max(1, min(n, 1_000_000 // max(1, n * words)))
    total = 0
    for start in range(0, n, block):
        stop = min(start + block, n)
        # Only pairs with column >= anchor survive the upper-triangle filter,
        # so pair each anchor block against the tail only (halves the
        # popcount volume versus the full pair matrix).
        common = graph.common_neighbors_matrix(
            side, anchors=slice(start, stop), others=slice(start, None)
        )
        pairs = common * (common - 1) // 2
        # Each unordered same-side pair counted once: column > anchor row.
        anchors = np.arange(start, stop)
        columns = np.arange(start, n)
        total += int(pairs[columns[None, :] > anchors[:, None]].sum())
    return total


def _cheap_anchor_side(graph) -> str:
    """The side whose pairwise common-neighbour sweep moves fewer words.

    Anchoring the vectorized kernels on side ``s`` costs
    ``n(s)² · words(other)`` popcounted words; both butterfly counting and
    the per-edge support kernel use this to pick their anchor.
    """
    left_cost = graph.n_left * graph.n_left * graph.rows("left").shape[1]
    right_cost = graph.n_right * graph.n_right * graph.rows("right").shape[1]
    return "left" if left_cost <= right_cost else "right"


def _unpack_incidence(rows, n_bits: int):
    """Unpack a ``uint64`` bit-matrix into a dense 0/1 ``int64`` matrix.

    Column ``b`` of the result is bit ``b`` of the packed rows (word
    ``b // 64``, bit ``b % 64``), i.e. the adjacency indicator the packed
    layout encodes.  ``float64`` so the support kernel's matmul runs on
    BLAS (integer matmuls take numpy's slow generic loop); every
    accumulated value is an integer far below 2^53, so the results stay
    exact.
    """
    import numpy as np

    if rows.shape[0] == 0 or rows.shape[1] == 0 or n_bits == 0:
        return np.zeros((rows.shape[0], n_bits))
    bits = np.unpackbits(
        np.ascontiguousarray(rows).view(np.uint8), axis=1, bitorder="little"
    )
    return bits[:, :n_bits].astype(np.float64)


def _edge_supports_packed(graph, side):
    """Yield ``(anchor, other, support)`` for the edges of ``graph``.

    The butterfly support of edge ``(a, o)`` (``a`` on ``side``) equals
    ``Σ_{a' ∈ Γ(o), a' ≠ a} (|Γ(a) ∩ Γ(a')| − 1)``.  With ``C`` the
    common-neighbour matrix of ``side`` and ``B`` the dense incidence
    matrix, the inner sum over a whole anchor block is one matmul:
    ``S = C · B`` gives ``S[a, o] = Σ_{a' ∈ Γ(o)} C[a, a']``, from which the
    support is ``S[a, o] − deg(a) − deg(o) + 1`` (subtracting the ``a' = a``
    term and one per remaining wedge).  ``C`` is computed in blocks to bound
    the temporary, so the whole sweep is ``np.bitwise_count`` broadcasts
    plus BLAS matmuls — no per-edge Python work.
    """
    import numpy as np

    rows = graph.rows(side)
    n, words = rows.shape
    if n == 0 or graph.num_edges == 0:
        return
    other = "right" if side == "left" else "left"
    incidence = _unpack_incidence(rows, graph.row_bits(side))
    other_degrees = graph.popcount_rows(other)
    # Blocked to bound the (block × n) common matrix and (block × n_other)
    # support matrix temporaries at ~8 MB, like the butterfly counter.
    block = max(1, min(n, 1_000_000 // max(1, n * words)))
    for start in range(0, n, block):
        stop = min(start + block, n)
        common = graph.common_neighbors_matrix(
            side, anchors=slice(start, stop)
        ).astype(np.float64)
        sums = common @ incidence
        block_rows, other_cols = np.nonzero(incidence[start:stop])
        if block_rows.size == 0:
            continue
        anchor_degrees = common[np.arange(stop - start), np.arange(start, stop)]
        supports = (
            sums[block_rows, other_cols]
            - anchor_degrees[block_rows]
            - other_degrees[other_cols]
            + 1
        )
        yield from zip(
            (block_rows + start).tolist(),
            other_cols.tolist(),
            supports.astype(np.int64).tolist(),
        )


def _edge_butterfly_counts_packed(graph) -> Dict[Tuple[int, int], int]:
    """Whole-row vectorized twin of the masked per-edge support loop."""
    side = _cheap_anchor_side(graph)
    if side == "left":
        return {(a, o): c for a, o, c in _edge_supports_packed(graph, side)}
    return {(o, a): c for a, o, c in _edge_supports_packed(graph, side)}


def _pivot_from_left(graph: BipartiteGraph) -> bool:
    """Whether anchoring the wedge enumeration on the left side is cheaper.

    Anchoring on the left walks, for every left anchor, the fans of its
    right-side neighbours, so its work is proportional to the number of
    wedges *centred on right vertices* — and symmetrically for the right.
    The comparison therefore picks the anchor side whose opposite side has
    the smaller wedge count.
    """
    wedges_centred_on_right = sum(
        d * (d - 1) // 2 for d in (graph.degree_of_right(u) for u in graph.right_vertices())
    )
    wedges_centred_on_left = sum(
        d * (d - 1) // 2 for d in (graph.degree_of_left(v) for v in graph.left_vertices())
    )
    return wedges_centred_on_right <= wedges_centred_on_left


def _count_from_side(graph: BipartiteGraph, from_left: bool) -> int:
    """Count butterflies by accumulating co-neighbour pair counts."""
    if supports_masks(graph):
        return _count_from_side_masked(graph, from_left)
    total = 0
    if from_left:
        anchors = graph.left_vertices()
        neighbors = graph.neighbors_of_left
    else:
        anchors = graph.right_vertices()
        neighbors = graph.neighbors_of_right
    for anchor in anchors:
        pair_counts: Dict[int, int] = defaultdict(int)
        anchor_neighbors = neighbors(anchor)
        for middle in anchor_neighbors:
            if from_left:
                fan = graph.neighbors_of_right(middle)
            else:
                fan = graph.neighbors_of_left(middle)
            for other in fan:
                if other > anchor:
                    pair_counts[other] += 1
        for count in pair_counts.values():
            total += count * (count - 1) // 2
    return total


def _count_from_side_masked(graph, from_left: bool) -> int:
    """Bitmask twin of :func:`_count_from_side`.

    For each anchor, the two-hop peers are gathered as the union of its
    middles' adjacency masks, and each peer's common-neighbour count is one
    word-parallel ``&`` + popcount against the anchor's adjacency.
    """
    total = 0
    if from_left:
        anchors = graph.left_vertices()
        adj = graph.adj_left_mask
        other_adj = graph.adj_right_mask
    else:
        anchors = graph.right_vertices()
        adj = graph.adj_right_mask
        other_adj = graph.adj_left_mask
    for anchor in anchors:
        anchor_mask = adj(anchor)
        peers = 0
        for middle in iter_bits(anchor_mask):
            peers |= other_adj(middle)
        # Each unordered same-side pair is visited once: only peers > anchor.
        peers >>= anchor + 1
        for offset in iter_bits(peers):
            common = (anchor_mask & adj(anchor + 1 + offset)).bit_count()
            total += common * (common - 1) // 2
    return total


def edge_butterfly_counts(graph: BipartiteGraph) -> Dict[Tuple[int, int], int]:
    """Number of butterflies containing each edge ``(left, right)``.

    The butterfly support of edge ``(v, u)`` equals the number of pairs
    ``(v', u')`` with ``v' ≠ v``, ``u' ≠ u`` such that all four edges exist.
    """
    if supports_vector_batch(graph):
        return _edge_butterfly_counts_packed(graph)
    if supports_masks(graph):
        adj_left = graph.adj_left_mask
        adj_right = graph.adj_right_mask
        support: Dict[Tuple[int, int], int] = {}
        for v, u in graph.edges():
            adj_v = adj_left(v)
            count = 0
            # Every v' adjacent to u shares at least the common neighbour u
            # with v; the remaining common neighbours are the u' candidates.
            for v_prime in iter_bits(adj_right(u) & ~(1 << v)):
                count += (adj_left(v_prime) & adj_v).bit_count() - 1
            support[(v, u)] = count
        return support
    support = {edge: 0 for edge in graph.edges()}
    for v, u in list(support.keys()):
        count = 0
        for u_prime in graph.neighbors_of_left(v):
            if u_prime == u:
                continue
            for v_prime in graph.neighbors_of_right(u):
                if v_prime == v:
                    continue
                if graph.has_edge(v_prime, u_prime):
                    count += 1
        support[(v, u)] = count
    return support


def _butterfly_mates(graph: BipartiteGraph, v: int, u: int) -> Iterator[Tuple[int, int]]:
    """Pairs ``(v', u')`` forming a butterfly with the edge ``(v, u)``.

    Assumes ``(v, u)`` itself has already been removed from ``graph``, so
    neither endpoint appears in the other's adjacency.
    """
    if supports_masks(graph):
        adj_right = graph.adj_right_mask
        fan_u = adj_right(u)
        for u_prime in iter_bits(graph.adj_left_mask(v)):
            for v_prime in iter_bits(fan_u & adj_right(u_prime)):
                yield v_prime, u_prime
        return
    fan_u = graph.neighbors_of_right(u)
    for u_prime in graph.neighbors_of_left(v):
        for v_prime in graph.neighbors_of_right(u_prime):
            if v_prime in fan_u:
                yield v_prime, u_prime


def k_bitruss(
    graph: BipartiteGraph,
    k: int,
    supports: Optional[Dict[Tuple[int, int], int]] = None,
) -> BipartiteGraph:
    """Return the k-bitruss subgraph (same vertex id space, fewer edges).

    Edges whose butterfly support drops below ``k`` are peeled iteratively
    until every remaining edge is contained in at least ``k`` butterflies.
    Isolated vertices are kept (the id space is unchanged) so that the
    result can be compared edge-wise against the input.

    Peeling is incremental: supports are computed once, and removing an edge
    decrements only the supports of edges that shared a butterfly with it
    (three per butterfly), so each butterfly is touched at most once overall
    instead of once per peeling round.

    ``supports`` optionally provides precomputed per-edge butterfly counts
    for exactly ``graph``'s edge set (the incremental maintenance layer in
    :mod:`repro.graph.dynamic` hands its maintained counts here to skip the
    from-scratch pass).  The mapping is copied, never mutated.
    """
    if k < 0:
        raise ValueError("k must be non-negative")
    working = graph.copy()
    if k == 0:
        return working
    # On a vectorized batch substrate the support computation below runs on
    # the blocked whole-row kernel; the peeling itself stays incremental on
    # the mask paths deliberately.  Every peeled edge has support < k, so
    # the incremental updates walk fewer than k butterflies per removal —
    # measured against a round-based vectorized re-scoring of the touched
    # anchor rows, the bounded incremental walk wins in every regime (the
    # rescore sweeps |touched| whole rows per round regardless of how few
    # butterflies actually died).
    support = dict(supports) if supports is not None else edge_butterfly_counts(working)
    queue = deque(edge for edge, count in support.items() if count < k)
    while queue:
        v, u = queue.popleft()
        if (v, u) not in support:
            continue  # already peeled via an earlier butterfly update
        del support[(v, u)]
        working.remove_edge(v, u)
        for v_prime, u_prime in _butterfly_mates(working, v, u):
            for edge in ((v, u_prime), (v_prime, u), (v_prime, u_prime)):
                support[edge] -= 1
                # Enqueue exactly on the >= k -> < k transition; edges that
                # started below k are already in the initial queue.
                if support[edge] == k - 1:
                    queue.append(edge)
    return working


def bitruss_number(graph: BipartiteGraph) -> Dict[Tuple[int, int], int]:
    """For every edge, the maximum ``k`` such that the edge survives in the k-bitruss.

    Computed by repeated peeling; suitable for the small graphs used in the
    tests and the case study, not for billion-edge inputs.
    """
    numbers: Dict[Tuple[int, int], int] = {edge: 0 for edge in graph.edges()}
    working = graph.copy()
    k = 1
    while working.num_edges > 0:
        truss = k_bitruss(working, k)
        surviving = set(truss.edges())
        for edge in list(numbers.keys()):
            if edge in surviving:
                numbers[edge] = k
        working = truss
        if truss.num_edges == 0:
            break
        k += 1
        if k > graph.num_edges:
            # An edge's support is strictly below |E| (every butterfly uses
            # three other edges), so some edge must peel before k reaches
            # |E| + 1.  Returning partial numbers here would silently corrupt
            # the decomposition — fail loudly instead.
            raise RuntimeError(
                "bitruss_number failed to converge: k exceeded the edge count "
                f"({graph.num_edges}) with {working.num_edges} edges still alive"
            )
    return numbers
