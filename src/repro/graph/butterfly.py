"""Butterfly counting and k-bitruss decomposition.

A *butterfly* is a complete 2 × 2 biclique.  The *k-bitruss* of a bipartite
graph is the maximal subgraph in which every edge participates in at least
``k`` butterflies.  The paper discusses k-bitruss as one of the alternative
cohesive-structure definitions (Sections 1 and 7); it imposes no
disconnection constraint, which is why k-biplexes are preferred for the
fraud-detection task.  We provide both primitives so the case study and the
documentation can compare against them.

The butterfly counting routine follows the vertex-priority idea of Wang et
al. (VLDB 2019) in spirit: wedges are accumulated from the lower-degree side
to keep the work proportional to the wedge count.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Tuple

from .bipartite import BipartiteGraph


def count_butterflies(graph: BipartiteGraph) -> int:
    """Total number of butterflies (2 × 2 bicliques) in ``graph``.

    Counting is done by enumerating wedges centred on the side with the
    smaller total wedge count: for every pair of same-side vertices the
    number of common neighbours ``c`` contributes ``c * (c - 1) / 2``
    butterflies; summing over pairs via per-pair wedge counts avoids
    materialising the pairs explicitly.
    """
    left_wedges = sum(
        d * (d - 1) // 2 for d in (graph.degree_of_right(u) for u in graph.right_vertices())
    )
    right_wedges = sum(
        d * (d - 1) // 2 for d in (graph.degree_of_left(v) for v in graph.left_vertices())
    )
    # Choose to pivot on the side whose opposite-side wedge count is smaller.
    if left_wedges <= right_wedges:
        return _count_from_side(graph, from_left=False)
    return _count_from_side(graph, from_left=True)


def _count_from_side(graph: BipartiteGraph, from_left: bool) -> int:
    """Count butterflies by accumulating co-neighbour pair counts."""
    total = 0
    if from_left:
        anchors = graph.left_vertices()
        neighbors = graph.neighbors_of_left
    else:
        anchors = graph.right_vertices()
        neighbors = graph.neighbors_of_right
    for anchor in anchors:
        pair_counts: Dict[int, int] = defaultdict(int)
        anchor_neighbors = neighbors(anchor)
        for middle in anchor_neighbors:
            if from_left:
                fan = graph.neighbors_of_right(middle)
            else:
                fan = graph.neighbors_of_left(middle)
            for other in fan:
                if other > anchor:
                    pair_counts[other] += 1
        for count in pair_counts.values():
            total += count * (count - 1) // 2
    return total


def edge_butterfly_counts(graph: BipartiteGraph) -> Dict[Tuple[int, int], int]:
    """Number of butterflies containing each edge ``(left, right)``.

    The butterfly support of edge ``(v, u)`` equals the number of pairs
    ``(v', u')`` with ``v' ≠ v``, ``u' ≠ u`` such that all four edges exist.
    """
    support: Dict[Tuple[int, int], int] = {edge: 0 for edge in graph.edges()}
    for v, u in list(support.keys()):
        count = 0
        for u_prime in graph.neighbors_of_left(v):
            if u_prime == u:
                continue
            for v_prime in graph.neighbors_of_right(u):
                if v_prime == v:
                    continue
                if graph.has_edge(v_prime, u_prime):
                    count += 1
        support[(v, u)] = count
    return support


def k_bitruss(graph: BipartiteGraph, k: int) -> BipartiteGraph:
    """Return the k-bitruss subgraph (same vertex id space, fewer edges).

    Edges whose butterfly support drops below ``k`` are peeled iteratively
    until every remaining edge is contained in at least ``k`` butterflies.
    Isolated vertices are kept (the id space is unchanged) so that the
    result can be compared edge-wise against the input.
    """
    if k < 0:
        raise ValueError("k must be non-negative")
    working = graph.copy()
    if k == 0:
        return working
    while True:
        support = edge_butterfly_counts(working)
        to_remove = [edge for edge, count in support.items() if count < k]
        if not to_remove:
            return working
        for v, u in to_remove:
            working.remove_edge(v, u)


def bitruss_number(graph: BipartiteGraph) -> Dict[Tuple[int, int], int]:
    """For every edge, the maximum ``k`` such that the edge survives in the k-bitruss.

    Computed by repeated peeling; suitable for the small graphs used in the
    tests and the case study, not for billion-edge inputs.
    """
    numbers: Dict[Tuple[int, int], int] = {edge: 0 for edge in graph.edges()}
    working = graph.copy()
    k = 1
    while working.num_edges > 0:
        truss = k_bitruss(working, k)
        surviving = set(truss.edges())
        for edge in list(numbers.keys()):
            if edge in surviving:
                numbers[edge] = k
        working = truss
        if truss.num_edges == 0:
            break
        k += 1
        if k > graph.num_edges:  # safety net; cannot loop forever
            break
    return numbers
