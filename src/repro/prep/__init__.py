"""Preprocessing & ordering pipeline shared by every enumeration layer.

``prepare(graph, k, mode, theta_left, theta_right)`` builds a
:class:`~repro.prep.plan.PrepPlan` — the reduced graph, the id maps back
to the original, and the candidate orderings — which the traversal engine,
the baselines and the CLI all consume.  See :mod:`repro.prep.plan` for the
modes, :mod:`repro.prep.reduce` for the (α, β)-core / bitruss reduction
soundness arguments and :mod:`repro.prep.ordering` for the degeneracy /
degree / Γ-score ordering strategies.

This package depends only on :mod:`repro.graph` (never on
:mod:`repro.core`), so the core traversal layer can import it freely.
"""

from .ordering import (
    ORDER_STRATEGIES,
    auto_order,
    choose_order_strategy,
    degeneracy_order,
    degree_order,
    gamma_score_order,
)
from .plan import (
    ORDER_ENV_VAR,
    PREP_ENV_VAR,
    PREP_MODES,
    PrepPlan,
    default_order_strategy,
    default_prep,
    prepare,
    reprepare,
    resolve_order_strategy,
    resolve_prep,
)
from .reduce import (
    Reduction,
    bitruss_support_bound,
    bound_core_sets,
    reduce_for_thresholds,
    repair_core_sets,
    threshold_core_bounds,
)

__all__ = [
    "ORDER_ENV_VAR",
    "PREP_ENV_VAR",
    "PREP_MODES",
    "PrepPlan",
    "default_order_strategy",
    "default_prep",
    "prepare",
    "reprepare",
    "resolve_order_strategy",
    "resolve_prep",
    "Reduction",
    "bound_core_sets",
    "reduce_for_thresholds",
    "repair_core_sets",
    "threshold_core_bounds",
    "bitruss_support_bound",
    "ORDER_STRATEGIES",
    "auto_order",
    "choose_order_strategy",
    "degeneracy_order",
    "degree_order",
    "gamma_score_order",
]
