"""Cost-aware vertex orderings for traversal roots and candidate expansion.

BBK-style degeneracy ordering adapted to the bipartite setting: peel the
minimum-degree vertex of *either* side repeatedly; the peel sequence is the
order.  Low-degeneracy vertices come first, so the traversal expands cheap,
sparse anchors before dense hubs — on large sparse graphs the anchors
processed early have small almost-satisfying graphs and the exclusion
prefixes accumulated by the time the hubs are reached prune hard.  The
degree and Γ-score heuristics are cheaper one-shot approximations of the
same idea (Γ-score ranks a vertex by the total degree of its
neighbourhood, a proxy for the cost of scoring its candidate set).

Every strategy returns ``(left_order, right_order)``: permutations of the
respective vertex id ranges, deterministic for a given graph (ties break
by degree, then side, then id).  Orderings never change *what* the
traversal enumerates — only the DFS order and therefore the work — which
is what the prep ablation rows in the benchmarks assert.
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, List, Tuple

Orders = Tuple[List[int], List[int]]

#: Auto-selection thresholds (see :func:`choose_order_strategy`).
AUTO_DENSE_DENSITY = 0.25
AUTO_HUB_SKEW = 4.0


def degeneracy_order(graph) -> Orders:
    """Two-sided min-degree peel (bipartite degeneracy ordering)."""
    left_degree = [graph.degree_of_left(v) for v in range(graph.n_left)]
    right_degree = [graph.degree_of_right(u) for u in range(graph.n_right)]
    # Lazy-deletion heap over both sides; stale entries (their recorded
    # degree no longer matches) are skipped on pop.
    heap = [(degree, 0, v) for v, degree in enumerate(left_degree)]
    heap += [(degree, 1, u) for u, degree in enumerate(right_degree)]
    heapq.heapify(heap)
    left_alive = [True] * graph.n_left
    right_alive = [True] * graph.n_right
    left_order: List[int] = []
    right_order: List[int] = []
    while heap:
        degree, side, vertex = heapq.heappop(heap)
        if side == 0:
            if not left_alive[vertex] or degree != left_degree[vertex]:
                continue
            left_alive[vertex] = False
            left_order.append(vertex)
            for u in graph.neighbors_of_left(vertex):
                if right_alive[u]:
                    right_degree[u] -= 1
                    heapq.heappush(heap, (right_degree[u], 1, u))
        else:
            if not right_alive[vertex] or degree != right_degree[vertex]:
                continue
            right_alive[vertex] = False
            right_order.append(vertex)
            for v in graph.neighbors_of_right(vertex):
                if left_alive[v]:
                    left_degree[v] -= 1
                    heapq.heappush(heap, (left_degree[v], 0, v))
    return left_order, right_order


def degree_order(graph) -> Orders:
    """One-shot ascending-degree order per side."""
    left = sorted(range(graph.n_left), key=lambda v: (graph.degree_of_left(v), v))
    right = sorted(range(graph.n_right), key=lambda u: (graph.degree_of_right(u), u))
    return left, right


def gamma_score_order(graph) -> Orders:
    """Ascending Γ-score: total degree of the vertex's neighbourhood.

    The Γ-score of a left vertex ``v`` is ``Σ_{u ∈ Γ(v)} deg(u)`` — the
    number of wedges through ``v``, which bounds how many second-hop
    vertices its almost-satisfying graphs can pull in.
    """
    right_degree = [graph.degree_of_right(u) for u in range(graph.n_right)]
    left_degree = [graph.degree_of_left(v) for v in range(graph.n_left)]

    def left_score(v: int) -> Tuple[int, int, int]:
        return (
            sum(right_degree[u] for u in graph.neighbors_of_left(v)),
            left_degree[v],
            v,
        )

    def right_score(u: int) -> Tuple[int, int, int]:
        return (
            sum(left_degree[v] for v in graph.neighbors_of_right(u)),
            right_degree[u],
            u,
        )

    left = sorted(range(graph.n_left), key=left_score)
    right = sorted(range(graph.n_right), key=right_score)
    return left, right


def choose_order_strategy(graph) -> str:
    """Pick a concrete strategy from cheap graph-shape statistics.

    One degree pass (no adjacency walks) decides between the three
    hand-picked strategies:

    * **dense** graphs (density ≥ ``AUTO_DENSE_DENSITY``) — degrees are
      near-uniform, so the peel order collapses to the degree order;
      ``degree`` pays the least for the same effect;
    * **hub-skewed** graphs (max degree ≥ ``AUTO_HUB_SKEW`` × mean) —
      ``degeneracy`` is the one strategy whose peel *re-ranks* after each
      removal, pushing the hubs to the back where accumulated exclusion
      prefixes prune them hardest;
    * otherwise (sparse, even degrees) — first-hop degree barely
      differentiates vertices; ``gamma``'s second-hop mass does.
    """
    left_degrees = [graph.degree_of_left(v) for v in range(graph.n_left)]
    right_degrees = [graph.degree_of_right(u) for u in range(graph.n_right)]
    n = graph.n_left + graph.n_right
    m = sum(left_degrees)
    if n == 0 or m == 0:
        return "degree"
    density = m / (graph.n_left * graph.n_right)
    if density >= AUTO_DENSE_DENSITY:
        return "degree"
    mean_degree = 2.0 * m / n
    max_degree = max(max(left_degrees, default=0), max(right_degrees, default=0))
    if max_degree >= AUTO_HUB_SKEW * mean_degree:
        return "degeneracy"
    return "gamma"


def auto_order(graph) -> Orders:
    """Shape-adaptive ordering: :func:`choose_order_strategy`, then run it."""
    return ORDER_STRATEGIES[choose_order_strategy(graph)](graph)


#: Named ordering strategies selectable by :func:`repro.prep.prepare`.
ORDER_STRATEGIES: Dict[str, Callable[[object], Orders]] = {
    "degeneracy": degeneracy_order,
    "degree": degree_order,
    "gamma": gamma_score_order,
}
# Registered after the dict exists: ``auto`` dispatches *into* the table.
ORDER_STRATEGIES["auto"] = auto_order
