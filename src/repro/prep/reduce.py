"""Threshold-driven graph reduction: (α, β)-core and bitruss peeling.

Both reductions are *safe by construction* for thresholded enumeration —
they only remove vertices/edges that provably cannot participate in any
maximal k-biplex meeting the ``(θ_L, θ_R)`` size thresholds:

* **(α, β)-core** — a left vertex ``v`` of a k-biplex ``H`` with
  ``|R_H| ≥ θ_R`` misses at most ``k`` of ``R_H``, so
  ``deg_G(v) ≥ deg_H(v) ≥ θ_R − k``; symmetrically
  ``deg_G(u) ≥ θ_L − k`` for right vertices.  Every qualifying biplex
  therefore survives the ``(θ_R − k, θ_L − k)``-core (note the swap:
  ``α`` constrains *left* degrees against the *right* threshold).  The
  bound is asymmetric on purpose — the previous large-MBP preprocessing
  applied ``min(θ_L, θ_R) − k`` to *both* sides, which over-peels the
  unconstrained side when the thresholds differ (e.g. ``θ_L = 0``).

* **t-bitruss** — every edge ``(v, u)`` of a qualifying biplex ``H`` is
  contained in at least ``t`` butterflies *within* ``H``: ``u`` has
  ``a ≥ θ_L − k − 1`` other neighbours in ``L_H`` and ``v`` has
  ``b ≥ θ_R − k − 1`` other neighbours in ``R_H``; of the ``a · b``
  candidate wedge pairs at most ``a · k`` lack the closing edge (each
  candidate left vertex misses at most ``k`` of ``R_H``), giving
  ``support ≥ a · (b − k)`` — and the mirrored bound ``b · (a − k)``.
  Since the edge-support property is closed under union, the maximal
  subgraph with it (the t-bitruss) contains every qualifying biplex with
  all of its edges.  Peeling edges preserves the *solution set* exactly:
  removing edges only increases miss counts, so any extension possible in
  the peeled graph is possible in ``G``; conversely a qualifying solution
  maximal in ``G`` stays maximal in the peeled graph because any blocking
  extension would itself sit inside a (surviving) qualifying biplex.

The reduction returns a compacted graph of the *same substrate class* as
its input (``induced_subgraph_with_mapping`` preserves the backend) plus
``new id → original id`` maps for both sides.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Set, Tuple

from ..graph.cores import alpha_beta_core, alpha_beta_core_subgraph


def threshold_core_bounds(k: int, theta_left: int, theta_right: int) -> Tuple[int, int]:
    """The ``(α, β)`` degree bounds implied by the size thresholds.

    ``α`` (left-vertex degrees) derives from the *right* threshold and vice
    versa; a threshold of 0 imposes no bound on the opposite side.
    """
    return max(theta_right - k, 0), max(theta_left - k, 0)


def bitruss_support_bound(k: int, theta_left: int, theta_right: int) -> int:
    """Minimum butterfly support of any edge of a ``(θ_L, θ_R)``-large k-biplex.

    ``max(a(b − k), b(a − k))`` with ``a = θ_L − k − 1`` and
    ``b = θ_R − k − 1`` (see the module docstring); 0 when the thresholds
    are too small to guarantee anything, in which case bitruss peeling is
    skipped.
    """
    if theta_left <= 0 or theta_right <= 0:
        return 0
    a = theta_left - k - 1
    b = theta_right - k - 1
    bound = 0
    if a > 0 and b - k > 0:
        bound = a * (b - k)
    if b > 0 and a - k > 0:
        bound = max(bound, b * (a - k))
    return bound


def bound_core_sets(
    graph,
    k: int,
    bound: int,
    theta_left: int = 0,
    theta_right: int = 0,
) -> Tuple[Set[int], Set[int]]:
    """Survivor sets of the *incumbent-bound* re-reduction (no compaction).

    Mid-run, once a solver objective holds a size lower bound ``L``
    (= ``bound``), any still-useful k-biplex ``H`` satisfies
    ``|L_H| + |R_H| >= L`` on top of the per-side thresholds — so with
    ``s_l`` / ``s_r`` surviving vertices per side it also satisfies
    ``|R_H| >= L - s_l`` and ``|L_H| >= L - s_r``.  Those implied
    thresholds feed :func:`threshold_core_bounds` (the usual
    ``alpha = max(θ_R - k, 0)`` swap), the (α, β)-core peel shrinks the
    sides, the implied thresholds rise, and the loop repeats **to the
    fixpoint**.  Every qualifying biplex survives each round by the
    classic core argument, so it survives the fixpoint.

    Returns the surviving ``(left, right)`` vertex sets in the *input
    graph's* id space — deliberately uncompacted, because the engine uses
    them as membership oracles for subtree upper bounds
    (``|core_left| + |R ∩ core_right|``), not as a new traversal graph.
    """
    survivors_left = graph.n_left
    survivors_right = graph.n_right
    left: Set[int] = set(graph.left_vertices())
    right: Set[int] = set(graph.right_vertices())
    while True:
        implied_left = max(theta_left, bound - survivors_right)
        implied_right = max(theta_right, bound - survivors_left)
        alpha, beta = threshold_core_bounds(k, implied_left, implied_right)
        if alpha == 0 and beta == 0:
            return left, right
        left, right = alpha_beta_core(graph, alpha, beta)
        if len(left) == survivors_left and len(right) == survivors_right:
            return left, right
        survivors_left = len(left)
        survivors_right = len(right)
        if not survivors_left or not survivors_right:
            return left, right


def repair_core_sets(
    graph,
    alpha: int,
    beta: int,
    old_left: Set[int],
    old_right: Set[int],
    touched_left: Set[int],
    touched_right: Set[int],
) -> Tuple[Set[int], Set[int]]:
    """Exact (α, β)-core of a mutated graph, repaired from the old core.

    ``old_left`` / ``old_right`` are the core sets of the graph *before* a
    mutation batch; ``touched_left`` / ``touched_right`` are the endpoints
    of every applied edge.  Every post-mutation core member outside the old
    core is reachable from a touched vertex through old non-core vertices
    whose total degree meets their side's bound: a connected chunk of new
    members containing no touched vertex would have had identical degrees
    before the batch and so would have qualified then, contradicting the
    old core's maximality.  So the BFS closure below over-approximates the
    new membership, and one exact peel of ``old core ∪ closure`` (degrees
    restricted to that candidate set) lands on the unique new core.

    Cost is O(edges incident to the candidates) — the affected
    neighborhood plus the old core, never the whole graph.
    """
    cand_left: Set[int] = set(old_left)
    cand_right: Set[int] = set(old_right)
    grow = deque()
    for v in touched_left:
        if v not in cand_left and graph.degree_of_left(v) >= alpha:
            cand_left.add(v)
            grow.append(("L", v))
    for u in touched_right:
        if u not in cand_right and graph.degree_of_right(u) >= beta:
            cand_right.add(u)
            grow.append(("R", u))
    while grow:
        side, vertex = grow.popleft()
        if side == "L":
            for u in graph.neighbors_of_left(vertex):
                if u not in cand_right and graph.degree_of_right(u) >= beta:
                    cand_right.add(u)
                    grow.append(("R", u))
        else:
            for v in graph.neighbors_of_right(vertex):
                if v not in cand_left and graph.degree_of_left(v) >= alpha:
                    cand_left.add(v)
                    grow.append(("L", v))
    left_deg = {
        v: sum(1 for u in graph.neighbors_of_left(v) if u in cand_right)
        for v in cand_left
    }
    right_deg = {
        u: sum(1 for v in graph.neighbors_of_right(u) if v in cand_left)
        for u in cand_right
    }
    peel = deque()
    for v, degree in left_deg.items():
        if degree < alpha:
            peel.append(("L", v))
    for u, degree in right_deg.items():
        if degree < beta:
            peel.append(("R", u))
    while peel:
        side, vertex = peel.popleft()
        if side == "L":
            if vertex not in cand_left:
                continue
            cand_left.discard(vertex)
            for u in graph.neighbors_of_left(vertex):
                if u in cand_right:
                    right_deg[u] -= 1
                    if right_deg[u] == beta - 1:
                        peel.append(("R", u))
        else:
            if vertex not in cand_right:
                continue
            cand_right.discard(vertex)
            for v in graph.neighbors_of_right(vertex):
                if v in cand_left:
                    left_deg[v] -= 1
                    if left_deg[v] == alpha - 1:
                        peel.append(("L", v))
    return cand_left, cand_right


@dataclass
class Reduction:
    """Result of :func:`reduce_for_thresholds`.

    ``left_map`` / ``right_map`` are ``new id → original id`` lists; both
    are ``None`` when the reduction removed nothing (``graph`` is then the
    input object itself, not a copy).
    """

    graph: object
    left_map: Optional[List[int]]
    right_map: Optional[List[int]]
    removed_left: int = 0
    removed_right: int = 0
    removed_edges: int = 0
    #: The mutation epoch of the input graph this reduction was computed
    #: at (see :attr:`repro.graph.BipartiteGraph.epoch`); consumers treat
    #: an epoch mismatch as staleness.
    epoch: int = 0
    #: Survivors (original ids) of the *first* (α, β)-core stage — the
    #: anchor for incremental re-reduction after a mutation batch
    #: (:func:`repro.prep.plan.reprepare` repairs this core locally and
    #: re-runs the rest of the pipeline only inside it).  ``None`` when the
    #: thresholds imposed no bounds.
    core_left: Optional[FrozenSet[int]] = None
    core_right: Optional[FrozenSet[int]] = None

    @property
    def is_identity(self) -> bool:
        return self.left_map is None and self.right_map is None


def reduce_for_thresholds(
    graph, k: int, theta_left: int = 0, theta_right: int = 0
) -> Reduction:
    """Shrink ``graph`` to the part that can hold ``(θ_L, θ_R)``-large k-biplexes.

    Pipeline: (α, β)-core peel → compact, then alternate bitruss peels
    (when the support bound is positive) with further core peels *until
    the graph stops shrinking*.  Each stage only ever removes
    vertices/edges, so composing them is safe; the returned maps compose
    the compactions.  The fixpoint matters beyond reduction strength:
    parallel workers re-run the preparation on the already-reduced graph
    they receive, and only a fixpoint guarantees they reproduce it (and
    its vertex id space) exactly.  With both thresholds at 0 (plain
    enumeration) the reduction is the identity.
    """
    alpha, beta = threshold_core_bounds(k, theta_left, theta_right)
    support = bitruss_support_bound(k, theta_left, theta_right)
    epoch = getattr(graph, "epoch", 0)
    if alpha == 0 and beta == 0 and support < 1:
        return Reduction(graph, None, None, epoch=epoch)
    original_edges = graph.num_edges
    reduced, left_map, right_map = alpha_beta_core_subgraph(graph, alpha, beta)
    core_left = frozenset(left_map)
    core_right = frozenset(right_map)
    if support >= 1:
        from ..graph.butterfly import k_bitruss

        while reduced.num_edges:
            trussed = k_bitruss(reduced, support)
            if trussed.num_edges == reduced.num_edges:
                break
            # Edges went away: degrees dropped, so the core bounds can bite
            # again; re-peel and fold the new compaction into the maps.
            # (The core peel may in turn drop edge supports below the
            # bound, hence the loop.)
            reduced, inner_left, inner_right = alpha_beta_core_subgraph(
                trussed, alpha, beta
            )
            left_map = [left_map[v] for v in inner_left]
            right_map = [right_map[u] for u in inner_right]
    if (
        reduced.n_left == graph.n_left
        and reduced.n_right == graph.n_right
        and reduced.num_edges == original_edges
    ):
        # Nothing was peeled: hand back the input object so downstream
        # consumers can skip the remapping entirely.
        return Reduction(
            graph, None, None, epoch=epoch, core_left=core_left, core_right=core_right
        )
    return Reduction(
        reduced,
        left_map,
        right_map,
        removed_left=graph.n_left - reduced.n_left,
        removed_right=graph.n_right - reduced.n_right,
        removed_edges=original_edges - reduced.num_edges,
        epoch=epoch,
        core_left=core_left,
        core_right=core_right,
    )
