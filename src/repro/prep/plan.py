"""The :class:`PrepPlan`: one prepared view of a graph that entry points consume.

Every enumeration entry point (the traversal engine, the baselines, the
CLI) prepares the input once and then runs against the plan: the (possibly
reduced) graph, the ``new id → original id`` maps to translate reported
solutions back, and the candidate orderings.  Three modes:

* ``"off"`` — no reduction, canonical vertex order; reproduces the
  pre-plan behaviour bit for bit.
* ``"core"`` (the default) — threshold-driven (α, β)-core / bitruss
  reduction (:mod:`repro.prep.reduce`); a no-op when both size thresholds
  are 0, so plain enumerations are unchanged.
* ``"core+order"`` — the reduction plus degeneracy-style candidate
  ordering (:mod:`repro.prep.ordering`); same solution set, different
  traversal order.

The ``REPRO_PREP`` environment variable flips the default globally (CI
runs a tier-1 leg with ``REPRO_PREP=core+order``), mirroring how
``REPRO_BACKEND`` selects the adjacency substrate.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import List, Optional

from .ordering import ORDER_STRATEGIES, choose_order_strategy
from .reduce import reduce_for_thresholds

#: Modes accepted by :func:`prepare` and every ``prep=`` parameter.
PREP_MODES = ("off", "core", "core+order")

#: Environment variable overriding :func:`default_prep`.
PREP_ENV_VAR = "REPRO_PREP"

#: Environment variable overriding :func:`default_order_strategy`.
ORDER_ENV_VAR = "REPRO_ORDER"


def default_order_strategy() -> str:
    """The candidate-ordering strategy used when none is requested.

    ``degeneracy`` by default (the paper's BBK-style peel); set
    ``REPRO_ORDER`` to ``degree``, ``gamma`` or ``auto`` to flip it
    globally, mirroring ``REPRO_PREP`` / ``REPRO_BACKEND``.
    """
    strategy = os.environ.get(ORDER_ENV_VAR, "degeneracy")
    if strategy not in ORDER_STRATEGIES:
        raise ValueError(
            f"{ORDER_ENV_VAR}={strategy!r} is not a valid order strategy; "
            f"expected one of {tuple(ORDER_STRATEGIES)}"
        )
    return strategy


def resolve_order_strategy(strategy: Optional[str]) -> str:
    """Resolve an explicit or defaulted ordering strategy, validating it."""
    if strategy is None:
        return default_order_strategy()
    if strategy not in ORDER_STRATEGIES:
        raise ValueError(
            f"unknown order strategy {strategy!r}; "
            f"expected one of {tuple(ORDER_STRATEGIES)}"
        )
    return strategy


def default_prep() -> str:
    """The preprocessing mode used when none is requested explicitly.

    ``core`` by default: the reduction is provably solution-preserving,
    free when no size thresholds are set, and a large win on thresholded
    workloads.  Set ``REPRO_PREP`` to ``core+order`` to add cost-aware
    candidate ordering globally, or ``off`` to restore raw-graph
    canonical-order enumeration.
    """
    mode = os.environ.get(PREP_ENV_VAR, "core")
    if mode not in PREP_MODES:
        raise ValueError(
            f"{PREP_ENV_VAR}={mode!r} is not a valid prep mode; expected one of {PREP_MODES}"
        )
    return mode


def resolve_prep(mode: Optional[str]) -> str:
    """Resolve an explicit or defaulted prep mode, validating it."""
    if mode is None:
        return default_prep()
    if mode not in PREP_MODES:
        raise ValueError(f"unknown prep mode {mode!r}; expected one of {PREP_MODES}")
    return mode


@dataclass
class PrepPlan:
    """A prepared enumeration input: reduced graph, id maps, orderings.

    ``left_map`` / ``right_map`` are ``new id → original id`` lists and
    are ``None`` when the reduction removed nothing (``graph`` is then the
    input object itself).  ``left_order`` / ``right_order`` are candidate
    orderings over the *reduced* id space, ``None`` for canonical order.
    """

    mode: str
    graph: object
    left_map: Optional[List[int]] = None
    right_map: Optional[List[int]] = None
    left_order: Optional[List[int]] = None
    right_order: Optional[List[int]] = None
    removed_left: int = 0
    removed_right: int = 0
    removed_edges: int = 0
    #: The *concrete* ordering strategy that produced ``left_order`` /
    #: ``right_order`` (``auto`` resolves to its pick); ``None`` unless
    #: mode is ``core+order``.
    order_strategy: Optional[str] = None

    @property
    def is_identity_map(self) -> bool:
        """Whether reported solutions need no id translation."""
        return self.left_map is None and self.right_map is None

    def translate(self, solution):
        """Map a solution from reduced ids back to original-graph ids.

        Works for any ``Biplex``-shaped value (a frozen dataclass with
        ``left`` / ``right`` frozensets); constructing through
        ``type(solution)`` keeps this module free of core-layer imports.
        """
        if self.is_identity_map:
            return solution
        left_map, right_map = self.left_map, self.right_map
        return type(solution)(
            left=frozenset(left_map[v] for v in solution.left),
            right=frozenset(right_map[u] for u in solution.right),
        )


def prepare(
    graph,
    k: int,
    mode: Optional[str] = None,
    theta_left: int = 0,
    theta_right: int = 0,
    order_strategy: Optional[str] = None,
) -> PrepPlan:
    """Build the :class:`PrepPlan` for one enumeration run.

    ``mode=None`` resolves via :func:`default_prep` (the ``REPRO_PREP``
    environment variable, falling back to ``core``).  The reduction uses
    the asymmetric threshold bounds of :mod:`repro.prep.reduce` — sound
    for ``theta_left != theta_right`` — and the ordering (``core+order``
    only) is computed on the reduced graph with the named strategy from
    :data:`repro.prep.ordering.ORDER_STRATEGIES`; ``order_strategy=None``
    resolves via ``REPRO_ORDER`` (default ``degeneracy``), and ``auto``
    picks from graph-shape statistics.  The plan records the concrete
    strategy used in :attr:`PrepPlan.order_strategy`.
    """
    mode = resolve_prep(mode)
    if mode == "off":
        return PrepPlan(mode=mode, graph=graph)
    reduction = reduce_for_thresholds(graph, k, theta_left, theta_right)
    left_order = right_order = None
    resolved_strategy: Optional[str] = None
    if mode == "core+order":
        resolved_strategy = resolve_order_strategy(order_strategy)
        if resolved_strategy == "auto":
            # Resolve on the *reduced* graph: that is the shape the
            # ordering will actually run over.
            resolved_strategy = choose_order_strategy(reduction.graph)
        left_order, right_order = ORDER_STRATEGIES[resolved_strategy](reduction.graph)
    return PrepPlan(
        mode=mode,
        graph=reduction.graph,
        left_map=reduction.left_map,
        right_map=reduction.right_map,
        left_order=left_order,
        right_order=right_order,
        removed_left=reduction.removed_left,
        removed_right=reduction.removed_right,
        removed_edges=reduction.removed_edges,
        order_strategy=resolved_strategy,
    )
