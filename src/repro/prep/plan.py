"""The :class:`PrepPlan`: one prepared view of a graph that entry points consume.

Every enumeration entry point (the traversal engine, the baselines, the
CLI) prepares the input once and then runs against the plan: the (possibly
reduced) graph, the ``new id → original id`` maps to translate reported
solutions back, and the candidate orderings.  Three modes:

* ``"off"`` — no reduction, canonical vertex order; reproduces the
  pre-plan behaviour bit for bit.
* ``"core"`` (the default) — threshold-driven (α, β)-core / bitruss
  reduction (:mod:`repro.prep.reduce`); a no-op when both size thresholds
  are 0, so plain enumerations are unchanged.
* ``"core+order"`` — the reduction plus degeneracy-style candidate
  ordering (:mod:`repro.prep.ordering`); same solution set, different
  traversal order.

The ``REPRO_PREP`` environment variable flips the default globally (CI
runs a tier-1 leg with ``REPRO_PREP=core+order``), mirroring how
``REPRO_BACKEND`` selects the adjacency substrate.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from typing import FrozenSet, Iterable, List, Optional, Tuple

from .ordering import ORDER_STRATEGIES, choose_order_strategy
from .reduce import (
    bitruss_support_bound,
    reduce_for_thresholds,
    repair_core_sets,
    threshold_core_bounds,
)

#: Modes accepted by :func:`prepare` and every ``prep=`` parameter.
PREP_MODES = ("off", "core", "core+order")

#: Environment variable overriding :func:`default_prep`.
PREP_ENV_VAR = "REPRO_PREP"

#: Environment variable overriding :func:`default_order_strategy`.
ORDER_ENV_VAR = "REPRO_ORDER"


def default_order_strategy() -> str:
    """The candidate-ordering strategy used when none is requested.

    ``degeneracy`` by default (the paper's BBK-style peel); set
    ``REPRO_ORDER`` to ``degree``, ``gamma`` or ``auto`` to flip it
    globally, mirroring ``REPRO_PREP`` / ``REPRO_BACKEND``.
    """
    strategy = os.environ.get(ORDER_ENV_VAR, "degeneracy")
    if strategy not in ORDER_STRATEGIES:
        raise ValueError(
            f"{ORDER_ENV_VAR}={strategy!r} is not a valid order strategy; "
            f"expected one of {tuple(ORDER_STRATEGIES)}"
        )
    return strategy


def resolve_order_strategy(strategy: Optional[str]) -> str:
    """Resolve an explicit or defaulted ordering strategy, validating it."""
    if strategy is None:
        return default_order_strategy()
    if strategy not in ORDER_STRATEGIES:
        raise ValueError(
            f"unknown order strategy {strategy!r}; "
            f"expected one of {tuple(ORDER_STRATEGIES)}"
        )
    return strategy


def default_prep() -> str:
    """The preprocessing mode used when none is requested explicitly.

    ``core`` by default: the reduction is provably solution-preserving,
    free when no size thresholds are set, and a large win on thresholded
    workloads.  Set ``REPRO_PREP`` to ``core+order`` to add cost-aware
    candidate ordering globally, or ``off`` to restore raw-graph
    canonical-order enumeration.
    """
    mode = os.environ.get(PREP_ENV_VAR, "core")
    if mode not in PREP_MODES:
        raise ValueError(
            f"{PREP_ENV_VAR}={mode!r} is not a valid prep mode; expected one of {PREP_MODES}"
        )
    return mode


def resolve_prep(mode: Optional[str]) -> str:
    """Resolve an explicit or defaulted prep mode, validating it."""
    if mode is None:
        return default_prep()
    if mode not in PREP_MODES:
        raise ValueError(f"unknown prep mode {mode!r}; expected one of {PREP_MODES}")
    return mode


@dataclass
class PrepPlan:
    """A prepared enumeration input: reduced graph, id maps, orderings.

    ``left_map`` / ``right_map`` are ``new id → original id`` lists and
    are ``None`` when the reduction removed nothing (``graph`` is then the
    input object itself).  ``left_order`` / ``right_order`` are candidate
    orderings over the *reduced* id space, ``None`` for canonical order.
    """

    mode: str
    graph: object
    left_map: Optional[List[int]] = None
    right_map: Optional[List[int]] = None
    left_order: Optional[List[int]] = None
    right_order: Optional[List[int]] = None
    removed_left: int = 0
    removed_right: int = 0
    removed_edges: int = 0
    #: The *concrete* ordering strategy that produced ``left_order`` /
    #: ``right_order`` (``auto`` resolves to its pick); ``None`` unless
    #: mode is ``core+order``.
    order_strategy: Optional[str] = None
    #: The mutation epoch of the input graph this plan was prepared at
    #: (see :attr:`repro.graph.BipartiteGraph.epoch`).  Cursor fingerprints
    #: and the service plan/result caches key on it: a plan whose epoch
    #: trails the graph's is stale.
    epoch: int = 0
    #: First-stage (α, β)-core survivors in *original* ids — the anchor
    #: :func:`reprepare` repairs locally after a mutation batch.  ``None``
    #: when the thresholds imposed no bounds (or mode is ``off``).
    core_left: Optional[FrozenSet[int]] = None
    core_right: Optional[FrozenSet[int]] = None

    @property
    def is_identity_map(self) -> bool:
        """Whether reported solutions need no id translation."""
        return self.left_map is None and self.right_map is None

    def translate(self, solution):
        """Map a solution from reduced ids back to original-graph ids.

        Works for any ``Biplex``-shaped value (a frozen dataclass with
        ``left`` / ``right`` frozensets); constructing through
        ``type(solution)`` keeps this module free of core-layer imports.
        """
        if self.is_identity_map:
            return solution
        left_map, right_map = self.left_map, self.right_map
        return type(solution)(
            left=frozenset(left_map[v] for v in solution.left),
            right=frozenset(right_map[u] for u in solution.right),
        )


def prepare(
    graph,
    k: int,
    mode: Optional[str] = None,
    theta_left: int = 0,
    theta_right: int = 0,
    order_strategy: Optional[str] = None,
) -> PrepPlan:
    """Build the :class:`PrepPlan` for one enumeration run.

    ``mode=None`` resolves via :func:`default_prep` (the ``REPRO_PREP``
    environment variable, falling back to ``core``).  The reduction uses
    the asymmetric threshold bounds of :mod:`repro.prep.reduce` — sound
    for ``theta_left != theta_right`` — and the ordering (``core+order``
    only) is computed on the reduced graph with the named strategy from
    :data:`repro.prep.ordering.ORDER_STRATEGIES`; ``order_strategy=None``
    resolves via ``REPRO_ORDER`` (default ``degeneracy``), and ``auto``
    picks from graph-shape statistics.  The plan records the concrete
    strategy used in :attr:`PrepPlan.order_strategy`.
    """
    mode = resolve_prep(mode)
    if mode == "off":
        return PrepPlan(mode=mode, graph=graph, epoch=getattr(graph, "epoch", 0))
    reduction = reduce_for_thresholds(graph, k, theta_left, theta_right)
    left_order = right_order = None
    resolved_strategy: Optional[str] = None
    if mode == "core+order":
        resolved_strategy = resolve_order_strategy(order_strategy)
        if resolved_strategy == "auto":
            # Resolve on the *reduced* graph: that is the shape the
            # ordering will actually run over.
            resolved_strategy = choose_order_strategy(reduction.graph)
        left_order, right_order = ORDER_STRATEGIES[resolved_strategy](reduction.graph)
    return PrepPlan(
        mode=mode,
        graph=reduction.graph,
        left_map=reduction.left_map,
        right_map=reduction.right_map,
        left_order=left_order,
        right_order=right_order,
        removed_left=reduction.removed_left,
        removed_right=reduction.removed_right,
        removed_edges=reduction.removed_edges,
        order_strategy=resolved_strategy,
        epoch=reduction.epoch,
        core_left=reduction.core_left,
        core_right=reduction.core_right,
    )


def reprepare(
    graph,
    k: int,
    previous: PrepPlan,
    inserts: Iterable[Tuple[int, int]] = (),
    deletes: Iterable[Tuple[int, int]] = (),
    mode: Optional[str] = None,
    theta_left: int = 0,
    theta_right: int = 0,
    order_strategy: Optional[str] = None,
) -> PrepPlan:
    """Rebuild a plan after ``graph`` absorbed a mutation batch, locally.

    ``previous`` must be a plan built by :func:`prepare` over the *same
    graph object* with the same ``k`` / mode / thresholds / ordering
    (callers — the hot-graph registry — key plans by exactly those, so the
    contract holds by construction); ``inserts`` / ``deletes`` are the edge
    batches applied since, already folded into ``graph``.

    Strategy: repair the first-stage (α, β)-core from the plan's recorded
    survivor sets (:func:`repro.prep.reduce.repair_core_sets` — exact, and
    local to the affected neighborhood), then

    * if the core is unchanged and no applied edge has both endpoints
      inside it, the whole old fixpoint still stands — the previous plan is
      returned re-stamped with the new epoch (this is the streaming fraud
      fast path: camouflage edges land outside the thresholded core);
    * otherwise the remaining reduction pipeline re-runs only on the new
      core's induced subgraph and the id maps are spliced back through the
      compaction.  The reduction fixpoint is the unique maximum subgraph
      meeting the core/support bounds, so the spliced result is
      content-identical to a from-scratch :func:`prepare` — cursor
      fingerprints agree no matter which path built the plan.

    Falls back to :func:`prepare` when nothing incremental applies
    (mode ``off``, unbounded thresholds, or a plan without core sets).
    """
    mode = resolve_prep(mode)
    if (
        previous is None
        or mode == "off"
        or previous.mode != mode
        or previous.core_left is None
        or previous.core_right is None
    ):
        return prepare(graph, k, mode, theta_left, theta_right, order_strategy)
    alpha, beta = threshold_core_bounds(k, theta_left, theta_right)
    support = bitruss_support_bound(k, theta_left, theta_right)
    if alpha == 0 and beta == 0 and support < 1:
        return prepare(graph, k, mode, theta_left, theta_right, order_strategy)
    inserts = list(inserts)
    deletes = list(deletes)
    touched_left = {v for v, _ in inserts} | {v for v, _ in deletes}
    touched_right = {u for _, u in inserts} | {u for _, u in deletes}
    core_left, core_right = repair_core_sets(
        graph,
        alpha,
        beta,
        previous.core_left,
        previous.core_right,
        touched_left,
        touched_right,
    )
    epoch = getattr(graph, "epoch", 0)
    touched_inside = any(
        v in core_left and u in core_right for v, u in inserts + deletes
    )
    if (
        not touched_inside
        and core_left == set(previous.core_left)
        and core_right == set(previous.core_right)
    ):
        return replace(previous, epoch=epoch)
    induced, left_ids, right_ids = graph.induced_subgraph_with_mapping(
        core_left, core_right
    )
    # The inner pipeline re-peels the (already-core) induced subgraph to
    # the same fixpoint a from-scratch run would reach; its maps are
    # relative to ``induced`` and splice through ``left_ids``/``right_ids``.
    reduction = reduce_for_thresholds(induced, k, theta_left, theta_right)
    if reduction.is_identity:
        final_graph = reduction.graph
        left_map, right_map = left_ids, right_ids
    else:
        final_graph = reduction.graph
        left_map = [left_ids[v] for v in reduction.left_map]
        right_map = [right_ids[u] for u in reduction.right_map]
    if (
        final_graph.n_left == graph.n_left
        and final_graph.n_right == graph.n_right
        and final_graph.num_edges == graph.num_edges
    ):
        # The repaired reduction removed nothing: canonicalize to the
        # identity plan a from-scratch prepare() would return (maps of
        # None, the input object itself) so the two paths stay
        # content-identical plan for plan, not just fingerprint for
        # fingerprint.
        final_graph = graph
        left_map = right_map = None
    left_order = right_order = None
    resolved_strategy: Optional[str] = None
    if mode == "core+order":
        resolved_strategy = resolve_order_strategy(order_strategy)
        if resolved_strategy == "auto":
            resolved_strategy = choose_order_strategy(final_graph)
        left_order, right_order = ORDER_STRATEGIES[resolved_strategy](final_graph)
    return PrepPlan(
        mode=mode,
        graph=final_graph,
        left_map=left_map,
        right_map=right_map,
        left_order=left_order,
        right_order=right_order,
        removed_left=graph.n_left - final_graph.n_left,
        removed_right=graph.n_right - final_graph.n_right,
        removed_edges=graph.num_edges - final_graph.num_edges,
        order_strategy=resolved_strategy,
        epoch=epoch,
        core_left=frozenset(core_left),
        core_right=frozenset(core_right),
    )
