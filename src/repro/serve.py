"""``python -m repro.serve`` — run the enumeration query daemon.

Thin argparse shell around
:class:`repro.service.http.ServiceHTTPServer`: build the registry /
session table / budgets from flags, bind, serve until interrupted.  The
CLI twin is ``repro-mbp serve`` (same flags); ``repro-mbp query --server``
is the matching client.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from .obs import SlowQueryLog
from .service.http import ServiceHTTPServer
from .service.query import Budgets, QueryService
from .service.registry import (
    DEFAULT_GRAPH_CAPACITY,
    DEFAULT_PLAN_CAPACITY,
    HotGraphRegistry,
)
from .service.sessions import (
    DEFAULT_SESSION_CAPACITY,
    DEFAULT_TTL_SECONDS,
    SessionTable,
)


def build_arg_parser(
    parser: Optional[argparse.ArgumentParser] = None,
) -> argparse.ArgumentParser:
    """The daemon's flags; reused by the ``repro-mbp serve`` subcommand."""
    if parser is None:
        parser = argparse.ArgumentParser(
            prog="python -m repro.serve",
            description="HTTP/JSON daemon for maximal k-biplex enumeration queries",
        )
    parser.add_argument("--host", default="127.0.0.1", help="bind address (default 127.0.0.1)")
    parser.add_argument(
        "--port", type=int, default=8732, help="bind port (default 8732; 0 = ephemeral)"
    )
    parser.add_argument(
        "--registry-capacity",
        type=int,
        default=DEFAULT_GRAPH_CAPACITY,
        help="hot graphs kept resident (LRU)",
    )
    parser.add_argument(
        "--plan-capacity",
        type=int,
        default=DEFAULT_PLAN_CAPACITY,
        help="prepared plans kept resident (LRU)",
    )
    parser.add_argument(
        "--session-ttl",
        type=float,
        default=DEFAULT_TTL_SECONDS,
        help="idle seconds before a session is evicted (its cursor still resumes)",
    )
    parser.add_argument(
        "--session-capacity",
        type=int,
        default=DEFAULT_SESSION_CAPACITY,
        help="maximum live sessions (LRU eviction past it)",
    )
    parser.add_argument(
        "--max-results-cap",
        type=int,
        default=None,
        help="server-side ceiling on any query's max_results",
    )
    parser.add_argument(
        "--time-limit-cap",
        type=float,
        default=None,
        help="server-side ceiling on any query's time_limit (seconds)",
    )
    parser.add_argument(
        "--rate-limit",
        type=float,
        default=None,
        metavar="REQ_PER_SEC",
        help=(
            "per-client request rate limit (429 + Retry-After past it; "
            "default: the REPRO_RATE_LIMIT environment variable; unset = "
            "no rate limiting)"
        ),
    )
    parser.add_argument(
        "--slow-query-ms",
        type=float,
        default=None,
        help=(
            "log queries at/over this wall time to the slow-query log "
            "(default: the REPRO_SLOW_QUERY_MS environment variable; "
            "unset = no slow-query records)"
        ),
    )
    parser.add_argument(
        "--slow-query-log",
        default=None,
        metavar="PATH",
        help=(
            "JSON-lines sink for slow-query and error records (default: "
            "REPRO_SLOW_QUERY_LOG, falling back to stderr)"
        ),
    )
    return parser


def service_from_args(args: argparse.Namespace) -> QueryService:
    slow_log = SlowQueryLog.from_env()
    if getattr(args, "slow_query_ms", None) is not None:
        slow_log.threshold_ms = args.slow_query_ms
    if getattr(args, "slow_query_log", None):
        slow_log.path = args.slow_query_log
    return QueryService(
        registry=HotGraphRegistry(
            capacity=args.registry_capacity, plan_capacity=args.plan_capacity
        ),
        sessions=SessionTable(
            ttl_seconds=args.session_ttl, capacity=args.session_capacity
        ),
        budgets=Budgets(
            max_results_cap=args.max_results_cap, time_limit_cap=args.time_limit_cap
        ),
        slow_log=slow_log,
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_arg_parser().parse_args(list(argv) if argv is not None else None)
    try:
        service = service_from_args(args)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    ServiceHTTPServer(
        service, host=args.host, port=args.port, rate_limit=args.rate_limit
    ).run()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
