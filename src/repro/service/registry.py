"""The hot-graph registry: load, convert and prep once; serve many queries.

Every query through the one-shot library entry points pays three cold
costs before the first solution: reading the graph (file parse /
generator), converting it to the configured adjacency backend, and the
prep pipeline (core/bitruss reduction + ordering).  The registry
memoizes all three:

* **graphs** are keyed by their *source* — a file path, a registry
  dataset name, or a content hash for inline edge lists — and kept in an
  LRU of ``capacity`` entries;
* **prep plans** are keyed by ``(graph key, backend, k, prep mode,
  θ_L, θ_R, …, epoch)`` — everything the deterministic conversion +
  reduction + ordering depends on — in their own, larger LRU (evicting a
  graph also drops its plans: a plan holds the converted graph alive).

Hit/miss counters are part of the contract: the acceptance test (and the
``/v1/stats`` endpoint) assert that the *second* identical query performs
zero loads, zero conversions and zero reductions — ``graph_hits`` and
``plan_hits`` move instead.  All methods are thread-safe.

Mutable epochs
--------------
Hot graphs are mutable: :meth:`HotGraphRegistry.apply_update` applies one
edge batch (:meth:`repro.graph.BipartiteGraph.apply_batch`) to the resident
graph *and* to every cached backend conversion of it, bumping their shared
epoch counter by one.  Because the epoch is part of the plan key, the
update invalidates exactly the stale plans — the graph itself stays hot.
The registry also keeps a short per-graph log of applied batches so that
the next ``get_plan`` miss can hand the superseded plan plus the batches
to :func:`repro.prep.reprepare`, which repairs the reduction locally
instead of re-running it from scratch (content-identical result — cursor
fingerprints don't care which path built the plan).
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict, deque
from typing import Callable, Iterable, List, Optional, Tuple

from ..graph.protocol import as_backend
from ..obs import get_registry
from ..prep import prepare, reprepare

#: Default number of hot graphs kept resident.
DEFAULT_GRAPH_CAPACITY = 8

#: Prep plans kept per registry (across all graphs): one graph commonly
#: serves several (k, θ) parameterizations, so the plan LRU is larger.
DEFAULT_PLAN_CAPACITY = 64

#: Update-log entries retained per hot graph.  A plan whose epoch trails
#: the graph's by more than this many batches loses its incremental-repair
#: eligibility and is rebuilt from scratch.
DEFAULT_UPDATE_LOG = 64


def inline_graph_key(n_left: int, n_right: int, edges) -> Tuple[str, str]:
    """Content-hash key for an inline (request-body) edge list."""
    digest = hashlib.sha256()
    digest.update(f"{n_left}|{n_right}|".encode())
    for left, right in sorted(edges):
        digest.update(f"{left},{right};".encode())
    return ("inline", digest.hexdigest())


class HotGraphRegistry:
    """LRU caches for loaded graphs and their prepared plans."""

    def __init__(
        self,
        capacity: int = DEFAULT_GRAPH_CAPACITY,
        plan_capacity: int = DEFAULT_PLAN_CAPACITY,
    ) -> None:
        if capacity < 1 or plan_capacity < 1:
            raise ValueError("registry capacities must be positive")
        self.capacity = capacity
        self.plan_capacity = plan_capacity
        self._lock = threading.RLock()
        self._graphs: "OrderedDict[Tuple[str, str], object]" = OrderedDict()
        self._plans: "OrderedDict[tuple, object]" = OrderedDict()
        # Cached backend conversions of resident graphs, keyed by
        # (graph key, backend).  Kept in epoch lockstep with their source
        # by apply_update; dropped together with the graph.
        self._converted: "OrderedDict[Tuple[Tuple[str, str], str], object]" = OrderedDict()
        # Per-graph log of applied batches: (from_epoch, inserts, deletes),
        # each entry advancing the epoch by exactly one.
        self._updates: dict = {}
        self.graph_loads = 0
        self.graph_hits = 0
        self.plans_built = 0
        self.plans_repaired = 0
        self.plan_hits = 0
        self.graph_evictions = 0
        self.plan_evictions = 0
        self.updates_applied = 0
        self.plan_invalidations = 0

    # ------------------------------------------------------------------ #
    def get_graph(self, key: Tuple[str, str], loader: Callable[[], object]):
        """The graph for ``key``, loading it via ``loader`` on a miss."""
        metrics = get_registry()
        with self._lock:
            graph = self._graphs.get(key)
            if graph is not None:
                self._graphs.move_to_end(key)
                self.graph_hits += 1
                if metrics.enabled:
                    metrics.inc("registry_cache_total", cache="graph", outcome="hit")
                return graph
        # Load outside the lock: file parses can be slow and loaders must
        # not serialize each other.  A racing duplicate load is benign —
        # last writer wins, both callers get a usable graph.
        graph = loader()
        if metrics.enabled:
            metrics.inc("registry_cache_total", cache="graph", outcome="miss")
        with self._lock:
            self.graph_loads += 1
            self._graphs[key] = graph
            self._graphs.move_to_end(key)
            while len(self._graphs) > self.capacity:
                evicted_key, _ = self._graphs.popitem(last=False)
                self.graph_evictions += 1
                self._drop_plans_for(evicted_key)
        return graph

    def peek_graph(self, key: Tuple[str, str]):
        """The cached graph for ``key`` (no load, no LRU touch), or ``None``."""
        with self._lock:
            return self._graphs.get(key)

    # ------------------------------------------------------------------ #
    def get_plan(
        self,
        key: Tuple[str, str],
        graph,
        k: int,
        backend: str,
        prep: str,
        theta_left: int,
        theta_right: int,
        order_strategy: Optional[str] = None,
        mode: str = "enumerate",
    ):
        """The prepared :class:`~repro.prep.plan.PrepPlan` for one parameterization.

        Builds (backend conversion + reduction + ordering) on a miss; a hit
        skips all three — that is the "hot graph" fast path the acceptance
        test pins via :attr:`plan_hits`.

        ``mode`` (the solver objective) is part of the key even though the
        prep pipeline itself is objective-blind today: a plan cached for an
        ``enumerate`` query must never alias a solver query's once
        bound-aware preparation differentiates them, and the cache contract
        should not silently change when that lands.

        The graph's current epoch is the key's last component, so a plan
        prepared before an update simply never matches again.  A miss whose
        only cause is an epoch bump is repaired incrementally via
        :func:`repro.prep.reprepare` from the superseded plan and the
        logged batches (which the repair consumes as touched-endpoint
        hints), then the superseded entry is dropped.
        """
        epoch = getattr(graph, "epoch", 0)
        params = (key, backend, k, prep, theta_left, theta_right, order_strategy, mode)
        plan_key = params + (epoch,)
        metrics = get_registry()
        with self._lock:
            plan = self._plans.get(plan_key)
            if plan is not None:
                self._plans.move_to_end(plan_key)
                self.plan_hits += 1
                if metrics.enabled:
                    metrics.inc("registry_cache_total", cache="plan", outcome="hit")
                return plan
            previous, inserts, deletes, previous_key = self._repair_basis(
                params, epoch
            )
        if metrics.enabled:
            metrics.inc("registry_cache_total", cache="plan", outcome="miss")
        converted = self._converted_graph(key, graph, backend)
        if previous is not None:
            plan = reprepare(
                converted,
                k,
                previous,
                inserts=inserts,
                deletes=deletes,
                mode=prep,
                theta_left=theta_left,
                theta_right=theta_right,
                order_strategy=order_strategy,
            )
            if metrics.enabled:
                metrics.inc("registry_plan_builds_total", path="repair")
        else:
            plan = prepare(
                converted,
                k,
                prep,
                theta_left=theta_left,
                theta_right=theta_right,
                order_strategy=order_strategy,
            )
            if metrics.enabled:
                metrics.inc("registry_plan_builds_total", path="scratch")
        with self._lock:
            if previous is not None:
                self.plans_repaired += 1
                # The superseded plan did its last job as the repair basis.
                self._plans.pop(previous_key, None)
            self.plans_built += 1
            self._plans[plan_key] = plan
            self._plans.move_to_end(plan_key)
            while len(self._plans) > self.plan_capacity:
                self._plans.popitem(last=False)
                self.plan_evictions += 1
        return plan

    def _converted_graph(self, key: Tuple[str, str], graph, backend: str):
        """The backend conversion of ``graph``, cached and epoch-stamped.

        Conversions are fresh objects whose counters restart at 0, so a
        conversion made *after* updates landed is stamped with the source's
        epoch; from then on :meth:`apply_update` mutates source and
        conversions together, keeping them in lockstep.
        """
        with self._lock:
            converted = self._converted.get((key, backend))
            if converted is not None:
                return converted
        converted = as_backend(graph, backend)
        if converted is not graph and hasattr(converted, "reset_epoch"):
            converted.reset_epoch(getattr(graph, "epoch", 0))
        with self._lock:
            return self._converted.setdefault((key, backend), converted)

    def _repair_basis(self, params: tuple, epoch: int):
        """The newest superseded plan for ``params`` plus its covering batches.

        Returns ``(plan, inserts, deletes, plan_key)`` or
        ``(None, (), (), None)`` when no cached predecessor exists or the
        update log no longer covers the epoch gap.  Caller holds the lock.
        """
        best_epoch = -1
        best_key = None
        for cached_key in self._plans:
            if cached_key[:-1] == params and cached_key[-1] < epoch:
                if cached_key[-1] > best_epoch:
                    best_epoch = cached_key[-1]
                    best_key = cached_key
        if best_key is None:
            return None, (), (), None
        log = self._updates.get(params[0], ())
        covering = {entry[0]: entry for entry in log}
        inserts: List[Tuple[int, int]] = []
        deletes: List[Tuple[int, int]] = []
        for step in range(best_epoch, epoch):
            entry = covering.get(step)
            if entry is None:
                # The gap includes an epoch the log never saw (out-of-band
                # mutation or a trimmed log) — repair would be unsound.
                return None, (), (), None
            inserts.extend(entry[1])
            deletes.extend(entry[2])
        return self._plans[best_key], inserts, deletes, best_key

    # ------------------------------------------------------------------ #
    def apply_update(
        self,
        key: Tuple[str, str],
        inserts: Iterable[Tuple[int, int]] = (),
        deletes: Iterable[Tuple[int, int]] = (),
    ) -> dict:
        """Apply one edge batch to the hot graph ``key`` (and its conversions).

        Raises :class:`KeyError` when the graph is not resident — an update
        targets a *hot* graph; loading one just to mutate it would silently
        discard the batch on the next cold load anyway.  Returns a dict with
        the new ``epoch``, the ``added`` / ``removed`` counts and how many
        cached plans went stale.
        """
        inserts = [tuple(edge) for edge in inserts]
        deletes = [tuple(edge) for edge in deletes]
        metrics = get_registry()
        with self._lock:
            graph = self._graphs.get(key)
            if graph is None:
                raise KeyError(f"graph {key!r} is not resident in the registry")
            # The source graph and its conversions are distinct objects in
            # lockstep — except backends where as_backend was a no-op and
            # the "conversion" IS the source.  Dedupe by identity so the
            # batch lands exactly once per object.
            targets = {id(graph): graph}
            for (graph_key, _backend), converted in self._converted.items():
                if graph_key == key:
                    targets.setdefault(id(converted), converted)
            from_epoch = getattr(graph, "epoch", 0)
            added = removed = 0
            for target in targets.values():
                added, removed = target.apply_batch(inserts, deletes)
            new_epoch = getattr(graph, "epoch", 0)
            invalidated = 0
            if new_epoch != from_epoch:
                log = self._updates.setdefault(key, deque(maxlen=DEFAULT_UPDATE_LOG))
                log.append((from_epoch, tuple(inserts), tuple(deletes)))
                invalidated = sum(
                    1
                    for cached_key in self._plans
                    if cached_key[0] == key and cached_key[-1] != new_epoch
                )
                self.updates_applied += 1
                self.plan_invalidations += invalidated
                if metrics.enabled:
                    metrics.inc("registry_updates_total")
                    if invalidated:
                        metrics.inc(
                            "registry_invalidation_total", invalidated, cache="plan"
                        )
        return {
            "epoch": new_epoch,
            "added": added,
            "removed": removed,
            "plans_invalidated": invalidated,
        }

    # ------------------------------------------------------------------ #
    def _drop_plans_for(self, graph_key: Tuple[str, str]) -> None:
        stale = [k for k in self._plans if k[0] == graph_key]
        for k in stale:
            del self._plans[k]
            self.plan_evictions += 1
        for conv_key in [ck for ck in self._converted if ck[0] == graph_key]:
            del self._converted[conv_key]
        self._updates.pop(graph_key, None)

    def invalidate(self, key: Tuple[str, str]) -> bool:
        """Drop one graph (and its plans); returns whether it was cached."""
        with self._lock:
            present = self._graphs.pop(key, None) is not None
            self._drop_plans_for(key)
            return present

    def clear(self) -> None:
        with self._lock:
            self._graphs.clear()
            self._plans.clear()
            self._converted.clear()
            self._updates.clear()

    def counters(self) -> dict:
        """Snapshot of the hit/miss counters plus current occupancy."""
        with self._lock:
            return {
                "graph_loads": self.graph_loads,
                "graph_hits": self.graph_hits,
                "graph_evictions": self.graph_evictions,
                "graphs_resident": len(self._graphs),
                "plans_built": self.plans_built,
                "plans_repaired": self.plans_repaired,
                "plan_hits": self.plan_hits,
                "plan_evictions": self.plan_evictions,
                "plans_resident": len(self._plans),
                "updates_applied": self.updates_applied,
                "plan_invalidations": self.plan_invalidations,
            }
