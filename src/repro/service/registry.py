"""The hot-graph registry: load, convert and prep once; serve many queries.

Every query through the one-shot library entry points pays three cold
costs before the first solution: reading the graph (file parse /
generator), converting it to the configured adjacency backend, and the
prep pipeline (core/bitruss reduction + ordering).  The registry
memoizes all three:

* **graphs** are keyed by their *source* — a file path, a registry
  dataset name, or a content hash for inline edge lists — and kept in an
  LRU of ``capacity`` entries;
* **prep plans** are keyed by ``(graph key, backend, k, prep mode,
  θ_L, θ_R)`` — everything the deterministic conversion + reduction +
  ordering depends on — in their own, larger LRU (evicting a graph also
  drops its plans: a plan holds the converted graph alive).

Hit/miss counters are part of the contract: the acceptance test (and the
``/v1/stats`` endpoint) assert that the *second* identical query performs
zero loads, zero conversions and zero reductions — ``graph_hits`` and
``plan_hits`` move instead.  All methods are thread-safe.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Callable, Optional, Tuple

from ..graph.protocol import as_backend
from ..obs import get_registry
from ..prep import prepare

#: Default number of hot graphs kept resident.
DEFAULT_GRAPH_CAPACITY = 8

#: Prep plans kept per registry (across all graphs): one graph commonly
#: serves several (k, θ) parameterizations, so the plan LRU is larger.
DEFAULT_PLAN_CAPACITY = 64


def inline_graph_key(n_left: int, n_right: int, edges) -> Tuple[str, str]:
    """Content-hash key for an inline (request-body) edge list."""
    digest = hashlib.sha256()
    digest.update(f"{n_left}|{n_right}|".encode())
    for left, right in sorted(edges):
        digest.update(f"{left},{right};".encode())
    return ("inline", digest.hexdigest())


class HotGraphRegistry:
    """LRU caches for loaded graphs and their prepared plans."""

    def __init__(
        self,
        capacity: int = DEFAULT_GRAPH_CAPACITY,
        plan_capacity: int = DEFAULT_PLAN_CAPACITY,
    ) -> None:
        if capacity < 1 or plan_capacity < 1:
            raise ValueError("registry capacities must be positive")
        self.capacity = capacity
        self.plan_capacity = plan_capacity
        self._lock = threading.RLock()
        self._graphs: "OrderedDict[Tuple[str, str], object]" = OrderedDict()
        self._plans: "OrderedDict[tuple, object]" = OrderedDict()
        self.graph_loads = 0
        self.graph_hits = 0
        self.plans_built = 0
        self.plan_hits = 0
        self.graph_evictions = 0
        self.plan_evictions = 0

    # ------------------------------------------------------------------ #
    def get_graph(self, key: Tuple[str, str], loader: Callable[[], object]):
        """The graph for ``key``, loading it via ``loader`` on a miss."""
        metrics = get_registry()
        with self._lock:
            graph = self._graphs.get(key)
            if graph is not None:
                self._graphs.move_to_end(key)
                self.graph_hits += 1
                if metrics.enabled:
                    metrics.inc("registry_cache_total", cache="graph", outcome="hit")
                return graph
        # Load outside the lock: file parses can be slow and loaders must
        # not serialize each other.  A racing duplicate load is benign —
        # last writer wins, both callers get a usable graph.
        graph = loader()
        if metrics.enabled:
            metrics.inc("registry_cache_total", cache="graph", outcome="miss")
        with self._lock:
            self.graph_loads += 1
            self._graphs[key] = graph
            self._graphs.move_to_end(key)
            while len(self._graphs) > self.capacity:
                evicted_key, _ = self._graphs.popitem(last=False)
                self.graph_evictions += 1
                self._drop_plans_for(evicted_key)
        return graph

    def peek_graph(self, key: Tuple[str, str]):
        """The cached graph for ``key`` (no load, no LRU touch), or ``None``."""
        with self._lock:
            return self._graphs.get(key)

    # ------------------------------------------------------------------ #
    def get_plan(
        self,
        key: Tuple[str, str],
        graph,
        k: int,
        backend: str,
        prep: str,
        theta_left: int,
        theta_right: int,
        order_strategy: Optional[str] = None,
        mode: str = "enumerate",
    ):
        """The prepared :class:`~repro.prep.plan.PrepPlan` for one parameterization.

        Builds (backend conversion + reduction + ordering) on a miss; a hit
        skips all three — that is the "hot graph" fast path the acceptance
        test pins via :attr:`plan_hits`.

        ``mode`` (the solver objective) is part of the key even though the
        prep pipeline itself is objective-blind today: a plan cached for an
        ``enumerate`` query must never alias a solver query's once
        bound-aware preparation differentiates them, and the cache contract
        should not silently change when that lands.
        """
        plan_key = (key, backend, k, prep, theta_left, theta_right, order_strategy, mode)
        metrics = get_registry()
        with self._lock:
            plan = self._plans.get(plan_key)
            if plan is not None:
                self._plans.move_to_end(plan_key)
                self.plan_hits += 1
                if metrics.enabled:
                    metrics.inc("registry_cache_total", cache="plan", outcome="hit")
                return plan
        if metrics.enabled:
            metrics.inc("registry_cache_total", cache="plan", outcome="miss")
        converted = as_backend(graph, backend)
        plan = prepare(
            converted,
            k,
            prep,
            theta_left=theta_left,
            theta_right=theta_right,
            order_strategy=order_strategy,
        )
        with self._lock:
            self.plans_built += 1
            self._plans[plan_key] = plan
            self._plans.move_to_end(plan_key)
            while len(self._plans) > self.plan_capacity:
                self._plans.popitem(last=False)
                self.plan_evictions += 1
        return plan

    # ------------------------------------------------------------------ #
    def _drop_plans_for(self, graph_key: Tuple[str, str]) -> None:
        stale = [k for k in self._plans if k[0] == graph_key]
        for k in stale:
            del self._plans[k]
            self.plan_evictions += 1

    def invalidate(self, key: Tuple[str, str]) -> bool:
        """Drop one graph (and its plans); returns whether it was cached."""
        with self._lock:
            present = self._graphs.pop(key, None) is not None
            self._drop_plans_for(key)
            return present

    def clear(self) -> None:
        with self._lock:
            self._graphs.clear()
            self._plans.clear()

    def counters(self) -> dict:
        """Snapshot of the hit/miss counters plus current occupancy."""
        with self._lock:
            return {
                "graph_loads": self.graph_loads,
                "graph_hits": self.graph_hits,
                "graph_evictions": self.graph_evictions,
                "graphs_resident": len(self._graphs),
                "plans_built": self.plans_built,
                "plan_hits": self.plan_hits,
                "plan_evictions": self.plan_evictions,
                "plans_resident": len(self._plans),
            }
