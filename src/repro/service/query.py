"""The transport-agnostic query front door.

:class:`QueryService` is what both front ends (the HTTP daemon and the
``repro-mbp query`` CLI family) call into.  It owns the composition:
normalize the query document, resolve the graph and prep plan through the
:class:`~repro.service.registry.HotGraphRegistry` (the hot path skips
load + conversion + reduction entirely), build the
:class:`~repro.core.traversal.TraversalConfig` with budget-clamped
limits, and run either a one-shot enumeration (with result caching) or a
paginated one through the :class:`~repro.service.sessions.SessionTable`.

Query documents
---------------
A query is a JSON-shaped dict::

    {"graph": {"path": "g.txt"} | {"dataset": "divorce"}
              | {"n_left": 3, "n_right": 3, "edges": [[0, 0], ...]},
     "k": 1,
     "variant": "full",              # ITraversal.VARIANTS
     "theta_left": 0, "theta_right": 0,
     "backend": null, "prep": null,  # null → REPRO_* defaults
     "order_strategy": null,         # null → REPRO_ORDER default
     "jobs": null,                   # null → REPRO_JOBS default
     "max_results": null, "time_limit": null,
     "mode": "enumerate",            # | "maximum" | "top-k" (with "top": N)
     "top": null}

Normalization resolves every ``null`` against the environment defaults,
so the normalized document is self-contained: it is the result-cache key,
and it is embedded verbatim in service cursors.

Service cursors
---------------
Page responses carry a ``repro-service-cursor/1`` token: the normalized
query plus the engine-level ``repro-cursor/1`` token.  That makes the
cursor the durable pagination handle — it survives session-table
eviction *and* daemon restarts, because resuming needs nothing but the
token (the graph is re-resolved from the embedded query, hot from the
registry when possible).

Result caching
--------------
Identical one-shot queries hit an LRU of completed results.  Runs that
stopped on ``time_limit`` are never cached (their solution set depends on
wall-clock luck); ``max_results``-truncated runs are deterministic for a
fixed configuration and cache fine.
"""

from __future__ import annotations

import base64
import copy
import json
import os
import threading
import time
import zlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..core.itraversal import ITraversal, itraversal_config
from ..core.objective import resolve_objective
from ..core.session import CursorError, EnumerationSession, StaleCursorError
from ..graph.bipartite import BipartiteGraph
from ..graph.io import read_edge_list
from ..graph.protocol import BACKENDS, default_backend
from ..obs import SlowQueryLog, get_registry, new_trace_id, span, trace
from ..parallel import resolve_jobs
from ..prep import resolve_order_strategy, resolve_prep
from .registry import HotGraphRegistry, inline_graph_key
from .sessions import SessionExpired, SessionTable
from .status import status_block

#: Schema tag of the self-contained pagination token.
SERVICE_CURSOR_SCHEMA = "repro-service-cursor/1"


class QueryError(ValueError):
    """The query document is malformed or references unknown resources."""


class ServiceCursorError(QueryError):
    """A service cursor token is malformed or unresumable."""


class ServiceStaleCursorError(ServiceCursorError):
    """The cursor predates a mutation of its graph.

    Raised when a resume's engine-level epoch check fires
    (:class:`repro.core.session.StaleCursorError`); the HTTP layer maps it
    to 409 with ``"code": "stale_cursor"`` rather than a generic 400 —
    the token is well-formed, the *world* moved on.
    """


@dataclass(frozen=True)
class Budgets:
    """Server-side caps that requests cannot exceed.

    ``None`` caps are unlimited.  A request's own ``max_results`` /
    ``time_limit`` ride through unchanged when under the cap — the
    clamped value is what lands in the engine config, and the existing
    cooperative-limit machinery does the actual stopping.
    """

    max_results_cap: Optional[int] = None
    time_limit_cap: Optional[float] = None
    max_page_size: int = 1000
    default_page_size: int = 100

    def clamp_max_results(self, requested: Optional[int]) -> Optional[int]:
        if requested is None:
            return self.max_results_cap
        if self.max_results_cap is None:
            return requested
        return min(requested, self.max_results_cap)

    def clamp_time_limit(self, requested: Optional[float]) -> Optional[float]:
        if requested is None:
            return self.time_limit_cap
        if self.time_limit_cap is None:
            return requested
        return min(requested, self.time_limit_cap)

    def clamp_page_size(self, requested: Optional[int]) -> int:
        if requested is None:
            return min(self.default_page_size, self.max_page_size)
        if requested < 1:
            raise QueryError("page_size must be a positive integer")
        return min(requested, self.max_page_size)


def _encode_service_cursor(payload: dict) -> str:
    raw = json.dumps(payload, separators=(",", ":"), sort_keys=True).encode("utf-8")
    return base64.urlsafe_b64encode(zlib.compress(raw, 6)).decode("ascii")


def _decode_service_cursor(token: str) -> dict:
    try:
        raw = zlib.decompress(base64.urlsafe_b64decode(token.encode("ascii")))
        data = json.loads(raw)
    except Exception as error:
        raise ServiceCursorError(f"malformed service cursor: {error}") from None
    if not isinstance(data, dict) or data.get("schema") != SERVICE_CURSOR_SCHEMA:
        raise ServiceCursorError(
            f"unsupported service cursor schema; expected {SERVICE_CURSOR_SCHEMA}"
        )
    return data


def _serialize_solution(solution) -> List[List[int]]:
    return [sorted(solution.left), sorted(solution.right)]


def _split_trace_flag(query) -> Tuple[object, bool]:
    """Strip the per-request ``trace`` opt-in from a query document.

    The flag never reaches :meth:`QueryService.normalize`: it is not part
    of the canonical form (two queries differing only in tracing are the
    same enumeration — same cache key, same cursor payload).
    """
    if isinstance(query, dict) and "trace" in query:
        want = bool(query["trace"])
        return {k: v for k, v in query.items() if k != "trace"}, want
    return query, False


class QueryService:
    """Registry + session table + budgets behind one query API."""

    def __init__(
        self,
        registry: Optional[HotGraphRegistry] = None,
        sessions: Optional[SessionTable] = None,
        budgets: Optional[Budgets] = None,
        result_cache_capacity: int = 32,
        slow_log: Optional[SlowQueryLog] = None,
    ) -> None:
        self.registry = registry if registry is not None else HotGraphRegistry()
        self.sessions = sessions if sessions is not None else SessionTable()
        self.budgets = budgets if budgets is not None else Budgets()
        self.slow_log = slow_log if slow_log is not None else SlowQueryLog.from_env()
        self._result_cache_capacity = max(0, result_cache_capacity)
        # cache key -> {"graph_key": registry key, "response": dict}; the
        # graph key lets an update purge exactly this graph's entries.
        self._results: "OrderedDict[str, dict]" = OrderedDict()
        self._lock = threading.RLock()
        self.queries = 0
        self.pages_served = 0
        self.result_hits = 0
        self.cursor_resumes = 0
        self.updates = 0
        self.results_invalidated = 0

    # ------------------------------------------------------------------ #
    # Request observability
    # ------------------------------------------------------------------ #
    def _observed(
        self, route: str, want_trace: bool, runner: Callable[[], dict]
    ) -> dict:
        """Run one request under the observability envelope.

        Mints the ``trace_id``, activates the request trace when asked
        (and the layer is enabled), records the route/outcome counter and
        latency histogram, and feeds the slow-query log.  The ``trace_id``
        and optional ``trace`` block are attached *after* ``runner``
        returns — in particular after result caching, so a cached response
        never embeds a stale trace.
        """
        metrics = get_registry()
        tracing = want_trace and metrics.enabled
        trace_id = new_trace_id()
        started = time.perf_counter()
        outcome = "error"
        active = None
        try:
            with trace(f"query.{route}", trace_id=trace_id, enabled=tracing) as active:
                response = runner()
            outcome = "ok"
        finally:
            elapsed_ms = (time.perf_counter() - started) * 1000.0
            if metrics.enabled:
                metrics.inc("service_requests_total", route=route, outcome=outcome)
                metrics.observe("service_request_ms", elapsed_ms, route=route)
            self.slow_log.record(route, elapsed_ms, trace_id)
        response["trace_id"] = trace_id
        if active is not None:
            response["trace"] = active.to_dict()
        return response

    # ------------------------------------------------------------------ #
    # Query normalization
    # ------------------------------------------------------------------ #
    def normalize(self, query: dict) -> dict:
        """Validate a query document and resolve every default.

        The result is canonical: two requests meaning the same enumeration
        normalize identically (it is the result-cache key and the payload
        embedded in service cursors).
        """
        if not isinstance(query, dict):
            raise QueryError("query must be a JSON object")
        unknown = set(query) - {
            "graph",
            "k",
            "variant",
            "theta_left",
            "theta_right",
            "backend",
            "prep",
            "order_strategy",
            "jobs",
            "max_results",
            "time_limit",
            "mode",
            "top",
        }
        if unknown:
            raise QueryError(f"unknown query fields: {sorted(unknown)}")
        graph_spec = self._normalize_graph_spec(query.get("graph"))
        k = query.get("k")
        if not isinstance(k, int) or isinstance(k, bool) or k < 1:
            raise QueryError("k must be a positive integer")
        variant = query.get("variant", "full")
        if variant not in ITraversal.VARIANTS:
            raise QueryError(
                f"unknown variant {variant!r}; expected one of {sorted(ITraversal.VARIANTS)}"
            )
        theta_left = self._int_field(query, "theta_left", 0)
        theta_right = self._int_field(query, "theta_right", 0)
        backend = query.get("backend")
        if backend is None:
            backend = default_backend()
        if backend not in BACKENDS:
            raise QueryError(
                f"unknown backend {backend!r}; expected one of {sorted(BACKENDS)}"
            )
        try:
            prep = resolve_prep(query.get("prep"))
            order_strategy = (
                resolve_order_strategy(query.get("order_strategy"))
                if prep == "core+order"
                else None
            )
            jobs = resolve_jobs(query.get("jobs"))
            mode, top = resolve_objective(query.get("mode"), query.get("top"))
        except ValueError as error:
            raise QueryError(str(error)) from None
        max_results = query.get("max_results")
        if max_results is not None and (
            not isinstance(max_results, int) or isinstance(max_results, bool) or max_results < 1
        ):
            raise QueryError("max_results must be a positive integer or null")
        time_limit = query.get("time_limit")
        if time_limit is not None and (
            not isinstance(time_limit, (int, float)) or isinstance(time_limit, bool) or time_limit <= 0
        ):
            raise QueryError("time_limit must be a positive number or null")
        return {
            "graph": graph_spec,
            "k": k,
            "variant": variant,
            "theta_left": theta_left,
            "theta_right": theta_right,
            "backend": backend,
            "prep": prep,
            "order_strategy": order_strategy,
            "jobs": jobs,
            "max_results": self.budgets.clamp_max_results(max_results),
            "time_limit": self.budgets.clamp_time_limit(time_limit),
            # The objective is part of the canonical form on purpose: it is
            # the result-cache key and the plan key, so a maximum answer can
            # never be served for an enumerate query (or vice versa).
            "mode": mode,
            "top": top,
        }

    @staticmethod
    def _int_field(query: dict, name: str, default: int) -> int:
        value = query.get(name, default)
        if not isinstance(value, int) or isinstance(value, bool) or value < 0:
            raise QueryError(f"{name} must be a non-negative integer")
        return value

    def _normalize_graph_spec(self, spec) -> dict:
        if not isinstance(spec, dict):
            raise QueryError(
                'query needs a "graph" object: {"path": ...}, {"dataset": ...} '
                'or {"n_left", "n_right", "edges"}'
            )
        kinds = [kind for kind in ("path", "dataset", "edges") if kind in spec]
        if len(kinds) != 1:
            raise QueryError(
                'graph spec must have exactly one of "path", "dataset", "edges"'
            )
        kind = kinds[0]
        if kind == "path":
            path = spec["path"]
            if not isinstance(path, str) or not path:
                raise QueryError("graph path must be a non-empty string")
            return {"path": os.path.abspath(path)}
        if kind == "dataset":
            from ..analysis.datasets import ALL_DATASETS

            name = spec["dataset"]
            if name not in ALL_DATASETS:
                raise QueryError(
                    f"unknown dataset {name!r}; expected one of {list(ALL_DATASETS)}"
                )
            return {"dataset": name}
        n_left = spec.get("n_left")
        n_right = spec.get("n_right")
        edges = spec.get("edges")
        if not isinstance(n_left, int) or not isinstance(n_right, int) or n_left < 0 or n_right < 0:
            raise QueryError("inline graph needs non-negative integer n_left / n_right")
        if not isinstance(edges, list):
            raise QueryError("inline graph edges must be a list of [left, right] pairs")
        normalized_edges = []
        for edge in edges:
            if (
                not isinstance(edge, (list, tuple))
                or len(edge) != 2
                or not all(isinstance(v, int) and not isinstance(v, bool) for v in edge)
            ):
                raise QueryError("inline graph edges must be [left, right] integer pairs")
            normalized_edges.append([edge[0], edge[1]])
        normalized_edges.sort()
        return {"n_left": n_left, "n_right": n_right, "edges": normalized_edges}

    # ------------------------------------------------------------------ #
    # Graph + plan resolution (the registry hot path)
    # ------------------------------------------------------------------ #
    def resolve_graph(self, graph_spec: dict) -> Tuple[Tuple[str, str], object]:
        """The (registry key, loaded graph) for a normalized graph spec."""
        if "path" in graph_spec:
            path = graph_spec["path"]
            key = ("path", path)

            def loader():
                try:
                    return read_edge_list(path)
                except OSError as error:
                    raise QueryError(f"cannot read graph file: {error}") from None

        elif "dataset" in graph_spec:
            from ..analysis.datasets import load_dataset

            name = graph_spec["dataset"]
            key = ("dataset", name)

            def loader():
                return load_dataset(name)

        else:
            n_left = graph_spec["n_left"]
            n_right = graph_spec["n_right"]
            edges = [tuple(edge) for edge in graph_spec["edges"]]
            key = inline_graph_key(n_left, n_right, edges)

            def loader():
                try:
                    return BipartiteGraph(n_left, n_right, edges=edges)
                except (ValueError, IndexError) as error:
                    raise QueryError(f"invalid inline graph: {error}") from None

        return key, self.registry.get_graph(key, loader)

    def _plan_for(self, normalized: dict, resolved=None):
        key, graph = (
            resolved if resolved is not None else self.resolve_graph(normalized["graph"])
        )
        return self.registry.get_plan(
            key,
            graph,
            normalized["k"],
            normalized["backend"],
            normalized["prep"],
            normalized["theta_left"],
            normalized["theta_right"],
            order_strategy=normalized["order_strategy"],
            mode=normalized.get("mode", "enumerate"),
        )

    def _config_for(self, normalized: dict):
        flags = ITraversal.VARIANTS[normalized["variant"]]
        return itraversal_config(
            right_shrinking=flags["right_shrinking"],
            exclusion=flags["exclusion"],
            theta_left=normalized["theta_left"],
            theta_right=normalized["theta_right"],
            max_results=normalized["max_results"],
            time_limit=normalized["time_limit"],
            backend=normalized["backend"],
            jobs=normalized["jobs"],
            prep=normalized["prep"],
            # .get for cursors minted before the objective fields existed.
            objective=normalized.get("mode", "enumerate"),
            top=normalized.get("top"),
        )

    def _open(self, normalized: dict, resolved=None) -> EnumerationSession:
        plan = self._plan_for(normalized, resolved=resolved)
        config = self._config_for(normalized)
        return EnumerationSession(None, normalized["k"], config, prep_plan=plan)

    # ------------------------------------------------------------------ #
    # One-shot enumeration (result-cached)
    # ------------------------------------------------------------------ #
    def enumerate(self, query: dict) -> dict:
        """Run a query to completion (under its budgets); cache the result."""
        query, want_trace = _split_trace_flag(query)
        return self._observed("enumerate", want_trace, lambda: self._enumerate(query))

    def _enumerate(self, query: dict) -> dict:
        metrics = get_registry()
        with span("parse"):
            normalized = self.normalize(query)
        # The graph resolves *before* the cache lookup: its mutation epoch
        # is part of the cache key, so a result computed before an update
        # can never answer a query made after it.
        graph_key, graph = self.resolve_graph(normalized["graph"])
        epoch = getattr(graph, "epoch", 0)
        cache_key = (
            json.dumps(normalized, separators=(",", ":"), sort_keys=True)
            + f"|epoch={epoch}"
        )
        with self._lock:
            self.queries += 1
            cached = self._results.get(cache_key)
            if cached is not None:
                self._results.move_to_end(cache_key)
                self.result_hits += 1
                response = copy.deepcopy(cached["response"])
                response["cached"] = True
        if cached is not None:
            if metrics.enabled:
                metrics.inc("service_result_cache_total", outcome="hit")
            return response
        if metrics.enabled:
            metrics.inc("service_result_cache_total", outcome="miss")
        with span("plan"):
            session = self._open(normalized, resolved=(graph_key, graph))
        try:
            with span("traverse"):
                raw = list(session.stream())
        finally:
            session.close()
        with span("serialize"):
            solutions = [_serialize_solution(s) for s in raw]
        response = {
            "solutions": solutions,
            "num_solutions": len(solutions),
            "status": status_block(
                session.stats, session.prep, mode=normalized.get("mode", "enumerate")
            ),
            "cached": False,
        }
        # Time-limit truncation is non-deterministic — never serve it to a
        # later identical query as if it were the answer.
        if self._result_cache_capacity > 0 and not session.stats.hit_time_limit:
            with self._lock:
                self._results[cache_key] = {
                    "graph_key": graph_key,
                    "response": copy.deepcopy(response),
                }
                self._results.move_to_end(cache_key)
                while len(self._results) > self._result_cache_capacity:
                    self._results.popitem(last=False)
        return response

    # ------------------------------------------------------------------ #
    # Graph mutation (``POST /v1/update`` / ``repro-mbp query update``)
    # ------------------------------------------------------------------ #
    def update(self, document: dict) -> dict:
        """Apply an edge batch to a hot graph, invalidating stale caches.

        ``document`` is ``{"graph": <spec>, "insert": [[l, r], ...],
        "delete": [[l, r], ...]}`` — the same graph specs queries use.
        The batch bumps the graph's epoch, so stale plans and cached
        results stop matching; cursors issued before the update resume
        with a ``stale_cursor`` error.
        """
        document, want_trace = _split_trace_flag(document)
        return self._observed("update", want_trace, lambda: self._update(document))

    def _update(self, document: dict) -> dict:
        if not isinstance(document, dict):
            raise QueryError("update must be a JSON object")
        unknown = set(document) - {"graph", "insert", "delete"}
        if unknown:
            raise QueryError(f"unknown update fields: {sorted(unknown)}")
        with span("parse"):
            graph_spec = self._normalize_graph_spec(document.get("graph"))
            inserts = self._edge_batch(document.get("insert"), "insert")
            deletes = self._edge_batch(document.get("delete"), "delete")
        if not inserts and not deletes:
            raise QueryError("update needs a non-empty insert or delete list")
        key, graph = self.resolve_graph(graph_spec)
        # Validate the whole batch against the graph's dimensions before
        # applying anything: apply_batch raising mid-way would leave the
        # earlier edges in.
        for label, batch in (("insert", inserts), ("delete", deletes)):
            for left, right in batch:
                if not (0 <= left < graph.n_left and 0 <= right < graph.n_right):
                    raise QueryError(
                        f"{label} edge [{left}, {right}] is out of range for a "
                        f"{graph.n_left}x{graph.n_right} graph"
                    )
        with span("apply"):
            outcome = self.registry.apply_update(key, inserts, deletes)
        with self._lock:
            self.updates += 1
            stale = [
                cache_key
                for cache_key, entry in self._results.items()
                if entry["graph_key"] == key
            ]
            for cache_key in stale:
                del self._results[cache_key]
            self.results_invalidated += len(stale)
        metrics = get_registry()
        if metrics.enabled and stale:
            metrics.inc(
                "service_result_invalidation_total", len(stale), cause="update"
            )
        outcome["results_invalidated"] = len(stale)
        return outcome

    @staticmethod
    def _edge_batch(value, name: str) -> List[Tuple[int, int]]:
        if value is None:
            return []
        if not isinstance(value, list):
            raise QueryError(f'"{name}" must be a list of [left, right] pairs')
        batch: List[Tuple[int, int]] = []
        for edge in value:
            if (
                not isinstance(edge, (list, tuple))
                or len(edge) != 2
                or not all(
                    isinstance(v, int) and not isinstance(v, bool) for v in edge
                )
                or edge[0] < 0
                or edge[1] < 0
            ):
                raise QueryError(
                    f'"{name}" entries must be [left, right] pairs of '
                    "non-negative integers"
                )
            batch.append((edge[0], edge[1]))
        return batch

    # ------------------------------------------------------------------ #
    # Paginated enumeration (sessions + service cursors)
    # ------------------------------------------------------------------ #
    def open_session(self, query: dict, page_size: Optional[int] = None) -> dict:
        """Start a paginated query; returns the first page."""
        query, want_trace = _split_trace_flag(query)
        return self._observed(
            "open_session", want_trace, lambda: self._open_session(query, page_size)
        )

    def _open_session(self, query: dict, page_size: Optional[int]) -> dict:
        with span("parse"):
            normalized = self.normalize(query)
        with self._lock:
            self.queries += 1
        with span("plan"):
            session = self._open(normalized)
        record = self.sessions.create(session, query=normalized)
        with record.lock:
            return self._page(record, self.budgets.clamp_page_size(page_size))

    def next_page(
        self,
        session_id: Optional[str] = None,
        cursor: Optional[str] = None,
        page_size: Optional[int] = None,
        want_trace: bool = False,
    ) -> dict:
        """Pull the next page, by live session id or by service cursor.

        The id is the fast path; the cursor is the durable one.  When both
        are given the id is tried first and the cursor is the fallback —
        which is exactly what a client that simply echoes the previous
        response's fields gets.
        """
        return self._observed(
            "next_page",
            want_trace,
            lambda: self._next_page(session_id, cursor, page_size),
        )

    def _next_page(
        self,
        session_id: Optional[str],
        cursor: Optional[str],
        page_size: Optional[int],
    ) -> dict:
        size = self.budgets.clamp_page_size(page_size)
        if session_id is not None:
            try:
                record = self.sessions.get(session_id)
            except SessionExpired:
                if cursor is None:
                    raise
            else:
                with record.lock:
                    return self._page(record, size)
        if cursor is None:
            raise QueryError("next_page needs a session_id or a cursor")
        with span("resume"):
            record = self._resume_record(cursor)
        with record.lock:
            return self._page(record, size)

    def cancel(self, session_id: str) -> bool:
        """Drop a live session (idempotent); its cursor can still resume."""
        return self.sessions.remove(session_id)

    def _resume_record(self, cursor: str):
        data = _decode_service_cursor(cursor)
        normalized = data.get("query")
        token = data.get("cursor")
        if not isinstance(normalized, dict) or not isinstance(token, str):
            raise ServiceCursorError("service cursor is missing its query or engine token")
        plan = self._plan_for(normalized)
        config = self._config_for(normalized)
        try:
            session = EnumerationSession.resume(
                None, normalized["k"], token, config, prep_plan=plan
            )
        except StaleCursorError as error:
            raise ServiceStaleCursorError(str(error)) from None
        except CursorError as error:
            raise ServiceCursorError(str(error)) from None
        with self._lock:
            self.cursor_resumes += 1
        return self.sessions.create(session, query=normalized)

    def _page(self, record, size: int) -> dict:
        session = record.session
        with span("traverse"):
            batch = session.next_batch(size)
        with span("serialize"):
            solutions = [_serialize_solution(s) for s in batch]
        with self._lock:
            self.pages_served += 1
        token = _encode_service_cursor(
            {
                "schema": SERVICE_CURSOR_SCHEMA,
                "query": record.query,
                "cursor": session.cursor(),
            }
        )
        exhausted = session.exhausted
        if exhausted:
            # A finished session holds no more answers — free it now; the
            # cursor in this response still answers any late paginate call
            # (with an empty page) after a resume.
            self.sessions.remove(record.session_id)
        return {
            "solutions": solutions,
            "page_size": len(solutions),
            "exhausted": exhausted,
            "session_id": None if exhausted else record.session_id,
            "cursor": token,
            "status": status_block(
                session.stats,
                session.prep,
                mode=record.query.get("mode", "enumerate"),
            ),
        }

    # ------------------------------------------------------------------ #
    def stats(self) -> Dict[str, object]:
        """One merged counter document (the ``/v1/stats`` body)."""
        with self._lock:
            service = {
                "queries": self.queries,
                "pages_served": self.pages_served,
                "result_cache_hits": self.result_hits,
                "result_cache_resident": len(self._results),
                "cursor_resumes": self.cursor_resumes,
                "updates": self.updates,
                "results_invalidated": self.results_invalidated,
            }
        service.update(self.registry.counters())
        service.update(self.sessions.counters())
        return service

    def close(self) -> None:
        self.sessions.close_all()
