"""Per-client token-bucket rate limiting for the HTTP front end.

Off by default: the limiter only exists when ``REPRO_RATE_LIMIT`` (a
requests-per-second float) is set or the daemon is started with
``--rate-limit``.  Each client — keyed by peer IP — gets its own bucket
of ``burst`` tokens refilled at ``rate`` per second; a request with no
token available is rejected with 429 plus a ``Retry-After`` hint for
when one will have accrued.

The clock is injectable so the unit tests drive time deterministically
instead of sleeping.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Callable, Dict, Optional, Tuple

#: Environment variable enabling the limiter (requests per second).
RATE_LIMIT_ENV_VAR = "REPRO_RATE_LIMIT"

#: Distinct client buckets kept before the least-recently-seen is evicted.
#: An evicted client simply starts over with a full bucket — the limiter
#: bounds burst rate, it is not an accounting ledger.
MAX_CLIENTS = 1024


class RateLimiter:
    """Token buckets per client key (thread-safe)."""

    def __init__(
        self,
        rate: float,
        burst: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate <= 0:
            raise ValueError("rate limit must be positive (requests per second)")
        self.rate = float(rate)
        # Default burst: one second's worth, but never less than one whole
        # request — a sub-1 rate must still admit the first request.
        self.burst = float(burst) if burst is not None else max(self.rate, 1.0)
        if self.burst < 1.0:
            raise ValueError("burst must admit at least one request")
        self._clock = clock
        self._lock = threading.Lock()
        # client -> (tokens, last refill timestamp); insertion order is
        # recency order (entries are re-inserted on touch).
        self._buckets: Dict[str, Tuple[float, float]] = {}
        self.rejected = 0

    def allow(self, client: str) -> Tuple[bool, float]:
        """Spend one token for ``client``.

        Returns ``(allowed, retry_after_seconds)`` — ``retry_after`` is 0
        when allowed, else the time until a full token will have accrued.
        """
        now = self._clock()
        with self._lock:
            tokens, last = self._buckets.pop(client, (self.burst, now))
            tokens = min(self.burst, tokens + (now - last) * self.rate)
            if tokens >= 1.0:
                self._buckets[client] = (tokens - 1.0, now)
                self._trim()
                return True, 0.0
            self._buckets[client] = (tokens, now)
            self._trim()
            self.rejected += 1
            return False, (1.0 - tokens) / self.rate

    def _trim(self) -> None:
        while len(self._buckets) > MAX_CLIENTS:
            self._buckets.pop(next(iter(self._buckets)))


def limiter_from_env(
    rate: Optional[float] = None,
    clock: Callable[[], float] = time.monotonic,
) -> Optional[RateLimiter]:
    """Build the limiter the daemon should run with, or ``None`` (off).

    An explicit ``rate`` (the ``--rate-limit`` flag) wins over the
    ``REPRO_RATE_LIMIT`` environment variable; absent both, rate limiting
    is disabled.  A malformed environment value raises ``ValueError`` so a
    typo fails the daemon loudly instead of silently disabling the limit.
    """
    if rate is None:
        raw = os.environ.get(RATE_LIMIT_ENV_VAR)
        if raw is None or not raw.strip():
            return None
        try:
            rate = float(raw)
        except ValueError:
            raise ValueError(
                f"{RATE_LIMIT_ENV_VAR}={raw!r} is not a number (requests per second)"
            ) from None
    if rate <= 0:
        return None
    return RateLimiter(rate, clock=clock)
