"""The shared run-status block: one schema for CLI ``--json`` and service responses.

Batch runs (``repro-mbp enumerate --json``), the ``repro-mbp query``
family and the HTTP daemon all report the same status document, so a
consumer can switch between them without reparsing: the full
:class:`~repro.core.traversal.TraversalStats` counters (including
``truncated`` and the parallel-only ``num_shards`` /
``num_duplicate_solutions`` / ``num_reexplorations``) plus the prep plan's
reduction sizes and ordering.
"""

from __future__ import annotations

from dataclasses import asdict
from typing import Optional

from ..core.traversal import TraversalStats


def status_block(stats: TraversalStats, plan=None, **extra) -> dict:
    """Serialize one run's statistics (and optionally its prep plan).

    ``extra`` keys are merged on top — the service adds e.g. ``cached`` or
    per-request timings; the CLI adds nothing.  The core counters always
    come straight from :class:`TraversalStats`, so the block is identical
    whether the run happened in-process, through a session or behind the
    daemon.
    """
    block = asdict(stats)
    block["truncated"] = stats.truncated
    if plan is not None:
        block["prep"] = {
            "mode": plan.mode,
            "order_strategy": getattr(plan, "order_strategy", None),
            "removed_left": plan.removed_left,
            "removed_right": plan.removed_right,
            "removed_edges": plan.removed_edges,
        }
    block.update(extra)
    return block
