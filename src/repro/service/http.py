"""A stdlib-asyncio HTTP/JSON front end for :class:`~repro.service.query.QueryService`.

No web framework — the container policy is stdlib + numpy — so this is a
deliberately small HTTP/1.1 server on ``asyncio.start_server``: parse one
request, dispatch, write one JSON response, close.  Enumeration work is
synchronous CPU-bound Python, so handlers run it on a thread pool via
``run_in_executor``; concurrency control lives below this layer (the
session table's per-record locks serialize pagination of one session,
distinct sessions and distinct queries proceed in parallel).

Routes (all responses JSON unless noted):

========  ==============  ====================================================
method    path            body
========  ==============  ====================================================
GET       /healthz        —
GET       /v1/stats       —
GET       /v1/metrics     — (``?format=text`` for the plain-text rendering)
POST      /v1/enumerate   ``{"query": {...}}`` one-shot, or
                          ``{"query": {...}, "paginate": true,
                          "page_size": N}`` for the first page
POST      /v1/paginate    ``{"session_id": ..., "cursor": ..., "page_size": N}``
POST      /v1/cancel      ``{"session_id": ...}``
========  ==============  ====================================================

A top-level ``"trace": true`` in a POST body (or inside the query
document) opts the request into a ``trace`` block in the response.

Errors map to ``{"error": message}`` with 400 (bad query / bad cursor /
bad Content-Length), 404 (expired session, unknown route), 405 or 500.
A 500 body is deliberately generic — ``{"error": "internal server
error", "trace_id": ...}`` — with the traceback written server-side to
the error log under that ``trace_id``, never into the response.
"""

from __future__ import annotations

import asyncio
import json
import time
import traceback
from concurrent.futures import ThreadPoolExecutor
from typing import Optional, Tuple, Union
from urllib.parse import parse_qs

from ..obs import get_registry, new_trace_id, render_snapshot_text
from .query import QueryError, QueryService
from .sessions import SessionExpired

#: Largest accepted request body (inline graphs included).
MAX_BODY_BYTES = 16 * 1024 * 1024

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
}


class ServiceHTTPServer:
    """One query service behind one listening socket."""

    def __init__(
        self,
        service: Optional[QueryService] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        executor_workers: int = 8,
    ) -> None:
        self.service = service if service is not None else QueryService()
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None
        self._executor = ThreadPoolExecutor(
            max_workers=executor_workers, thread_name_prefix="repro-serve"
        )

    # ------------------------------------------------------------------ #
    async def start(self) -> Tuple[str, int]:
        """Bind and listen; returns the bound ``(host, port)``.

        ``port=0`` binds an ephemeral port — the tests (and the CI smoke
        job) read the real one from the return value.
        """
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        sockname = self._server.sockets[0].getsockname()
        self.port = sockname[1]
        return sockname[0], sockname[1]

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    async def aclose(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self._executor.shutdown(wait=False)
        self.service.close()

    def run(self) -> None:  # pragma: no cover - exercised via `python -m repro.serve`
        """Blocking convenience wrapper: start and serve until interrupted."""

        async def _main() -> None:
            host, port = await self.start()
            print(f"repro service listening on http://{host}:{port}", flush=True)
            await self.serve_forever()

        try:
            asyncio.run(_main())
        except KeyboardInterrupt:
            pass

    # ------------------------------------------------------------------ #
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        started = time.perf_counter()
        route = None
        try:
            status, payload, route = await self._handle_request(reader)
        except Exception:  # never let a handler kill the loop
            # The client gets a generic body plus a fresh trace_id; the
            # traceback goes to the server-side error log under that id —
            # exception text must not leak implementation detail.
            trace_id = new_trace_id()
            self.service.slow_log.error(
                route or "http", trace_id, traceback.format_exc()
            )
            status, payload = 500, {
                "error": "internal server error",
                "trace_id": trace_id,
            }
        metrics = get_registry()
        if metrics.enabled:
            label = route or "unparsed"
            metrics.inc("http_requests_total", path=label, status=status)
            metrics.observe(
                "http_request_ms",
                (time.perf_counter() - started) * 1000.0,
                path=label,
            )
        if isinstance(payload, str):  # /v1/metrics?format=text
            body = payload.encode("utf-8")
            content_type = "text/plain; charset=utf-8"
        else:
            body = json.dumps(payload).encode("utf-8")
            content_type = "application/json"
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Error')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n"
        ).encode("ascii")
        try:
            writer.write(head + body)
            await writer.drain()
        except (ConnectionError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):
                pass

    async def _handle_request(
        self, reader: asyncio.StreamReader
    ) -> Tuple[int, Union[dict, str], Optional[str]]:
        """One parsed + dispatched request: ``(status, payload, route)``.

        ``route`` is the path without its query string (``None`` when the
        request never parsed far enough to have one) — it is the metrics
        label, kept low-cardinality on purpose.
        """
        try:
            header_blob = await reader.readuntil(b"\r\n\r\n")
        except (asyncio.IncompleteReadError, asyncio.LimitOverrunError):
            return 400, {"error": "malformed HTTP request"}, None
        request_line, _, header_text = header_blob.decode(
            "latin-1"
        ).partition("\r\n")
        parts = request_line.split()
        if len(parts) != 3:
            return 400, {"error": "malformed request line"}, None
        method, target, _version = parts
        path, _, query_string = target.partition("?")
        headers = {}
        for line in header_text.split("\r\n"):
            name, sep, value = line.partition(":")
            if sep:
                headers[name.strip().lower()] = value.strip()
        length = 0
        if "content-length" in headers:
            # int() raising out of a raw header used to surface as a 500;
            # a non-numeric, negative or empty Content-Length is the
            # client's error — reject it as such.
            try:
                length = int(headers["content-length"])
            except ValueError:
                return 400, {"error": "invalid Content-Length header"}, path
            if length < 0:
                return 400, {"error": "invalid Content-Length header"}, path
        if length > MAX_BODY_BYTES:
            return 413, {"error": "request body too large"}, path
        body = await reader.readexactly(length) if length else b""
        status, payload = await self._dispatch(method, path, query_string, body)
        return status, payload, path

    async def _dispatch(
        self, method: str, path: str, query_string: str, body: bytes
    ) -> Tuple[int, Union[dict, str]]:
        if path == "/healthz":
            if method != "GET":
                return 405, {"error": "use GET"}
            return 200, {"ok": True}
        if path == "/v1/stats":
            if method != "GET":
                return 405, {"error": "use GET"}
            return 200, self.service.stats()
        if path == "/v1/metrics":
            if method != "GET":
                return 405, {"error": "use GET"}
            snapshot = get_registry().snapshot()
            params = parse_qs(query_string)
            if params.get("format", [""])[-1] == "text":
                return 200, render_snapshot_text(snapshot)
            return 200, snapshot
        if path not in ("/v1/enumerate", "/v1/paginate", "/v1/cancel"):
            return 404, {"error": f"unknown route {path}"}
        if method != "POST":
            return 405, {"error": "use POST"}
        try:
            document = json.loads(body) if body else {}
        except json.JSONDecodeError as error:
            return 400, {"error": f"request body is not JSON: {error}"}
        if not isinstance(document, dict):
            return 400, {"error": "request body must be a JSON object"}
        want_trace = bool(document.get("trace"))
        loop = asyncio.get_running_loop()
        try:
            if path == "/v1/enumerate":
                query = document.get("query")
                if want_trace and isinstance(query, dict):
                    query = {**query, "trace": True}
                if document.get("paginate"):
                    result = await loop.run_in_executor(
                        self._executor,
                        lambda: self.service.open_session(
                            query, page_size=document.get("page_size")
                        ),
                    )
                else:
                    result = await loop.run_in_executor(
                        self._executor, lambda: self.service.enumerate(query)
                    )
            elif path == "/v1/paginate":
                result = await loop.run_in_executor(
                    self._executor,
                    lambda: self.service.next_page(
                        session_id=document.get("session_id"),
                        cursor=document.get("cursor"),
                        page_size=document.get("page_size"),
                        want_trace=want_trace,
                    ),
                )
            else:  # /v1/cancel
                session_id = document.get("session_id")
                if not isinstance(session_id, str):
                    return 400, {"error": "cancel needs a session_id"}
                result = {"cancelled": self.service.cancel(session_id)}
        except SessionExpired:
            return 404, {"error": "session expired or unknown (resume via cursor)"}
        except QueryError as error:  # includes ServiceCursorError
            return 400, {"error": str(error)}
        return 200, result
