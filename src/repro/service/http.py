"""A stdlib-asyncio HTTP/JSON front end for :class:`~repro.service.query.QueryService`.

No web framework — the container policy is stdlib + numpy — so this is a
deliberately small HTTP/1.1 server on ``asyncio.start_server``: parse one
request, dispatch, write one JSON response, close.  Enumeration work is
synchronous CPU-bound Python, so handlers run it on a thread pool via
``run_in_executor``; concurrency control lives below this layer (the
session table's per-record locks serialize pagination of one session,
distinct sessions and distinct queries proceed in parallel).

Routes (all responses JSON):

========  ==============  ====================================================
method    path            body
========  ==============  ====================================================
GET       /healthz        —
GET       /v1/stats       —
POST      /v1/enumerate   ``{"query": {...}}`` one-shot, or
                          ``{"query": {...}, "paginate": true,
                          "page_size": N}`` for the first page
POST      /v1/paginate    ``{"session_id": ..., "cursor": ..., "page_size": N}``
POST      /v1/cancel      ``{"session_id": ...}``
========  ==============  ====================================================

Errors map to ``{"error": message}`` with 400 (bad query / bad cursor),
404 (expired session, unknown route), 405 or 500.
"""

from __future__ import annotations

import asyncio
import json
from concurrent.futures import ThreadPoolExecutor
from typing import Optional, Tuple

from .query import QueryError, QueryService
from .sessions import SessionExpired

#: Largest accepted request body (inline graphs included).
MAX_BODY_BYTES = 16 * 1024 * 1024

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
}


class ServiceHTTPServer:
    """One query service behind one listening socket."""

    def __init__(
        self,
        service: Optional[QueryService] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        executor_workers: int = 8,
    ) -> None:
        self.service = service if service is not None else QueryService()
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None
        self._executor = ThreadPoolExecutor(
            max_workers=executor_workers, thread_name_prefix="repro-serve"
        )

    # ------------------------------------------------------------------ #
    async def start(self) -> Tuple[str, int]:
        """Bind and listen; returns the bound ``(host, port)``.

        ``port=0`` binds an ephemeral port — the tests (and the CI smoke
        job) read the real one from the return value.
        """
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        sockname = self._server.sockets[0].getsockname()
        self.port = sockname[1]
        return sockname[0], sockname[1]

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    async def aclose(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self._executor.shutdown(wait=False)
        self.service.close()

    def run(self) -> None:  # pragma: no cover - exercised via `python -m repro.serve`
        """Blocking convenience wrapper: start and serve until interrupted."""

        async def _main() -> None:
            host, port = await self.start()
            print(f"repro service listening on http://{host}:{port}", flush=True)
            await self.serve_forever()

        try:
            asyncio.run(_main())
        except KeyboardInterrupt:
            pass

    # ------------------------------------------------------------------ #
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            status, payload = await self._handle_request(reader)
        except Exception as error:  # never let a handler kill the loop
            status, payload = 500, {"error": f"internal error: {error}"}
        body = json.dumps(payload).encode("utf-8")
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Error')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n"
        ).encode("ascii")
        try:
            writer.write(head + body)
            await writer.drain()
        except (ConnectionError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):
                pass

    async def _handle_request(
        self, reader: asyncio.StreamReader
    ) -> Tuple[int, dict]:
        try:
            header_blob = await reader.readuntil(b"\r\n\r\n")
        except (asyncio.IncompleteReadError, asyncio.LimitOverrunError):
            return 400, {"error": "malformed HTTP request"}
        request_line, _, header_text = header_blob.decode(
            "latin-1"
        ).partition("\r\n")
        parts = request_line.split()
        if len(parts) != 3:
            return 400, {"error": "malformed request line"}
        method, path, _version = parts
        headers = {}
        for line in header_text.split("\r\n"):
            name, sep, value = line.partition(":")
            if sep:
                headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", 0) or 0)
        if length > MAX_BODY_BYTES:
            return 413, {"error": "request body too large"}
        body = await reader.readexactly(length) if length else b""
        return await self._dispatch(method, path, body)

    async def _dispatch(self, method: str, path: str, body: bytes) -> Tuple[int, dict]:
        if path == "/healthz":
            if method != "GET":
                return 405, {"error": "use GET"}
            return 200, {"ok": True}
        if path == "/v1/stats":
            if method != "GET":
                return 405, {"error": "use GET"}
            return 200, self.service.stats()
        if path not in ("/v1/enumerate", "/v1/paginate", "/v1/cancel"):
            return 404, {"error": f"unknown route {path}"}
        if method != "POST":
            return 405, {"error": "use POST"}
        try:
            document = json.loads(body) if body else {}
        except json.JSONDecodeError as error:
            return 400, {"error": f"request body is not JSON: {error}"}
        if not isinstance(document, dict):
            return 400, {"error": "request body must be a JSON object"}
        loop = asyncio.get_running_loop()
        try:
            if path == "/v1/enumerate":
                query = document.get("query")
                if document.get("paginate"):
                    result = await loop.run_in_executor(
                        self._executor,
                        lambda: self.service.open_session(
                            query, page_size=document.get("page_size")
                        ),
                    )
                else:
                    result = await loop.run_in_executor(
                        self._executor, lambda: self.service.enumerate(query)
                    )
            elif path == "/v1/paginate":
                result = await loop.run_in_executor(
                    self._executor,
                    lambda: self.service.next_page(
                        session_id=document.get("session_id"),
                        cursor=document.get("cursor"),
                        page_size=document.get("page_size"),
                    ),
                )
            else:  # /v1/cancel
                session_id = document.get("session_id")
                if not isinstance(session_id, str):
                    return 400, {"error": "cancel needs a session_id"}
                result = {"cancelled": self.service.cancel(session_id)}
        except SessionExpired:
            return 404, {"error": "session expired or unknown (resume via cursor)"}
        except QueryError as error:  # includes ServiceCursorError
            return 400, {"error": str(error)}
        return 200, result
