"""A stdlib-asyncio HTTP/JSON front end for :class:`~repro.service.query.QueryService`.

No web framework — the container policy is stdlib + numpy — so this is a
deliberately small HTTP/1.1 server on ``asyncio.start_server``: parse one
request, dispatch, write one JSON response, close.  Enumeration work is
synchronous CPU-bound Python, so handlers run it on a thread pool via
``run_in_executor``; concurrency control lives below this layer (the
session table's per-record locks serialize pagination of one session,
distinct sessions and distinct queries proceed in parallel).

Routes (all responses JSON unless noted):

========  ==============  ====================================================
method    path            body
========  ==============  ====================================================
GET       /healthz        —
GET       /v1/stats       —
GET       /v1/metrics     — (``?format=text`` for the plain-text rendering)
POST      /v1/enumerate   ``{"query": {...}}`` one-shot, or
                          ``{"query": {...}, "paginate": true,
                          "page_size": N}`` for the first page
POST      /v1/paginate    ``{"session_id": ..., "cursor": ..., "page_size": N}``
POST      /v1/cancel      ``{"session_id": ...}``
POST      /v1/update      ``{"graph": {...}, "insert": [[l, r], ...],
                          "delete": [[l, r], ...]}``
========  ==============  ====================================================

A top-level ``"trace": true`` in a POST body (or inside the query
document) opts the request into a ``trace`` block in the response.

Errors map to ``{"error": message}`` with 400 (bad query / bad cursor /
bad Content-Length), 404 (expired session, unknown cancel target, unknown
route), 405, 409 (``"code": "stale_cursor"`` — the cursor predates a
graph update; re-run the query), 429 (rate limited, with ``Retry-After``;
see :mod:`repro.service.ratelimit` — off unless ``REPRO_RATE_LIMIT`` or
``--rate-limit`` is set) or 500.  A 500 body is deliberately generic —
``{"error": "internal server error", "trace_id": ...}`` — with the
traceback written server-side to the error log under that ``trace_id``,
never into the response.
"""

from __future__ import annotations

import asyncio
import json
import math
import time
import traceback
from concurrent.futures import ThreadPoolExecutor
from typing import Optional, Tuple, Union
from urllib.parse import parse_qs

from ..obs import get_registry, new_trace_id, render_snapshot_text
from .query import QueryError, QueryService, ServiceStaleCursorError
from .ratelimit import RateLimiter, limiter_from_env
from .sessions import SessionExpired

#: Largest accepted request body (inline graphs included).
MAX_BODY_BYTES = 16 * 1024 * 1024

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
}


class ServiceHTTPServer:
    """One query service behind one listening socket."""

    def __init__(
        self,
        service: Optional[QueryService] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        executor_workers: int = 8,
        rate_limit: Optional[float] = None,
        limiter: Optional[RateLimiter] = None,
    ) -> None:
        self.service = service if service is not None else QueryService()
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None
        # Explicit limiter (tests) > --rate-limit flag > REPRO_RATE_LIMIT
        # env > off.
        self._limiter = limiter if limiter is not None else limiter_from_env(rate_limit)
        self._executor = ThreadPoolExecutor(
            max_workers=executor_workers, thread_name_prefix="repro-serve"
        )

    # ------------------------------------------------------------------ #
    async def start(self) -> Tuple[str, int]:
        """Bind and listen; returns the bound ``(host, port)``.

        ``port=0`` binds an ephemeral port — the tests (and the CI smoke
        job) read the real one from the return value.
        """
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        sockname = self._server.sockets[0].getsockname()
        self.port = sockname[1]
        return sockname[0], sockname[1]

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    async def aclose(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self._executor.shutdown(wait=False)
        self.service.close()

    def run(self) -> None:  # pragma: no cover - exercised via `python -m repro.serve`
        """Blocking convenience wrapper: start and serve until interrupted."""

        async def _main() -> None:
            host, port = await self.start()
            print(f"repro service listening on http://{host}:{port}", flush=True)
            await self.serve_forever()

        try:
            asyncio.run(_main())
        except KeyboardInterrupt:
            pass

    # ------------------------------------------------------------------ #
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        started = time.perf_counter()
        route = None
        extra_headers = {}
        try:
            rejection = self._rate_limit_check(writer)
            if rejection is not None:
                # The request is never parsed, but its bytes must still be
                # consumed: responding to a half-sent POST and closing makes
                # the client see EPIPE mid-upload instead of the 429.
                await self._drain_request(reader)
                status, payload, route, extra_headers = rejection
            else:
                status, payload, route = await self._handle_request(reader)
        except Exception:  # never let a handler kill the loop
            # The client gets a generic body plus a fresh trace_id; the
            # traceback goes to the server-side error log under that id —
            # exception text must not leak implementation detail.
            trace_id = new_trace_id()
            self.service.slow_log.error(
                route or "http", trace_id, traceback.format_exc()
            )
            status, payload = 500, {
                "error": "internal server error",
                "trace_id": trace_id,
            }
        metrics = get_registry()
        if metrics.enabled:
            label = route or "unparsed"
            metrics.inc("http_requests_total", path=label, status=status)
            metrics.observe(
                "http_request_ms",
                (time.perf_counter() - started) * 1000.0,
                path=label,
            )
        if isinstance(payload, str):  # /v1/metrics?format=text
            body = payload.encode("utf-8")
            content_type = "text/plain; charset=utf-8"
        else:
            body = json.dumps(payload).encode("utf-8")
            content_type = "application/json"
        header_lines = [
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Error')}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(body)}",
        ]
        header_lines.extend(f"{name}: {value}" for name, value in extra_headers.items())
        header_lines.append("Connection: close")
        head = ("\r\n".join(header_lines) + "\r\n\r\n").encode("ascii")
        try:
            writer.write(head + body)
            await writer.drain()
        except (ConnectionError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):
                pass

    async def _drain_request(self, reader: asyncio.StreamReader) -> None:
        """Read and discard one request so an early rejection can respond.

        Bounded by the stream reader's line limit and ``MAX_BODY_BYTES``;
        malformed or truncated requests are simply abandoned — the
        rejection response is written regardless.
        """
        try:
            header_blob = await asyncio.wait_for(
                reader.readuntil(b"\r\n\r\n"), timeout=5.0
            )
            length = 0
            for line in header_blob.decode("latin-1").split("\r\n")[1:]:
                name, sep, value = line.partition(":")
                if sep and name.strip().lower() == "content-length":
                    length = int(value.strip())
                    break
            if 0 < length <= MAX_BODY_BYTES:
                await asyncio.wait_for(reader.readexactly(length), timeout=5.0)
        except (asyncio.TimeoutError, asyncio.IncompleteReadError,
                asyncio.LimitOverrunError, ValueError, ConnectionError):
            pass

    def _rate_limit_check(self, writer: asyncio.StreamWriter):
        """A ready-to-send 429 tuple when the client is over budget, else ``None``.

        Runs before the request is parsed or dispatched: a rejected
        connection costs the server nothing beyond draining its bytes.
        The route label is the fixed string ``ratelimited`` (the path was
        never parsed) to keep metric cardinality flat.
        """
        if self._limiter is None:
            return None
        peer = writer.get_extra_info("peername")
        client = peer[0] if isinstance(peer, tuple) and peer else "unknown"
        allowed, retry_after = self._limiter.allow(client)
        if allowed:
            return None
        retry_seconds = max(1, math.ceil(retry_after))
        metrics = get_registry()
        if metrics.enabled:
            # Deliberately unlabelled: client IPs would make the series
            # cardinality as unbounded as the client population.
            metrics.inc("http_rate_limited_total")
        payload = {
            "error": "rate limit exceeded",
            "retry_after": retry_seconds,
        }
        return 429, payload, "ratelimited", {"Retry-After": str(retry_seconds)}

    async def _handle_request(
        self, reader: asyncio.StreamReader
    ) -> Tuple[int, Union[dict, str], Optional[str]]:
        """One parsed + dispatched request: ``(status, payload, route)``.

        ``route`` is the path without its query string (``None`` when the
        request never parsed far enough to have one) — it is the metrics
        label, kept low-cardinality on purpose.
        """
        try:
            header_blob = await reader.readuntil(b"\r\n\r\n")
        except (asyncio.IncompleteReadError, asyncio.LimitOverrunError):
            return 400, {"error": "malformed HTTP request"}, None
        request_line, _, header_text = header_blob.decode(
            "latin-1"
        ).partition("\r\n")
        parts = request_line.split()
        if len(parts) != 3:
            return 400, {"error": "malformed request line"}, None
        method, target, _version = parts
        path, _, query_string = target.partition("?")
        headers = {}
        for line in header_text.split("\r\n"):
            name, sep, value = line.partition(":")
            if sep:
                headers[name.strip().lower()] = value.strip()
        length = 0
        if "content-length" in headers:
            # int() raising out of a raw header used to surface as a 500;
            # a non-numeric, negative or empty Content-Length is the
            # client's error — reject it as such.
            try:
                length = int(headers["content-length"])
            except ValueError:
                return 400, {"error": "invalid Content-Length header"}, path
            if length < 0:
                return 400, {"error": "invalid Content-Length header"}, path
        if length > MAX_BODY_BYTES:
            return 413, {"error": "request body too large"}, path
        body = await reader.readexactly(length) if length else b""
        status, payload = await self._dispatch(method, path, query_string, body)
        return status, payload, path

    async def _dispatch(
        self, method: str, path: str, query_string: str, body: bytes
    ) -> Tuple[int, Union[dict, str]]:
        if path == "/healthz":
            if method != "GET":
                return 405, {"error": "use GET"}
            return 200, {"ok": True}
        if path == "/v1/stats":
            if method != "GET":
                return 405, {"error": "use GET"}
            return 200, self.service.stats()
        if path == "/v1/metrics":
            if method != "GET":
                return 405, {"error": "use GET"}
            snapshot = get_registry().snapshot()
            params = parse_qs(query_string)
            if params.get("format", [""])[-1] == "text":
                return 200, render_snapshot_text(snapshot)
            return 200, snapshot
        if path not in ("/v1/enumerate", "/v1/paginate", "/v1/cancel", "/v1/update"):
            return 404, {"error": f"unknown route {path}"}
        if method != "POST":
            return 405, {"error": "use POST"}
        try:
            document = json.loads(body) if body else {}
        except json.JSONDecodeError as error:
            return 400, {"error": f"request body is not JSON: {error}"}
        if not isinstance(document, dict):
            return 400, {"error": "request body must be a JSON object"}
        want_trace = bool(document.get("trace"))
        loop = asyncio.get_running_loop()
        try:
            if path == "/v1/enumerate":
                query = document.get("query")
                if want_trace and isinstance(query, dict):
                    query = {**query, "trace": True}
                if document.get("paginate"):
                    result = await loop.run_in_executor(
                        self._executor,
                        lambda: self.service.open_session(
                            query, page_size=document.get("page_size")
                        ),
                    )
                else:
                    result = await loop.run_in_executor(
                        self._executor, lambda: self.service.enumerate(query)
                    )
            elif path == "/v1/paginate":
                session_id = document.get("session_id")
                cursor = document.get("cursor")
                page_size = document.get("page_size")
                # Wrong-typed fields are the client's error: reject them as
                # 400 here instead of letting a str-assuming code path blow
                # up into a 500 downstream.
                if session_id is not None and not isinstance(session_id, str):
                    return 400, {"error": "session_id must be a string"}
                if cursor is not None and not isinstance(cursor, str):
                    return 400, {"error": "cursor must be a string"}
                if page_size is not None and (
                    not isinstance(page_size, int) or isinstance(page_size, bool)
                ):
                    return 400, {"error": "page_size must be an integer"}
                result = await loop.run_in_executor(
                    self._executor,
                    lambda: self.service.next_page(
                        session_id=session_id,
                        cursor=cursor,
                        page_size=page_size,
                        want_trace=want_trace,
                    ),
                )
            elif path == "/v1/update":
                result = await loop.run_in_executor(
                    self._executor, lambda: self.service.update(document)
                )
            else:  # /v1/cancel
                session_id = document.get("session_id")
                if not isinstance(session_id, str):
                    return 400, {"error": "cancel needs a session_id"}
                if not self.service.cancel(session_id):
                    # Cancelling something that is not there is a 404, not a
                    # 200-with-false (and certainly not a 500): the session
                    # may have expired, finished, or never existed.
                    return 404, {
                        "error": (
                            f"no live session {session_id!r} "
                            "(expired, finished or never existed)"
                        ),
                        "code": "unknown_session",
                    }
                result = {"cancelled": True}
        except SessionExpired:
            return 404, {"error": "session expired or unknown (resume via cursor)"}
        except ServiceStaleCursorError as error:
            # The token is intact; the graph moved on.  409 + a machine
            # code so clients distinguish "re-run the query" from "your
            # request is malformed".
            return 409, {"error": str(error), "code": "stale_cursor"}
        except QueryError as error:  # includes ServiceCursorError
            return 400, {"error": str(error)}
        return 200, result
