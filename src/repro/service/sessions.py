"""The live-session table: TTL + capacity bounded, eviction-tolerant.

A paginating client holds a ``session_id`` and pulls pages against the
same in-memory :class:`~repro.core.session.EnumerationSession` — the hot
path, one polynomial delay per solution.  Sessions are resources (a
parallel one owns a process pool), so the table bounds them two ways:

* **TTL** — a session untouched for ``ttl_seconds`` is evicted on the
  next sweep (sweeps piggyback on every table operation; an injectable
  ``clock`` keeps the tests instant);
* **capacity** — creating past ``capacity`` evicts the least recently
  used session first.

Eviction is deliberately *not* data loss: every page response carries the
session's cursor token, and :meth:`~repro.service.query.QueryService.next_page`
falls back to cursor resume when the id is gone.  The table therefore
closes evicted sessions eagerly — the cursor, not the object, is the
durable handle.

Records carry a per-session lock: sessions are forward-only iterators and
not thread-safe, so concurrent pagination requests for the same id
serialize on it while distinct sessions proceed in parallel.  Closing an
evicted record honours the same lock — a TTL sweep or capacity eviction
must not tear a session down underneath a pager that is mid-batch on it.
The lock is an RLock because the pager itself removes (and thereby
closes) a record it still holds: ``QueryService._page`` drops exhausted
sessions from inside the record lock.  Lock ordering: the table lock is
never held while taking a record lock — evicted records are popped under
the table lock but closed only after it is released.
"""

from __future__ import annotations

import secrets
import threading
import time
from collections import OrderedDict
from typing import Callable, Dict, List, Optional

from ..core.session import EnumerationSession
from ..obs import get_registry

#: Default idle lifetime of a session.
DEFAULT_TTL_SECONDS = 300.0

#: Default maximum number of concurrently live sessions.
DEFAULT_SESSION_CAPACITY = 64


class SessionExpired(KeyError):
    """The session id is unknown — expired, evicted, or never issued."""


class SessionRecord:
    """One live session plus the bookkeeping the table needs."""

    __slots__ = ("session_id", "session", "query", "created_at", "last_used", "lock")

    def __init__(
        self,
        session_id: str,
        session: EnumerationSession,
        query: Optional[dict],
        now: float,
    ) -> None:
        self.session_id = session_id
        self.session = session
        self.query = query
        self.created_at = now
        self.last_used = now
        # Reentrant: QueryService._page removes an exhausted record (which
        # closes it under this same lock) while still holding it.
        self.lock = threading.RLock()


class SessionTable:
    """TTL + LRU bounded registry of live enumeration sessions."""

    def __init__(
        self,
        ttl_seconds: float = DEFAULT_TTL_SECONDS,
        capacity: int = DEFAULT_SESSION_CAPACITY,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if ttl_seconds <= 0:
            raise ValueError("session TTL must be positive")
        if capacity < 1:
            raise ValueError("session capacity must be positive")
        self.ttl_seconds = ttl_seconds
        self.capacity = capacity
        self._clock = clock
        self._lock = threading.RLock()
        self._records: "OrderedDict[str, SessionRecord]" = OrderedDict()
        self.created = 0
        self.expired = 0
        self.evicted = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    # ------------------------------------------------------------------ #
    def create(
        self, session: EnumerationSession, query: Optional[dict] = None
    ) -> SessionRecord:
        """Register a session; returns its record (id in ``session_id``).

        ``query`` is the normalized query document that opened the
        session — kept so a page response can re-embed it in a
        self-contained service cursor.
        """
        with self._lock:
            to_close = self._pop_stale_locked()
            session_id = secrets.token_urlsafe(16)
            record = SessionRecord(session_id, session, query, self._clock())
            self._records[session_id] = record
            self.created += 1
            registry = get_registry()
            if registry.enabled:
                registry.inc("service_sessions_total", event="created")
                registry.gauge("service_sessions_live", len(self._records))
            while len(self._records) > self.capacity:
                _, lru = self._records.popitem(last=False)
                self.evicted += 1
                if registry.enabled:
                    registry.inc("service_sessions_total", event="evicted")
                to_close.append(lru)
        # Outside the table lock: _close_quietly takes the record lock, and
        # a pager thread holding a record lock may be about to take the
        # table lock (remove) — closing inside would invert the order.
        for stale in to_close:
            self._close_quietly(stale)
        return record

    def get(self, session_id: str) -> SessionRecord:
        """The record for ``session_id``, touched (TTL + LRU refreshed).

        Raises :class:`SessionExpired` when the id is not live — the
        caller is expected to fall back to the cursor token.
        """
        with self._lock:
            to_close = self._pop_stale_locked()
            record = self._records.get(session_id)
            if record is not None:
                record.last_used = self._clock()
                self._records.move_to_end(session_id)
        for stale in to_close:
            self._close_quietly(stale)
        if record is None:
            raise SessionExpired(session_id)
        return record

    def remove(self, session_id: str) -> bool:
        """Drop (and close) one session; returns whether it was live."""
        with self._lock:
            record = self._records.pop(session_id, None)
        if record is None:
            return False
        self._close_quietly(record)
        return True

    def sweep(self) -> int:
        """Evict every session idle past the TTL; returns how many."""
        with self._lock:
            stale = self._pop_stale_locked()
        for record in stale:
            self._close_quietly(record)
        return len(stale)

    def close_all(self) -> None:
        with self._lock:
            records = list(self._records.values())
            self._records.clear()
        for record in records:
            self._close_quietly(record)

    def counters(self) -> Dict[str, int]:
        with self._lock:
            return {
                "sessions_live": len(self._records),
                "sessions_created": self.created,
                "sessions_expired": self.expired,
                "sessions_evicted": self.evicted,
            }

    # ------------------------------------------------------------------ #
    def _pop_stale_locked(self) -> List[SessionRecord]:
        """Unlink every TTL-expired record; the caller closes them later.

        Runs under the table lock but does **not** close: the close path
        needs each record's own lock, and taking record locks while
        holding the table lock deadlocks against pagers (who take them in
        the opposite order).
        """
        deadline = self._clock() - self.ttl_seconds
        stale = [
            session_id
            for session_id, record in self._records.items()
            if record.last_used <= deadline
        ]
        popped = []
        registry = get_registry()
        for session_id in stale:
            popped.append(self._records.pop(session_id))
            self.expired += 1
            if registry.enabled:
                registry.inc("service_sessions_total", event="expired")
        if popped and registry.enabled:
            registry.gauge("service_sessions_live", len(self._records))
        return popped

    @staticmethod
    def _close_quietly(record: SessionRecord) -> None:
        # Under the record lock: a pager mid-next_batch on this session
        # must finish its pull before the stream is torn down (closing a
        # generator another thread is iterating raises in both threads).
        with record.lock:
            try:
                record.session.close()
            except Exception:
                pass  # eviction must never fail the operation that triggered it
