"""Enumeration-as-a-service: hot graphs, session table, query front door.

This package turns the enumeration library into a long-lived system.  The
layering (bottom up; ``ARCHITECTURE.md`` has the full picture):

* **engine** — :class:`~repro.core.traversal.ReverseSearchEngine`, the
  explicit-state reverse-search stepper;
* **session** — :class:`~repro.core.session.EnumerationSession`,
  pagination + resumable cursors over one engine;
* **service** (this package) — everything a daemon needs on top:

  - :class:`~repro.service.registry.HotGraphRegistry` keeps graphs *hot*:
    load / backend-convert / prep-reduce once, keyed by graph source and
    prep fingerprint, LRU-bounded, with hit counters so tests (and the
    ``/v1/stats`` endpoint) can assert that a repeated query skipped the
    cold path;
  - :class:`~repro.service.sessions.SessionTable` owns the live sessions
    with TTL + capacity eviction — an evicted session is not lost, its
    last cursor token still resumes it;
  - :class:`~repro.service.query.QueryService` is the transport-agnostic
    front door: parameterized queries with budget clamps, result caching
    for repeated identical queries, pagination through sessions *or*
    self-contained service cursors;
  - :mod:`repro.service.http` serves it over async HTTP/JSON
    (``python -m repro.serve``), and the ``repro-mbp query`` CLI family
    is the other front end — both report the same
    :func:`~repro.service.status.status_block`.
"""

from .query import (
    Budgets,
    QueryError,
    QueryService,
    ServiceCursorError,
    ServiceStaleCursorError,
)
from .ratelimit import RateLimiter, limiter_from_env
from .registry import HotGraphRegistry
from .sessions import SessionExpired, SessionTable
from .status import status_block

__all__ = [
    "Budgets",
    "HotGraphRegistry",
    "QueryError",
    "QueryService",
    "RateLimiter",
    "ServiceCursorError",
    "ServiceStaleCursorError",
    "SessionExpired",
    "SessionTable",
    "limiter_from_env",
    "status_block",
]
