"""The graph-inflation baseline (``FaPlexen`` in the paper's figures).

The baseline enumerates maximal k-biplexes of a bipartite graph ``G`` by

1. *inflating* ``G`` into a general graph (adding an edge between every pair
   of same-side vertices), and
2. enumerating all maximal ``(k+1)``-plexes of the inflated graph with a
   maximal k-plex enumerator (the paper uses FaPlexen; we use the
   branch-and-bound enumerator of :mod:`repro.baselines.kplex`).

A vertex subset of the inflated graph is a ``(k+1)``-plex exactly when the
corresponding ``(L', R')`` is a k-biplex of ``G``, and maximality carries
over, so the pipeline is exact.  Its weakness — the reason the paper's
evaluation shows it running out of memory/time on all but the smallest
datasets — is the inflation step itself, which produces ``Θ(|L|² + |R|²)``
edges regardless of how sparse the input is.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional

from ..core.biplex import Biplex
from ..graph.bipartite import BipartiteGraph
from ..graph.inflate import inflate, inflated_edge_count, split_vertex_set
from ..graph.protocol import BACKENDS, default_backend
from .kplex import enumerate_maximal_kplexes_with_status


@dataclass
class InflationStats:
    """Measurements of one inflation-pipeline run."""

    inflated_edges: int = 0
    inflation_seconds: float = 0.0
    enumeration_seconds: float = 0.0
    truncated: bool = False

    @property
    def total_seconds(self) -> float:
        """End-to-end wall-clock time of the pipeline."""
        return self.inflation_seconds + self.enumeration_seconds


class FaPlexenPipeline:
    """Maximal k-biplex enumeration via graph inflation + maximal (k+1)-plexes.

    Parameters
    ----------
    graph:
        Input bipartite graph.
    k:
        Biplex parameter.
    memory_edge_budget:
        The pipeline refuses to inflate graphs whose inflated edge count
        exceeds this budget and reports ``truncated`` instead — this mirrors
        the paper's *OUT* (out of 32 GB memory) outcomes for FaPlexen on
        larger datasets without actually exhausting the machine.
    max_results, time_limit:
        Optional limits forwarded to the plex enumerator.  When either cuts
        the search short, ``stats.truncated`` is set — capped runs never
        masquerade as complete enumerations.
    backend:
        Adjacency substrate of the *inflated* graph: ``"bitset"`` (the
        default, see :func:`repro.graph.protocol.default_backend`) and
        ``"packed"`` (numpy bit-matrix rows) give the plex enumerator its
        word-parallel non-neighbour-mask fast path; ``"set"`` is the
        plain-set fallback.
    """

    def __init__(
        self,
        graph: BipartiteGraph,
        k: int,
        memory_edge_budget: int = 5_000_000,
        max_results: Optional[int] = None,
        time_limit: Optional[float] = None,
        backend: Optional[str] = None,
    ) -> None:
        self.graph = graph
        self.k = k
        self.memory_edge_budget = memory_edge_budget
        self.max_results = max_results
        self.time_limit = time_limit
        self.backend = default_backend() if backend is None else backend
        if self.backend not in BACKENDS:
            raise ValueError(f"unknown backend {self.backend!r}; expected one of {BACKENDS}")
        self.stats = InflationStats()

    def enumerate(self) -> List[Biplex]:
        """Run the pipeline; returns ``[]`` with ``stats.truncated`` set when over budget."""
        self.stats = InflationStats()
        projected_edges = inflated_edge_count(self.graph)
        self.stats.inflated_edges = projected_edges
        if projected_edges > self.memory_edge_budget:
            self.stats.truncated = True
            return []
        start = time.perf_counter()
        inflated = inflate(self.graph, backend=self.backend)
        self.stats.inflation_seconds = time.perf_counter() - start

        start = time.perf_counter()
        plexes, truncated = enumerate_maximal_kplexes_with_status(
            inflated,
            self.k + 1,
            max_results=self.max_results,
            time_limit=self.time_limit,
        )
        self.stats.enumeration_seconds = time.perf_counter() - start
        if truncated:
            self.stats.truncated = True

        n_left = self.graph.n_left
        solutions: List[Biplex] = []
        for plex in plexes:
            left, right = split_vertex_set(frozenset(plex), n_left)
            solutions.append(Biplex(left=left, right=right))
        return solutions


def enumerate_mbps_inflation(
    graph: BipartiteGraph,
    k: int,
    max_results: Optional[int] = None,
    time_limit: Optional[float] = None,
    memory_edge_budget: int = 5_000_000,
    backend: Optional[str] = None,
) -> List[Biplex]:
    """Functional wrapper around :class:`FaPlexenPipeline`."""
    pipeline = FaPlexenPipeline(
        graph,
        k,
        memory_edge_budget=memory_edge_budget,
        max_results=max_results,
        time_limit=time_limit,
        backend=backend,
    )
    return pipeline.enumerate()
