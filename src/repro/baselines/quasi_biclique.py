"""δ-quasi-biclique mining.

A δ-quasi-biclique (δ-QB) is an induced subgraph ``(L', R')`` in which every
left vertex misses at most ``δ · |R'|`` right vertices and every right
vertex misses at most ``δ · |L'|`` left vertices (Liu et al., COCOON 2008).
Unlike k-biplexes the structure is *not* hereditary — removing vertices can
break the relative thresholds — so maximal δ-QBs cannot be enumerated with
reverse search, and exact enumeration is only feasible on tiny graphs.

The paper uses δ-QBs as one of the competitor structures in the
fraud-detection case study (Figure 13).  Accordingly this module provides:

* an exact (exponential) enumerator for small graphs, used by the tests;
* a greedy seed-and-expand *finder* for the case-study scale, which grows
  δ-QBs from maximal k-biplex seeds.  This is the substitution documented in
  DESIGN.md: the original study also relies on heuristic mining for δ-QBs,
  and the precision/recall trade-off of the structure definition — many
  disconnections allowed when the subgraph is large — is fully preserved.
"""

from __future__ import annotations

import math
from itertools import combinations
from typing import Iterable, List, Optional, Set

from ..core.biplex import Biplex
from ..graph.bipartite import BipartiteGraph
from ..graph.protocol import as_backend, default_backend, iter_bits, mask_of, supports_masks


def is_quasi_biclique(
    graph: BipartiteGraph, left: Iterable[int], right: Iterable[int], delta: float
) -> bool:
    """Whether ``(left, right)`` is a δ-quasi-biclique.

    Empty sides are accepted (the constraints hold vacuously).  On a
    mask-capable substrate the per-vertex miss counts are word-parallel
    popcounts instead of set differences.
    """
    if supports_masks(graph):
        left_mask = mask_of(left)
        right_mask = mask_of(right)
        left_budget = delta * right_mask.bit_count()
        right_budget = delta * left_mask.bit_count()
        for v in iter_bits(left_mask):
            if (right_mask & ~graph.adj_left_mask(v)).bit_count() > left_budget:
                return False
        for u in iter_bits(right_mask):
            if (left_mask & ~graph.adj_right_mask(u)).bit_count() > right_budget:
                return False
        return True
    left_set = set(left)
    right_set = set(right)
    left_budget = delta * len(right_set)
    right_budget = delta * len(left_set)
    for v in left_set:
        if graph.missing_left(v, right_set) > left_budget:
            return False
    for u in right_set:
        if graph.missing_right(u, left_set) > right_budget:
            return False
    return True


def enumerate_maximal_quasi_bicliques(
    graph: BipartiteGraph,
    delta: float,
    theta_left: int = 1,
    theta_right: int = 1,
    backend: Optional[str] = None,
) -> List[Biplex]:
    """Exact enumeration of maximal δ-QBs meeting the size thresholds.

    Exponential in the number of vertices — use only on small graphs (tests
    and sanity checks).  Maximality is with respect to set inclusion among
    δ-QBs satisfying the thresholds.
    """
    graph = as_backend(graph, default_backend() if backend is None else backend)
    left_pool = list(graph.left_vertices())
    right_pool = list(graph.right_vertices())
    found: List[Biplex] = []
    for left_size in range(theta_left, len(left_pool) + 1):
        for left_subset in combinations(left_pool, left_size):
            for right_size in range(theta_right, len(right_pool) + 1):
                for right_subset in combinations(right_pool, right_size):
                    if is_quasi_biclique(graph, left_subset, right_subset, delta):
                        found.append(Biplex.of(left_subset, right_subset))
    maximal: List[Biplex] = []
    for candidate in found:
        if not any(other != candidate and other.contains(candidate) for other in found):
            maximal.append(candidate)
    return maximal


def quasi_biclique_seed_k(delta: float, theta_left: int, theta_right: int) -> int:
    """The k-biplex parameter used to seed the greedy δ-QB finder.

    A maximal k-biplex with ``|L'| ≥ θ_L`` and ``|R'| ≥ θ_R`` is *guaranteed*
    to already be a δ-QB exactly when ``k ≤ δ · |R'|`` and ``k ≤ δ · |L'|``
    for every admissible seed, i.e. when ``k ≤ δ · min(θ_L, θ_R)`` (the side
    sizes only grow beyond their thresholds, and the δ-QB miss budgets are
    relative while k is absolute).  We therefore seed with the largest such
    k, ``⌊δ · min(θ_L, θ_R)⌋``, clamped to at least 1 so the seed enumeration
    is never degenerate.  Only the clamped case can produce seeds that
    violate the δ-QB budgets — which is what the shrink-repair step of
    :func:`find_quasi_bicliques_greedy` is for.
    """
    return max(1, math.floor(delta * min(theta_left, theta_right)))


def find_quasi_bicliques_greedy(
    graph: BipartiteGraph,
    delta: float,
    theta_left: int,
    theta_right: int,
    seeds: Optional[List[Biplex]] = None,
    max_structures: int = 200,
    backend: Optional[str] = None,
) -> List[Biplex]:
    """Greedy seed-and-expand δ-QB finder for case-study scale graphs.

    Each seed (by default the maximal k-biplexes with
    ``k = max(1, ⌊δ · min(θ_L, θ_R)⌋)`` found by iTraversal — see
    :func:`quasi_biclique_seed_k` — unless explicit ``seeds`` are passed in
    by the caller) is expanded greedily: vertices whose addition keeps the
    δ-QB property are added, preferring high-degree vertices, until no
    further addition is possible.  Structures below the size thresholds are
    discarded, duplicates removed.
    """
    graph = as_backend(graph, default_backend() if backend is None else backend)
    if seeds is None:
        from ..core.itraversal import ITraversal

        k_seed = quasi_biclique_seed_k(delta, theta_left, theta_right)
        seeds = ITraversal(
            graph, k_seed, theta_left=theta_left, theta_right=theta_right,
            max_results=max_structures,
        ).enumerate()

    results: List[Biplex] = []
    seen: Set[Biplex] = set()
    for seed in seeds[:max_structures]:
        repaired = _shrink_to_quasi_biclique(graph, set(seed.left), set(seed.right), delta)
        if repaired is None:
            continue
        expanded = _expand_quasi_biclique(graph, set(repaired[0]), set(repaired[1]), delta)
        if len(expanded.left) < theta_left or len(expanded.right) < theta_right:
            continue
        if not is_quasi_biclique(graph, expanded.left, expanded.right, delta):
            continue
        if expanded not in seen:
            seen.add(expanded)
            results.append(expanded)
    return results


def _shrink_to_quasi_biclique(
    graph: BipartiteGraph, left: Set[int], right: Set[int], delta: float
):
    """Repair a seed by removing its worst-violating vertices until it is a δ-QB.

    Returns ``(left, right)`` or ``None`` when a side empties out before the
    property is restored.  k-biplex seeds usually violate the δ-QB budgets
    only mildly (the budgets are relative while k is absolute), so a handful
    of removals suffices.
    """
    while left and right:
        if is_quasi_biclique(graph, left, right, delta):
            return left, right
        worst_vertex = None
        worst_side = None
        worst_excess = 0.0
        left_budget = delta * len(right)
        right_budget = delta * len(left)
        for v in left:
            excess = graph.missing_left(v, right) - left_budget
            if excess > worst_excess:
                worst_excess, worst_vertex, worst_side = excess, v, "L"
        for u in right:
            excess = graph.missing_right(u, left) - right_budget
            if excess > worst_excess:
                worst_excess, worst_vertex, worst_side = excess, u, "R"
        if worst_vertex is None:
            return left, right
        if worst_side == "L":
            left.discard(worst_vertex)
        else:
            right.discard(worst_vertex)
    return None


def _expand_quasi_biclique(
    graph: BipartiteGraph, left: Set[int], right: Set[int], delta: float
) -> Biplex:
    """Greedily add vertices (highest degree first) while the δ-QB property holds."""
    left_candidates = sorted(
        (v for v in graph.left_vertices() if v not in left),
        key=graph.degree_of_left,
        reverse=True,
    )
    right_candidates = sorted(
        (u for u in graph.right_vertices() if u not in right),
        key=graph.degree_of_right,
        reverse=True,
    )
    changed = True
    while changed:
        changed = False
        for v in left_candidates:
            if v not in left and is_quasi_biclique(graph, left | {v}, right, delta):
                left.add(v)
                changed = True
        for u in right_candidates:
            if u not in right and is_quasi_biclique(graph, left, right | {u}, delta):
                right.add(u)
                changed = True
    return Biplex.of(left, right)
