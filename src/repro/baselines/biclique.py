"""Maximal biclique enumeration.

A biclique is a complete bipartite subgraph — equivalently a 0-biplex — so
maximal bicliques are enumerated with the same include/exclude
branch-and-bound as :class:`repro.baselines.imb.IMB` instantiated with
``k = 0``.  Bicliques are one of the competitor structures of the
fraud-detection case study (Figure 13), where the paper shows that their
all-edges-present requirement makes the recall collapse as soon as the
attackers omit a few edges.
"""

from __future__ import annotations

from typing import List, Optional

from ..core.biplex import Biplex
from ..graph.bipartite import BipartiteGraph
from .imb import IMB


def enumerate_maximal_bicliques(
    graph: BipartiteGraph,
    theta_left: int = 1,
    theta_right: int = 1,
    max_results: Optional[int] = None,
    time_limit: Optional[float] = None,
) -> List[Biplex]:
    """Enumerate maximal bicliques with at least ``theta_left`` / ``theta_right`` vertices per side.

    The default thresholds of 1 exclude the degenerate one-sided bicliques;
    the case study uses larger thresholds (e.g. 4 users × 3-7 products).
    """
    enumerator = IMB(
        graph,
        k=0,
        theta_left=theta_left,
        theta_right=theta_right,
        max_results=max_results,
        time_limit=time_limit,
    )
    return enumerator.enumerate()


def is_biclique(graph: BipartiteGraph, left, right) -> bool:
    """Whether every left-right pair of the induced subgraph is an edge."""
    return all(graph.has_edge(v, u) for v in left for u in right)


def maximum_biclique_greedy(
    graph: BipartiteGraph,
    theta_left: int = 1,
    theta_right: int = 1,
    time_limit: Optional[float] = None,
) -> Optional[Biplex]:
    """A largest maximal biclique found by full enumeration (small graphs only).

    Returns ``None`` if no biclique meets the size thresholds.
    """
    best: Optional[Biplex] = None
    for candidate in enumerate_maximal_bicliques(
        graph, theta_left=theta_left, theta_right=theta_right, time_limit=time_limit
    ):
        if best is None or candidate.size > best.size:
            best = candidate
    return best
