"""iMB-style backtracking enumeration of maximal k-biplexes.

iMB (Sim et al. 2009; Yu et al., TKDE 2021) enumerates maximal k-biplexes
by backtracking over the two vertex sets with pruning rules driven by the
size constraints imposed on the output.  The exact prefix-tree data
structures of the original C++ implementation are not essential to its
behaviour; what matters for the paper's comparison is that

* it explores an include/exclude set-enumeration tree over the vertices of
  both sides (exponential delay — all the work may happen before the first
  output),
* its pruning power comes almost entirely from the size thresholds
  ``θ_L``/``θ_R`` (without them it degenerates to near-exhaustive search,
  which is why it cannot handle the larger datasets in Figure 7), and
* with thresholds it prunes branches whose candidate sets cannot reach the
  required sizes (used in the Figure 10 comparison).

This implementation follows that design: a binary include/exclude search
over the combined vertex universe with hereditary candidate filtering,
maximality verification against the excluded set, and size-based pruning.

On a mask-capable backend (``bitset``, the default, or the numpy-backed
``packed``; ``backend="set"`` falls back to plain sets) the ``_fits`` /
``_add`` hot loop uses per-vertex non-neighbour masks: the members of the
current biplex a candidate misses are found with one word-parallel ``&``
plus a popcount, and only their (at most ``k``) bits are walked for the
per-member miss-budget checks.
"""

from __future__ import annotations

import time
from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..core.biplex import Biplex
from ..graph.bipartite import BipartiteGraph
from ..graph.protocol import as_backend, default_backend, supports_masks


class _SearchLimit(Exception):
    """Raised internally when a time or result limit is reached."""


class IMB:
    """Backtracking maximal k-biplex enumerator with optional size constraints.

    Parameters
    ----------
    graph:
        Input bipartite graph.
    k:
        Biplex parameter.  ``k = 0`` is allowed and enumerates maximal
        bicliques (used by :mod:`repro.baselines.biclique`).
    theta_left, theta_right:
        Minimum sizes of the two sides of reported biplexes; 0 disables the
        constraint (and most of the pruning, as in the paper).
    max_results, time_limit:
        Optional limits; the search stops when either is reached.
    backend:
        Adjacency substrate (``"bitset"`` by default, see
        :func:`repro.graph.protocol.default_backend`; ``"packed"`` and
        ``"set"`` are the alternatives); all backends enumerate identical
        solution sets.
    prep:
        Preprocessing pipeline (:mod:`repro.prep`), sharing the traversal
        engines' semantics: ``None`` resolves via ``REPRO_PREP`` (default
        ``"core"`` — the threshold-driven core/bitruss reduction, a no-op
        without thresholds), ``"core+order"`` additionally explores the
        include/exclude universe in degeneracy order, ``"off"`` searches
        the raw graph in canonical order exactly as before.  Results are
        always reported in the original graph's vertex ids.  The
        reduction is sound here for the same reason as for the
        traversals: any vertex addable to a θ-large solution lies inside
        some θ-large *maximal* biplex, which survives the reduction
        entirely — so reduced-graph maximality implies original-graph
        maximality for every reported solution.
    """

    def __init__(
        self,
        graph: BipartiteGraph,
        k: int,
        theta_left: int = 0,
        theta_right: int = 0,
        max_results: Optional[int] = None,
        time_limit: Optional[float] = None,
        backend: Optional[str] = None,
        prep: Optional[str] = None,
    ) -> None:
        if k < 0:
            raise ValueError("k must be non-negative")
        from ..prep import prepare

        converted = as_backend(graph, default_backend() if backend is None else backend)
        # The reduction bounds hold for k = 0 (bicliques) too: every vertex
        # of a θ-large biclique is adjacent to *all* of the other side.
        self._prep_plan = prepare(
            converted, k, prep, theta_left=theta_left, theta_right=theta_right
        )
        self.graph = self._prep_plan.graph
        self.k = k
        # Masked fast path: per-vertex non-neighbour masks over the other side.
        if supports_masks(self.graph):
            g = self.graph
            full_left = (1 << g.n_left) - 1
            full_right = (1 << g.n_right) - 1
            self._non_adj_left: Optional[List[int]] = [
                full_right & ~g.adj_left_mask(v) for v in g.left_vertices()
            ]
            self._non_adj_right: Optional[List[int]] = [
                full_left & ~g.adj_right_mask(u) for u in g.right_vertices()
            ]
        else:
            self._non_adj_left = None
            self._non_adj_right = None
        self.theta_left = theta_left
        self.theta_right = theta_right
        self.max_results = max_results
        self.time_limit = time_limit
        self.results: List[Biplex] = []
        self.truncated = False
        self._start = 0.0

    # ------------------------------------------------------------------ #
    def enumerate(self) -> List[Biplex]:
        """Run the backtracking search and return the maximal k-biplexes found."""
        self.results = []
        self.truncated = False
        self._start = time.perf_counter()
        # The combined vertex universe: ("L", id) and ("R", id) pairs.  Left
        # vertices first, then right — ascending ids, or the prep plan's
        # candidate ordering when one is set; the order only affects
        # traversal order, not the output set.
        plan = self._prep_plan
        left_order = (
            plan.left_order if plan.left_order is not None else self.graph.left_vertices()
        )
        right_order = (
            plan.right_order
            if plan.right_order is not None
            else self.graph.right_vertices()
        )
        universe: List[Tuple[str, int]] = [("L", v) for v in left_order]
        universe.extend(("R", u) for u in right_order)
        if not universe:
            return []
        try:
            self._branch(set(), set(), 0, 0, {}, {}, universe, [])
        except _SearchLimit:
            self.truncated = True
        return self.results

    def run(self) -> Iterator[Biplex]:
        """Iterator interface (materialises the full result list first).

        iMB genuinely has this behaviour: its delay is exponential because
        solutions may only be confirmed maximal late in the search, so
        streaming them early is not possible in general.
        """
        yield from self.enumerate()

    # ------------------------------------------------------------------ #
    def _branch(
        self,
        left: Set[int],
        right: Set[int],
        left_mask: int,
        right_mask: int,
        left_misses: Dict[int, int],
        right_misses: Dict[int, int],
        candidates: List[Tuple[str, int]],
        excluded: List[Tuple[str, int]],
    ) -> None:
        self._check_limits()
        if not self._can_reach_thresholds(left, right, candidates):
            return
        local_excluded = list(excluded)
        for index, candidate in enumerate(candidates):
            if self._fits(left_mask, right_mask, left, right, left_misses, right_misses, candidate):
                new_left, new_right = set(left), set(right)
                new_left_misses, new_right_misses = dict(left_misses), dict(right_misses)
                self._add(
                    new_left, new_right, left_mask, right_mask,
                    new_left_misses, new_right_misses, candidate,
                )
                side, vertex = candidate
                new_left_mask = left_mask | (1 << vertex) if side == "L" else left_mask
                new_right_mask = right_mask | (1 << vertex) if side == "R" else right_mask
                remaining = candidates[index + 1 :]
                new_candidates = [
                    c
                    for c in remaining
                    if self._fits(
                        new_left_mask, new_right_mask,
                        new_left, new_right, new_left_misses, new_right_misses, c,
                    )
                ]
                new_excluded = [
                    x
                    for x in local_excluded
                    if self._fits(
                        new_left_mask, new_right_mask,
                        new_left, new_right, new_left_misses, new_right_misses, x,
                    )
                ]
                self._branch(
                    new_left,
                    new_right,
                    new_left_mask,
                    new_right_mask,
                    new_left_misses,
                    new_right_misses,
                    new_candidates,
                    new_excluded,
                )
            local_excluded.append(candidate)
        if not left and not right:
            return
        if len(left) < self.theta_left or len(right) < self.theta_right:
            return
        if not any(
            self._fits(left_mask, right_mask, left, right, left_misses, right_misses, x)
            for x in local_excluded
        ):
            self._emit(Biplex.of(left, right))

    def _can_reach_thresholds(
        self, left: Set[int], right: Set[int], candidates: List[Tuple[str, int]]
    ) -> bool:
        """Size-constraint pruning: can this branch still reach θ_L / θ_R?"""
        if not self.theta_left and not self.theta_right:
            return True
        available_left = sum(1 for side, _ in candidates if side == "L")
        available_right = len(candidates) - available_left
        if len(left) + available_left < self.theta_left:
            return False
        if len(right) + available_right < self.theta_right:
            return False
        return True

    def _fits(
        self,
        left_mask: int,
        right_mask: int,
        left: Set[int],
        right: Set[int],
        left_misses: Dict[int, int],
        right_misses: Dict[int, int],
        candidate: Tuple[str, int],
    ) -> bool:
        """Whether adding ``candidate`` keeps the current subgraph a k-biplex."""
        side, vertex = candidate
        if self._non_adj_left is not None:
            if side == "L":
                missed, other_misses = right_mask & self._non_adj_left[vertex], right_misses
            else:
                missed, other_misses = left_mask & self._non_adj_right[vertex], left_misses
            if missed.bit_count() > self.k:
                return False
            while missed:
                low = missed & -missed
                if other_misses[low.bit_length() - 1] + 1 > self.k:
                    return False
                missed ^= low
            return True
        if side == "L":
            adjacency = self.graph.neighbors_of_left(vertex)
            own_misses = 0
            for u in right:
                if u not in adjacency:
                    own_misses += 1
                    if own_misses > self.k or right_misses[u] + 1 > self.k:
                        return False
            return True
        adjacency = self.graph.neighbors_of_right(vertex)
        own_misses = 0
        for v in left:
            if v not in adjacency:
                own_misses += 1
                if own_misses > self.k or left_misses[v] + 1 > self.k:
                    return False
        return True

    def _add(
        self,
        left: Set[int],
        right: Set[int],
        left_mask: int,
        right_mask: int,
        left_misses: Dict[int, int],
        right_misses: Dict[int, int],
        candidate: Tuple[str, int],
    ) -> None:
        side, vertex = candidate
        if self._non_adj_left is not None:
            if side == "L":
                missed = right_mask & self._non_adj_left[vertex]
                own_misses, other_misses = missed.bit_count(), right_misses
                left.add(vertex)
                left_misses[vertex] = own_misses
            else:
                missed = left_mask & self._non_adj_right[vertex]
                own_misses, other_misses = missed.bit_count(), left_misses
                right.add(vertex)
                right_misses[vertex] = own_misses
            while missed:
                low = missed & -missed
                other_misses[low.bit_length() - 1] += 1
                missed ^= low
            return
        if side == "L":
            adjacency = self.graph.neighbors_of_left(vertex)
            own_misses = 0
            for u in right:
                if u not in adjacency:
                    own_misses += 1
                    right_misses[u] += 1
            left.add(vertex)
            left_misses[vertex] = own_misses
        else:
            adjacency = self.graph.neighbors_of_right(vertex)
            own_misses = 0
            for v in left:
                if v not in adjacency:
                    own_misses += 1
                    left_misses[v] += 1
            right.add(vertex)
            right_misses[vertex] = own_misses

    def _emit(self, solution: Biplex) -> None:
        self.results.append(self._prep_plan.translate(solution))
        if self.max_results is not None and len(self.results) >= self.max_results:
            raise _SearchLimit

    def _check_limits(self) -> None:
        if self.time_limit is not None and time.perf_counter() - self._start > self.time_limit:
            raise _SearchLimit


def enumerate_mbps_imb(
    graph: BipartiteGraph,
    k: int,
    theta_left: int = 0,
    theta_right: int = 0,
    max_results: Optional[int] = None,
    time_limit: Optional[float] = None,
    backend: Optional[str] = None,
    prep: Optional[str] = None,
) -> List[Biplex]:
    """Functional wrapper around :class:`IMB`."""
    return IMB(
        graph,
        k,
        theta_left=theta_left,
        theta_right=theta_right,
        max_results=max_results,
        time_limit=time_limit,
        backend=backend,
        prep=prep,
    ).enumerate()
