"""Maximal k-plex enumeration on general graphs.

A *k-plex* of a general graph is a vertex set ``S`` in which every vertex is
adjacent to at least ``|S| - k`` members of ``S`` — equivalently, every
vertex misses at most ``k`` members of ``S`` *counting itself* (the
convention of Berlowitz et al., which the paper follows).  The property is
hereditary, so maximal k-plexes can be enumerated with the classic
binary branch-and-bound over an (include / exclude) set-enumeration tree.

This module is the stand-in for FaPlexen (Zhou et al., AAAI 2020), the
state-of-the-art maximal k-plex enumerator that the paper uses as the
engine of its graph-inflation baseline: our enumerator plays the same
algorithmic role (and has the same exponential worst case on the dense
inflated graphs, which is the behaviour the evaluation demonstrates).

When the input graph advertises adjacency bitmasks (a
:class:`repro.graph.general.BitsetGraph` or
:class:`repro.graph.packed.PackedGraph`, e.g. from ``Graph.to_bitset()``
or ``inflate(..., backend="bitset")`` / ``backend="packed"``), the
``_fits`` / ``_add`` hot loop
switches to per-vertex *non-neighbour masks*: the vertices of the current
plex missed by a candidate are found with one ``&`` and a popcount instead
of a membership scan, and only their (at most ``k``) bits are walked.
"""

from __future__ import annotations

import time
from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..graph.general import Graph
from ..graph.protocol import supports_masks


class _SearchLimit(Exception):
    """Raised internally when a time or result limit is hit."""


def enumerate_maximal_kplexes(
    graph: Graph,
    k: int,
    must_contain: Optional[int] = None,
    max_results: Optional[int] = None,
    time_limit: Optional[float] = None,
) -> List[Set[int]]:
    """Enumerate all maximal k-plexes of ``graph``.

    Parameters
    ----------
    graph:
        The general graph.
    k:
        Plex parameter; every vertex of a plex misses at most ``k`` members
        of the plex, itself included.  Must be at least 1.
    must_contain:
        When given, only maximal k-plexes containing this vertex are
        reported (they are still maximal w.r.t. the whole graph).
    max_results, time_limit:
        Optional limits; when hit, the search stops and returns what was
        found so far.  Use :func:`enumerate_maximal_kplexes_with_status`
        when the caller needs to know whether a limit cut the search short.

    Returns
    -------
    list of sets
        Each maximal k-plex as a vertex set; no duplicates.
    """
    results, _ = enumerate_maximal_kplexes_with_status(
        graph, k, must_contain=must_contain, max_results=max_results, time_limit=time_limit
    )
    return results


def enumerate_maximal_kplexes_with_status(
    graph: Graph,
    k: int,
    must_contain: Optional[int] = None,
    max_results: Optional[int] = None,
    time_limit: Optional[float] = None,
) -> Tuple[List[Set[int]], bool]:
    """Like :func:`enumerate_maximal_kplexes`, plus a truncation flag.

    The second element is ``True`` exactly when the search stopped because
    ``max_results`` or ``time_limit`` was hit, i.e. when the returned list
    may be incomplete.
    """
    if k < 1:
        raise ValueError("k must be a positive integer")
    enumerator = _KPlexEnumerator(graph, k, max_results=max_results, time_limit=time_limit)
    results = enumerator.run(must_contain=must_contain)
    return results, enumerator.truncated


class _KPlexEnumerator:
    """Binary include/exclude branch-and-bound for maximal k-plexes."""

    def __init__(
        self,
        graph: Graph,
        k: int,
        max_results: Optional[int] = None,
        time_limit: Optional[float] = None,
    ) -> None:
        self.graph = graph
        self.k = k
        self.max_results = max_results
        self.time_limit = time_limit
        self.results: List[Set[int]] = []
        self.truncated = False
        self._start = 0.0
        # Masked fast path: one precomputed non-neighbour mask per vertex
        # (excluding the vertex itself) turns the ``_fits`` / ``_add`` scans
        # into ``current_mask & non_adj[v]`` plus a popcount.
        if supports_masks(graph):
            full = graph.full_mask
            self._non_adj: Optional[List[int]] = [
                full & ~graph.adj_mask(v) & ~(1 << v) for v in graph.vertices()
            ]
        else:
            self._non_adj = None

    def run(self, must_contain: Optional[int] = None) -> List[Set[int]]:
        self.results = []
        self.truncated = False
        self._start = time.perf_counter()
        vertices = list(self.graph.vertices())
        if not vertices:
            return []
        if must_contain is None:
            current: Set[int] = set()
            current_mask = 0
            misses: Dict[int, int] = {}
            candidates = vertices
        else:
            current = {must_contain}
            current_mask = 1 << must_contain
            misses = {must_contain: 1}  # a vertex always misses itself
            candidates = [
                v
                for v in vertices
                if v != must_contain and self._fits(current, current_mask, misses, v)
            ]
        try:
            self._branch(current, current_mask, misses, candidates, [])
        except _SearchLimit:
            self.truncated = True
        return self.results

    # ------------------------------------------------------------------ #
    def _branch(
        self,
        current: Set[int],
        current_mask: int,
        misses: Dict[int, int],
        candidates: List[int],
        excluded: List[int],
    ) -> None:
        """Explore the include/exclude tree below the node ``(current, candidates, excluded)``.

        Exclude branches are unrolled into the loop (each iteration moves the
        pivot into the local excluded list), so the recursion depth is bounded
        by the size of the largest k-plex rather than by ``|V|``.
        """
        self._check_limits()
        local_excluded = list(excluded)
        for index, pivot in enumerate(candidates):
            if self._fits(current, current_mask, misses, pivot):
                new_current = set(current)
                new_mask = current_mask | (1 << pivot)
                new_misses = dict(misses)
                self._add(new_current, current_mask, new_misses, pivot)
                remaining = candidates[index + 1 :]
                new_candidates = [
                    v for v in remaining if self._fits(new_current, new_mask, new_misses, v)
                ]
                new_excluded = [
                    x for x in local_excluded if self._fits(new_current, new_mask, new_misses, x)
                ]
                self._branch(new_current, new_mask, new_misses, new_candidates, new_excluded)
            local_excluded.append(pivot)
        # All candidates excluded: ``current`` is maximal unless an excluded
        # vertex could still join it.
        if not any(self._fits(current, current_mask, misses, x) for x in local_excluded):
            self._emit(set(current))

    def _fits(
        self, current: Set[int], current_mask: int, misses: Dict[int, int], vertex: int
    ) -> bool:
        """Whether ``current ∪ {vertex}`` is still a k-plex."""
        if self._non_adj is not None:
            missed = current_mask & self._non_adj[vertex]
            if missed.bit_count() + 1 > self.k:  # + the vertex itself
                return False
            while missed:
                low = missed & -missed
                if misses[low.bit_length() - 1] + 1 > self.k:
                    return False
                missed ^= low
            return True
        adjacency = self.graph.neighbors(vertex)
        vertex_misses = 1  # itself
        for member in current:
            if member not in adjacency:
                vertex_misses += 1
                if vertex_misses > self.k:
                    return False
                if misses[member] + 1 > self.k:
                    return False
        return True

    def _add(
        self, current: Set[int], current_mask: int, misses: Dict[int, int], vertex: int
    ) -> None:
        if self._non_adj is not None:
            missed = current_mask & self._non_adj[vertex]
            vertex_misses = 1 + missed.bit_count()
            while missed:
                low = missed & -missed
                misses[low.bit_length() - 1] += 1
                missed ^= low
            current.add(vertex)
            misses[vertex] = vertex_misses
            return
        adjacency = self.graph.neighbors(vertex)
        vertex_misses = 1
        for member in current:
            if member not in adjacency:
                vertex_misses += 1
                misses[member] += 1
        current.add(vertex)
        misses[vertex] = vertex_misses

    def _emit(self, plex: Set[int]) -> None:
        self.results.append(plex)
        if self.max_results is not None and len(self.results) >= self.max_results:
            raise _SearchLimit

    def _check_limits(self) -> None:
        if self.time_limit is not None and time.perf_counter() - self._start > self.time_limit:
            raise _SearchLimit


def is_kplex(graph: Graph, vertex_set: Set[int], k: int) -> bool:
    """Whether ``vertex_set`` induces a k-plex (convenience re-export)."""
    return graph.subgraph_is_kplex(vertex_set, k)


def is_maximal_kplex(graph: Graph, vertex_set: Set[int], k: int) -> bool:
    """Whether ``vertex_set`` is a k-plex to which no vertex can be added."""
    if not graph.subgraph_is_kplex(vertex_set, k):
        return False
    members = set(vertex_set)
    for vertex in graph.vertices():
        if vertex in members:
            continue
        if graph.subgraph_is_kplex(members | {vertex}, k):
            return False
    return True


def enumerate_maximal_kplexes_lazy(
    graph: Graph,
    k: int,
    time_limit: Optional[float] = None,
) -> Iterator[Set[int]]:
    """Generator variant used by the delay experiments.

    The eager enumerator above is faster for full enumerations; this wrapper
    simply yields from its result list but records nothing extra — the
    exponential-delay behaviour of the inflation baseline comes from the fact
    that all the search work happens before the first yield.
    """
    for plex in enumerate_maximal_kplexes(graph, k, time_limit=time_limit):
        yield plex
