"""Brute-force maximal k-biplex enumeration (test oracle).

Enumerates every pair of vertex subsets and keeps the maximal k-biplexes.
Exponential in the number of vertices, so it is only usable on very small
graphs, but it is an independent, obviously-correct implementation against
which all clever algorithms in this library are validated.
"""

from __future__ import annotations

from itertools import combinations
from typing import List

from ..core.biplex import Biplex, is_k_biplex, is_maximal_k_biplex
from ..graph.bipartite import BipartiteGraph


def enumerate_mbps_bruteforce(graph: BipartiteGraph, k: int) -> List[Biplex]:
    """Return all maximal k-biplexes of ``graph`` by exhaustive search.

    Solutions with an empty side are included when they are maximal (e.g. a
    right vertex set that no left vertex can join), matching the behaviour
    of the reverse-search algorithms.  The all-empty biplex ``(∅, ∅)`` is
    reported only when the graph has no vertices at all.
    """
    if k < 1:
        raise ValueError("k must be a positive integer")
    left_pool = list(graph.left_vertices())
    right_pool = list(graph.right_vertices())
    solutions: List[Biplex] = []
    for left_size in range(len(left_pool) + 1):
        for left_subset in combinations(left_pool, left_size):
            left_set = set(left_subset)
            for right_size in range(len(right_pool) + 1):
                for right_subset in combinations(right_pool, right_size):
                    right_set = set(right_subset)
                    if not left_set and not right_set and graph.num_vertices > 0:
                        continue
                    if not is_k_biplex(graph, left_set, right_set, k):
                        continue
                    if is_maximal_k_biplex(graph, left_set, right_set, k):
                        solutions.append(Biplex.of(left_set, right_set))
    return solutions


def count_k_biplexes_bruteforce(graph: BipartiteGraph, k: int) -> int:
    """Number of (not necessarily maximal) non-empty k-biplexes; used in tests."""
    left_pool = list(graph.left_vertices())
    right_pool = list(graph.right_vertices())
    count = 0
    for left_size in range(len(left_pool) + 1):
        for left_subset in combinations(left_pool, left_size):
            for right_size in range(len(right_pool) + 1):
                for right_subset in combinations(right_pool, right_size):
                    if not left_subset and not right_subset:
                        continue
                    if is_k_biplex(graph, set(left_subset), set(right_subset), k):
                        count += 1
    return count
