"""Baseline algorithms the paper compares against, plus the brute-force oracle."""

from .biclique import enumerate_maximal_bicliques, is_biclique, maximum_biclique_greedy
from .bruteforce import count_k_biplexes_bruteforce, enumerate_mbps_bruteforce
from .faplexen import FaPlexenPipeline, InflationStats, enumerate_mbps_inflation
from .imb import IMB, enumerate_mbps_imb
from .kplex import enumerate_maximal_kplexes, is_kplex, is_maximal_kplex
from .quasi_biclique import (
    enumerate_maximal_quasi_bicliques,
    find_quasi_bicliques_greedy,
    is_quasi_biclique,
    quasi_biclique_seed_k,
)

__all__ = [
    "enumerate_mbps_bruteforce",
    "count_k_biplexes_bruteforce",
    "IMB",
    "enumerate_mbps_imb",
    "enumerate_maximal_kplexes",
    "is_kplex",
    "is_maximal_kplex",
    "FaPlexenPipeline",
    "InflationStats",
    "enumerate_mbps_inflation",
    "enumerate_maximal_bicliques",
    "is_biclique",
    "maximum_biclique_greedy",
    "is_quasi_biclique",
    "enumerate_maximal_quasi_bicliques",
    "find_quasi_bicliques_greedy",
    "quasi_biclique_seed_k",
]
