"""Per-figure experiment drivers.

Each function reproduces one table or figure of the paper's evaluation
(Section 6) and returns a list of dict rows in the same layout the paper
plots: one row per x-axis value (dataset, k, #results, #vertices, density,
θ, ...) and one column per algorithm/series.  The benchmark modules under
``benchmarks/`` call these functions and print the resulting tables; the CLI
exposes them as ``repro-mbp experiment <name>``.

All workloads are scaled-down stand-ins of the paper's (see DESIGN.md); the
``REPRO_BENCH_SCALE`` environment variable grows or shrinks them globally.
"""

from __future__ import annotations

import random
import time
from typing import Dict, List, Optional, Sequence

from ..analysis.datasets import ALL_DATASETS, SMALL_DATASETS, load_dataset
from ..analysis.fraud import FraudStudyConfig, run_fraud_detection_study
from ..baselines.imb import IMB
from ..core.btraversal import BTraversal
from ..core.delay import measure_delay
from ..core.enum_almost_sat import (
    EnumAlmostSatConfig,
    enum_local_solutions,
    enum_local_solutions_inflation,
)
from ..core.itraversal import ITraversal
from ..core.large import LargeMBPEnumerator
from ..core.solution_graph import build_solution_graph
from ..graph.bipartite import BipartiteGraph, paper_example_graph
from ..graph.generators import erdos_renyi_bipartite
from .harness import run_algorithms, run_imb, run_itraversal, scaled
from .reporting import INF

DEFAULT_ALGORITHMS = ("iMB", "FaPlexen", "bTraversal", "iTraversal")


# --------------------------------------------------------------------- #
# Table 1
# --------------------------------------------------------------------- #
def experiment_table1() -> List[Dict[str, object]]:
    """Table 1: dataset statistics (stand-ins next to the paper's originals)."""
    from ..analysis.datasets import table1_rows

    return table1_rows()


# --------------------------------------------------------------------- #
# Figure 7 — running time on real datasets
# --------------------------------------------------------------------- #
def experiment_fig7a(
    datasets: Sequence[str] = ALL_DATASETS,
    k: int = 1,
    max_results: Optional[int] = None,
    time_limit: float = 6.0,
    algorithms: Sequence[str] = DEFAULT_ALGORITHMS,
) -> List[Dict[str, object]]:
    """Figure 7(a): running time of the four algorithms across datasets (k=1).

    The paper reports the time to return the first 1000 MBPs; the scaled
    default is 1000 × ``REPRO_BENCH_SCALE`` but capped by each algorithm's
    time limit, after which the INF marker is reported.
    """
    if max_results is None:
        max_results = scaled(200)
    rows: List[Dict[str, object]] = []
    for name in datasets:
        graph = load_dataset(name)
        row: Dict[str, object] = {"dataset": name}
        for measurement in run_algorithms(graph, k, list(algorithms), max_results, time_limit):
            row[measurement.algorithm] = measurement.display
        rows.append(row)
    return rows


def experiment_fig7bc(
    dataset: str = "writer",
    k_values: Sequence[int] = (1, 2, 3, 4),
    max_results: Optional[int] = None,
    time_limit: float = 6.0,
    algorithms: Sequence[str] = ("bTraversal", "iTraversal"),
) -> List[Dict[str, object]]:
    """Figure 7(b)/(c): running time of bTraversal vs iTraversal when varying k."""
    if max_results is None:
        max_results = scaled(200)
    graph = load_dataset(dataset)
    rows: List[Dict[str, object]] = []
    for k in k_values:
        row: Dict[str, object] = {"k": k}
        for measurement in run_algorithms(graph, k, list(algorithms), max_results, time_limit):
            row[measurement.algorithm] = measurement.display
        rows.append(row)
    return rows


def experiment_fig7de(
    dataset: str = "writer",
    k: int = 1,
    result_counts: Sequence[int] = (1, 10, 100, 1000),
    time_limit: float = 6.0,
    algorithms: Sequence[str] = ("bTraversal", "iTraversal"),
) -> List[Dict[str, object]]:
    """Figure 7(d)/(e): running time when varying the number of returned MBPs."""
    graph = load_dataset(dataset)
    rows: List[Dict[str, object]] = []
    for count in result_counts:
        row: Dict[str, object] = {"num_results": count}
        for measurement in run_algorithms(graph, k, list(algorithms), count, time_limit):
            row[measurement.algorithm] = measurement.display
        rows.append(row)
    return rows


# --------------------------------------------------------------------- #
# Figure 8 — delay
# --------------------------------------------------------------------- #
def _delay_graphs(max_left: int, max_right: int) -> Dict[str, BipartiteGraph]:
    """Shrunken versions of the small datasets, small enough for full enumeration
    by every baseline (including the exponential-delay ones)."""
    graphs: Dict[str, BipartiteGraph] = {"example": paper_example_graph()}
    for name in SMALL_DATASETS:
        graph = load_dataset(name)
        left = range(min(max_left, graph.n_left))
        right = range(min(max_right, graph.n_right))
        graphs[name] = graph.induced_subgraph(left, right)
    return graphs


def experiment_fig8a(
    k: int = 1,
    max_left: int = 8,
    max_right: int = 12,
    time_limit: float = 15.0,
) -> List[Dict[str, object]]:
    """Figure 8(a): empirical delay of the four algorithms on the small datasets.

    Delay = max gap between consecutive outputs (including start→first and
    last→termination), measured over a *complete* enumeration, which is why
    the graphs are shrunk to ``max_left × max_right`` induced subgraphs.
    """
    rows: List[Dict[str, object]] = []
    for name, graph in _delay_graphs(max_left, max_right).items():
        row: Dict[str, object] = {"dataset": name}
        row["iTraversal"] = _measure_algorithm_delay(
            lambda: ITraversal(graph, k, output_order="alternate").run(), time_limit
        )
        row["iMB"] = _measure_algorithm_delay(
            lambda: IMB(graph, k, time_limit=time_limit).run(), time_limit
        )
        row["FaPlexen"] = _measure_algorithm_delay(
            lambda: _inflation_iterator(graph, k, time_limit), time_limit
        )
        row["bTraversal"] = _measure_algorithm_delay(
            lambda: BTraversal(graph, k, time_limit=time_limit).run(), time_limit
        )
        rows.append(row)
    return rows


def experiment_fig8b(
    dataset: str = "divorce",
    k_values: Sequence[int] = (1, 2, 3, 4),
    max_left: int = 8,
    max_right: int = 12,
    time_limit: float = 15.0,
) -> List[Dict[str, object]]:
    """Figure 8(b): delay when varying k on the Divorce stand-in."""
    graph = load_dataset(dataset).induced_subgraph(range(max_left), range(max_right))
    rows: List[Dict[str, object]] = []
    for k in k_values:
        row: Dict[str, object] = {"k": k}
        row["iMB"] = _measure_algorithm_delay(
            lambda: IMB(graph, k, time_limit=time_limit).run(), time_limit
        )
        row["bTraversal"] = _measure_algorithm_delay(
            lambda: BTraversal(graph, k, time_limit=time_limit).run(), time_limit
        )
        row["FaPlexen"] = _measure_algorithm_delay(
            lambda: _inflation_iterator(graph, k, time_limit), time_limit
        )
        row["iTraversal"] = _measure_algorithm_delay(
            lambda: ITraversal(graph, k, output_order="alternate").run(), time_limit
        )
        rows.append(row)
    return rows


def _inflation_iterator(graph: BipartiteGraph, k: int, time_limit: float):
    from ..baselines.faplexen import FaPlexenPipeline

    pipeline = FaPlexenPipeline(graph, k, time_limit=time_limit)
    return iter(pipeline.enumerate())


def _measure_algorithm_delay(factory, time_limit: float) -> object:
    start = time.perf_counter()
    _, record = measure_delay(factory)
    if time.perf_counter() - start > time_limit:
        return INF
    return record.max_delay


# --------------------------------------------------------------------- #
# Figure 9 — synthetic scalability
# --------------------------------------------------------------------- #
def experiment_fig9a(
    num_vertices_values: Sequence[int] = (200, 400, 800, 1600, 3200),
    edge_density: float = 2.0,
    k: int = 1,
    max_results: Optional[int] = None,
    time_limit: float = 15.0,
    algorithms: Sequence[str] = ("bTraversal", "iTraversal"),
    seed: int = 9,
) -> List[Dict[str, object]]:
    """Figure 9(a): running time on ER graphs when varying the number of vertices.

    The paper sweeps 10 k → 100 M vertices at edge density 10; the scaled
    sweep keeps the same growth pattern (×2 per step) at laptop size.
    """
    if max_results is None:
        max_results = scaled(200)
    rows: List[Dict[str, object]] = []
    for n in num_vertices_values:
        n_left = n // 2
        n_right = n - n_left
        graph = erdos_renyi_bipartite(n_left, n_right, edge_density=edge_density, seed=seed)
        row: Dict[str, object] = {"num_vertices": n}
        for measurement in run_algorithms(graph, k, list(algorithms), max_results, time_limit):
            row[measurement.algorithm] = measurement.display
        rows.append(row)
    return rows


def experiment_fig9b(
    edge_density_values: Sequence[float] = (0.5, 1.0, 2.0, 4.0, 8.0),
    num_vertices: int = 400,
    k: int = 1,
    max_results: Optional[int] = None,
    time_limit: float = 15.0,
    algorithms: Sequence[str] = ("bTraversal", "iTraversal"),
    seed: int = 10,
) -> List[Dict[str, object]]:
    """Figure 9(b): running time on ER graphs when varying the edge density."""
    if max_results is None:
        max_results = scaled(200)
    rows: List[Dict[str, object]] = []
    n_left = num_vertices // 2
    n_right = num_vertices - n_left
    for density in edge_density_values:
        graph = erdos_renyi_bipartite(n_left, n_right, edge_density=density, seed=seed)
        row: Dict[str, object] = {"edge_density": density}
        for measurement in run_algorithms(graph, k, list(algorithms), max_results, time_limit):
            row[measurement.algorithm] = measurement.display
        rows.append(row)
    return rows


# --------------------------------------------------------------------- #
# Figure 10 — large MBP enumeration
# --------------------------------------------------------------------- #
def experiment_fig10(
    dataset: str = "writer",
    k: int = 1,
    theta_values: Sequence[int] = (5, 6, 7, 8),
    time_limit: float = 15.0,
) -> List[Dict[str, object]]:
    """Figure 10: running time of iMB vs iTraversal when enumerating large MBPs.

    Both algorithms benefit from the (θ − k)-core preprocessing, exactly as
    in the paper.
    """
    graph = load_dataset(dataset)
    rows: List[Dict[str, object]] = []
    for theta in theta_values:
        row: Dict[str, object] = {"theta": theta}

        start = time.perf_counter()
        enumerator = LargeMBPEnumerator(
            graph, k, theta=theta, use_core_preprocessing=True, time_limit=time_limit
        )
        solutions = enumerator.enumerate()
        elapsed = time.perf_counter() - start
        row["iTraversal"] = INF if enumerator.stats.hit_time_limit else elapsed
        row["num_large_mbps"] = len(solutions)

        core = enumerator.core_graph
        start = time.perf_counter()
        imb = IMB(core, k, theta_left=theta, theta_right=theta, time_limit=time_limit)
        imb_solutions = imb.enumerate()
        elapsed = time.perf_counter() - start
        row["iMB"] = INF if imb.truncated else elapsed
        row["iMB_num"] = len(imb_solutions)
        rows.append(row)
    return rows


# --------------------------------------------------------------------- #
# Figure 11 — solution-graph sparsity and variant running times
# --------------------------------------------------------------------- #
def _solution_graph_inputs(max_left: int, max_right: int) -> Dict[str, BipartiteGraph]:
    """Shrunken small datasets (plus the running example) for the Figure 11 inputs.

    The induced window mixes low vertex ids (where the registry's planted
    dense blocks live) with high ids (sparse power-law background), because a
    window consisting of a single near-complete block has one MBP and a
    degenerate solution graph, while an all-background window has barely any.
    """
    graphs: Dict[str, BipartiteGraph] = {"example": paper_example_graph()}
    for name in SMALL_DATASETS:
        graph = load_dataset(name)
        left_window = _mixed_window(graph.n_left, max_left)
        right_window = _mixed_window(graph.n_right, max_right)
        graphs[name] = graph.induced_subgraph(left_window, right_window)
    return graphs


def _mixed_window(side_size: int, window: int) -> List[int]:
    """Half of the lowest ids plus half of the highest ids of a side."""
    window = min(window, side_size)
    low = window // 2 + window % 2
    high = window - low
    return list(range(low)) + list(range(side_size - high, side_size))


def experiment_fig11ab(
    k: int = 1,
    max_left: int = 7,
    max_right: int = 10,
    time_limit: float = 20.0,
) -> List[Dict[str, object]]:
    """Figure 11(a)/(b): number of solution-graph links and running time, k = 1.

    Uses shrunken versions of the small datasets because constructing the
    full bTraversal solution graph requires a complete enumeration from
    every solution (quadratic in the number of solutions).
    """
    rows: List[Dict[str, object]] = []
    for name, graph in _solution_graph_inputs(max_left, max_right).items():
        row: Dict[str, object] = {"dataset": name}
        for variant, label in (
            ("btraversal", "bTraversal"),
            ("left-anchored", "iTraversal-ES-RS"),
            ("right-shrinking", "iTraversal-ES"),
            ("itraversal", "iTraversal"),
        ):
            start = time.perf_counter()
            solution_graph = build_solution_graph(graph, k, variant=variant)
            elapsed = time.perf_counter() - start
            row[f"{label}_links"] = solution_graph.num_links
            row[f"{label}_time"] = elapsed
        rows.append(row)
    return rows


def experiment_fig11cd(
    dataset: str = "divorce",
    k_values: Sequence[int] = (1, 2, 3),
    max_left: int = 7,
    max_right: int = 10,
) -> List[Dict[str, object]]:
    """Figure 11(c)/(d): solution-graph links and running time when varying k.

    ``dataset`` may also be ``"example"`` to use the paper's running example.
    """
    if dataset == "example":
        graph = paper_example_graph()
    else:
        full = load_dataset(dataset)
        graph = full.induced_subgraph(
            _mixed_window(full.n_left, max_left), _mixed_window(full.n_right, max_right)
        )
    rows: List[Dict[str, object]] = []
    for k in k_values:
        row: Dict[str, object] = {"k": k}
        for variant, label in (
            ("btraversal", "bTraversal"),
            ("left-anchored", "iTraversal-ES-RS"),
            ("right-shrinking", "iTraversal-ES"),
            ("itraversal", "iTraversal"),
        ):
            start = time.perf_counter()
            solution_graph = build_solution_graph(graph, k, variant=variant)
            elapsed = time.perf_counter() - start
            row[f"{label}_links"] = solution_graph.num_links
            row[f"{label}_time"] = elapsed
        rows.append(row)
    return rows


def experiment_variant_running_time(
    k: int = 1,
    max_left: int = 7,
    max_right: int = 10,
    time_limit: float = 10.0,
) -> List[Dict[str, object]]:
    """Figure 11(b) companion: end-to-end running time of the iTraversal variants.

    Matches the paper's protocol for Figure 11(b): every variant runs a
    *complete* enumeration (no result cap) on the same small inputs used for
    the link-count measurement, so the denser solution graphs translate
    directly into longer running times.
    """
    rows: List[Dict[str, object]] = []
    for name, graph in _solution_graph_inputs(max_left, max_right).items():
        row: Dict[str, object] = {"dataset": name}
        for variant, label in (
            ("left-anchored-only", "iTraversal-ES-RS"),
            ("no-exclusion", "iTraversal-ES"),
            ("full", "iTraversal"),
        ):
            measurement = run_itraversal(graph, k, None, time_limit, variant=variant)
            row[label] = measurement.display
        # Figure 11 compares the frameworks with the *same* (refined)
        # EnumAlmostSat implementation, as the paper does for fairness.
        from .harness import run_btraversal

        measurement = run_btraversal(graph, k, None, time_limit, local_enumeration="refined")
        row["bTraversal"] = measurement.display
        rows.append(row)
    return rows


# --------------------------------------------------------------------- #
# Figure 12 — EnumAlmostSat variants
# --------------------------------------------------------------------- #
def experiment_fig12(
    dataset: str = "writer",
    k_values: Sequence[int] = (1, 2, 3),
    num_trials: Optional[int] = None,
    seed: int = 123,
    time_limit: float = 20.0,
    inflation_time_limit_per_call: float = 0.5,
) -> List[Dict[str, object]]:
    """Figure 12: average running time of the EnumAlmostSat implementations.

    Protocol from the paper: collect the first MBPs with iTraversal, build a
    random almost-satisfying graph from each by adding a random outside left
    vertex, and time each implementation (Inflation and the four L/R
    refinement combinations) over the collection.  Each Inflation call is
    capped at ``inflation_time_limit_per_call`` seconds, so its reported
    average is a *lower bound* — the uncapped baseline is exponentially
    slower, which is exactly what the figure demonstrates.
    """
    if num_trials is None:
        num_trials = scaled(50)
    graph = load_dataset(dataset)
    rng = random.Random(seed)
    rows: List[Dict[str, object]] = []
    for k in k_values:
        solutions = ITraversal(graph, k, max_results=num_trials, time_limit=time_limit).enumerate()
        trials = []
        for solution in solutions:
            outside = [v for v in graph.left_vertices() if v not in solution.left]
            if not outside:
                continue
            trials.append((solution, rng.choice(outside)))
        if not trials:
            continue
        row: Dict[str, object] = {"k": k, "num_trials": len(trials)}
        configs = {
            "L1.0+R1.0": EnumAlmostSatConfig(right_refinement=1, left_refinement=1),
            "L1.0+R2.0": EnumAlmostSatConfig(right_refinement=2, left_refinement=1),
            "L2.0+R1.0": EnumAlmostSatConfig(right_refinement=1, left_refinement=2),
            "L2.0+R2.0": EnumAlmostSatConfig(right_refinement=2, left_refinement=2),
        }
        for label, config in configs.items():
            start = time.perf_counter()
            for solution, vertex in trials:
                list(
                    enum_local_solutions(
                        graph, set(solution.left), set(solution.right), vertex, k, config
                    )
                )
            row[label] = (time.perf_counter() - start) / len(trials)
        start = time.perf_counter()
        for solution, vertex in trials:
            enum_local_solutions_inflation(
                graph,
                set(solution.left),
                set(solution.right),
                vertex,
                k,
                time_limit=inflation_time_limit_per_call,
            )
        row["Inflation"] = (time.perf_counter() - start) / len(trials)
        rows.append(row)
    return rows


# --------------------------------------------------------------------- #
# Figure 13 — fraud-detection case study
# --------------------------------------------------------------------- #
def experiment_fig13(config: Optional[FraudStudyConfig] = None) -> List[Dict[str, object]]:
    """Figure 13: precision/recall/F1 of the cohesive structures under a camouflage attack."""
    report = run_fraud_detection_study(config)
    return report.rows()


# --------------------------------------------------------------------- #
# Ablation — left- vs right-anchored traversal
# --------------------------------------------------------------------- #
def experiment_anchor_ablation(
    datasets: Sequence[str] = ("writer", "dblp"),
    k_values: Sequence[int] = (1, 2),
    max_results: Optional[int] = None,
    time_limit: float = 6.0,
) -> List[Dict[str, object]]:
    """Left-anchored vs right-anchored initial solution (Section 6.2 discussion)."""
    if max_results is None:
        max_results = scaled(200)
    rows: List[Dict[str, object]] = []
    for name in datasets:
        graph = load_dataset(name)
        for k in k_values:
            row: Dict[str, object] = {"dataset": name, "k": k}
            left = run_itraversal(graph, k, max_results, time_limit, anchor="left")
            right = run_itraversal(graph, k, max_results, time_limit, anchor="right")
            row["left-anchored"] = left.display
            row["right-anchored"] = right.display
            rows.append(row)
    return rows


EXPERIMENTS = {
    "table1": experiment_table1,
    "fig7a": experiment_fig7a,
    "fig7bc": experiment_fig7bc,
    "fig7de": experiment_fig7de,
    "fig8a": experiment_fig8a,
    "fig8b": experiment_fig8b,
    "fig9a": experiment_fig9a,
    "fig9b": experiment_fig9b,
    "fig10": experiment_fig10,
    "fig11ab": experiment_fig11ab,
    "fig11cd": experiment_fig11cd,
    "variants": experiment_variant_running_time,
    "fig12": experiment_fig12,
    "fig13": experiment_fig13,
    "anchor": experiment_anchor_ablation,
}
"""Registry used by the CLI (``repro-mbp experiment <name>``)."""
