"""Plain-text reporting of experiment results.

The benchmark harness reproduces the paper's tables and figure series as
aligned text tables, one row per x-axis value and one column per algorithm,
with the paper's ``INF`` (time limit exceeded) and ``OUT`` (memory budget
exceeded) markers.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

INF = "INF"
OUT = "OUT"


def format_seconds(value: Optional[float]) -> str:
    """Format a running time, or pass through the INF/OUT markers."""
    if value is None:
        return INF
    if isinstance(value, str):
        return value
    if value >= 100:
        return f"{value:.0f}"
    if value >= 1:
        return f"{value:.2f}"
    return f"{value:.4f}"


def format_value(value: object) -> str:
    """Render one table cell."""
    if value is None:
        return "ND"
    if isinstance(value, float):
        return format_seconds(value)
    return str(value)


def format_table(
    rows: Sequence[Dict[str, object]],
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
) -> str:
    """Render a list of dict rows as an aligned text table."""
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    rendered = [[format_value(row.get(column)) for column in columns] for row in rows]
    widths = [
        max(len(str(column)), max(len(line[i]) for line in rendered))
        for i, column in enumerate(columns)
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    header = "  ".join(str(column).ljust(widths[i]) for i, column in enumerate(columns))
    lines.append(header)
    lines.append("  ".join("-" * widths[i] for i in range(len(columns))))
    for line in rendered:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(line)))
    return "\n".join(lines)


def print_table(
    rows: Sequence[Dict[str, object]],
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
) -> None:
    """Print :func:`format_table` output."""
    print(format_table(rows, columns=columns, title=title))


def pivot(
    rows: Iterable[Dict[str, object]],
    index: str,
    column: str,
    value: str,
) -> List[Dict[str, object]]:
    """Pivot long-format rows (one measurement per row) into wide-format rows.

    E.g. pivot(rows, index="dataset", column="algorithm", value="seconds")
    produces one row per dataset with one column per algorithm — the layout
    of the paper's figures.
    """
    ordered_index: List[object] = []
    table: Dict[object, Dict[str, object]] = {}
    for row in rows:
        key = row[index]
        if key not in table:
            table[key] = {index: key}
            ordered_index.append(key)
        table[key][str(row[column])] = row[value]
    return [table[key] for key in ordered_index]
