"""Diff two ``BENCH_enum.json`` snapshots; fail on regression.

``python -m repro.bench.compare BASELINE NEW`` compares the pinned
enumeration benchmark snapshots emitted by :mod:`repro.bench.harness`
(schema ``repro-bench-enum/1``), run for run and prep mode for prep mode:

* a **solution-count mismatch** between matching runs is a correctness
  alarm — exit code 3, unconditionally (counts are deterministic; timing
  thresholds do not apply to them);
* a **timing regression** — new seconds more than ``--threshold`` (default
  20%) above baseline — exits 1, but only for runs slower than
  ``--min-seconds`` (default 0.05 s): below that floor the measurement is
  dominated by interpreter noise and a ratio is meaningless;
* runs or prep modes present on one side only are reported and skipped
  (the pinned set grows over time; a baseline from an older commit is
  still comparable on the intersection).

Exit 0 means no regression.  CI wires this between the freshly emitted
snapshot and the previous run's cached one, so a >20% slowdown on any
pinned config fails the build with a per-config report instead of
silently shipping.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional, Tuple

#: Snapshot schema this comparator understands.
SNAPSHOT_SCHEMA = "repro-bench-enum/1"

EXIT_OK = 0
EXIT_REGRESSION = 1
EXIT_USAGE = 2
EXIT_COUNT_MISMATCH = 3


def load_snapshot(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as handle:
        snapshot = json.load(handle)
    if not isinstance(snapshot, dict) or snapshot.get("schema") != SNAPSHOT_SCHEMA:
        raise ValueError(f"{path}: not a {SNAPSHOT_SCHEMA} snapshot")
    return snapshot


def _index(snapshot: dict) -> Dict[Tuple[str, str], dict]:
    """Flatten a snapshot to ``(config, prep) -> prep entry``."""
    table: Dict[Tuple[str, str], dict] = {}
    for run in snapshot.get("runs", []):
        for prep, entry in run.get("preps", {}).items():
            table[(run["config"], prep)] = entry
    return table


def compare_snapshots(
    baseline: dict,
    new: dict,
    threshold: float = 0.2,
    min_seconds: float = 0.05,
) -> Tuple[int, List[str]]:
    """Compare two snapshots; returns ``(exit_code, report_lines)``."""
    lines: List[str] = []
    base_table = _index(baseline)
    new_table = _index(new)
    only_base = sorted(set(base_table) - set(new_table))
    only_new = sorted(set(new_table) - set(base_table))
    for key in only_base:
        lines.append(f"SKIP  {key[0]}/{key[1]}: only in baseline")
    for key in only_new:
        lines.append(f"SKIP  {key[0]}/{key[1]}: only in new snapshot")

    exit_code = EXIT_OK
    for key in sorted(set(base_table) & set(new_table)):
        config, prep = key
        base_entry = base_table[key]
        new_entry = new_table[key]
        if base_entry.get("truncated") or new_entry.get("truncated"):
            # A truncated run's count *and* timing are artifacts of the
            # time limit; nothing trustworthy to compare.
            lines.append(f"SKIP  {config}/{prep}: truncated run")
            continue
        if base_entry["num_solutions"] != new_entry["num_solutions"]:
            lines.append(
                f"COUNT {config}/{prep}: {base_entry['num_solutions']} -> "
                f"{new_entry['num_solutions']} (correctness alarm)"
            )
            exit_code = EXIT_COUNT_MISMATCH
            continue
        base_seconds = float(base_entry["seconds"])
        new_seconds = float(new_entry["seconds"])
        if max(base_seconds, new_seconds) < min_seconds:
            lines.append(
                f"ok    {config}/{prep}: {base_seconds:.4f}s -> {new_seconds:.4f}s "
                f"(below --min-seconds floor)"
            )
            continue
        ratio = new_seconds / base_seconds if base_seconds > 0 else float("inf")
        if ratio > 1.0 + threshold:
            lines.append(
                f"SLOW  {config}/{prep}: {base_seconds:.4f}s -> {new_seconds:.4f}s "
                f"({ratio:.2f}x, threshold {1.0 + threshold:.2f}x)"
            )
            if exit_code == EXIT_OK:
                exit_code = EXIT_REGRESSION
        else:
            lines.append(
                f"ok    {config}/{prep}: {base_seconds:.4f}s -> {new_seconds:.4f}s "
                f"({ratio:.2f}x)"
            )
    return exit_code, lines


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench.compare",
        description="compare two BENCH_enum.json snapshots and fail on regression",
    )
    parser.add_argument("baseline", help="baseline snapshot (the reference)")
    parser.add_argument("new", help="new snapshot (the candidate)")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.2,
        help="allowed fractional slowdown before failing (default 0.2 = 20%%)",
    )
    parser.add_argument(
        "--min-seconds",
        type=float,
        default=0.05,
        help="ignore timing ratios when both runs are under this (default 0.05s)",
    )
    args = parser.parse_args(argv)
    if args.threshold < 0 or args.min_seconds < 0:
        parser.error("--threshold and --min-seconds must be non-negative")
    try:
        baseline = load_snapshot(args.baseline)
        new = load_snapshot(args.new)
    except (OSError, ValueError, json.JSONDecodeError) as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_USAGE
    exit_code, lines = compare_snapshots(
        baseline, new, threshold=args.threshold, min_seconds=args.min_seconds
    )
    for line in lines:
        print(line)
    verdict = {
        EXIT_OK: "no regression",
        EXIT_REGRESSION: "TIMING REGRESSION",
        EXIT_COUNT_MISMATCH: "SOLUTION COUNT MISMATCH",
    }[exit_code]
    print(f"# {verdict} (threshold {args.threshold:.0%}, floor {args.min_seconds}s)")
    return exit_code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
