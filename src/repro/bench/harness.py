"""Timing harness shared by the experiment drivers.

The paper's evaluation protocol is: run each algorithm with a wall-clock
limit (``INF`` = 24 hours) and a memory budget (``OUT`` = 32 GB) and report
the time to return the first N maximal k-biplexes (N = 1000 by default,
following the protocol of Berlowitz et al.).  The harness below reproduces
that protocol at laptop scale: every algorithm invocation gets a configurable
time limit and reports either its elapsed seconds or the ``INF``/``OUT``
marker.

The module is also runnable — ``python -m repro.bench.harness --emit-json
BENCH_enum.json`` times a pinned set of enumeration configs (each under the
full prep ablation ``off`` / ``core`` / ``core+order``) and writes the
measurements as a JSON snapshot, for CI artifacts and cross-commit
comparisons.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from dataclasses import dataclass
from typing import Callable, List, Optional

from ..baselines.faplexen import FaPlexenPipeline
from ..baselines.imb import IMB
from ..core.btraversal import BTraversal
from ..core.itraversal import ITraversal
from ..graph.bipartite import BipartiteGraph
from .reporting import INF, OUT


def bench_scale() -> float:
    """Global scale knob for benchmark workloads.

    Set the environment variable ``REPRO_BENCH_SCALE`` to a float to grow or
    shrink every benchmark workload (default 1.0).  The benchmark modules
    multiply their dataset sizes / result counts by this factor, so a CI run
    can use ``0.5`` while a faithful-shape run uses ``2`` or more.
    """
    try:
        return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
    except ValueError:
        return 1.0


def scaled(value: int, minimum: int = 1) -> int:
    """Scale an integer workload parameter by :func:`bench_scale`."""
    return max(minimum, int(round(value * bench_scale())))


@dataclass
class Measurement:
    """Result of timing one algorithm on one workload."""

    algorithm: str
    seconds: Optional[float]
    num_solutions: int = 0
    marker: Optional[str] = None

    @property
    def display(self) -> object:
        """Seconds, or the INF/OUT marker for the report table.

        A measurement without seconds *and* without a marker (a run that
        never produced a timing) renders as the paper's ``INF`` marker
        rather than leaking ``None`` into the report tables.
        """
        if self.marker:
            return self.marker
        if self.seconds is None:
            return INF
        return self.seconds


def time_call(function: Callable[[], object], label: str = "") -> Measurement:
    """Time a single call; the callable returns the solutions (or None).

    Lazy return values (generators / arbitrary iterables) are materialised
    *inside* the timed window — consuming them is part of the algorithm's
    work — so ``num_solutions`` reflects the real output count instead of
    silently reporting 0 for anything that is not already a list.
    """
    start = time.perf_counter()
    result = function()
    sized = hasattr(result, "__len__")
    if result is not None and not sized:
        try:
            result = list(result)
        except TypeError:
            result = None
        else:
            sized = True
    elapsed = time.perf_counter() - start
    count = len(result) if sized and not isinstance(result, (str, bytes)) else 0
    return Measurement(algorithm=label, seconds=elapsed, num_solutions=count)


# --------------------------------------------------------------------- #
# Standard algorithm runners used across experiments
# --------------------------------------------------------------------- #
def run_itraversal(
    graph: BipartiteGraph,
    k: int,
    max_results: Optional[int],
    time_limit: float,
    variant: str = "full",
    anchor: str = "left",
    jobs: Optional[int] = None,
) -> Measurement:
    """Time iTraversal (or one of its variants) for the first ``max_results`` MBPs.

    ``jobs`` selects the sharded parallel engine; the timed window spans
    ``enumerate()``, which includes the worker-pool spin-up, the streaming
    merge and the final ordering — pool management is part of the parallel
    algorithm's cost, not harness overhead.  The INF marker reads the
    *merged* stats, so a deadline hit inside any worker (or the
    coordinator) marks the measurement correctly.
    """
    algorithm = ITraversal(
        graph,
        k,
        variant=variant,
        anchor=anchor,
        max_results=max_results,
        time_limit=time_limit,
        jobs=jobs,
    )
    start = time.perf_counter()
    solutions = algorithm.enumerate()
    elapsed = time.perf_counter() - start
    marker = INF if algorithm.stats.hit_time_limit else None
    return Measurement("iTraversal", None if marker else elapsed, len(solutions), marker)


def run_btraversal(
    graph: BipartiteGraph,
    k: int,
    max_results: Optional[int],
    time_limit: float,
    local_enumeration: str = "inflation",
    jobs: Optional[int] = None,
) -> Measurement:
    """Time bTraversal for the first ``max_results`` MBPs.

    The default ``local_enumeration="inflation"`` matches the paper's
    Figure 7 baseline (bTraversal with an inflation-based EnumAlmostSat);
    pass ``"refined"`` for the Figure 11 fair-comparison setting.
    ``jobs`` selects the sharded parallel engine (timed end to end, as in
    :func:`run_itraversal`).
    """
    algorithm = BTraversal(
        graph,
        k,
        max_results=max_results,
        time_limit=time_limit,
        local_enumeration=local_enumeration,
        jobs=jobs,
    )
    start = time.perf_counter()
    solutions = algorithm.enumerate()
    elapsed = time.perf_counter() - start
    marker = INF if algorithm.stats.hit_time_limit else None
    return Measurement("bTraversal", None if marker else elapsed, len(solutions), marker)


def run_imb(
    graph: BipartiteGraph,
    k: int,
    max_results: Optional[int],
    time_limit: float,
    theta_left: int = 0,
    theta_right: int = 0,
) -> Measurement:
    """Time iMB for the first ``max_results`` MBPs (optionally with size thresholds)."""
    algorithm = IMB(
        graph,
        k,
        theta_left=theta_left,
        theta_right=theta_right,
        max_results=max_results,
        time_limit=time_limit,
    )
    start = time.perf_counter()
    solutions = algorithm.enumerate()
    elapsed = time.perf_counter() - start
    marker = INF if algorithm.truncated and (max_results is None or len(solutions) < max_results) else None
    return Measurement("iMB", None if marker else elapsed, len(solutions), marker)


def run_inflation(
    graph: BipartiteGraph,
    k: int,
    max_results: Optional[int],
    time_limit: float,
    memory_edge_budget: int = 2_000_000,
) -> Measurement:
    """Time the FaPlexen-style inflation pipeline; reports OUT over the edge budget."""
    pipeline = FaPlexenPipeline(
        graph,
        k,
        memory_edge_budget=memory_edge_budget,
        max_results=max_results,
        time_limit=time_limit,
    )
    start = time.perf_counter()
    solutions = pipeline.enumerate()
    elapsed = time.perf_counter() - start
    if pipeline.stats.truncated and pipeline.stats.inflated_edges > memory_edge_budget:
        marker: Optional[str] = OUT
    elif pipeline.stats.truncated or (
        max_results is not None and len(solutions) < max_results and elapsed > time_limit
    ):
        marker = INF
    else:
        marker = None
    return Measurement("FaPlexen", None if marker else elapsed, len(solutions), marker)


ALGORITHM_RUNNERS = {
    "iMB": run_imb,
    "FaPlexen": run_inflation,
    "bTraversal": run_btraversal,
    "iTraversal": run_itraversal,
}
"""The four algorithms compared throughout Section 6.1, in the paper's order."""


def run_algorithms(
    graph: BipartiteGraph,
    k: int,
    algorithms: List[str],
    max_results: Optional[int],
    time_limit: float,
) -> List[Measurement]:
    """Run the selected algorithms on one workload and collect measurements."""
    measurements = []
    for name in algorithms:
        runner = ALGORITHM_RUNNERS[name]
        measurement = runner(graph, k, max_results, time_limit)
        measurement.algorithm = name
        measurements.append(measurement)
    return measurements


# --------------------------------------------------------------------- #
# JSON benchmark snapshots (python -m repro.bench.harness --emit-json ...)
# --------------------------------------------------------------------- #
SNAPSHOT_PREPS = ("off", "core", "core+order")
"""The prep ablation every snapshot config is measured under."""


def snapshot_configs():
    """The pinned enumeration configs timed by :func:`collect_bench_snapshot`.

    Deliberately a function, not a module constant: the graphs honour
    ``REPRO_BENCH_SCALE`` at call time.  Each entry is
    ``(name, graph_factory, k, theta_left, theta_right)``; the set covers
    the regimes the prep pipeline behaves differently on — a dense paper
    example (reduction is a no-op), a sparse thresholded random graph
    (core peeling bites) and a planted near-biclique in sparse background
    (core + bitruss strip almost everything outside the block).
    """
    from ..graph import erdos_renyi_bipartite, paper_example_graph, planted_biplex_graph

    return [
        ("paper-example-k1", paper_example_graph, 1, 0, 0),
        (
            "er-sparse-k1-theta3",
            lambda: erdos_renyi_bipartite(
                scaled(40), scaled(30), num_edges=scaled(120), seed=20220601
            ),
            1,
            3,
            3,
        ),
        (
            "planted-k1-theta4",
            lambda: planted_biplex_graph(
                scaled(60),
                scaled(60),
                block_left=6,
                block_right=6,
                k=1,
                background_edges=scaled(90),
                seed=20220602,
            ),
            1,
            4,
            4,
        ),
    ]


def collect_bench_snapshot(time_limit: float = 60.0) -> dict:
    """Time every pinned config under the full prep ablation.

    Returns a JSON-serialisable dict.  Identical solution counts across the
    prep ablation are part of the snapshot's value (a count mismatch in a
    stored artifact is a correctness alarm, not a perf regression), so the
    counts are recorded per prep mode rather than once per config.
    """
    from ..core.itraversal import ITraversal

    runs = []
    for name, factory, k, theta_left, theta_right in snapshot_configs():
        graph = factory()
        entry = {
            "config": name,
            "k": k,
            "theta_left": theta_left,
            "theta_right": theta_right,
            "n_left": graph.n_left,
            "n_right": graph.n_right,
            "num_edges": graph.num_edges,
            "preps": {},
        }
        for prep in SNAPSHOT_PREPS:
            algorithm = ITraversal(
                graph,
                k,
                theta_left=theta_left,
                theta_right=theta_right,
                time_limit=time_limit,
                prep=prep,
            )
            start = time.perf_counter()
            solutions = algorithm.enumerate()
            elapsed = time.perf_counter() - start
            plan = algorithm.prep
            entry["preps"][prep] = {
                "seconds": elapsed,
                "num_solutions": len(solutions),
                "truncated": algorithm.stats.truncated,
                "removed_left": plan.removed_left,
                "removed_right": plan.removed_right,
                "removed_edges": plan.removed_edges,
            }
        runs.append(entry)
    return {
        "schema": "repro-bench-enum/1",
        "python": platform.python_version(),
        "bench_scale": bench_scale(),
        "time_limit": time_limit,
        "runs": runs,
    }


def main(argv: Optional[List[str]] = None) -> int:
    """CLI for benchmark snapshots: ``python -m repro.bench.harness --emit-json F``."""
    parser = argparse.ArgumentParser(
        prog="repro.bench.harness",
        description="emit a JSON snapshot of the pinned enumeration benchmarks",
    )
    parser.add_argument(
        "--emit-json",
        metavar="FILE",
        required=True,
        help="write the snapshot to FILE ('-' for stdout)",
    )
    parser.add_argument(
        "--time-limit",
        type=float,
        default=60.0,
        help="per-run wall-clock limit in seconds (default 60)",
    )
    args = parser.parse_args(argv)
    snapshot = collect_bench_snapshot(time_limit=args.time_limit)
    payload = json.dumps(snapshot, indent=2, sort_keys=True)
    if args.emit_json == "-":
        print(payload)
    else:
        with open(args.emit_json, "w", encoding="utf-8") as handle:
            handle.write(payload + "\n")
        counts = {
            run["config"]: run["preps"]["core"]["num_solutions"] for run in snapshot["runs"]
        }
        print(f"wrote {args.emit_json}: {counts}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
