"""Benchmark harness: timing utilities, per-figure experiment drivers, reporting."""

from .experiments import EXPERIMENTS
from .harness import (
    ALGORITHM_RUNNERS,
    Measurement,
    bench_scale,
    run_algorithms,
    run_btraversal,
    run_imb,
    run_inflation,
    run_itraversal,
    scaled,
    time_call,
)
from .reporting import INF, OUT, format_seconds, format_table, pivot, print_table

__all__ = [
    "EXPERIMENTS",
    "ALGORITHM_RUNNERS",
    "Measurement",
    "bench_scale",
    "scaled",
    "time_call",
    "run_algorithms",
    "run_itraversal",
    "run_btraversal",
    "run_imb",
    "run_inflation",
    "INF",
    "OUT",
    "format_seconds",
    "format_table",
    "print_table",
    "pivot",
]
