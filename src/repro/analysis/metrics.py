"""Structure and classification metrics used by the case study and the docs.

The fraud-detection case study (Section 6.3) classifies vertices as fake or
real depending on whether they appear in any found cohesive subgraph, and
reports precision, recall and F1.  The cohesiveness metrics mirror the
paper's qualitative discussion (a k-biplex with small k is dense; an
(α, β)-core can be large and sparse).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence, Set, Tuple

from ..core.biplex import Biplex, biplex_edge_count
from ..graph.bipartite import BipartiteGraph


@dataclass(frozen=True)
class ClassificationMetrics:
    """Precision / recall / F1 of a binary classification."""

    true_positives: int
    false_positives: int
    false_negatives: int

    @property
    def precision(self) -> float:
        """Fraction of predicted positives that are real positives (NaN-free: 0 when undefined)."""
        denominator = self.true_positives + self.false_positives
        return self.true_positives / denominator if denominator else float("nan")

    @property
    def recall(self) -> float:
        """Fraction of real positives that were predicted."""
        denominator = self.true_positives + self.false_negatives
        return self.true_positives / denominator if denominator else float("nan")

    @property
    def f1(self) -> float:
        """Harmonic mean of precision and recall (NaN when precision is undefined)."""
        precision = self.precision
        recall = self.recall
        if precision != precision or recall != recall:  # NaN check
            return float("nan")
        if precision + recall == 0:
            return 0.0
        return 2 * precision * recall / (precision + recall)

    @property
    def defined(self) -> bool:
        """False when no positives were predicted at all (the paper's "ND" cells)."""
        return (self.true_positives + self.false_positives) > 0


def classification_metrics(predicted: Set, actual: Set) -> ClassificationMetrics:
    """Compute precision/recall inputs for predicted vs. ground-truth item sets."""
    true_positives = len(predicted & actual)
    false_positives = len(predicted - actual)
    false_negatives = len(actual - predicted)
    return ClassificationMetrics(true_positives, false_positives, false_negatives)


def subgraph_density(graph: BipartiteGraph, biplex: Biplex) -> float:
    """Edge density of the induced subgraph: edges / possible edges."""
    possible = len(biplex.left) * len(biplex.right)
    if possible == 0:
        return 0.0
    return biplex_edge_count(graph, biplex) / possible


def average_density(graph: BipartiteGraph, biplexes: Sequence[Biplex]) -> float:
    """Mean edge density over a collection of subgraphs (0 for an empty collection)."""
    if not biplexes:
        return 0.0
    return sum(subgraph_density(graph, b) for b in biplexes) / len(biplexes)


def covered_vertices(biplexes: Iterable[Biplex]) -> Tuple[Set[int], Set[int]]:
    """Union of left and right vertex sets over a collection of subgraphs."""
    left: Set[int] = set()
    right: Set[int] = set()
    for biplex in biplexes:
        left |= biplex.left
        right |= biplex.right
    return left, right
