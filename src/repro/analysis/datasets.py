"""Dataset registry: synthetic stand-ins for the paper's real datasets.

Table 1 of the paper lists ten real bipartite graphs from http://konect.cc,
ranging from Divorce (9 × 50, 225 edges) to Google (17 M × 3.1 M, 14.7 M
edges).  The raw files are not redistributable here and a pure-Python
enumerator cannot traverse the larger ones anyway (repro band: "interpreter
too slow for enumeration benchmarks at paper scale"), so the registry below
provides *scaled* synthetic stand-ins:

* the two side sizes and the edge count are scaled down by a per-dataset
  factor while (approximately) preserving the edge density and the left/right
  size ratio of the original;
* edges follow a power-law degree distribution (real KONECT graphs are
  heavy-tailed), with a small number of planted near-biplex blocks so that
  the enumeration algorithms encounter non-trivial dense structure, as they
  do on the real data.

Every experiment driver addresses datasets by the names used in the paper
(``divorce``, ``cfat``, ..., ``google``), so benchmark output rows line up
with the paper's figures one-for-one.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..graph.bipartite import BipartiteGraph
from ..graph.generators import planted_biplex_graph_with_blocks, power_law_bipartite


@dataclass(frozen=True)
class DatasetSpec:
    """Description of one registry dataset.

    ``paper_n_left``, ``paper_n_right`` and ``paper_edges`` record the real
    dataset's statistics from Table 1 (for documentation and for the Table 1
    reproduction); ``n_left``, ``n_right`` and ``num_edges`` are the scaled
    stand-in actually generated.
    """

    name: str
    category: str
    paper_n_left: int
    paper_n_right: int
    paper_edges: int
    n_left: int
    n_right: int
    num_edges: int
    planted_blocks: int = 2
    block_size: Tuple[int, int] = (6, 6)
    seed: int = 7

    @property
    def scale_factor(self) -> float:
        """How much smaller the stand-in is than the real dataset (vertex count)."""
        real = self.paper_n_left + self.paper_n_right
        ours = self.n_left + self.n_right
        return real / ours if ours else float("inf")

    @property
    def edge_density(self) -> float:
        """Edge density ``|E| / (|L| + |R|)`` of the stand-in."""
        return self.num_edges / (self.n_left + self.n_right)


# The paper's Table 1, with scaled generation parameters.  Sizes are chosen
# so that iTraversal finishes each "first 1000 MBPs" run in roughly a second
# of pure-Python time while the ordering of dataset difficulty is preserved.
_SPECS: Tuple[DatasetSpec, ...] = (
    DatasetSpec("divorce", "HumanSocial", 9, 50, 225, 9, 50, 225, 1, (5, 8), 11),
    DatasetSpec("cfat", "Miscellaneous", 100, 100, 802, 50, 50, 400, 2, (6, 6), 12),
    DatasetSpec("crime", "Social", 551, 829, 1476, 70, 100, 190, 2, (5, 6), 13),
    DatasetSpec("opsahl", "Authorship", 2865, 4558, 16910, 90, 130, 450, 2, (6, 6), 14),
    DatasetSpec("marvel", "Collaboration", 19428, 6486, 96662, 130, 50, 650, 2, (6, 6), 15),
    DatasetSpec("writer", "Affiliation", 89356, 46213, 144340, 160, 80, 400, 2, (6, 6), 16),
    DatasetSpec("actors", "Affiliation", 392400, 127823, 1470404, 190, 70, 950, 3, (6, 6), 17),
    DatasetSpec("imdb", "Communication", 428440, 896308, 3782463, 140, 250, 1000, 3, (6, 6), 18),
    DatasetSpec("dblp", "Authorship", 1425813, 4000150, 8649016, 180, 420, 950, 3, (6, 6), 19),
    DatasetSpec("google", "Hyperlink", 17091929, 3108141, 14693125, 550, 110, 550, 3, (6, 6), 20),
)

SMALL_DATASETS: Tuple[str, ...] = ("divorce", "cfat", "crime", "opsahl")
"""The four small datasets used for the delay and solution-graph experiments."""

ALL_DATASETS: Tuple[str, ...] = tuple(spec.name for spec in _SPECS)
"""All registry names in the paper's Table 1 order."""


def dataset_specs() -> Dict[str, DatasetSpec]:
    """Mapping from dataset name to its specification."""
    return {spec.name: spec for spec in _SPECS}


def get_spec(name: str) -> DatasetSpec:
    """Specification of one dataset; raises ``KeyError`` for unknown names."""
    specs = dataset_specs()
    key = name.lower()
    if key not in specs:
        raise KeyError(f"unknown dataset {name!r}; known: {sorted(specs)}")
    return specs[key]


def load_dataset(name: str, seed: Optional[int] = None) -> BipartiteGraph:
    """Generate the stand-in graph for dataset ``name``.

    The generation is deterministic for a given ``seed`` (defaulting to the
    spec's seed), so repeated benchmark runs see identical graphs.
    """
    spec = get_spec(name)
    rng_seed = spec.seed if seed is None else seed
    block_left, block_right = spec.block_size
    planted, _ = planted_biplex_graph_with_blocks(
        spec.n_left,
        spec.n_right,
        block_left=min(block_left, spec.n_left),
        block_right=min(block_right, spec.n_right),
        k=1,
        background_edges=0,
        num_blocks=min(spec.planted_blocks, max(1, spec.n_left // max(block_left, 1))),
        seed=rng_seed,
    )
    remaining = max(spec.num_edges - planted.num_edges, 0)
    background = power_law_bipartite(
        spec.n_left, spec.n_right, remaining, exponent=1.6, seed=rng_seed + 1
    )
    merged = planted
    for left_vertex, right_vertex in background.edges():
        merged.add_edge(left_vertex, right_vertex)
    return merged


def table1_rows(include_paper_stats: bool = True) -> List[Dict[str, object]]:
    """Rows of the Table 1 reproduction.

    Each row reports the stand-in's measured statistics next to the paper's
    original numbers, so the scale-down factor is explicit in the output.
    """
    rows: List[Dict[str, object]] = []
    for name in ALL_DATASETS:
        spec = get_spec(name)
        graph = load_dataset(name)
        row: Dict[str, object] = {
            "name": spec.name,
            "category": spec.category,
            "|L|": graph.n_left,
            "|R|": graph.n_right,
            "|E|": graph.num_edges,
            "edge_density": round(graph.edge_density, 3),
        }
        if include_paper_stats:
            row.update(
                {
                    "paper_|L|": spec.paper_n_left,
                    "paper_|R|": spec.paper_n_right,
                    "paper_|E|": spec.paper_edges,
                    "scale_factor": round(spec.scale_factor, 1),
                }
            )
        rows.append(row)
    return rows
