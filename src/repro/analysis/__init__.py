"""Analysis layer: dataset registry, structure metrics, fraud-detection case study."""

from .datasets import (
    ALL_DATASETS,
    SMALL_DATASETS,
    DatasetSpec,
    dataset_specs,
    get_spec,
    load_dataset,
    table1_rows,
)
from .fraud import (
    FraudStudyConfig,
    FraudStudyReport,
    StructureResult,
    build_study_graph,
    run_fraud_detection_study,
)
from .metrics import (
    ClassificationMetrics,
    average_density,
    classification_metrics,
    covered_vertices,
    subgraph_density,
)

__all__ = [
    "ALL_DATASETS",
    "SMALL_DATASETS",
    "DatasetSpec",
    "dataset_specs",
    "get_spec",
    "load_dataset",
    "table1_rows",
    "FraudStudyConfig",
    "FraudStudyReport",
    "StructureResult",
    "build_study_graph",
    "run_fraud_detection_study",
    "ClassificationMetrics",
    "classification_metrics",
    "average_density",
    "subgraph_density",
    "covered_vertices",
]
