"""The reverse-search traversal engine shared by bTraversal and iTraversal.

Both algorithms are depth-first searches over an implicit *solution graph*
whose nodes are maximal k-biplexes (solutions) and whose links encode "the
ThreeStep procedure can find solution ``H'`` from solution ``H``"
(Section 3.1).  The engine below implements the DFS with an explicit stack
(the recursion depth equals the number of solutions, which easily exceeds
CPython's recursion limit) and exposes every design knob of the paper as a
configuration flag so that all algorithm variants of the evaluation —
bTraversal, iTraversal, iTraversal-ES, iTraversal-ES-RS, left- vs
right-anchored, large-MBP pruning — are instances of the same code path.

The per-run counters gathered in :class:`TraversalStats` are exactly the
quantities the evaluation section reports: number of solutions, number of
solution-graph links generated, number of EnumAlmostSat calls, wall-clock
time and whether a limit was hit.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Set, Tuple

from ..graph.bipartite import BipartiteGraph, MirrorView
from ..graph.protocol import (
    BACKENDS,
    BATCH_SWEEP_MIN_SIDE,
    as_backend,
    default_backend,
    mask_of,
    supports_masks,
    supports_vector_batch,
)
from .biplex import (
    Biplex,
    arbitrary_initial_solution,
    can_add_right_masked,
    extend_to_maximal,
    initial_solution_left_anchored,
)
from .enum_almost_sat import DEFAULT_CONFIG, EnumAlmostSatConfig, enum_local_solutions


@dataclass
class TraversalConfig:
    """Configuration of the reverse-search traversal.

    The defaults correspond to the full iTraversal algorithm (Algorithm 2
    plus the exclusion strategy).  Setting ``left_anchored``,
    ``right_shrinking`` and ``exclusion`` all to ``False`` and
    ``initial_solution`` to ``"arbitrary"`` yields bTraversal.

    Attributes
    ----------
    left_anchored:
        Only form almost-satisfying graphs with left-side vertices
        (Section 3.3).  When ``False`` both sides are candidates.
    right_shrinking:
        Prune local solutions that can be extended with a right vertex of
        ``G`` (Section 3.4) and extend local solutions with left-side
        vertices only.
    exclusion:
        Maintain per-solution exclusion sets and prune links towards
        solutions containing excluded vertices (Section 3.5).
    enum_config:
        Refinement levels used inside EnumAlmostSat.
    initial_solution:
        ``"anchored"`` for the designated ``(L0, R)`` seed of iTraversal or
        ``"arbitrary"`` for bTraversal's arbitrary maximal k-biplex.
    theta_left, theta_right:
        Large-MBP thresholds (Section 5); 0 disables size filtering.
    max_results:
        Stop after yielding this many solutions (``None`` = unlimited).
    time_limit:
        Wall-clock budget in seconds (``None`` = unlimited).
    output_order:
        ``"pre"`` yields a solution as soon as it is discovered;
        ``"alternate"`` applies the alternating-output trick of Uno (2003)
        that turns the total-time bound into a polynomial *delay* bound.
    backend:
        Adjacency substrate the engine runs on: ``"bitset"`` (the default —
        the graph is converted to a
        :class:`~repro.graph.bitset.BitsetBipartiteGraph` and the
        word-parallel bitmask fast paths kick in), ``"packed"`` (a
        :class:`~repro.graph.packed.PackedBipartiteGraph`, masks plus
        ``uint64`` batch rows — vectorized with numpy, ``array('Q')``
        fallback without) or ``"set"`` (the input
        graph as-is).  All backends enumerate identical solution sets in
        identical order; the default follows
        :func:`repro.graph.protocol.default_backend` and can be flipped
        globally with the ``REPRO_BACKEND`` environment variable.
    """

    left_anchored: bool = True
    right_shrinking: bool = True
    exclusion: bool = True
    enum_config: EnumAlmostSatConfig = field(default_factory=lambda: DEFAULT_CONFIG)
    initial_solution: str = "anchored"
    theta_left: int = 0
    theta_right: int = 0
    max_results: Optional[int] = None
    time_limit: Optional[float] = None
    output_order: str = "pre"
    backend: str = field(default_factory=default_backend)
    local_enumeration: str = "refined"
    """How EnumAlmostSat is implemented: ``"refined"`` uses the Section 4
    algorithm (levels set by ``enum_config``); ``"inflation"`` inflates each
    almost-satisfying graph and enumerates local maximal (k+1)-plexes, which
    is how the paper's bTraversal baseline is implemented in Figure 7."""

    def __post_init__(self) -> None:
        if self.initial_solution not in ("anchored", "arbitrary"):
            raise ValueError("initial_solution must be 'anchored' or 'arbitrary'")
        if self.output_order not in ("pre", "alternate"):
            raise ValueError("output_order must be 'pre' or 'alternate'")
        if self.theta_left < 0 or self.theta_right < 0:
            raise ValueError("size thresholds must be non-negative")
        if self.local_enumeration not in ("refined", "inflation"):
            raise ValueError("local_enumeration must be 'refined' or 'inflation'")
        if self.backend not in BACKENDS:
            raise ValueError(f"backend must be one of {BACKENDS}")


@dataclass
class TraversalStats:
    """Counters collected during a traversal run."""

    num_solutions: int = 0
    num_reported: int = 0
    num_links: int = 0
    num_almost_sat_graphs: int = 0
    num_local_solutions: int = 0
    elapsed_seconds: float = 0.0
    hit_result_limit: bool = False
    hit_time_limit: bool = False

    @property
    def truncated(self) -> bool:
        """Whether the run stopped before exhausting the solution space."""
        return self.hit_result_limit or self.hit_time_limit


class _LimitReached(Exception):
    """Internal control-flow signal for result/time limits."""


class ReverseSearchEngine:
    """DFS over the implicit solution graph, parameterised by :class:`TraversalConfig`."""

    def __init__(
        self,
        graph: BipartiteGraph,
        k: int,
        config: Optional[TraversalConfig] = None,
    ) -> None:
        if k < 1:
            raise ValueError("k must be a positive integer")
        self.config = config or TraversalConfig()
        self.graph = as_backend(graph, self.config.backend)
        self._masked = supports_masks(self.graph)
        self._batch = supports_vector_batch(self.graph)
        # Whole-side scoring sweeps every row of one side per call; below
        # the crossover the per-member mask loops are cheaper, so each
        # sweep direction is gated on its side's size.
        self._batch_score_left = (
            self._batch and self.graph.n_left >= BATCH_SWEEP_MIN_SIDE
        )
        self._batch_score_right = (
            self._batch and self.graph.n_right >= BATCH_SWEEP_MIN_SIDE
        )
        self.k = k
        self.stats = TraversalStats()
        self._visited: Set[Biplex] = set()
        self._start_time = 0.0

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def run(self) -> Iterator[Biplex]:
        """Enumerate maximal k-biplexes according to the configuration.

        Solutions are yielded lazily; iteration can be stopped early by the
        caller (e.g. "first 1000 MBPs" experiments) without paying for the
        full enumeration.
        """
        self._start_time = time.perf_counter()
        self.stats = TraversalStats()
        self._visited = set()
        # The ``finally`` keeps the stats finalized even when the caller
        # abandons the generator mid-run (early ``break`` / ``close()``),
        # which unwinds through here as GeneratorExit.
        try:
            initial = self._initial_solution()
            self._visited.add(initial)
            self.stats.num_solutions += 1
            yield from self._dfs(initial)
        except _LimitReached:
            pass
        finally:
            self.stats.elapsed_seconds = time.perf_counter() - self._start_time

    def enumerate(self) -> List[Biplex]:
        """Run the traversal to completion and return all solutions as a list."""
        return list(self.run())

    # ------------------------------------------------------------------ #
    # DFS driver
    # ------------------------------------------------------------------ #
    def _dfs(self, initial: Biplex) -> Iterator[Biplex]:
        """Iterative DFS with optional alternating output order."""
        alternate = self.config.output_order == "alternate"
        # Each frame: (solution, children iterator, already_output flag, depth)
        root_children = self._children(initial, frozenset())
        stack: List[List] = [[initial, root_children, False, 0]]
        if not alternate or self._output_now(0):
            yield from self._report(initial)
            stack[-1][2] = True
        while stack:
            frame = stack[-1]
            solution, children, already_output, depth = frame
            child = next(children, None)
            if child is None:
                if not already_output:
                    yield from self._report(solution)
                    frame[2] = True
                stack.pop()
                continue
            child_solution, child_exclusion = child
            child_depth = depth + 1
            child_frame = [
                child_solution,
                self._children(child_solution, child_exclusion),
                False,
                child_depth,
            ]
            if not alternate or self._output_now(child_depth):
                yield from self._report(child_solution)
                child_frame[2] = True
            stack.append(child_frame)

    @staticmethod
    def _output_now(depth: int) -> bool:
        """Uno's alternating trick: output before recursion on even depths."""
        return depth % 2 == 0

    def _report(self, solution: Biplex) -> Iterator[Biplex]:
        """Yield ``solution`` if it passes the size filters; enforce limits."""
        self._check_time()
        if self._passes_size_filter(solution):
            self.stats.num_reported += 1
            yield solution
            if (
                self.config.max_results is not None
                and self.stats.num_reported >= self.config.max_results
            ):
                self.stats.hit_result_limit = True
                raise _LimitReached
        return

    def _passes_size_filter(self, solution: Biplex) -> bool:
        return (
            len(solution.left) >= self.config.theta_left
            and len(solution.right) >= self.config.theta_right
        )

    def _check_time(self) -> None:
        if self.config.time_limit is None:
            return
        if time.perf_counter() - self._start_time > self.config.time_limit:
            self.stats.hit_time_limit = True
            raise _LimitReached

    # ------------------------------------------------------------------ #
    # ThreeStep / iThreeStep
    # ------------------------------------------------------------------ #
    def _initial_solution(self) -> Biplex:
        if self.config.initial_solution == "anchored":
            return initial_solution_left_anchored(self.graph, self.k)
        return arbitrary_initial_solution(self.graph, self.k)

    def _children(
        self, solution: Biplex, exclusion: frozenset
    ) -> Iterator[Tuple[Biplex, frozenset]]:
        """Generate the unvisited solutions reachable from ``solution``.

        This is the ThreeStep (bTraversal) / iThreeStep (iTraversal)
        procedure.  Each yielded pair carries the exclusion set the child
        should be explored with.
        """
        config = self.config
        left = set(solution.left)
        right = set(solution.right)

        # Section 5, solution pruning: all solutions reachable from here have
        # a right side contained in ours (right-shrinking), so stop early.
        if (
            config.theta_right
            and config.right_shrinking
            and len(right) < config.theta_right
        ):
            return
        # Section 5, left-side pruning via the exclusion set.
        if (
            config.theta_left
            and config.exclusion
            and self.graph.n_left - len(exclusion) < config.theta_left
        ):
            return

        # δ̄(u, L) for every u ∈ R and the packed left side depend only on
        # the solution, not on the candidate vertex; computing them once here
        # saves a factor |L| inside EnumAlmostSat (see enum_local_solutions'
        # solution_right_missing / solution_left_mask).  A vectorized batch
        # substrate scores the whole right side with one popcount sweep
        # (δ̄(u, L) = |L| − |Γ(u) ∩ L|) instead of a per-vertex mask loop.
        left_mask = mask_of(left) if self._masked else None
        if left_mask is not None and self._batch_score_right:
            hits = self.graph.popcount_rows("right", left_mask).tolist()
            size = len(left)
            right_missing = {u: size - hits[u] for u in right}
        elif left_mask is not None:
            adj_right_mask = self.graph.adj_right_mask
            right_missing = {
                u: (left_mask & ~adj_right_mask(u)).bit_count() for u in right
            }
        else:
            right_missing = {
                u: len(left - self.graph.neighbors_of_right(u)) for u in right
            }
        # Γ(v, R) sizes for the Section 5 almost-satisfying-graph pruning are
        # likewise solution-level: score every left candidate in one sweep.
        gamma_sizes = None
        if self._batch_score_left and config.theta_right:
            gamma_sizes = self.graph.popcount_rows("left", mask_of(right)).tolist()

        processed: List[int] = []
        for side, vertex in self._candidate_vertices(solution):
            self._check_time()
            if side == "L" and config.exclusion and vertex in exclusion:
                continue
            # Section 5, almost-satisfying-graph pruning.
            if (
                config.theta_right
                and side == "L"
                and (
                    gamma_sizes[vertex]
                    if gamma_sizes is not None
                    else len(self.graph.gamma_left(vertex, right))
                )
                + self.k
                < config.theta_right
            ):
                if config.exclusion:
                    processed.append(vertex)
                continue
            self.stats.num_almost_sat_graphs += 1
            child_exclusion = (
                frozenset(exclusion | set(processed)) if config.exclusion else frozenset()
            )
            for local in self._local_solutions(solution, side, vertex, right_missing, left_mask):
                self.stats.num_local_solutions += 1
                # The local solution's vertices are a subset of the extended
                # child's, so an exclusion hit here already rules the child
                # out — checking before the (expensive) extension step.
                if config.exclusion and side == "L" and (local.left & exclusion):
                    continue
                if config.right_shrinking and side == "L" and self._right_extensible(local):
                    continue
                child = self._extend(local, side)
                if config.exclusion and side == "L" and (child.left & exclusion):
                    continue
                # Links pruned by the exclusion strategy are not part of the
                # algorithm's solution graph, hence counted only here.
                self.stats.num_links += 1
                if child in self._visited:
                    continue
                self._visited.add(child)
                self.stats.num_solutions += 1
                yield child, child_exclusion
            if side == "L" and config.exclusion:
                processed.append(vertex)

    def _candidate_vertices(self, solution: Biplex) -> Iterator[Tuple[str, int]]:
        """Step 1 candidates: vertices outside the solution, per configuration."""
        for v in self.graph.left_vertices():
            if v not in solution.left:
                yield ("L", v)
        if not self.config.left_anchored:
            for u in self.graph.right_vertices():
                if u not in solution.right:
                    yield ("R", u)

    def _local_solutions(
        self, solution: Biplex, side: str, vertex: int, right_missing=None, left_mask=None
    ) -> Iterator[Biplex]:
        """Step 2: EnumAlmostSat on the almost-satisfying graph ``G[H ∪ {vertex}]``."""
        min_right = (
            self.config.theta_right
            if (self.config.theta_right and self.config.right_shrinking and side == "L")
            else 0
        )
        use_inflation = self.config.local_enumeration == "inflation"
        if side == "L":
            if use_inflation:
                from .enum_almost_sat import enum_local_solutions_inflation

                yield from enum_local_solutions_inflation(
                    self.graph, set(solution.left), set(solution.right), vertex, self.k
                )
                return
            yield from enum_local_solutions(
                self.graph,
                set(solution.left),
                set(solution.right),
                vertex,
                self.k,
                config=self.config.enum_config,
                min_right_size=min_right,
                solution_right_missing=right_missing,
                solution_left_mask=left_mask,
            )
            return
        # Right-side candidate (bTraversal only): run the same procedure on
        # the mirrored view and swap the result back.
        mirror = MirrorView(self.graph)
        if use_inflation:
            from .enum_almost_sat import enum_local_solutions_inflation

            mirrored_locals = enum_local_solutions_inflation(
                mirror, set(solution.right), set(solution.left), vertex, self.k
            )
        else:
            mirrored_locals = enum_local_solutions(
                mirror,
                set(solution.right),
                set(solution.left),
                vertex,
                self.k,
                config=self.config.enum_config,
            )
        for mirrored in mirrored_locals:
            yield Biplex(left=mirrored.right, right=mirrored.left)

    def _extend(self, local: Biplex, side: str) -> Biplex:
        """Step 3: extend a local solution to a maximal k-biplex of ``G``."""
        if self.config.right_shrinking and side == "L":
            # iTraversal extends with left-side vertices only (Line 8).
            return extend_to_maximal(
                self.graph,
                local.left,
                local.right,
                self.k,
                candidate_right=(),
            )
        return extend_to_maximal(self.graph, local.left, local.right, self.k)

    def _right_extensible(self, local: Biplex) -> bool:
        """Right-shrinking test (Line 7): can any right vertex of G be added?

        Candidate right vertices must be adjacent to at least ``|L| - k``
        left vertices of the local solution, so when ``|L| > k`` they are
        found by counting adjacencies from the local solution's left side
        (proportional to its incident edges) rather than scanning all of R.
        When ``|L| <= k`` even a right vertex with *no* neighbour in ``L``
        may be addable (it misses all of ``L``, which the slack allows), but
        all such vertices pass or fail the addability test identically — so
        one representative stands in for them and the scan stays proportional
        to the local solution's incident edges instead of to ``|R|``.

        On a vectorized batch substrate the per-edge counting dict is
        replaced by one ``popcount_rows`` sweep that scores ``|Γ(u) ∩ L|``
        for the whole right side at once; the candidate pre-filter is
        otherwise backend-independent, and only the final addability probe
        dispatches on the mask capability.
        """
        graph = self.graph
        k = self.k
        left = local.left
        right = local.right
        threshold = max(len(left) - k, 1)
        if self._batch_score_right:
            hits = graph.popcount_rows("right", mask_of(left))
            candidates = [
                u for u in (hits >= threshold).nonzero()[0].tolist() if u not in right
            ]
            if len(left) <= k:
                representative_pool = iter((hits == 0).nonzero()[0].tolist())
        else:
            counts: dict = {}
            for v in left:
                for u in graph.neighbors_of_left(v):
                    counts[u] = counts.get(u, 0) + 1
            candidates = [
                u for u, count in counts.items() if count >= threshold and u not in right
            ]
            if len(left) <= k:
                representative_pool = (
                    u for u in graph.right_vertices() if u not in counts
                )
        if len(left) <= k:
            representative = next(
                (u for u in representative_pool if u not in right),
                None,
            )
            if representative is not None:
                candidates.append(representative)
        if self._masked:
            left_mask = mask_of(left)
            right_mask = mask_of(right)
            return any(
                can_add_right_masked(graph, left_mask, right_mask, u, k)
                for u in candidates
            )
        from .biplex import can_add_right

        left_set = set(left)
        right_set = set(right)
        return any(can_add_right(graph, left_set, right_set, u, k) for u in candidates)


def run_with_stats(
    graph: BipartiteGraph,
    k: int,
    config: Optional[TraversalConfig] = None,
) -> Tuple[List[Biplex], TraversalStats]:
    """Convenience helper: run an engine to completion and return solutions + stats."""
    engine = ReverseSearchEngine(graph, k, config)
    solutions = engine.enumerate()
    return solutions, engine.stats
