"""Objective strategies: enumerate-all, maximum-size and top-k biplex search.

The reverse-search engine is objective-polymorphic: it always *traverses*
the solution graph, but what it is traversing **for** is a strategy object
plugged into :class:`~repro.core.traversal.TraversalConfig`.  An
:class:`Objective` observes every reported solution and maintains the
monotone size lower bound the engine threads into its pruning rules
(dynamic per-side size thresholds plus the (α, β)-core-derived subtree
upper bound — see ``ReverseSearchEngine._children``).

Soundness of bound pruning rests on two invariants:

* the bound only ever **rises** (``prune_below`` is monotone in the
  observations), and a subtree is pruned only when it provably holds
  solutions of size *strictly below* the bound at prune time;
* ties at the final bound therefore always survive, so the deterministic
  tie-break (canonical :meth:`~repro.core.biplex.Biplex.key` ascending)
  yields the same answer whatever the traversal or gossip timing —
  solver-mode *work* counters are scheduling-dependent, the *answer* is
  not.

In solver modes the engine still yields every observed candidate (the
session layer needs the suspension points for cursors and budgets); the
session drains that stream and emits :meth:`Objective.results` at the end
(see :class:`~repro.core.session.EnumerationSession`).
"""

from __future__ import annotations

from bisect import bisect_left
from typing import List, Optional, Tuple

from .biplex import Biplex

#: The recognised objective modes, in the user-facing spelling.
OBJECTIVES = ("enumerate", "maximum", "top-k")


def resolve_objective(
    mode: Optional[str] = None, top: Optional[int] = None
) -> Tuple[str, Optional[int]]:
    """Validate an (objective mode, top) pair; ``None`` mode = enumerate.

    Shared by the CLI flags, the service query normalization and
    :class:`~repro.core.traversal.TraversalConfig` so all three reject bad
    input with one message.
    """
    if mode is None:
        mode = "enumerate"
    if mode not in OBJECTIVES:
        raise ValueError(
            f"mode must be one of {list(OBJECTIVES)}, got {mode!r}"
        )
    if mode == "top-k":
        if not isinstance(top, int) or isinstance(top, bool) or top < 1:
            raise ValueError("top-k mode needs top=N (a positive integer)")
    elif top is not None:
        raise ValueError(f"top only applies to the top-k mode, not {mode!r}")
    return mode, top


class Objective:
    """Strategy interface the engine reports solutions into.

    Subclasses override the four hooks; the base class *is* the
    enumerate-all behaviour (observe nothing, never prune).
    """

    name = "enumerate"

    #: Enumerate-all sessions stream solutions through unchanged; solver
    #: objectives make the session drain the traversal and emit
    #: :meth:`results` instead.
    trivial = True

    def observe(self, solution: Biplex) -> bool:
        """Fold one reported solution in; returns whether the incumbent improved."""
        return False

    def prune_below(self) -> int:
        """Solutions of size strictly below this can no longer matter (0 = no bound)."""
        return 0

    def results(self) -> List[Biplex]:
        """The answer set, in deterministic ``(-size, key)`` order."""
        return []

    def reset(self) -> None:
        """Drop all observations (a fresh run over the same engine)."""

    def state(self) -> Optional[dict]:
        """JSON-serializable incumbent state for cursor tokens (None = stateless)."""
        return None

    def load_state(self, data: Optional[dict]) -> None:
        """Restore :meth:`state` output (cursor resume)."""


class EnumerateAll(Objective):
    """The classic objective: every maximal k-biplex, streamed as found."""


def _solution_to_lists(solution: Biplex) -> List[List[int]]:
    return [sorted(solution.left), sorted(solution.right)]


def _solution_from_lists(pair) -> Biplex:
    return Biplex(left=frozenset(pair[0]), right=frozenset(pair[1]))


class MaximumSize(Objective):
    """Keep the single largest solution; ties break to the smallest key."""

    name = "maximum"
    trivial = False

    def __init__(self) -> None:
        self._best: Optional[Biplex] = None
        self._best_key = None

    def observe(self, solution: Biplex) -> bool:
        best = self._best
        if best is not None:
            if solution.size < best.size:
                return False
            if solution.size == best.size and solution.key() >= self._best_key:
                return False
        self._best = solution
        self._best_key = solution.key()
        return True

    def prune_below(self) -> int:
        return 0 if self._best is None else self._best.size

    def results(self) -> List[Biplex]:
        return [] if self._best is None else [self._best]

    def reset(self) -> None:
        self._best = None
        self._best_key = None

    def state(self) -> Optional[dict]:
        if self._best is None:
            return {"best": None}
        return {"best": _solution_to_lists(self._best)}

    def load_state(self, data: Optional[dict]) -> None:
        self.reset()
        if data and data.get("best") is not None:
            self.observe(_solution_from_lists(data["best"]))


class TopK(Objective):
    """Keep the ``n`` largest solutions, ordered by ``(-size, key)``.

    Once full, the n-th best size is the prune bound: anything strictly
    smaller can never displace an item, while a size tie still can (by
    key), so ties must — and do — survive the engine's bound pruning.
    """

    name = "top-k"
    trivial = False

    def __init__(self, top: int) -> None:
        if top < 1:
            raise ValueError("top must be a positive integer")
        self.top = top
        self._items: List[Biplex] = []
        self._order: List[tuple] = []  # parallel (-size, key) sort keys

    def observe(self, solution: Biplex) -> bool:
        entry = (-solution.size, solution.key())
        position = bisect_left(self._order, entry)
        if position >= self.top:
            return False
        self._order.insert(position, entry)
        self._items.insert(position, solution)
        if len(self._items) > self.top:
            self._order.pop()
            self._items.pop()
        return True

    def prune_below(self) -> int:
        if len(self._items) < self.top:
            return 0
        return -self._order[-1][0]

    def results(self) -> List[Biplex]:
        return list(self._items)

    def reset(self) -> None:
        self._items = []
        self._order = []

    def state(self) -> Optional[dict]:
        return {"items": [_solution_to_lists(item) for item in self._items]}

    def load_state(self, data: Optional[dict]) -> None:
        self.reset()
        for pair in (data or {}).get("items", []):
            self.observe(_solution_from_lists(pair))


def make_objective(mode: str, top: Optional[int] = None) -> Objective:
    """Instantiate the strategy for a validated ``(mode, top)`` pair."""
    mode, top = resolve_objective(mode, top)
    if mode == "maximum":
        return MaximumSize()
    if mode == "top-k":
        return TopK(top)
    return EnumerateAll()
