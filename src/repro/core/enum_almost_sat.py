"""The EnumAlmostSat procedure (Section 4 of the paper).

Given a solution ``H = (L, R)`` and a left vertex ``v ∉ L``, the
*almost-satisfying graph* is the induced subgraph ``(L ∪ {v}, R)``.
EnumAlmostSat enumerates all *local solutions* within it: induced subgraphs
``(L' ∪ {v}, R')`` with ``L' ⊆ L`` and ``R' ⊆ R`` that

1. contain ``v``,
2. are k-biplexes, and
3. are maximal w.r.t. the almost-satisfying graph (no vertex of
   ``(L ∪ {v}) ∪ R`` outside the subgraph can be added while keeping the
   k-biplex property).

Four refinement levels are provided, matching the paper's Figure 12
comparison:

* ``R1.0`` — only enumerate subsets of ``R_enum`` (the right vertices *not*
  adjacent to ``v``) of size at most ``k``; the vertices adjacent to ``v``
  (``R_keep``) belong to every local solution (Lemma 4.1).
* ``R2.0`` — additionally prune subsets ``R''`` with ``|R''| < k`` that do
  not contain all of ``R¹_enum`` (Lemma 4.2).
* ``L1.0`` — only enumerate removal sets from ``L_remo`` (left vertices with
  at least one non-neighbour in ``R²''``) of size at most ``|R²''|``
  (Lemma 4.3 and the discussion in Section 4.3).
* ``L2.0`` — visit removal sets in ascending size order and prune supersets
  of removal sets that already produced a local solution (Section 4.4).

Two reference implementations are included for testing and for the Figure 12
baseline: a naive power-set enumeration and the *Inflation* variant that
inflates the almost-satisfying graph and enumerates local maximal
``(k+1)``-plexes of the resulting general graph.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from ..graph.bipartite import BipartiteGraph
from ..graph.protocol import iter_bits, mask_of, supports_masks, supports_vector_batch
from .biplex import (
    Biplex,
    can_add_left,
    can_add_left_masked,
    can_add_right,
    can_add_right_masked,
    is_k_biplex,
    is_maximal_k_biplex,
)


@dataclass(frozen=True)
class EnumAlmostSatConfig:
    """Configuration of the EnumAlmostSat refinements.

    Attributes
    ----------
    right_refinement:
        1 for "R1.0", 2 for "R2.0" (default, strictly prunes more).
    left_refinement:
        1 for "L1.0", 2 for "L2.0" (default).
    """

    right_refinement: int = 2
    left_refinement: int = 2

    def __post_init__(self) -> None:
        if self.right_refinement not in (1, 2):
            raise ValueError("right_refinement must be 1 or 2")
        if self.left_refinement not in (1, 2):
            raise ValueError("left_refinement must be 1 or 2")

    @property
    def label(self) -> str:
        """Human-readable label, e.g. ``"L2.0+R2.0"`` as used in Figure 12."""
        return f"L{self.left_refinement}.0+R{self.right_refinement}.0"


DEFAULT_CONFIG = EnumAlmostSatConfig()


def enum_local_solutions(
    graph: BipartiteGraph,
    left: Set[int],
    right: Set[int],
    new_left_vertex: int,
    k: int,
    config: EnumAlmostSatConfig = DEFAULT_CONFIG,
    min_right_size: int = 0,
    solution_right_missing: Optional[Dict[int, int]] = None,
    solution_left_mask: Optional[int] = None,
) -> Iterator[Biplex]:
    """Enumerate all local solutions of the almost-satisfying graph ``(L ∪ {v}, R)``.

    Parameters
    ----------
    graph:
        The full input bipartite graph.
    left, right:
        The vertex sets of the current solution ``H = (L, R)``, which must be
        a k-biplex.
    new_left_vertex:
        The left vertex ``v ∉ L`` being added to form the almost-satisfying
        graph.
    k:
        The biplex parameter.
    config:
        Which refinement levels to use (Algorithm 3 corresponds to the
        default ``L2.0+R2.0``).
    min_right_size:
        When positive, local solutions whose right side is smaller than this
        threshold are pruned *before* the left-side enumeration.  This is the
        "local solution pruning" rule of the large-MBP extension
        (Section 5); 0 disables it.
    solution_right_missing:
        Optional precomputed ``δ̄(u, L)`` for every ``u ∈ R``.  The values
        depend only on the solution ``(L, R)``, not on ``v``, so a caller
        that forms many almost-satisfying graphs from the same solution (the
        traversal engines) computes them once and passes them in.
    solution_left_mask:
        Optional packed form of ``left`` for mask-capable substrates; like
        ``solution_right_missing`` it depends only on the solution, so the
        traversal engines compute it once per solution.

    Yields
    ------
    Biplex
        Each local solution ``(L' ∪ {v}, R')``.  Solutions are distinct.
    """
    v = new_left_vertex
    left = set(left)
    right = set(right)
    if v in left:
        raise ValueError("the new vertex must not already belong to the solution")

    # Packed left side, used by the word-parallel fast paths below when the
    # substrate exposes adjacency masks; ``None`` selects the set paths.
    if solution_left_mask is not None:
        left_mask: Optional[int] = solution_left_mask
    else:
        left_mask = mask_of(left) if supports_masks(graph) else None

    v_adjacency = graph.neighbors_of_left(v)
    r_keep = right & v_adjacency
    r_enum = sorted(right - v_adjacency)

    # Miss counts of the enumerable right vertices w.r.t. the *current* left
    # side.  A vectorized batch substrate scores the whole right side in one
    # popcount sweep (δ̄(u, L) = |L| − |Γ(u) ∩ L|); the traversal engines
    # normally pass the counts in precomputed, so this path serves direct
    # callers.
    if solution_right_missing is not None:
        right_missing = solution_right_missing
    elif left_mask is not None and supports_vector_batch(graph):
        hits = graph.popcount_rows("right", left_mask).tolist()
        size = len(left)
        right_missing = {u: size - hits[u] for u in r_enum}
    elif left_mask is not None:
        right_missing = {
            u: (left_mask & ~graph.adj_right_mask(u)).bit_count() for u in r_enum
        }
    else:
        right_missing: Dict[int, int] = {u: graph.missing_right(u, left) for u in r_enum}
    r1_enum = [u for u in r_enum if right_missing[u] <= k - 1]
    r2_enum = [u for u in r_enum if right_missing[u] >= k]
    r_enum_set = set(r_enum)

    for r_double_prime in _enumerate_right_subsets(r1_enum, r2_enum, k, config.right_refinement):
        r_prime = set(r_keep)
        r_prime.update(r_double_prime)
        if min_right_size and len(r_prime) < min_right_size:
            continue
        r2_selected = [u for u in r_double_prime if right_missing.get(u, 0) >= k]
        yield from _enumerate_left_removals(
            graph,
            left,
            r_prime,
            set(r_double_prime),
            r2_selected,
            r_enum_set,
            right_missing,
            v,
            k,
            config.left_refinement,
            left_mask=left_mask,
        )


def _enumerate_right_subsets(
    r1_enum: Sequence[int],
    r2_enum: Sequence[int],
    k: int,
    right_refinement: int,
) -> Iterator[Tuple[int, ...]]:
    """Yield the subsets ``R''`` of ``R_enum`` to consider (size ≤ k).

    With ``right_refinement == 2`` the Lemma 4.2 pruning applies: a subset of
    size strictly below ``k`` is only kept when it contains all of
    ``R¹_enum``.
    """
    r1_set = set(r1_enum)
    pool = list(r1_enum) + list(r2_enum)
    for size in range(min(k, len(pool)) + 1):
        for subset in combinations(pool, size):
            if right_refinement >= 2 and size < k and not r1_set.issubset(subset):
                continue
            yield subset


def _enumerate_left_removals(
    graph: BipartiteGraph,
    left: Set[int],
    r_prime: Set[int],
    r_double_prime: Set[int],
    r2_selected: Sequence[int],
    r_enum_set: Set[int],
    right_missing: Dict[int, int],
    v: int,
    k: int,
    left_refinement: int,
    left_mask: Optional[int] = None,
) -> Iterator[Biplex]:
    """Enumerate removal sets from ``L`` for a fixed right side ``R'``.

    ``r2_selected`` are the chosen right vertices that currently miss ``k``
    vertices of ``L`` (and also miss ``v``), i.e. the vertices that force at
    least one left removal each.  The verification of each candidate is
    incremental (see :func:`_is_local_solution`): only the vertices whose
    constraints can actually have changed are re-checked.  When ``left_mask``
    is given the substrate exposes adjacency masks and the verification runs
    on packed vertex sets instead.
    """
    r_prime_mask = mask_of(r_prime) if left_mask is not None else None

    if not r2_selected:
        # (L ∪ {v}, R') is already a k-biplex; the only candidate removal is ∅.
        candidate_left = set(left)
        candidate_left.add(v)
        if left_mask is not None:
            accepted = _is_local_solution_masked(
                graph,
                left_mask | (1 << v),
                r_prime_mask,
                0,
                r_double_prime,
                r_enum_set,
                right_missing,
                k,
            )
        else:
            accepted = _is_local_solution(
                graph,
                candidate_left,
                r_prime,
                frozenset(),
                r_double_prime,
                r_enum_set,
                right_missing,
                v,
                k,
            )
        if accepted:
            yield Biplex.of(candidate_left, r_prime)
        return

    r2_set = set(r2_selected)
    # L_remo: left vertices with at least one non-neighbour in R''₂
    # (Section 4.3).  Collected from the R''₂ side, which is at most k
    # vertices, instead of scanning all of L.
    if left_mask is not None:
        removal_candidates_mask = 0
        for u in r2_set:
            removal_candidates_mask |= left_mask & ~graph.adj_right_mask(u)
        removal_pool = list(iter_bits(removal_candidates_mask))
    else:
        removal_candidates: Set[int] = set()
        for u in r2_set:
            removal_candidates |= left - graph.neighbors_of_right(u)
        removal_pool = sorted(removal_candidates)
    budget = min(len(r2_selected), k, len(removal_pool))
    successful_removals: List[Set[int]] = []
    for size in range(budget + 1):
        for removal in combinations(removal_pool, size):
            removal_set = set(removal)
            if left_refinement >= 2 and any(
                prior <= removal_set for prior in successful_removals
            ):
                continue
            if left_mask is not None:
                removal_mask = mask_of(removal)
                accepted = _is_local_solution_masked(
                    graph,
                    (left_mask & ~removal_mask) | (1 << v),
                    r_prime_mask,
                    removal_mask,
                    r_double_prime,
                    r_enum_set,
                    right_missing,
                    k,
                )
                candidate_left = (left - removal_set) | {v} if accepted else None
            else:
                candidate_left = (left - removal_set) | {v}
                accepted = _is_local_solution(
                    graph,
                    candidate_left,
                    r_prime,
                    removal_set,
                    r_double_prime,
                    r_enum_set,
                    right_missing,
                    v,
                    k,
                )
            if accepted:
                successful_removals.append(removal_set)
                yield Biplex.of(candidate_left, r_prime)


def _is_local_solution(
    graph: BipartiteGraph,
    candidate_left: Set[int],
    candidate_right: Set[int],
    removal_set: Set[int],
    r_double_prime: Set[int],
    r_enum_set: Set[int],
    right_missing: Dict[int, int],
    v: int,
    k: int,
) -> bool:
    """Incremental check that a candidate ``(L' ∪ {v}, R')`` is a local solution.

    Compared to a from-scratch test, the following facts (all consequences of
    ``(L, R)`` being a k-biplex and of the construction of ``R'``) keep the
    work proportional to ``k`` in the common case:

    * the k-biplex predicate can only fail at the chosen ``R''`` vertices:
      ``v`` misses exactly ``|R''| ≤ k`` vertices, the retained left vertices
      and the ``R_keep`` vertices are below their budgets by heredity, so it
      suffices to check ``δ̄(u, L') + 1 ≤ k`` for ``u ∈ R''``;
    * on the left, only the *removed* vertices can possibly be added back, so
      local maximality on the left is checked against ``removal_set`` only;
    * on the right, any vertex of ``R \\ R'`` would push ``v`` to
      ``|R''| + 1`` misses, so the right-side maximality check is needed only
      when ``|R''| < k``.

    The reference (naive) implementation performs the full quadratic check;
    the property-based tests compare the two on random inputs.
    """
    # (1) k-biplex predicate, restricted to the vertices that can violate it.
    for u in r_double_prime:
        removed_non_neighbors = len(removal_set - graph.neighbors_of_right(u)) if removal_set else 0
        if right_missing[u] - removed_non_neighbors + 1 > k:
            return False
    # (2) Left-side local maximality: no removed vertex can be added back.
    for w in removal_set:
        if can_add_left(graph, candidate_left, candidate_right, w, k):
            return False
    # (3) Right-side local maximality: only possible when v has slack.
    if len(r_double_prime) < k:
        for u in r_enum_set - r_double_prime:
            if can_add_right(graph, candidate_left, candidate_right, u, k):
                return False
    return True


def _is_local_solution_masked(
    graph,
    candidate_left_mask: int,
    candidate_right_mask: int,
    removal_mask: int,
    r_double_prime: Set[int],
    r_enum_set: Set[int],
    right_missing: Dict[int, int],
    k: int,
) -> bool:
    """Bitmask twin of :func:`_is_local_solution` (same three checks).

    The removed-non-neighbour counts and the two maximality sweeps operate
    on packed vertex sets, so each per-vertex probe is a handful of
    word-parallel bitwise operations instead of Python set arithmetic.
    """
    adj_right_mask = graph.adj_right_mask
    # (1) k-biplex predicate, restricted to the vertices that can violate it.
    for u in r_double_prime:
        removed_non_neighbors = (
            (removal_mask & ~adj_right_mask(u)).bit_count() if removal_mask else 0
        )
        if right_missing[u] - removed_non_neighbors + 1 > k:
            return False
    # (2) Left-side local maximality: no removed vertex can be added back.
    for w in iter_bits(removal_mask):
        if can_add_left_masked(graph, candidate_left_mask, candidate_right_mask, w, k):
            return False
    # (3) Right-side local maximality: only possible when v has slack.
    if len(r_double_prime) < k:
        for u in r_enum_set - r_double_prime:
            if can_add_right_masked(graph, candidate_left_mask, candidate_right_mask, u, k):
                return False
    return True


def enum_local_solutions_naive(
    graph: BipartiteGraph,
    left: Set[int],
    right: Set[int],
    new_left_vertex: int,
    k: int,
) -> List[Biplex]:
    """Reference implementation: enumerate every ``(L', R')`` pair explicitly.

    Exponential in ``|L| + |R|``; used as the ground-truth oracle in tests
    and only suitable for very small almost-satisfying graphs.
    """
    v = new_left_vertex
    left_list = sorted(left)
    right_list = sorted(right)
    solutions: List[Biplex] = []
    seen = set()
    left_pool = set(left) | {v}
    for left_size in range(len(left_list) + 1):
        for left_subset in combinations(left_list, left_size):
            candidate_left = set(left_subset) | {v}
            for right_size in range(len(right_list) + 1):
                for right_subset in combinations(right_list, right_size):
                    candidate_right = set(right_subset)
                    if not is_k_biplex(graph, candidate_left, candidate_right, k):
                        continue
                    if not is_maximal_k_biplex(
                        graph,
                        candidate_left,
                        candidate_right,
                        k,
                        candidate_left=left_pool,
                        candidate_right=right,
                    ):
                        continue
                    solution = Biplex.of(candidate_left, candidate_right)
                    if solution not in seen:
                        seen.add(solution)
                        solutions.append(solution)
    return solutions


def enum_local_solutions_inflation(
    graph: BipartiteGraph,
    left: Set[int],
    right: Set[int],
    new_left_vertex: int,
    k: int,
    time_limit: Optional[float] = None,
) -> List[Biplex]:
    """The *Inflation* baseline for EnumAlmostSat (Figure 12).

    The almost-satisfying graph is inflated into a general graph (cliques
    within each side) and local maximal ``(k+1)``-plexes containing ``v``
    are enumerated with the branch-and-bound k-plex enumerator.  The plexes
    translate back to exactly the local solutions of the almost-satisfying
    graph.

    ``time_limit`` (seconds) truncates the underlying plex search: the
    baseline is exponential in the almost-satisfying graph's size, which is
    precisely the behaviour Figure 12 demonstrates, so benchmark drivers cap
    each call instead of waiting for it.
    """
    # Imported lazily to keep the baselines package optional at import time.
    from ..baselines.kplex import enumerate_maximal_kplexes
    from ..graph.general import BitsetGraph, Graph
    from ..graph.protocol import supports_masks

    v = new_left_vertex
    left_ids = sorted(left)
    right_ids = sorted(right)
    # Build the inflated graph of the almost-satisfying subgraph with compact
    # ids: left vertices (including v) come first, then the right vertices.
    # A mask-capable input gets a mask-capable inflation, so the k-plex
    # enumerator keeps its word-parallel fast path on the bitset backend.
    local_left = left_ids + [v]
    left_index = {vertex: index for index, vertex in enumerate(local_left)}
    right_index = {vertex: len(local_left) + index for index, vertex in enumerate(right_ids)}
    graph_class = BitsetGraph if supports_masks(graph) else Graph
    inflated = graph_class(len(local_left) + len(right_ids))
    for i in range(len(local_left)):
        for j in range(i + 1, len(local_left)):
            inflated.add_edge(i, j)
    for i in range(len(right_ids)):
        for j in range(i + 1, len(right_ids)):
            inflated.add_edge(len(local_left) + i, len(local_left) + j)
    for original_left in local_left:
        adjacency = graph.neighbors_of_left(original_left)
        for original_right in right_ids:
            if original_right in adjacency:
                inflated.add_edge(left_index[original_left], right_index[original_right])

    v_local = left_index[v]
    solutions: List[Biplex] = []
    for plex in enumerate_maximal_kplexes(
        inflated, k + 1, must_contain=v_local, time_limit=time_limit
    ):
        chosen_left = {local_left[i] for i in plex if i < len(local_left)}
        chosen_right = {right_ids[i - len(local_left)] for i in plex if i >= len(local_left)}
        solutions.append(Biplex.of(chosen_left, chosen_right))
    return solutions


def count_local_solutions(
    graph: BipartiteGraph,
    left: Set[int],
    right: Set[int],
    new_left_vertex: int,
    k: int,
    config: EnumAlmostSatConfig = DEFAULT_CONFIG,
) -> int:
    """Convenience helper: the number of local solutions (used by benchmarks)."""
    return sum(
        1 for _ in enum_local_solutions(graph, left, right, new_left_vertex, k, config)
    )
