"""Delay measurement for enumeration algorithms.

The *delay* of an enumeration algorithm is the maximum of (1) the time before
the first solution is output, (2) the time between two consecutive outputs
and (3) the time between the last output and termination (Section 3.5).
iTraversal guarantees a polynomial delay (with the alternating-output trick);
iMB and the inflation baseline do not.  The helpers below wrap any solution
iterator and record the empirical delays so the Figure 8 experiment can be
reproduced for every algorithm uniformly.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, List, Optional, Tuple, TypeVar

T = TypeVar("T")


@dataclass
class DelayRecord:
    """Empirical delay profile of one enumeration run.

    Both recorders (:func:`measure_delay` and
    :class:`DelayInstrumentedIterator`) fill this structure identically:
    ``delays`` holds exactly one entry per solution — the gap from the start
    (or the previous solution) to that output — and the gap from the last
    output to termination is stored separately in ``termination_gap``, so
    ``len(delays) == num_solutions`` always and ``mean_delay`` averages only
    the solution gaps instead of being skewed by the trailing one.
    """

    delays: List[float] = field(default_factory=list)
    termination_gap: Optional[float] = None
    total_time: float = 0.0
    num_solutions: int = 0

    @property
    def max_delay(self) -> float:
        """The delay as defined in the paper (Section 3.5).

        The maximum over the time to the first output, the gaps between
        consecutive outputs, and the gap between the last output and
        termination (when termination was observed).
        """
        candidates = list(self.delays)
        if self.termination_gap is not None:
            candidates.append(self.termination_gap)
        return max(candidates) if candidates else self.total_time

    @property
    def mean_delay(self) -> float:
        """Average gap between consecutive outputs (termination excluded)."""
        return sum(self.delays) / len(self.delays) if self.delays else self.total_time


def measure_delay(iterator_factory: Callable[[], Iterable[T]]) -> Tuple[List[T], DelayRecord]:
    """Consume the iterable produced by ``iterator_factory`` and record delays.

    The factory is called once; timing starts immediately before the call so
    that any setup cost counts towards the first delay, exactly as the
    paper's definition requires.
    """
    record = DelayRecord()
    results: List[T] = []
    start = time.perf_counter()
    previous = start
    iterator = iter(iterator_factory())
    while True:
        try:
            item = next(iterator)
        except StopIteration:
            break
        now = time.perf_counter()
        record.delays.append(now - previous)
        previous = now
        results.append(item)
    end = time.perf_counter()
    record.termination_gap = end - previous
    record.total_time = end - start
    record.num_solutions = len(results)
    return results, record


class DelayInstrumentedIterator(Iterator[T]):
    """An iterator wrapper that records inter-output delays as it is consumed.

    Useful when the caller wants to keep streaming semantics (e.g. stop after
    the first N solutions) while still collecting delay statistics.  When the
    wrapped iterator is drained to exhaustion the record matches what
    :func:`measure_delay` produces; a caller that stops early leaves
    ``termination_gap`` unset (termination was never observed).
    """

    def __init__(self, inner: Iterable[T]) -> None:
        self._inner = iter(inner)
        self._start = time.perf_counter()
        self._previous = self._start
        self.record = DelayRecord()

    def __iter__(self) -> "DelayInstrumentedIterator[T]":
        return self

    def __next__(self) -> T:
        try:
            item = next(self._inner)
        except StopIteration:
            now = time.perf_counter()
            self.record.termination_gap = now - self._previous
            self.record.total_time = now - self._start
            raise
        now = time.perf_counter()
        self.record.delays.append(now - self._previous)
        self._previous = now
        self.record.num_solutions += 1
        return item
