"""k-biplex primitives: the Biplex value type, predicates and extensions.

This module implements Definitions 2.1-2.3 of the paper and the basic
operations every enumeration algorithm builds on:

* the k-biplex predicate (each vertex misses at most ``k`` vertices of the
  other side),
* incremental "can this vertex be added?" checks,
* greedy maximal extension with a deterministic vertex order (Step 3 of the
  ThreeStep procedure),
* construction of the designated initial solutions ``(L0, R)`` and
  ``(L, R0)`` used by iTraversal (Section 3.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, Iterator, Optional, Sequence, Set, Tuple

from ..graph.bipartite import BipartiteGraph
from ..graph.protocol import (
    BATCH_SWEEP_MIN_SIDE,
    iter_bits,
    mask_of,
    supports_masks,
    supports_vector_batch,
)


@dataclass(frozen=True, order=True)
class Biplex:
    """An induced bipartite subgraph ``(L, R)``, identified by its vertex sets.

    Instances are immutable and hashable, so they can be stored directly in
    the visited-solution set (the paper's B-tree) and used as nodes of the
    explicit solution graph.
    """

    left: FrozenSet[int]
    right: FrozenSet[int]

    @staticmethod
    def of(left: Iterable[int], right: Iterable[int]) -> "Biplex":
        """Build a :class:`Biplex` from any two iterables of vertex ids."""
        return Biplex(frozenset(left), frozenset(right))

    @property
    def size(self) -> int:
        """Total number of vertices ``|L| + |R|``."""
        return len(self.left) + len(self.right)

    def vertices(self) -> Tuple[FrozenSet[int], FrozenSet[int]]:
        """The two vertex sets as a tuple."""
        return self.left, self.right

    def contains(self, other: "Biplex") -> bool:
        """Whether ``other`` is a (not necessarily proper) subgraph of this one."""
        return other.left <= self.left and other.right <= self.right

    def key(self) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
        """Canonical sortable key (used for deterministic output ordering)."""
        return (tuple(sorted(self.left)), tuple(sorted(self.right)))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Biplex(L={sorted(self.left)}, R={sorted(self.right)})"


# ---------------------------------------------------------------------- #
# Predicates
# ---------------------------------------------------------------------- #
def is_k_biplex(
    graph: BipartiteGraph,
    left: Iterable[int],
    right: Iterable[int],
    k: int,
) -> bool:
    """Whether the induced subgraph ``(left, right)`` is a k-biplex.

    Definition 2.1: every left vertex misses at most ``k`` vertices of
    ``right`` and every right vertex misses at most ``k`` vertices of
    ``left``.  Empty sides are allowed (``(∅, R)`` is always a k-biplex).

    On a vectorized batch substrate, each side large enough to clear the
    sweep crossover gets its miss counts from one ``popcount_rows`` sweep
    (``δ̄(v, S) = |S| − |Γ(v) ∩ S|``) instead of a per-vertex mask loop.
    """
    if supports_masks(graph):
        left_set = set(left)
        right_set = set(right)
        left_mask = mask_of(left_set)
        right_mask = mask_of(right_set)
        batch = supports_vector_batch(graph)
        if batch and left_set and graph.n_left >= BATCH_SWEEP_MIN_SIDE:
            hits = graph.popcount_rows("left", right_mask).tolist()
            size = len(right_set)
            if any(size - hits[v] > k for v in left_set):
                return False
        else:
            for v in left_set:
                if (right_mask & ~graph.adj_left_mask(v)).bit_count() > k:
                    return False
        if batch and right_set and graph.n_right >= BATCH_SWEEP_MIN_SIDE:
            hits = graph.popcount_rows("right", left_mask).tolist()
            size = len(left_set)
            if any(size - hits[u] > k for u in right_set):
                return False
        else:
            for u in right_set:
                if (left_mask & ~graph.adj_right_mask(u)).bit_count() > k:
                    return False
        return True
    left_set = set(left)
    right_set = set(right)
    for v in left_set:
        if graph.missing_left(v, right_set) > k:
            return False
    for u in right_set:
        if graph.missing_right(u, left_set) > k:
            return False
    return True


def can_add_left(
    graph: BipartiteGraph,
    left: Set[int],
    right: Set[int],
    candidate: int,
    k: int,
) -> bool:
    """Whether adding left vertex ``candidate`` to the k-biplex ``(left, right)`` keeps it a k-biplex.

    Assumes ``(left, right)`` already is a k-biplex; only the constraints
    that can change are checked: the candidate's own miss count and the miss
    counts of the right vertices it does not connect.
    """
    if candidate in left:
        return False
    candidate_adjacency = graph.neighbors_of_left(candidate)
    missed = right - candidate_adjacency if isinstance(right, (set, frozenset)) else {
        u for u in right if u not in candidate_adjacency
    }
    if len(missed) > k:
        return False
    left_view = left if isinstance(left, (set, frozenset)) else set(left)
    for u in missed:
        if graph.missing_right(u, left_view) + 1 > k:
            return False
    return True


def can_add_right(
    graph: BipartiteGraph,
    left: Set[int],
    right: Set[int],
    candidate: int,
    k: int,
) -> bool:
    """Mirror image of :func:`can_add_left` for a right-side candidate."""
    if candidate in right:
        return False
    candidate_adjacency = graph.neighbors_of_right(candidate)
    missed = left - candidate_adjacency if isinstance(left, (set, frozenset)) else {
        v for v in left if v not in candidate_adjacency
    }
    if len(missed) > k:
        return False
    right_view = right if isinstance(right, (set, frozenset)) else set(right)
    for v in missed:
        if graph.missing_left(v, right_view) + 1 > k:
            return False
    return True


def can_add_left_masked(
    graph,
    left_mask: int,
    right_mask: int,
    candidate: int,
    k: int,
) -> bool:
    """Bitmask twin of :func:`can_add_left` for mask-capable substrates.

    ``left_mask`` / ``right_mask`` are the packed vertex sets of a k-biplex;
    the decision is identical to the set version, but the "missed" vertices
    are found with one word-parallel ``&``/``~`` instead of a set difference
    and only their (at most ``k``) bits are walked.
    """
    if (left_mask >> candidate) & 1:
        return False
    missed = right_mask & ~graph.adj_left_mask(candidate)
    if missed.bit_count() > k:
        return False
    adj_right_mask = graph.adj_right_mask
    while missed:
        low = missed & -missed
        if (left_mask & ~adj_right_mask(low.bit_length() - 1)).bit_count() >= k:
            return False
        missed ^= low
    return True


def can_add_right_masked(
    graph,
    left_mask: int,
    right_mask: int,
    candidate: int,
    k: int,
) -> bool:
    """Mirror image of :func:`can_add_left_masked` for a right-side candidate."""
    if (right_mask >> candidate) & 1:
        return False
    missed = left_mask & ~graph.adj_right_mask(candidate)
    if missed.bit_count() > k:
        return False
    adj_left_mask = graph.adj_left_mask
    while missed:
        low = missed & -missed
        if (right_mask & ~adj_left_mask(low.bit_length() - 1)).bit_count() >= k:
            return False
        missed ^= low
    return True


def is_maximal_k_biplex(
    graph: BipartiteGraph,
    left: Iterable[int],
    right: Iterable[int],
    k: int,
    candidate_left: Optional[Iterable[int]] = None,
    candidate_right: Optional[Iterable[int]] = None,
) -> bool:
    """Whether ``(left, right)`` is a k-biplex that is maximal within ``graph``.

    When ``candidate_left`` / ``candidate_right`` are given, maximality is
    only checked against those candidate pools — this is how *local*
    maximality w.r.t. an almost-satisfying graph is tested (Step 2 of
    ThreeStep).  Otherwise all vertices of ``graph`` are candidates.
    """
    left_set = set(left)
    right_set = set(right)
    if not is_k_biplex(graph, left_set, right_set, k):
        return False
    left_pool = graph.left_vertices() if candidate_left is None else list(candidate_left)
    right_pool = graph.right_vertices() if candidate_right is None else list(candidate_right)
    if supports_vector_batch(graph):
        # One popcount sweep per side scores every candidate at once: a
        # vertex missing more than k vertices of the other side can never be
        # added, so only the (few) survivors reach the exact probe.  Each
        # sweep is gated on its pool clearing the crossover — the restricted
        # pools of the local-maximality checks stay on the direct probes.
        if len(left_pool) >= BATCH_SWEEP_MIN_SIDE:
            hits = graph.popcount_rows("left", mask_of(right_set)).tolist()
            budget = len(right_set) - k
            left_pool = [v for v in left_pool if hits[v] >= budget]
        if len(right_pool) >= BATCH_SWEEP_MIN_SIDE:
            hits = graph.popcount_rows("right", mask_of(left_set)).tolist()
            budget = len(left_set) - k
            right_pool = [u for u in right_pool if hits[u] >= budget]
    for v in left_pool:
        if v not in left_set and can_add_left(graph, left_set, right_set, v, k):
            return False
    for u in right_pool:
        if u not in right_set and can_add_right(graph, left_set, right_set, u, k):
            return False
    return True


# ---------------------------------------------------------------------- #
# Extension
# ---------------------------------------------------------------------- #
def extend_to_maximal(
    graph: BipartiteGraph,
    left: Iterable[int],
    right: Iterable[int],
    k: int,
    candidate_left: Optional[Sequence[int]] = None,
    candidate_right: Optional[Sequence[int]] = None,
) -> Biplex:
    """Greedily extend a k-biplex to a maximal one using a fixed vertex order.

    Candidates are tried in ascending id order, left side first, and a
    vertex is added whenever the k-biplex property is preserved.  The fixed
    order makes Step 3 of the ThreeStep procedure deterministic, which the
    framework requires ("each local solution is extended to only one real
    solution").

    ``candidate_left`` / ``candidate_right`` restrict the vertices that may
    be added — e.g. iTraversal extends with left-side vertices only
    (Line 8 of Algorithm 2 excludes ``R``).  ``None`` means "all vertices of
    that side".
    """
    if supports_masks(graph):
        return _extend_to_maximal_masked(graph, left, right, k, candidate_left, candidate_right)
    left_set = set(left)
    right_set = set(right)
    if candidate_left is None:
        left_pool: Sequence[int] = range(graph.n_left)
    else:
        left_pool = sorted(candidate_left)
    if candidate_right is None:
        right_pool: Sequence[int] = range(graph.n_right)
    else:
        right_pool = sorted(candidate_right)

    # Adding a vertex only ever tightens the constraints (miss counts never
    # decrease), so a candidate rejected once can never become addable later.
    # A single deterministic pass — left side first, then right side — is
    # therefore enough to reach a maximal k-biplex.
    left_miss = {v: len(right_set - graph.neighbors_of_left(v)) for v in left_set}
    right_miss = {u: len(left_set - graph.neighbors_of_right(u)) for u in right_set}

    for v in _extension_candidates(left_pool, left_set, right_set, k, graph.neighbors_of_right):
        missed = right_set - graph.neighbors_of_left(v)
        if len(missed) > k:
            continue
        if any(right_miss[u] + 1 > k for u in missed):
            continue
        left_set.add(v)
        left_miss[v] = len(missed)
        for u in missed:
            right_miss[u] += 1

    for u in _extension_candidates(right_pool, right_set, left_set, k, graph.neighbors_of_left):
        missed = left_set - graph.neighbors_of_right(u)
        if len(missed) > k:
            continue
        if any(left_miss[v] + 1 > k for v in missed):
            continue
        right_set.add(u)
        right_miss[u] = len(missed)
        for v in missed:
            left_miss[v] += 1

    return Biplex.of(left_set, right_set)


def _extend_to_maximal_masked(
    graph,
    left: Iterable[int],
    right: Iterable[int],
    k: int,
    candidate_left: Optional[Sequence[int]] = None,
    candidate_right: Optional[Sequence[int]] = None,
) -> Biplex:
    """Bitmask implementation of :func:`extend_to_maximal`.

    Candidates are pre-filtered with the same edge-proportional counting
    trick as the set version (the bitset substrate keeps adjacency sets
    too) and tried in the same ascending order, left side first, so the
    resulting maximal k-biplex is bit-for-bit identical — only the
    per-candidate "missed vertices" work is word-parallel: one ``& ~`` plus
    a popcount instead of materialising a set difference.
    """
    adj_left_mask = graph.adj_left_mask
    adj_right_mask = graph.adj_right_mask
    # One sweep per extension call: gate each side on its size so small
    # graphs keep the (cheaper) pure mask path.
    batch_left = (
        supports_vector_batch(graph) and graph.n_left >= BATCH_SWEEP_MIN_SIDE
    )
    batch_right = (
        supports_vector_batch(graph) and graph.n_right >= BATCH_SWEEP_MIN_SIDE
    )
    left_set = set(left)
    right_set = set(right)
    left_mask = mask_of(left_set)
    right_mask = mask_of(right_set)
    left_pool: Sequence[int] = (
        range(graph.n_left) if candidate_left is None else sorted(candidate_left)
    )
    right_pool: Sequence[int] = (
        range(graph.n_right) if candidate_right is None else sorted(candidate_right)
    )
    # Miss counters are dense lists: vertex ids index directly, and the inner
    # loops below walk only the set bits of a ≤ k-bit "missed" mask.
    left_miss = [0] * graph.n_left
    right_miss = [0] * graph.n_right
    for v in left_set:
        left_miss[v] = (right_mask & ~adj_left_mask(v)).bit_count()
    for u in right_set:
        right_miss[u] = (left_mask & ~adj_right_mask(u)).bit_count()

    if batch_left:
        left_candidates = _extension_candidates_batch(
            graph, "left", left_pool, left_set, right_mask, len(right_set), k
        )
    else:
        left_candidates = _extension_candidates(
            left_pool, left_set, right_set, k, graph.neighbors_of_right
        )
    for v in left_candidates:
        missed = right_mask & ~adj_left_mask(v)
        count = missed.bit_count()
        if count > k:
            continue
        rejected = False
        probe = missed
        while probe:
            low = probe & -probe
            if right_miss[low.bit_length() - 1] >= k:
                rejected = True
                break
            probe ^= low
        if rejected:
            continue
        left_set.add(v)
        left_mask |= 1 << v
        left_miss[v] = count
        while missed:
            low = missed & -missed
            right_miss[low.bit_length() - 1] += 1
            missed ^= low

    if batch_right:
        right_candidates = _extension_candidates_batch(
            graph, "right", right_pool, right_set, left_mask, len(left_set), k
        )
    else:
        right_candidates = _extension_candidates(
            right_pool, right_set, left_set, k, graph.neighbors_of_left
        )
    for u in right_candidates:
        missed = left_mask & ~adj_right_mask(u)
        count = missed.bit_count()
        if count > k:
            continue
        rejected = False
        probe = missed
        while probe:
            low = probe & -probe
            if left_miss[low.bit_length() - 1] >= k:
                rejected = True
                break
            probe ^= low
        if rejected:
            continue
        right_set.add(u)
        right_mask |= 1 << u
        right_miss[u] = count
        while missed:
            low = missed & -missed
            left_miss[low.bit_length() - 1] += 1
            missed ^= low

    return Biplex.of(left_set, right_set)


def _extension_candidates(pool, own_side, other_side, k, other_neighbors):
    """Candidates from ``pool`` that could possibly join the current biplex.

    A vertex can only be added if it is adjacent to at least
    ``|other_side| - k`` vertices of the other side.  When the other side is
    larger than ``k`` we find those vertices by counting adjacencies *from*
    the other side, which is proportional to the edges incident to the
    current biplex instead of to ``|pool| × |other_side|`` — a large win on
    sparse graphs where most pool vertices have no neighbour in the biplex.
    The returned candidates preserve the ascending order of ``pool`` so the
    extension stays deterministic.
    """
    if not pool:
        return []
    if len(other_side) <= k:
        return [v for v in pool if v not in own_side]
    counts: dict = {}
    for u in other_side:
        for v in other_neighbors(u):
            counts[v] = counts.get(v, 0) + 1
    threshold = len(other_side) - k
    eligible = [v for v, count in counts.items() if count >= threshold and v not in own_side]
    if isinstance(pool, range) and pool.start == 0 and pool.step == 1:
        # The pool is "every vertex of the side": the eligible set is already
        # the answer; sort it to keep the deterministic ascending order.
        return sorted(v for v in eligible if v < pool.stop)
    eligible_set = set(eligible)
    return [v for v in pool if v in eligible_set]


def _extension_candidates_batch(
    graph, side: str, pool, own_side, other_mask: int, other_size: int, k: int
):
    """Vectorized twin of :func:`_extension_candidates` for batch substrates.

    One ``popcount_rows`` sweep scores ``|Γ(v) ∩ other|`` for the *whole*
    side; the eligibility threshold (at least ``|other| − k`` adjacencies)
    is then a vectorized comparison instead of a per-edge counting dict.
    Returns the same candidates in the same order as the counting version.
    """
    if not pool:
        return []
    if other_size <= k:
        return [v for v in pool if v not in own_side]
    hits = graph.popcount_rows(side, other_mask)
    eligible = (hits >= other_size - k).nonzero()[0]
    if isinstance(pool, range) and pool.start == 0 and pool.step == 1:
        # nonzero() yields ascending ids, matching the sorted() of the
        # counting version on the full-side pool.
        return [v for v in eligible.tolist() if v < pool.stop and v not in own_side]
    eligible_set = set(eligible.tolist())
    return [v for v in pool if v in eligible_set and v not in own_side]


def initial_solution_left_anchored(graph: BipartiteGraph, k: int) -> Biplex:
    """The designated initial solution ``H0 = (L0, R)`` of iTraversal.

    Start from ``(∅, R)`` — always a k-biplex — and greedily add left
    vertices in ascending id order while the k-biplex property holds
    (Section 3.2).  The result is a maximal k-biplex whose right side is the
    whole of ``R``.
    """
    if supports_masks(graph):
        adj_left_mask = graph.adj_left_mask
        full_right = (1 << graph.n_right) - 1
        right_miss = [0] * graph.n_right
        left_mask = 0
        if supports_vector_batch(graph):
            # δ̄(v, R) = |R| − deg(v): one degree sweep rules out every
            # vertex missing more than k right vertices before the
            # (sequential, order-sensitive) greedy loop below.
            degrees = graph.popcount_rows("left")
            candidates = (degrees >= graph.n_right - k).nonzero()[0].tolist()
        else:
            candidates = range(graph.n_left)
        for v in candidates:
            missed = full_right & ~adj_left_mask(v)
            if missed.bit_count() > k:
                continue
            if any(right_miss[u] + 1 > k for u in iter_bits(missed)):
                continue
            left_mask |= 1 << v
            for u in iter_bits(missed):
                right_miss[u] += 1
        return Biplex.of(iter_bits(left_mask), range(graph.n_right))
    right_set = set(graph.right_vertices())
    left_set: Set[int] = set()
    for v in graph.left_vertices():
        if can_add_left(graph, left_set, right_set, v, k):
            left_set.add(v)
    return Biplex.of(left_set, right_set)


def initial_solution_right_anchored(graph: BipartiteGraph, k: int) -> Biplex:
    """The symmetric initial solution ``H0' = (L, R0)`` (footnote 1, Section 3.2)."""
    if supports_masks(graph):
        adj_right_mask = graph.adj_right_mask
        full_left = (1 << graph.n_left) - 1
        left_miss = [0] * graph.n_left
        right_mask = 0
        if supports_vector_batch(graph):
            degrees = graph.popcount_rows("right")
            candidates = (degrees >= graph.n_left - k).nonzero()[0].tolist()
        else:
            candidates = range(graph.n_right)
        for u in candidates:
            missed = full_left & ~adj_right_mask(u)
            if missed.bit_count() > k:
                continue
            if any(left_miss[v] + 1 > k for v in iter_bits(missed)):
                continue
            right_mask |= 1 << u
            for v in iter_bits(missed):
                left_miss[v] += 1
        return Biplex.of(range(graph.n_left), iter_bits(right_mask))
    left_set = set(graph.left_vertices())
    right_set: Set[int] = set()
    for u in graph.right_vertices():
        if can_add_right(graph, left_set, right_set, u, k):
            right_set.add(u)
    return Biplex.of(left_set, right_set)


def arbitrary_initial_solution(graph: BipartiteGraph, k: int, order: Optional[Sequence[Tuple[str, int]]] = None) -> Biplex:
    """An arbitrary maximal k-biplex, as used by bTraversal.

    ``order`` optionally fixes the insertion order as a sequence of
    ``("L", id)`` / ``("R", id)`` pairs; by default vertices are interleaved
    left/right in ascending id order, which tends to give a balanced seed.
    """
    left_set: Set[int] = set()
    right_set: Set[int] = set()
    if order is None:
        interleaved = []
        for i in range(max(graph.n_left, graph.n_right)):
            if i < graph.n_left:
                interleaved.append(("L", i))
            if i < graph.n_right:
                interleaved.append(("R", i))
        order = interleaved
    for side, vertex in order:
        if side == "L":
            if can_add_left(graph, left_set, right_set, vertex, k):
                left_set.add(vertex)
        else:
            if can_add_right(graph, left_set, right_set, vertex, k):
                right_set.add(vertex)
    return extend_to_maximal(graph, left_set, right_set, k)


def violating_vertices(
    graph: BipartiteGraph, left: Iterable[int], right: Iterable[int], k: int
) -> Tuple[Set[int], Set[int]]:
    """Vertices whose miss count exceeds ``k`` in the induced subgraph.

    Returns ``(violating left vertices, violating right vertices)``; both
    sets are empty exactly when the subgraph is a k-biplex.  Used by the
    EnumAlmostSat implementation and by the verification helpers.
    """
    left_set = set(left)
    right_set = set(right)
    bad_left = {v for v in left_set if graph.missing_left(v, right_set) > k}
    bad_right = {u for u in right_set if graph.missing_right(u, left_set) > k}
    return bad_left, bad_right


def biplex_edge_count(graph: BipartiteGraph, biplex: Biplex) -> int:
    """Number of edges inside the induced subgraph of ``biplex``."""
    total = 0
    for v in biplex.left:
        adjacency = graph.neighbors_of_left(v)
        total += sum(1 for u in biplex.right if u in adjacency)
    return total


def iter_biplex_missing_pairs(
    graph: BipartiteGraph, biplex: Biplex
) -> Iterator[Tuple[int, int]]:
    """Iterate over the missing (non-edge) pairs inside ``biplex``."""
    for v in biplex.left:
        adjacency = graph.neighbors_of_left(v)
        for u in biplex.right:
            if u not in adjacency:
                yield (v, u)
