"""Core algorithms: k-biplex primitives, EnumAlmostSat, bTraversal, iTraversal."""

from .biplex import (
    Biplex,
    arbitrary_initial_solution,
    can_add_left,
    can_add_left_masked,
    can_add_right,
    can_add_right_masked,
    extend_to_maximal,
    initial_solution_left_anchored,
    initial_solution_right_anchored,
    is_k_biplex,
    is_maximal_k_biplex,
)
from .btraversal import BTraversal, btraversal_config, enumerate_mbps_btraversal
from .delay import DelayInstrumentedIterator, DelayRecord, measure_delay
from .enum_almost_sat import (
    EnumAlmostSatConfig,
    enum_local_solutions,
    enum_local_solutions_inflation,
    enum_local_solutions_naive,
)
from .itraversal import ITraversal, enumerate_large_mbps, enumerate_mbps, itraversal_config
from .large import LargeMBPEnumerator, filter_large
from .objective import (
    OBJECTIVES,
    EnumerateAll,
    MaximumSize,
    Objective,
    TopK,
    make_objective,
    resolve_objective,
)
from .session import CURSOR_SCHEMA, CursorError, EnumerationSession, StaleCursorError
from .solution_graph import SolutionGraph, build_solution_graph, count_links
from .traversal import ReverseSearchEngine, TraversalConfig, TraversalStats, run_with_stats
from .verify import (
    canonical,
    check_all_solutions,
    check_solution,
    missing_and_extra,
    same_solutions,
    summarize_solutions,
)

__all__ = [
    "Biplex",
    "is_k_biplex",
    "is_maximal_k_biplex",
    "can_add_left",
    "can_add_left_masked",
    "can_add_right",
    "can_add_right_masked",
    "extend_to_maximal",
    "initial_solution_left_anchored",
    "initial_solution_right_anchored",
    "arbitrary_initial_solution",
    "EnumAlmostSatConfig",
    "enum_local_solutions",
    "enum_local_solutions_naive",
    "enum_local_solutions_inflation",
    "BTraversal",
    "btraversal_config",
    "enumerate_mbps_btraversal",
    "ITraversal",
    "itraversal_config",
    "enumerate_mbps",
    "enumerate_large_mbps",
    "LargeMBPEnumerator",
    "filter_large",
    "OBJECTIVES",
    "Objective",
    "EnumerateAll",
    "MaximumSize",
    "TopK",
    "make_objective",
    "resolve_objective",
    "CURSOR_SCHEMA",
    "CursorError",
    "StaleCursorError",
    "EnumerationSession",
    "ReverseSearchEngine",
    "TraversalConfig",
    "TraversalStats",
    "run_with_stats",
    "SolutionGraph",
    "build_solution_graph",
    "count_links",
    "DelayRecord",
    "DelayInstrumentedIterator",
    "measure_delay",
    "check_solution",
    "check_all_solutions",
    "canonical",
    "same_solutions",
    "missing_and_extra",
    "summarize_solutions",
]
