"""Large maximal k-biplex enumeration (Section 5 of the paper).

A *large MBP* is a maximal k-biplex whose two sides both contain at least
``θ`` vertices.  The iTraversal framework supports enumerating them without
enumerating all MBPs first, thanks to the right-shrinking traversal:

* *almost-satisfying graph pruning* — skip a candidate vertex ``v`` when
  ``δ(v, R) + k < θ``,
* *local solution pruning* — skip local solutions with ``|R'| < θ``,
* *solution pruning* — do not recurse from solutions with ``|R| < θ``,
* *left-side pruning* — do not recurse when ``|L| − |ℰ(H)| < θ``.

All four rules live inside the traversal engine
(:mod:`repro.core.traversal`).  The graph-shrinking preprocessing of the
paper's Figure 10 experiment now lives in :mod:`repro.prep` and is applied
by the engine itself (including the id translation back to the original
graph), so this class is a thin thresholds-plus-prep front end.  The prep
reduction is *stronger* than the historical ``(θ − k, θ − k)``-core here:
it uses the asymmetric ``(θ_R − k, θ_L − k)`` bounds — sound when
``theta_left != theta_right``, where a symmetric ``min(θ) − k`` bound
under-peels one side and the historical implementation over-constrained
the unthresholded side — and adds bitruss edge peeling when the
thresholds support it.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from ..graph.bipartite import BipartiteGraph
from .biplex import Biplex
from .enum_almost_sat import DEFAULT_CONFIG, EnumAlmostSatConfig
from .itraversal import ITraversal
from .traversal import TraversalStats


class LargeMBPEnumerator:
    """Enumerate maximal k-biplexes with both sides of size at least ``theta``.

    Parameters
    ----------
    graph:
        Input bipartite graph.
    k:
        Biplex parameter.
    theta:
        Size threshold applied to both sides.  Use ``theta_left`` /
        ``theta_right`` for asymmetric thresholds.
    use_core_preprocessing:
        Shrink the graph with the threshold-driven core/bitruss reduction
        before enumerating (always safe; usually much faster).  ``False``
        forces ``prep="off"`` regardless of the ``prep`` argument and the
        ``REPRO_PREP`` environment variable.
    prep:
        Preprocessing mode passed to the engine (:mod:`repro.prep`);
        ``None`` resolves via ``REPRO_PREP`` (default ``"core"``).
        ``"core+order"`` adds degeneracy candidate ordering on top of the
        reduction.
    backend:
        Adjacency substrate (``"set"``, ``"bitset"`` or ``"packed"``);
        ``None`` resolves to :func:`repro.graph.protocol.default_backend`
        (``bitset`` by default).  The conversion happens *before* the
        reduction, so the peeling also runs on the word-parallel masked
        path — fully vectorized on the ``packed`` backend.
    jobs:
        Worker processes for the sharded parallel engine
        (:mod:`repro.parallel`); ``None`` resolves via ``REPRO_JOBS``
        (default 1 = serial), ``0`` means one worker per CPU core.  The
        per-worker statistics — including the truncation flags — are merged
        back into :attr:`stats`, so ``stats.truncated`` is reliable for
        parallel runs too.
    mode, top:
        Solver objective (:mod:`repro.core.objective`): ``"maximum"`` /
        ``"top-k", top=N`` return the largest large MBP(s) instead of all
        of them.  The θ thresholds and the incumbent size bound flow
        through the same per-side pruning machinery in the engine — the
        bound simply tightens the effective thresholds as solutions
        arrive.
    """

    def __init__(
        self,
        graph: BipartiteGraph,
        k: int,
        theta: int = 0,
        theta_left: Optional[int] = None,
        theta_right: Optional[int] = None,
        use_core_preprocessing: bool = True,
        enum_config: EnumAlmostSatConfig = DEFAULT_CONFIG,
        max_results: Optional[int] = None,
        time_limit: Optional[float] = None,
        backend: Optional[str] = None,
        jobs: Optional[int] = None,
        prep: Optional[str] = None,
        mode: str = "enumerate",
        top: Optional[int] = None,
    ) -> None:
        self.graph = graph
        self.k = k
        self.theta_left = theta if theta_left is None else theta_left
        self.theta_right = theta if theta_right is None else theta_right
        self.use_core_preprocessing = use_core_preprocessing
        if not use_core_preprocessing:
            prep = "off"
        self._algorithm = ITraversal(
            graph,
            k,
            variant="full",
            enum_config=enum_config,
            theta_left=self.theta_left,
            theta_right=self.theta_right,
            max_results=max_results,
            time_limit=time_limit,
            backend=backend,
            jobs=jobs,
            prep=prep,
            mode=mode,
            top=top,
        )

    @property
    def core_graph(self) -> BipartiteGraph:
        """The (possibly shrunk) graph the enumeration actually runs on."""
        return self._algorithm._engine.graph

    @property
    def prep(self):
        """The :class:`~repro.prep.PrepPlan` the enumeration runs on."""
        return self._algorithm.prep

    @property
    def stats(self) -> TraversalStats:
        """Counters of the last run."""
        return self._algorithm.stats

    @property
    def truncated(self) -> bool:
        """Whether the last run was cut short by ``max_results``/``time_limit``.

        Delegates to :attr:`TraversalStats.truncated`; valid even when the
        consumer stopped iterating :meth:`run` the moment the cap was
        reached (the engine raises the result-limit flag *before* yielding
        the capped solution), so a capped run is never reported as
        complete.
        """
        return self._algorithm.stats.truncated

    def run(self) -> Iterator[Biplex]:
        """Lazily yield large MBPs in the original graph's vertex ids.

        The engine translates reduced ids back to the input graph's
        transparently to the truncation accounting:
        ``stats.hit_result_limit`` / ``stats.hit_time_limit`` are already
        set by the time the affected solution (or the end of the stream)
        reaches the caller.
        """
        return self._algorithm.run()

    def session(self):
        """A fresh pausable :class:`~repro.core.session.EnumerationSession`.

        Carries the size thresholds and prep reduction of this enumerator;
        see :meth:`repro.core.itraversal.ITraversal.session` for the
        liveness contract.
        """
        return self._algorithm.session()

    def enumerate(self) -> List[Biplex]:
        """Enumerate all large MBPs (check :attr:`truncated` for completeness)."""
        return list(self.run())


def filter_large(solutions: List[Biplex], theta_left: int, theta_right: int) -> List[Biplex]:
    """Post-filter a solution list by side sizes.

    This is what bTraversal has to do (enumerate everything, then filter);
    it exists so benchmarks can contrast the two approaches.  Filtering
    carries no completeness information of its own: when ``solutions``
    came from a capped run, consult that run's ``stats.truncated`` before
    treating the filtered list as the full answer.
    """
    return [
        solution
        for solution in solutions
        if len(solution.left) >= theta_left and len(solution.right) >= theta_right
    ]
