"""iTraversal: the paper's improved reverse-search algorithm (Algorithm 2).

iTraversal starts the DFS from the designated initial solution
``H0 = (L0, R)`` and sparsifies the solution graph with three techniques:
left-anchored traversal (Section 3.3), right-shrinking traversal
(Section 3.4) and the exclusion strategy (Section 3.5).  The evaluation also
exercises the intermediate variants ``iTraversal-ES`` (no exclusion
strategy) and ``iTraversal-ES-RS`` (neither exclusion nor right-shrinking),
plus the symmetric *right-anchored* variant that uses ``H0' = (L, R0)``;
all of them are provided here.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from ..graph.bipartite import BipartiteGraph
from .biplex import Biplex
from .enum_almost_sat import DEFAULT_CONFIG, EnumAlmostSatConfig
from .traversal import ReverseSearchEngine, TraversalConfig, TraversalStats


def itraversal_config(
    right_shrinking: bool = True,
    exclusion: bool = True,
    enum_config: EnumAlmostSatConfig = DEFAULT_CONFIG,
    theta_left: int = 0,
    theta_right: int = 0,
    max_results: Optional[int] = None,
    time_limit: Optional[float] = None,
    output_order: str = "pre",
    backend: Optional[str] = None,
    jobs: Optional[int] = None,
    prep: Optional[str] = None,
    objective: str = "enumerate",
    top: Optional[int] = None,
) -> TraversalConfig:
    """Build the :class:`TraversalConfig` of iTraversal or one of its ablations.

    ``backend=None`` (the default) resolves to
    :func:`repro.graph.protocol.default_backend` — ``bitset`` unless
    overridden via the ``REPRO_BACKEND`` environment variable.  ``jobs``
    follows the same pattern for the sharded parallel engine: ``None``
    resolves via ``REPRO_JOBS`` (default 1 = serial), ``0`` means one
    worker per CPU core.  ``prep=None`` resolves via ``REPRO_PREP``
    (default ``"core"``, see :mod:`repro.prep`); ``"off"`` restores
    raw-graph canonical-order traversal exactly.  ``objective`` / ``top``
    select the solver objective (:mod:`repro.core.objective`):
    ``"enumerate"`` (default), ``"maximum"``, or ``"top-k"`` with
    ``top=N``.
    """
    from ..graph.protocol import default_backend
    from ..prep import resolve_prep

    if backend is None:
        backend = default_backend()
    prep = resolve_prep(prep)
    return TraversalConfig(
        left_anchored=True,
        right_shrinking=right_shrinking,
        exclusion=exclusion,
        enum_config=enum_config,
        initial_solution="anchored",
        theta_left=theta_left,
        theta_right=theta_right,
        max_results=max_results,
        time_limit=time_limit,
        output_order=output_order,
        backend=backend,
        jobs=jobs,
        prep=prep,
        objective=objective,
        top=top,
    )


class ITraversal:
    """Enumerate maximal k-biplexes with the iTraversal algorithm.

    Parameters
    ----------
    graph:
        Input bipartite graph.
    k:
        Biplex parameter (positive integer).
    variant:
        ``"full"`` (default, all three techniques), ``"no-exclusion"``
        (iTraversal-ES in the paper) or ``"left-anchored-only"``
        (iTraversal-ES-RS).
    anchor:
        ``"left"`` (default) uses ``H0 = (L0, R)``; ``"right"`` uses the
        symmetric ``H0' = (L, R0)`` by mirroring the graph.
    theta_left, theta_right:
        Large-MBP size thresholds (Section 5); 0 disables them.
    max_results, time_limit, output_order, enum_config, backend:
        Passed through to the traversal engine.  ``backend`` defaults to
        ``"bitset"`` (the graph is converted to the bitmask substrate for
        the word-parallel hot paths); pass ``"set"`` — or export
        ``REPRO_BACKEND=set`` — for plain-set adjacency.
    jobs:
        Worker processes for the sharded parallel engine
        (:mod:`repro.parallel`).  ``None`` resolves via ``REPRO_JOBS``
        (default 1 = serial), ``0`` means one worker per CPU core; any
        value produces the same solution set as the serial run for
        uncapped enumerations (a ``max_results``/``time_limit`` cap keeps
        the first unique solutions to arrive, which may differ from
        serial's first N).
    prep:
        Preprocessing pipeline (:mod:`repro.prep`): ``None`` resolves via
        ``REPRO_PREP`` (default ``"core"`` — threshold-driven core/bitruss
        reduction, a no-op without size thresholds), ``"core+order"`` adds
        degeneracy candidate ordering, ``"off"`` restores raw-graph
        canonical-order traversal exactly.  Solutions are always reported
        in the original graph's vertex ids; the :attr:`prep` property
        exposes the plan (reduction sizes, orderings) of the last
        construction.
    mode, top:
        Solver objective (:mod:`repro.core.objective`).  The default
        ``"enumerate"`` streams every maximal k-biplex; ``"maximum"``
        makes :meth:`run` yield the single largest one (ties broken by
        canonical key) and ``"top-k"`` with ``top=N`` the ``N`` largest
        in ``(-size, key)`` order — both with the incumbent size bound
        driving extra traversal pruning.

    Examples
    --------
    >>> from repro.graph import paper_example_graph
    >>> algorithm = ITraversal(paper_example_graph(), k=1)
    >>> initial = algorithm.initial_solution()
    >>> sorted(initial.right)
    [0, 1, 2, 3, 4]
    """

    VARIANTS = {
        "full": {"right_shrinking": True, "exclusion": True},
        "no-exclusion": {"right_shrinking": True, "exclusion": False},
        "left-anchored-only": {"right_shrinking": False, "exclusion": False},
    }

    def __init__(
        self,
        graph: BipartiteGraph,
        k: int,
        variant: str = "full",
        anchor: str = "left",
        enum_config: EnumAlmostSatConfig = DEFAULT_CONFIG,
        theta_left: int = 0,
        theta_right: int = 0,
        max_results: Optional[int] = None,
        time_limit: Optional[float] = None,
        output_order: str = "pre",
        backend: Optional[str] = None,
        jobs: Optional[int] = None,
        prep: Optional[str] = None,
        mode: str = "enumerate",
        top: Optional[int] = None,
    ) -> None:
        if variant not in self.VARIANTS:
            raise ValueError(f"unknown variant {variant!r}; expected one of {sorted(self.VARIANTS)}")
        if anchor not in ("left", "right"):
            raise ValueError("anchor must be 'left' or 'right'")
        self.k = k
        self.variant = variant
        self.anchor = anchor
        self._original_graph = graph
        self._mirrored = anchor == "right"
        working_graph = graph.swap_sides() if self._mirrored else graph
        flags = self.VARIANTS[variant]
        # When the graph is mirrored the size thresholds swap roles too.
        effective_theta_left = theta_right if self._mirrored else theta_left
        effective_theta_right = theta_left if self._mirrored else theta_right
        config = itraversal_config(
            right_shrinking=flags["right_shrinking"],
            exclusion=flags["exclusion"],
            enum_config=enum_config,
            theta_left=effective_theta_left,
            theta_right=effective_theta_right,
            max_results=max_results,
            time_limit=time_limit,
            output_order=output_order,
            backend=backend,
            jobs=jobs,
            prep=prep,
            objective=mode,
            top=top,
        )
        self._engine = ReverseSearchEngine(working_graph, k, config)

    # ------------------------------------------------------------------ #
    def initial_solution(self) -> Biplex:
        """The designated initial solution in the *original* graph's coordinates."""
        solution = self._engine.prep_plan.translate(self._engine._initial_solution())
        return self._restore(solution)

    def run(self) -> Iterator[Biplex]:
        """Lazily yield maximal k-biplexes (in original-graph coordinates).

        Each call is a fresh one-shot enumeration session (see
        :meth:`session` for the pausable variant with cursors).
        """
        for solution in self._engine.run():
            yield self._restore(solution)

    def session(self):
        """A fresh pausable :class:`~repro.core.session.EnumerationSession`.

        The session shares this instance's engine (graph conversion and
        prep are not repeated) and yields solutions in the original
        graph's coordinates; use :meth:`EnumerationSession.next_batch` /
        ``cursor()`` for pagination and resume.  Only one session (or
        :meth:`run` stream) per instance should be live at a time — they
        share the engine's traversal state, exactly like concurrent
        ``run()`` iterators always did.  Unsupported for the mirrored
        ``anchor="right"`` variant, whose output coordinate swap lives in
        this front end, not in the session layer.
        """
        if self._mirrored:
            raise NotImplementedError(
                "sessions yield working-graph coordinates; the anchor='right' "
                "mirror swap is only applied by ITraversal.run()"
            )
        from .session import EnumerationSession

        return EnumerationSession.from_engine(self._engine)

    def enumerate(self) -> List[Biplex]:
        """Enumerate all maximal k-biplexes (subject to configured limits)."""
        return list(self.run())

    @property
    def stats(self) -> TraversalStats:
        """Counters of the last run."""
        return self._engine.stats

    @property
    def config(self) -> TraversalConfig:
        """The underlying engine configuration (read-only by convention)."""
        return self._engine.config

    @property
    def prep(self):
        """The :class:`~repro.prep.PrepPlan` the engine runs on.

        Mind that for ``anchor="right"`` the plan lives in the mirrored
        graph's coordinate space (its ``removed_left`` counts mirrored-left
        = original-right vertices, and vice versa).
        """
        return self._engine.prep_plan

    def _restore(self, solution: Biplex) -> Biplex:
        if not self._mirrored:
            return solution
        return Biplex(left=solution.right, right=solution.left)


def enumerate_mbps(
    graph: BipartiteGraph,
    k: int,
    variant: str = "full",
    max_results: Optional[int] = None,
    time_limit: Optional[float] = None,
    backend: Optional[str] = None,
    jobs: Optional[int] = None,
    prep: Optional[str] = None,
    mode: str = "enumerate",
    top: Optional[int] = None,
) -> Tuple[List[Biplex], TraversalStats]:
    """Enumerate maximal k-biplexes with iTraversal; the main library entry point.

    Returns the list of solutions together with the run statistics.  In
    the solver modes (``mode="maximum"`` / ``mode="top-k", top=N``) the
    list is the refined answer set instead of the full enumeration.
    """
    algorithm = ITraversal(
        graph,
        k,
        variant=variant,
        max_results=max_results,
        time_limit=time_limit,
        backend=backend,
        jobs=jobs,
        prep=prep,
        mode=mode,
        top=top,
    )
    solutions = algorithm.enumerate()
    return solutions, algorithm.stats


def enumerate_large_mbps(
    graph: BipartiteGraph,
    k: int,
    theta: int,
    use_core_preprocessing: bool = True,
    max_results: Optional[int] = None,
    time_limit: Optional[float] = None,
    backend: Optional[str] = None,
    jobs: Optional[int] = None,
    prep: Optional[str] = None,
) -> Tuple[List[Biplex], TraversalStats]:
    """Enumerate MBPs whose two sides both have at least ``theta`` vertices.

    This is the Section 5 extension: the traversal prunes small solutions
    on the fly instead of filtering after a full enumeration, and (unless
    ``use_core_preprocessing=False`` / ``prep="off"``) the input graph is
    first shrunk by the threshold-driven core/bitruss reduction of
    :mod:`repro.prep`, which every large MBP provably survives.
    """
    from .large import LargeMBPEnumerator

    enumerator = LargeMBPEnumerator(
        graph,
        k,
        theta=theta,
        use_core_preprocessing=use_core_preprocessing,
        max_results=max_results,
        time_limit=time_limit,
        backend=backend,
        jobs=jobs,
        prep=prep,
    )
    solutions = enumerator.enumerate()
    return solutions, enumerator.stats
