"""Long-lived enumeration sessions with resumable cursors.

The reverse-search enumerator is polynomial-delay, which makes a paused
enumeration cheap to come back to: all the state the traversal needs is the
DFS frontier plus the visited map, and advancing from there costs one delay
per solution — not a re-enumeration.  :class:`EnumerationSession` packages
that into the unit the service layer (and any paginating caller) works
with:

* a session owns one :class:`~repro.core.traversal.ReverseSearchEngine`
  — graph (backend-converted), :class:`~repro.prep.plan.PrepPlan`,
  :class:`~repro.core.traversal.TraversalConfig` — and exposes
  :meth:`next_batch` to pull the next ``n`` solutions;
* :meth:`cursor` captures a **serializable resume token** between batches,
  and :meth:`resume` reconstructs a session from the token against the
  same graph — the resumed stream is the exact suffix of the
  uninterrupted run (pinned by ``tests/test_session.py`` across backends,
  job counts and prep modes);
* :meth:`stream` is the classic lazy full enumeration, which is how the
  one-shot front ends (``ITraversal`` / ``BTraversal`` /
  ``LargeMBPEnumerator`` / ``enumerate_mbps``) now run: their ``run()`` is
  a fresh throwaway session per call, so their public APIs are unchanged.

Solver objectives
-----------------
When the config carries a non-trivial objective (``maximum`` / ``top-k``),
the engine still *yields* every observed candidate — those suspension
points are what budgets and cursors hang off — but the session interposes
:meth:`_solver_stream`: it drains the raw traversal (up to any budget
caps) and then emits :meth:`~repro.core.objective.Objective.results`, the
refined answer set, through the usual translation layer.  Solver cursors
carry the objective's incumbent state next to the DFS frontier, and
resume in one of two regimes:

* **interrupted mid-traversal** — a budget cap stopped the leg (the token
  still holds DFS frames, or records a parallel run as truncated).  The
  answers emitted so far were provisional, so the resumed leg finishes
  the traversal and re-emits the **full** refined result set, ignoring
  the token's ``emitted`` count (the answer may legitimately change as
  the resumed leg refines it).
* **traversal complete** — the leg drained and the cursor merely
  paginates the answer list.  The refined set is final and deterministic,
  so resume skips the ``emitted`` prefix exactly like an enumerate
  cursor.  This is what keeps cursor-only pagination loops terminating.

Cursor tokens
-------------
A token is ``base64url(zlib(json))`` of a ``repro-cursor/2`` document (the
exact schema is documented in ``ARCHITECTURE.md``).  Two cursor modes:

``frontier``
    Serial runs (resolved ``jobs <= 1``).  The token encodes the DFS
    frontier — the stack of ``(solution, exclusion, already_output,
    depth)`` frames — plus the visited solutions and the statistics
    counters, all in the engine's *reduced* coordinate space.  Resume
    rebuilds the stack with regenerated children iterators; replaying a
    frame's candidate scan skips everything the restored visited map
    already holds, so the stream continues exactly where it stopped at the
    cost of re-scoring the frontier frames' earlier candidates once.

``offset``
    Parallel runs (resolved ``jobs > 1``), whose frontier lives across a
    process pool.  The token records how many solutions were emitted;
    resume re-runs the (deterministic, ``parallel_order="sorted"``)
    enumeration and skips that many.  Correct for any job count above 1,
    but resumption costs a re-enumeration of the prefix — the hot-graph
    registry (:mod:`repro.service`) at least makes it skip graph load and
    prep.  ``parallel_order="completion"`` runs are not cursorable (their
    order is scheduling-dependent) and :meth:`cursor` refuses.

Tokens carry a fingerprint of the reduced graph, ``k`` and every
order-relevant configuration knob; resuming against a different graph or
an incompatible configuration raises :class:`CursorError` instead of
silently enumerating garbage.  The *backend* is deliberately not part of
the fingerprint: all backends enumerate identical solution sets in
identical order (the cross-backend differential harness pins this), so a
cursor captured on ``bitset`` resumes fine on ``packed``.  Budget knobs
(``max_results`` / ``time_limit`` / ``jobs``) are also excluded — a
service may legitimately re-issue a resumed query with fresh budgets.
"""

from __future__ import annotations

import base64
import hashlib
import json
import zlib
from dataclasses import asdict
from itertools import islice
from typing import Iterator, List, Optional

from .biplex import Biplex
from .traversal import ReverseSearchEngine, TraversalConfig, TraversalStats

#: Schema tag of the cursor token document.  ``/2`` added the objective
#: (mode + top) to the fingerprint and the incumbent state to frontier
#: payloads; ``/1`` tokens are rejected rather than resumed with a
#: silently-different meaning.
CURSOR_SCHEMA = "repro-cursor/2"


class CursorError(ValueError):
    """A cursor token is malformed or does not match the resume target."""


class StaleCursorError(CursorError):
    """The graph mutated (epoch changed) after the cursor was issued.

    Distinguished from the generic mismatch so the service layer can map
    it to a precise ``stale_cursor`` error (HTTP 409) instead of a generic
    bad-cursor 400: the client's token was valid, the world moved.
    """


def _encode_token(payload: dict) -> str:
    raw = json.dumps(payload, separators=(",", ":"), sort_keys=True).encode("utf-8")
    return base64.urlsafe_b64encode(zlib.compress(raw, 6)).decode("ascii")


def _decode_token(token: str) -> dict:
    try:
        raw = zlib.decompress(base64.urlsafe_b64decode(token.encode("ascii")))
        data = json.loads(raw)
    except Exception as error:
        raise CursorError(f"malformed cursor token: {error}") from None
    if not isinstance(data, dict) or data.get("schema") != CURSOR_SCHEMA:
        raise CursorError(
            f"unsupported cursor schema {data.get('schema') if isinstance(data, dict) else data!r}; "
            f"expected {CURSOR_SCHEMA}"
        )
    return data


def _solution_to_lists(solution: Biplex) -> List[List[int]]:
    return [sorted(solution.left), sorted(solution.right)]


def _solution_from_lists(pair) -> Biplex:
    return Biplex(left=frozenset(pair[0]), right=frozenset(pair[1]))


class EnumerationSession:
    """One pausable enumeration over one prepared graph.

    Parameters
    ----------
    graph:
        Input bipartite graph (any backend; converted per the config).
        Ignored when ``prep_plan`` is given — the plan's graph is already
        converted and reduced.
    k:
        Biplex parameter.
    config:
        Full :class:`~repro.core.traversal.TraversalConfig`; defaults to
        iTraversal's.  The resolved ``jobs`` decide the cursor mode (see
        the module docstring).
    prep_plan:
        Optional precomputed :class:`~repro.prep.plan.PrepPlan` — the
        hot-graph registry's fast path (skip conversion + reduction).

    A session is a forward-only stream: :meth:`next_batch` and
    :meth:`stream` share one underlying iterator, and a consumed solution
    is never produced again.  Sessions are not thread-safe; the service
    layer serializes access per session.
    """

    def __init__(
        self,
        graph,
        k: int,
        config: Optional[TraversalConfig] = None,
        prep_plan=None,
        _engine: Optional[ReverseSearchEngine] = None,
    ) -> None:
        if _engine is not None:
            self.engine = _engine
        else:
            self.engine = ReverseSearchEngine(graph, k, config, prep_plan=prep_plan)
        from ..parallel import resolve_jobs

        self._jobs = resolve_jobs(self.engine.config.jobs)
        self._mode = "offset" if self._jobs > 1 else "frontier"
        self._emitted = 0
        self._started = False
        self._exhausted = False
        self._source: Optional[Iterator[Biplex]] = None
        self._fingerprint: Optional[str] = None

    @classmethod
    def from_engine(cls, engine: ReverseSearchEngine) -> "EnumerationSession":
        """Wrap an existing engine (the one-shot front ends' path)."""
        return cls(None, engine.k, _engine=engine)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def k(self) -> int:
        return self.engine.k

    @property
    def config(self) -> TraversalConfig:
        return self.engine.config

    @property
    def stats(self) -> TraversalStats:
        """Counters of the enumeration so far (live object)."""
        return self.engine.stats

    @property
    def prep(self):
        """The :class:`~repro.prep.plan.PrepPlan` the session runs on."""
        return self.engine.prep_plan

    @property
    def mode(self) -> str:
        """``"frontier"`` (serial, true frontier cursors) or ``"offset"``."""
        return self._mode

    @property
    def emitted(self) -> int:
        """Number of solutions handed to the consumer so far."""
        return self._emitted

    @property
    def exhausted(self) -> bool:
        """Whether the stream is known to have ended.

        Only raised once the end was *observed* (a short batch or a
        completed :meth:`stream`); a session whose final solution was the
        last one of a full batch reports ``False`` until the next pull.
        """
        return self._exhausted

    # ------------------------------------------------------------------ #
    # Streaming
    # ------------------------------------------------------------------ #
    def _translated(self, source: Iterator[Biplex]) -> Iterator[Biplex]:
        plan = self.engine.prep_plan
        translate = None if plan.is_identity_map else plan.translate
        try:
            for solution in source:
                self._emitted += 1
                yield solution if translate is None else translate(solution)
        finally:
            # Propagate closure eagerly: the session keeps a reference to
            # this generator, so without the explicit close the engine
            # generator underneath would only finalize (and stamp its
            # stats) at garbage-collection time.
            source.close()
            # Stats are final once the source is closed; this is the one
            # choke point every front end (library run(), CLI, service)
            # streams through, so the metrics publication lives here.
            from ..obs import publish_run_stats

            publish_run_stats(self.engine.stats)

    def _solver_stream(self, raw: Iterator[Biplex]) -> Iterator[Biplex]:
        """Drain a solver-mode traversal, then emit the refined answer set.

        The raw stream stops on its own at exhaustion *or* at a budget cap
        (``max_results`` / ``time_limit``); either way what comes out of
        the session is the objective's current results — complete in the
        first case, best-so-far in the second (a cursor can then resume
        the refinement).
        """
        objective = self.engine.objective
        try:
            for _ in raw:
                pass
            for solution in objective.results():
                yield solution
        finally:
            raw.close()

    def _ensure_source(self) -> Iterator[Biplex]:
        if self._source is None:
            if self._jobs > 1:
                from ..parallel.engine import run_parallel

                raw: Iterator[Biplex] = run_parallel(self.engine)
            else:
                raw = self.engine._run_serial()
            if not self.engine.objective.trivial:
                raw = self._solver_stream(raw)
            self._source = self._translated(raw)
            self._started = True
        return self._source

    def next_batch(self, n: int) -> List[Biplex]:
        """Advance the enumeration by up to ``n`` solutions.

        Returns the next page (original-graph vertex ids).  A short page
        means the enumeration is exhausted (and sets :attr:`exhausted`).
        """
        if n < 1:
            raise ValueError("batch size must be a positive integer")
        batch = list(islice(self._ensure_source(), n))
        if len(batch) < n:
            self._exhausted = True
        return batch

    def stream(self) -> Iterator[Biplex]:
        """Lazily yield every remaining solution (the classic ``run()``).

        Closing the stream (early ``break`` + GC, or an explicit
        ``close()``) closes the session's source with it, so engine stats
        finalize exactly as a directly-abandoned ``run()`` always did.
        """
        source = self._ensure_source()
        try:
            for solution in source:
                yield solution
        except GeneratorExit:
            source.close()
            raise
        self._exhausted = True

    def close(self) -> None:
        """Release the underlying stream (stops a parallel pool, if any)."""
        if self._source is not None:
            self._source.close()

    # ------------------------------------------------------------------ #
    # Cursors
    # ------------------------------------------------------------------ #
    def fingerprint(self) -> str:
        """Fingerprint of the prepared graph + order-relevant configuration.

        Hashes the engine's *reduced* adjacency (deterministic for a given
        input graph + thresholds + prep mode, whatever the backend), ``k``,
        the traversal-shaping config fields and the plan's candidate
        orderings.  See the module docstring for what is deliberately
        excluded (backend, budgets).
        """
        if self._fingerprint is not None:
            return self._fingerprint
        engine = self.engine
        graph = engine.graph
        config = engine.config
        plan = engine.prep_plan
        digest = hashlib.sha256()
        digest.update(f"{engine.k}|{graph.n_left}|{graph.n_right}|".encode())
        for v in range(graph.n_left):
            digest.update(",".join(map(str, sorted(graph.neighbors_of_left(v)))).encode())
            digest.update(b";")
        signature = (
            config.left_anchored,
            config.right_shrinking,
            config.exclusion,
            config.initial_solution,
            config.theta_left,
            config.theta_right,
            config.output_order,
            config.local_enumeration,
            config.prep,
            config.objective,
            config.top,
            asdict(config.enum_config),
            plan.left_order,
            plan.right_order,
            # The mutation epoch the plan was prepared at: a cursor from
            # before an edge update must not resume against the mutated
            # graph (resume() additionally checks the epoch *first* so the
            # failure is reported as stale_cursor, not a generic mismatch).
            plan.epoch,
        )
        digest.update(repr(signature).encode())
        self._fingerprint = digest.hexdigest()
        return self._fingerprint

    def cursor(self) -> str:
        """Serialize the current position as a resume token.

        Call between batches (a session is always between batches from the
        caller's perspective — the engine suspends at a resume-consistent
        yield).  The token is self-contained: everything needed to continue
        except the graph itself, which :meth:`resume` takes again.
        """
        if self._mode == "offset" and self.config.parallel_order != "sorted":
            raise CursorError(
                "cursors over parallel runs require parallel_order='sorted' "
                "(completion order is scheduling-dependent and not resumable)"
            )
        payload = {
            "schema": CURSOR_SCHEMA,
            "mode": self._mode,
            "fingerprint": self.fingerprint(),
            "epoch": self.engine.prep_plan.epoch,
            "emitted": self._emitted,
            # A budget-capped run that drained its stream is *finished*
            # from this session's point of view (`exhausted` frees service
            # sessions) but not from the cursor's: the traversal stopped at
            # a cap, so the token must stay resumable for the remainder.
            "exhausted": self._exhausted and not self.engine.stats.truncated,
            "truncated": bool(self.engine.stats.truncated),
        }
        if self._mode == "frontier":
            state = self.engine.frontier_state() if self._started else None
            if state is None:
                payload["frontier"] = None
            else:
                # Serial visited/exclusion invariant: every stored
                # exclusion set is empty (inheritance is a shard-worker
                # discipline), so the visited map serializes as bare
                # solutions.  Frame exclusions are kept per frame — cheap,
                # and robust should a future discipline carry them.
                payload["frontier"] = {
                    "frames": [
                        [
                            _solution_to_lists(solution),
                            sorted(exclusion),
                            bool(already_output),
                            depth,
                        ]
                        for solution, exclusion, already_output, depth in state["frames"]
                    ],
                    "visited": [
                        _solution_to_lists(solution) for solution in state["visited"]
                    ],
                    "stats": asdict(state["stats"]),
                    "objective": self.engine.objective.state(),
                }
        return _encode_token(payload)

    @classmethod
    def resume(
        cls,
        graph,
        k: int,
        cursor: str,
        config: Optional[TraversalConfig] = None,
        prep_plan=None,
    ) -> "EnumerationSession":
        """Reconstruct a session from a cursor token.

        ``graph`` / ``k`` / ``config`` must describe the same enumeration
        the cursor was captured from (validated via the fingerprint);
        budget knobs and the backend may differ.  For ``offset`` cursors
        the emitted prefix is skipped eagerly here — the call returns once
        the stream is positioned at the suffix.
        """
        data = _decode_token(cursor)
        session = cls(graph, k, config, prep_plan=prep_plan)
        token_epoch = int(data.get("epoch", 0))
        plan_epoch = session.engine.prep_plan.epoch
        if token_epoch != plan_epoch:
            # Checked before the fingerprint so a mutated graph reports the
            # precise condition instead of a generic mismatch.
            raise StaleCursorError(
                "stale_cursor: the graph was mutated after this cursor was "
                f"issued (cursor epoch {token_epoch}, graph epoch "
                f"{plan_epoch}); re-run the query to get fresh results"
            )
        if data.get("fingerprint") != session.fingerprint():
            raise CursorError(
                "cursor does not match this graph/configuration "
                "(different graph, k, thresholds, prep or traversal variant)"
            )
        mode = data.get("mode")
        if mode != session._mode:
            raise CursorError(
                f"cursor was captured from a {mode!r}-mode session but this "
                f"configuration resolves to {session._mode!r} (jobs mismatch); "
                "resume with a matching jobs setting"
            )
        solver = not session.engine.objective.trivial
        if data.get("exhausted"):
            session._emitted = int(data.get("emitted", 0))
            session._exhausted = True
            session._source = iter(())
            session._started = True
            return session
        if mode == "offset":
            if solver and data.get("truncated"):
                # The capped leg's partial answers need not be a prefix of
                # the re-run's refined set; re-emit it in full (see the
                # module docstring).
                return session
            skip = int(data.get("emitted", 0))
            source = session._ensure_source()
            consumed = sum(1 for _ in islice(source, skip))
            if consumed < skip:
                session._exhausted = True
            return session
        frontier = data.get("frontier")
        if frontier is None:
            return session  # captured before the first batch: fresh start
        frames = [
            (
                _solution_from_lists(frame[0]),
                frozenset(frame[1]),
                bool(frame[2]),
                int(frame[3]),
            )
            for frame in frontier["frames"]
        ]
        visited = {
            _solution_from_lists(pair): frozenset() for pair in frontier["visited"]
        }
        stats = TraversalStats(**frontier["stats"])
        if solver:
            session.engine.objective.load_state(frontier.get("objective"))
        raw = session.engine.resume_serial(frames, visited, stats)
        if solver:
            raw = session._solver_stream(raw)
        session._source = session._translated(raw)
        session._started = True
        if solver and frames:
            # Interrupted mid-traversal: re-emit the full refined set once
            # the resumed leg settles (see the module docstring); the
            # token's emitted count does not carry over.
            session._emitted = 0
        elif solver:
            # Traversal complete — the cursor paginates a final answer
            # list; skip the prefix the client already consumed.
            skip = int(data.get("emitted", 0))
            consumed = sum(1 for _ in islice(session._source, skip))
            if consumed < skip:
                session._exhausted = True
        else:
            session._emitted = int(data.get("emitted", 0))
        return session
