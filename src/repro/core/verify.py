"""Verification helpers: checking solutions and comparing solution sets.

These utilities back the test suite and the benchmark harness: every
algorithm in the library (iTraversal, bTraversal, iMB, the inflation
pipeline, the brute force) must produce exactly the same set of maximal
k-biplexes, and each reported biplex must satisfy Definition 2.1/2.3.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Set, Tuple

from ..graph.bipartite import BipartiteGraph
from .biplex import Biplex, is_k_biplex, is_maximal_k_biplex


def _prefix(label: Optional[str]) -> str:
    return f"[{label}] " if label else ""


def check_solution(
    graph: BipartiteGraph, solution: Biplex, k: int, label: Optional[str] = None
) -> None:
    """Raise :class:`AssertionError` unless ``solution`` is a maximal k-biplex.

    ``label`` names the producer of the solution (an algorithm, a backend)
    and is prefixed to the failure message, so harnesses that sweep many
    algorithm × backend combinations report *which* one broke.
    """
    if not is_k_biplex(graph, solution.left, solution.right, k):
        raise AssertionError(f"{_prefix(label)}{solution!r} is not a {k}-biplex")
    if not is_maximal_k_biplex(graph, solution.left, solution.right, k):
        raise AssertionError(
            f"{_prefix(label)}{solution!r} is a {k}-biplex but not maximal"
        )


def check_all_solutions(
    graph: BipartiteGraph,
    solutions: Iterable[Biplex],
    k: int,
    label: Optional[str] = None,
) -> None:
    """Check every solution and that there are no duplicates.

    ``label`` is threaded through to every raised :class:`AssertionError`
    (see :func:`check_solution`) — without it a failure from a many-way
    differential sweep gives no clue which algorithm produced it.
    """
    seen: Set[Biplex] = set()
    for solution in solutions:
        if solution in seen:
            raise AssertionError(f"{_prefix(label)}duplicate solution {solution!r}")
        seen.add(solution)
        check_solution(graph, solution, k, label=label)


def canonical(solutions: Iterable[Biplex]) -> List[Tuple[Tuple[int, ...], Tuple[int, ...]]]:
    """Canonical, order-independent representation of a solution collection."""
    return sorted(solution.key() for solution in solutions)


def same_solutions(first: Iterable[Biplex], second: Iterable[Biplex]) -> bool:
    """Whether two solution collections contain exactly the same biplexes."""
    return set(first) == set(second)


def missing_and_extra(
    reference: Iterable[Biplex], candidate: Iterable[Biplex]
) -> Tuple[Set[Biplex], Set[Biplex]]:
    """Solutions missing from / extraneous in ``candidate`` relative to ``reference``."""
    reference_set = set(reference)
    candidate_set = set(candidate)
    return reference_set - candidate_set, candidate_set - reference_set


def summarize_solutions(solutions: Sequence[Biplex]) -> dict:
    """Small summary used by the CLI and the examples."""
    if not solutions:
        return {"count": 0, "max_left": 0, "max_right": 0, "max_total": 0}
    return {
        "count": len(solutions),
        "max_left": max(len(s.left) for s in solutions),
        "max_right": max(len(s.right) for s in solutions),
        "max_total": max(s.size for s in solutions),
    }
